//! Integration tests for the campaign-execution engine: parallel runs
//! are bit-identical to serial ones, a warm cache eliminates every
//! simulation, and a corrupted cache file heals by re-simulation.

use std::path::PathBuf;

use hetcore_repro::hetcore::campaign::{cpu_job, cpu_job_key};
use hetcore_repro::hetcore::config::CpuDesign;
use hetcore_repro::hetcore::suite::Suite;
use hetcore_repro::hetsim_runner::Runner;
use hetcore_repro::hetsim_trace::apps;

fn quick() -> Suite {
    Suite {
        insts_per_app: 20_000,
        seed: 11,
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hetcore-campaign-test-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn parallel_cpu_campaign_is_bit_identical_to_serial() {
    let s = quick();
    let serial = s.cpu_campaign_with(&Runner::serial());
    let parallel = s.cpu_campaign_with(&Runner::new(4));
    assert_eq!(serial.app_names, parallel.app_names);
    assert_eq!(serial.outcomes, parallel.outcomes);
    // The derived reports are therefore identical too — compare one
    // end-to-end through its rendered form (Report has no PartialEq).
    assert_eq!(s.fig7(&serial).to_string(), s.fig7(&parallel).to_string());
}

#[test]
fn parallel_gpu_campaign_is_bit_identical_to_serial() {
    let s = quick();
    let serial = s.gpu_campaign_with(&Runner::serial());
    let parallel = s.gpu_campaign_with(&Runner::new(4));
    assert_eq!(serial.kernel_names, parallel.kernel_names);
    assert_eq!(serial.outcomes, parallel.outcomes);
    assert_eq!(s.fig11(&serial).to_string(), s.fig11(&parallel).to_string());
}

#[test]
fn warm_disk_cache_executes_zero_simulations() {
    let s = quick();
    let dir = tmp_dir("warm");

    let cold = Runner::new(4).with_cache_dir(&dir).expect("cache dir");
    let first = s.gpu_campaign_with(&cold);
    let stats = cold.last_stats();
    assert_eq!(
        stats.executed, stats.jobs,
        "cold cache must simulate everything"
    );

    // A fresh runner (fresh in-process store) over the same directory:
    // every job must be answered from disk, none executed.
    let warm = Runner::new(4).with_cache_dir(&dir).expect("cache dir");
    let second = s.gpu_campaign_with(&warm);
    let stats = warm.last_stats();
    assert_eq!(
        stats.executed, 0,
        "warm cache must execute zero simulations"
    );
    assert_eq!(stats.cache.disk_hits, stats.jobs);
    assert!((stats.hit_rate() - 1.0).abs() < 1e-12);
    assert_eq!(
        first.outcomes, second.outcomes,
        "cached results must match fresh ones"
    );

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn corrupted_cache_file_is_resimulated() {
    let s = quick();
    let dir = tmp_dir("corrupt");
    let app = apps::profile("lu").expect("known");
    let job = || cpu_job(CpuDesign::AdvHet, 4, &app, s.seed, s.insts_per_app);
    let key = cpu_job_key(CpuDesign::AdvHet, 4, &app, s.seed, s.insts_per_app);

    let runner = Runner::serial().with_cache_dir(&dir).expect("cache dir");
    let fresh = runner.run(vec![job()]).pop().expect("one outcome");

    // Truncate the cached file mid-token, as a crashed writer would.
    let path = dir.join(format!("{}.json", key.hex()));
    let text = std::fs::read_to_string(&path).expect("cache file exists");
    std::fs::write(&path, &text[..text.len() / 2]).expect("truncate");

    let recover = Runner::serial().with_cache_dir(&dir).expect("cache dir");
    let again = recover.run(vec![job()]).pop().expect("one outcome");
    let stats = recover.last_stats();
    assert_eq!(stats.executed, 1, "corrupt entry must re-simulate");
    assert_eq!(stats.cache.corrupt_files, 1, "and be counted as corrupt");
    assert_eq!(again, fresh, "re-simulation must reproduce the outcome");

    // The re-simulation overwrote the torn file: a third run is a hit.
    let healed = Runner::serial().with_cache_dir(&dir).expect("cache dir");
    healed.run(vec![job()]);
    assert_eq!(
        healed.last_stats().executed,
        0,
        "cache must heal after re-simulation"
    );

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn outcome_serialization_round_trips_exactly() {
    // The disk cache depends on lossless f64 round-tripping through the
    // JSON layer: a cached outcome must be bit-equal to the fresh one.
    let s = quick();
    let app = apps::profile("fft").expect("known");
    let outcome = (cpu_job(CpuDesign::BaseHet, 4, &app, s.seed, s.insts_per_app).run)();
    let json = serde_json::to_string(&outcome).expect("serialize");
    let back: hetcore_repro::hetcore::CpuOutcome =
        serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, outcome);
}
