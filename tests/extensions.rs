//! Integration tests for the beyond-Table-IV experiments: the Section VIII
//! comparisons and the future-work techniques.

use hetcore_repro::hetcore::config::GpuDesign;
use hetcore_repro::hetcore::experiment::{run_gpu, run_gpu_scheduled};
use hetcore_repro::hetcore::migration::{run_migration_cmp, MigrationConfig};
use hetcore_repro::hetcore::suite::{Extension, Suite};
use hetcore_repro::hetsim_device::area;
use hetcore_repro::hetsim_gpu::kernels;
use hetcore_repro::hetsim_trace::apps;

/// The migration CMP uses (at most) the silicon of the AdvHet chip it is
/// compared against, and AdvHet still wins both axes on a parallel app.
#[test]
fn migration_comparison_is_iso_area_and_advhet_wins() {
    let advhet_chip = area::chip(4, area::hetcore_core());
    let migration_chip = area::chip(2, area::cmos_core()) + area::chip(2, area::tfet_core());
    assert!(
        migration_chip <= advhet_chip,
        "the baseline gets the area benefit"
    );

    let app = apps::profile("fft").expect("known app");
    let (adv, mig) = hetcore_repro::hetcore::migration::iso_area_comparison(&app, 3, 120_000);
    assert!(adv.seconds < mig.seconds);
    assert!(adv.energy.total_j() < mig.energy.total_j());
}

/// Migration-interval granularity: more frequent barriers cost more time
/// (more migrations), never less.
#[test]
fn finer_barrier_intervals_cost_migration_time() {
    let app = apps::profile("lu").expect("known app");
    let coarse = MigrationConfig {
        interval_insts: 50_000,
        ..MigrationConfig::default()
    };
    let fine = MigrationConfig {
        interval_insts: 5_000,
        ..MigrationConfig::default()
    };
    let c = run_migration_cmp(&coarse, &app, 3, 200_000);
    let f = run_migration_cmp(&fine, &app, 3, 200_000);
    assert!(f.intervals > c.intervals);
    assert!(f.seconds >= c.seconds);
}

/// The partitioned RF recovers BaseHet's RF-latency loss across the whole
/// kernel suite (mean), as the Section VIII adaptation predicts.
#[test]
fn partitioned_rf_recovers_across_the_suite() {
    let mut het = 0.0;
    let mut part = 0.0;
    for kernel in kernels::all().into_iter().take(6) {
        het += run_gpu(GpuDesign::BaseHet, &kernel, 5).seconds;
        part += run_gpu(GpuDesign::AdvHetPartitionedRf, &kernel, 5).seconds;
    }
    assert!(
        part < het,
        "partitioned RF mean time {part} vs BaseHet {het}"
    );
}

/// Compiler scheduling shrinks the hetero design's *relative* slowdown
/// (scheduling helps both designs, but the deep TFET pipelines more).
#[test]
fn scheduling_shrinks_the_relative_hetero_gap() {
    let mut raw_gap = 0.0;
    let mut sched_gap = 0.0;
    for kernel in ["binomialoption", "dct", "urng"] {
        let k = kernels::profile(kernel).expect("known kernel");
        raw_gap += run_gpu(GpuDesign::BaseHet, &k, 7).seconds
            / run_gpu(GpuDesign::BaseCmos, &k, 7).seconds;
        sched_gap += run_gpu_scheduled(GpuDesign::BaseHet, &k, 7, 6).seconds
            / run_gpu_scheduled(GpuDesign::BaseCmos, &k, 7, 6).seconds;
    }
    assert!(
        sched_gap < raw_gap,
        "scheduled gap {sched_gap} vs raw {raw_gap}"
    );
}

/// The extension registry round-trips CLI names and stays disjoint from
/// the paper-figure registry.
#[test]
fn extension_registry_is_well_formed() {
    for e in Extension::ALL {
        assert_eq!(Extension::from_cli_name(e.cli_name()), Some(e));
        assert!(
            hetcore_repro::hetcore::suite::Experiment::from_cli_name(e.cli_name()).is_none(),
            "extension names must not collide with figure names"
        );
    }
    // The suite's extension reports are well-formed at a quick budget.
    let s = Suite {
        insts_per_app: 30_000,
        seed: 3,
    };
    let m = s.ext_migration();
    assert_eq!(m.rows.len(), 15, "14 apps + mean");
    assert!(m.mean_of("migration time").expect("column exists") > 1.0);
}
