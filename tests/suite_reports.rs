//! Integration tests for the experiment suite: every report is
//! well-formed and shows the paper's qualitative shapes at a quick budget.

use hetcore_repro::hetcore::suite::{cpu_campaign_columns, Experiment, Suite};

fn quick() -> Suite {
    Suite {
        insts_per_app: 40_000,
        seed: 7,
    }
}

#[test]
fn device_reports_are_well_formed() {
    let s = quick();
    let t1 = s.table1();
    assert_eq!(t1.columns.len(), 4);
    assert_eq!(t1.rows.len(), 9);
    let f1 = s.fig1();
    assert_eq!(
        f1.columns,
        vec!["HetJTFET".to_string(), "MOSFET".to_string()]
    );
    let f2 = s.fig2();
    assert_eq!(f2.columns.len(), 3);
    let f3 = s.fig3();
    assert!(f3.rows.iter().all(|(_, v)| v.len() == 2));
}

#[test]
fn cpu_campaign_covers_all_designs_and_apps() {
    let s = quick();
    let c = s.cpu_campaign();
    assert_eq!(c.app_names.len(), 14);
    assert_eq!(cpu_campaign_columns().len(), 11, "10 designs + AdvHet-2X");
    for row in &c.outcomes {
        assert_eq!(row.len(), 11);
        for o in row {
            assert!(o.seconds > 0.0);
            assert!(o.energy.total_j() > 0.0);
        }
    }

    // Figures 7-9 share the campaign and are normalized to BaseCMOS = 1.
    let f7 = s.fig7(&c);
    let f8 = s.fig8(&c);
    let f9 = s.fig9(&c);
    for f in [&f7, &f8, &f9] {
        assert_eq!(f.rows.len(), 15, "14 apps + mean");
        for (label, vals) in &f.rows {
            assert!(
                (vals[0] - 1.0).abs() < 1e-12,
                "{label}: BaseCMOS column is 1"
            );
        }
    }

    // Headline shapes on the mean row.
    let t_mean = f7.mean_row().expect("mean exists");
    assert!(t_mean[2] > 1.6, "BaseTFET mean time {}", t_mean[2]); // col 2 = BaseTFET
    assert!(t_mean[4] < t_mean[3], "AdvHet faster than BaseHet");
    let e_mean = f8.mean_row().expect("mean exists");
    assert!(e_mean[2] < 0.35, "BaseTFET mean energy {}", e_mean[2]);
    assert!(e_mean[4] < 0.8, "AdvHet saves energy: {}", e_mean[4]);
    let ed2_mean = f9.mean_row().expect("mean exists");
    assert!(ed2_mean[5] < ed2_mean[0], "AdvHet-2X has the best ED^2");

    // Figure 13 has the four metric rows over eight designs.
    let f13 = s.fig13(&c);
    assert_eq!(f13.rows.len(), 4);
    assert_eq!(f13.columns.len(), 8);

    // The Figure 8 breakdown's six components sum to each design's total.
    let fb = s.fig8_breakdown(&c);
    assert_eq!(fb.rows.len(), 6);
    let total: f64 = fb.rows.iter().map(|(_, v)| v[0]).sum();
    assert!(
        (total - 1.0).abs() < 1e-9,
        "BaseCMOS components sum to 1, got {total}"
    );
}

#[test]
fn power_budget_premise_holds() {
    // Section VII-A1: "an AdvHet core consumes half the power of a
    // BaseCMOS one. Hence, under the same power budget, we can power twice
    // as many AdvHet cores." Bands are generous.
    let s = quick();
    let c = s.cpu_campaign();
    let p = s.power_budget(&c);
    let advhet4 = p.mean_of("AdvHet x4").expect("column");
    let twox8 = p.mean_of("AdvHet-2X x8").expect("column");
    assert!(
        (0.35..0.7).contains(&advhet4),
        "AdvHet power share {advhet4}"
    );
    assert!(
        (0.7..1.3).contains(&twox8),
        "8-core 2X chip sits near the budget: {twox8}"
    );
}

#[test]
fn gpu_campaign_and_figures() {
    let s = quick();
    let c = s.gpu_campaign();
    assert_eq!(c.kernel_names.len(), 20);
    let f10 = s.fig10(&c);
    let f11 = s.fig11(&c);
    let f12 = s.fig12(&c);
    for f in [&f10, &f11, &f12] {
        assert_eq!(f.rows.len(), 21, "20 kernels + mean");
        assert_eq!(f.columns.len(), 5);
    }
    let t = f10.mean_row().expect("mean");
    assert!(t[1] > 1.3, "GPU BaseTFET mean time {}", t[1]);
    assert!(t[4] < 1.0, "AdvHet-2X mean time {}", t[4]);
    let e = f11.mean_row().expect("mean");
    assert!(e[1] < 0.35, "GPU BaseTFET mean energy {}", e[1]);
    let ed2 = f12.mean_row().expect("mean");
    assert!(ed2[4] < 0.6, "GPU AdvHet-2X ED^2 {}", ed2[4]);
}

#[test]
fn fig14_shapes_hold() {
    let s = quick();
    let f = s.fig14();
    assert_eq!(f.rows.len(), 4);
    // AdvHet saves energy at every operating point; guardbands cost both.
    for (label, vals) in &f.rows {
        assert!(vals[1] < vals[0], "{label}");
    }
    assert!(
        f.rows[3].1[0] > f.rows[0].1[0],
        "variation raises BaseCMOS energy"
    );
    assert!(
        f.rows[3].1[1] > f.rows[0].1[1],
        "variation raises AdvHet energy"
    );
    // Boost costs energy; slowdown saves it (per unit of baseline).
    assert!(f.rows[1].1[0] > f.rows[0].1[0]);
}

#[test]
fn experiment_registry_is_complete() {
    assert_eq!(Experiment::ALL.len(), 12);
    for e in Experiment::ALL {
        assert_eq!(Experiment::from_cli_name(e.cli_name()), Some(e));
    }
}
