//! Integration tests asserting the paper's headline *orderings* hold
//! end-to-end across the whole stack (trace -> simulators -> power model
//! -> experiment harness), at reduced instruction budgets.

use hetcore_repro::hetcore::config::{CpuDesign, GpuDesign};
use hetcore_repro::hetcore::experiment::{run_cpu_multicore, run_gpu};
use hetcore_repro::hetsim_gpu::kernels;
use hetcore_repro::hetsim_trace::apps;

const INSTS: u64 = 80_000;
const SEED: u64 = 42;

/// Figure 7's ordering on the chip level: BaseCMOS < AdvHet < BaseHet <
/// BaseTFET in execution time, and AdvHet-2X fastest of all.
#[test]
fn cpu_time_ordering_matches_figure7() {
    for app_name in ["lu", "fft", "barnes"] {
        let app = apps::profile(app_name).expect("known app");
        let t = |d, cores| run_cpu_multicore(d, cores, &app, SEED, INSTS).seconds;
        let base = t(CpuDesign::BaseCmos, 4);
        let adv = t(CpuDesign::AdvHet, 4);
        let het = t(CpuDesign::BaseHet, 4);
        let tfet = t(CpuDesign::BaseTfet, 4);
        let twox = t(CpuDesign::AdvHet, 8);
        assert!(base < adv, "{app_name}: BaseCMOS {base} < AdvHet {adv}");
        assert!(adv < het, "{app_name}: AdvHet {adv} < BaseHet {het}");
        assert!(het < tfet, "{app_name}: BaseHet {het} < BaseTFET {tfet}");
        assert!(
            twox < base,
            "{app_name}: AdvHet-2X {twox} < BaseCMOS {base}"
        );
    }
}

/// Figure 8's ordering: BaseTFET < AdvHet <= BaseHet < BaseCMOS in energy.
#[test]
fn cpu_energy_ordering_matches_figure8() {
    for app_name in ["lu", "streamcluster"] {
        let app = apps::profile(app_name).expect("known app");
        let e = |d| run_cpu_multicore(d, 4, &app, SEED, INSTS).energy.total_j();
        let base = e(CpuDesign::BaseCmos);
        let adv = e(CpuDesign::AdvHet);
        let het = e(CpuDesign::BaseHet);
        let tfet = e(CpuDesign::BaseTfet);
        assert!(tfet < adv, "{app_name}: BaseTFET {tfet} < AdvHet {adv}");
        assert!(
            adv <= het * 1.02,
            "{app_name}: AdvHet {adv} <= BaseHet {het}"
        );
        assert!(het < base, "{app_name}: BaseHet {het} < BaseCMOS {base}");
    }
}

/// The headline magnitudes (Section VII-A), with generous bands: AdvHet
/// within ~25% of BaseCMOS time while saving over a quarter of the energy;
/// BaseTFET around half speed and around a quarter of the energy.
#[test]
fn cpu_headline_magnitudes_are_in_band() {
    let app = apps::profile("fft").expect("known app");
    let base = run_cpu_multicore(CpuDesign::BaseCmos, 4, &app, SEED, INSTS);
    let adv = run_cpu_multicore(CpuDesign::AdvHet, 4, &app, SEED, INSTS);
    let tfet = run_cpu_multicore(CpuDesign::BaseTfet, 4, &app, SEED, INSTS);

    let adv_slowdown = adv.seconds / base.seconds;
    assert!(
        (1.0..1.35).contains(&adv_slowdown),
        "AdvHet slowdown {adv_slowdown}"
    );
    let adv_energy = adv.energy.total_j() / base.energy.total_j();
    assert!(
        (0.45..0.75).contains(&adv_energy),
        "AdvHet energy ratio {adv_energy}"
    );

    let tfet_slowdown = tfet.seconds / base.seconds;
    assert!(
        (1.6..2.2).contains(&tfet_slowdown),
        "BaseTFET slowdown {tfet_slowdown}"
    );
    let tfet_energy = tfet.energy.total_j() / base.energy.total_j();
    assert!(
        (0.15..0.32).contains(&tfet_energy),
        "BaseTFET energy ratio {tfet_energy}"
    );
}

/// Section VII-A1: the fixed-power-budget chip. 8 AdvHet cores beat 4
/// BaseCMOS cores on time, energy AND ED^2 simultaneously.
#[test]
fn advhet_2x_dominates_under_power_budget() {
    let app = apps::profile("barnes").expect("known app");
    let base = run_cpu_multicore(CpuDesign::BaseCmos, 4, &app, SEED, INSTS);
    let twox = run_cpu_multicore(CpuDesign::AdvHet, 8, &app, SEED, INSTS);

    assert!(
        twox.seconds < base.seconds,
        "time {} vs {}",
        twox.seconds,
        base.seconds
    );
    assert!(twox.energy.total_j() < base.energy.total_j());
    assert!(
        twox.ed2() < 0.6 * base.ed2(),
        "ED^2 should fall dramatically"
    );
    // The premise: the AdvHet-2X chip stays within the BaseCMOS budget
    // (generously banded; the paper argues ~equal power).
    assert!(
        twox.power_w() < 1.25 * base.power_w(),
        "2X chip power {} must stay near the budget {}",
        twox.power_w(),
        base.power_w()
    );
}

/// Figures 10-12 orderings on the GPU side.
#[test]
fn gpu_orderings_match_figures_10_to_12() {
    for kernel_name in ["matmul", "floydwarshall", "binomialoption"] {
        let kernel = kernels::profile(kernel_name).expect("known kernel");
        let base = run_gpu(GpuDesign::BaseCmos, &kernel, SEED);
        let het = run_gpu(GpuDesign::BaseHet, &kernel, SEED);
        let adv = run_gpu(GpuDesign::AdvHet, &kernel, SEED);
        let tfet = run_gpu(GpuDesign::BaseTfet, &kernel, SEED);
        let twox = run_gpu(GpuDesign::AdvHet2x, &kernel, SEED);

        assert!(base.seconds < adv.seconds, "{kernel_name}: time ordering");
        assert!(adv.seconds <= het.seconds, "{kernel_name}: RF cache helps");
        assert!(
            het.seconds < tfet.seconds,
            "{kernel_name}: BaseTFET slowest"
        );
        assert!(twox.seconds < base.seconds, "{kernel_name}: 2X fastest");

        assert!(
            tfet.energy.total_j() < adv.energy.total_j(),
            "{kernel_name}: energy"
        );
        assert!(
            adv.energy.total_j() < base.energy.total_j(),
            "{kernel_name}: energy"
        );
        assert!(twox.ed2() < base.ed2(), "{kernel_name}: 2X ED^2 wins");
    }
}

/// Memory-bound canneal stays the least-affected app under BaseTFET (its
/// runtime is dominated by DRAM nanoseconds, which don't care about the
/// core clock) — a per-app shape visible in Figure 7.
#[test]
fn memory_bound_apps_tolerate_the_half_clock_best() {
    let canneal = apps::profile("canneal").expect("known app");
    let lu = apps::profile("lu").expect("known app");
    let ratio = |app| {
        let base = run_cpu_multicore(CpuDesign::BaseCmos, 4, app, SEED, INSTS).seconds;
        run_cpu_multicore(CpuDesign::BaseTfet, 4, app, SEED, INSTS).seconds / base
    };
    assert!(
        ratio(&canneal) < ratio(&lu),
        "canneal should be hurt less by the half clock than lu"
    );
}
