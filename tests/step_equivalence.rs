//! Old-vs-new equivalence goldens for the simulator-core rewrite.
//!
//! The event-driven, struct-of-arrays core must be *counter-exact*
//! against the cycle-by-cycle implementation it replaced — not just on
//! headline IPC, but on every `counters!` field of `CoreStats`,
//! `MemStats`, and `GpuStats`. These tests drive the seeded
//! `hetsim_trace::fuzz` workload generators (mixes far outside the 14
//! calibrated applications: div-heavy, branch-heavy, tiny and huge
//! working sets) through the multicore CPU path and the GPU launch path,
//! and compare the full counter sets against goldens recorded from the
//! pre-rewrite implementation.
//!
//! Regenerate (only when intentionally changing simulator *semantics*,
//! never for a pure-performance refactor) with:
//!
//! ```sh
//! STEP_EQUIV_BLESS=1 cargo test --release --offline step_equivalence
//! ```

use std::fmt::Write as _;

use hetcore_repro::hetcore::config::{CpuDesign, GpuDesign};
use hetcore_repro::hetsim_cpu::multicore::run_multicore;
use hetcore_repro::hetsim_gpu::kernel::KernelProfile;
use hetcore_repro::hetsim_gpu::Gpu;
use hetcore_repro::hetsim_trace::fuzz;

/// Fuzz seeds pinned into the golden. Each seed runs on a different
/// design (rotating through the menu), so the golden spans CMOS/TFET
/// functional units, the asymmetric DL1, and dual-speed ALU steering.
const SEEDS: [u64; 6] = [1, 2, 3, 5, 8, 13];

/// Instructions per CPU run: enough to fill the ROB many times over,
/// trigger every structural stall, and reach DRAM on big working sets.
const CPU_INSTS: u64 = 24_000;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/goldens/step_equivalence.txt"
);

fn bless_requested() -> bool {
    std::env::var("STEP_EQUIV_BLESS").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Renders every counter of one CPU phase result as stable text lines.
fn dump_cpu_phase(
    out: &mut String,
    seed: u64,
    design: CpuDesign,
    phase: &str,
    r: &hetcore_repro::hetsim_cpu::core::RunResult,
) {
    for (name, value) in r.stats.iter() {
        writeln!(
            out,
            "cpu seed={seed} design={} phase={phase} core.{name}={value}",
            design.name()
        )
        .expect("write to string");
    }
    for (name, value) in r.mem.iter() {
        writeln!(
            out,
            "cpu seed={seed} design={} phase={phase} mem.{name}={value}",
            design.name()
        )
        .expect("write to string");
    }
}

/// The full golden text: CPU multicore runs (serial + parallel phases)
/// and GPU launches over the fuzzed workloads.
fn render_current() -> String {
    let mut out = String::new();
    for (i, &seed) in SEEDS.iter().enumerate() {
        let design = CpuDesign::ALL[i % CpuDesign::ALL.len()];
        let profile = fuzz::workload(seed);
        let result = run_multicore(&design.core_config(), 2, &profile, seed, CPU_INSTS);
        if let Some(serial) = &result.serial {
            dump_cpu_phase(&mut out, seed, design, "serial", serial);
        }
        for (t, r) in result.parallel.iter().enumerate() {
            dump_cpu_phase(&mut out, seed, design, &format!("parallel{t}"), r);
        }
    }
    for (i, &seed) in SEEDS.iter().enumerate() {
        let design = GpuDesign::ALL[i % GpuDesign::ALL.len()];
        let mix = fuzz::kernel_mix(seed);
        let kernel = KernelProfile {
            name: "step-equivalence",
            insts_per_wavefront: mix.insts_per_wavefront,
            wavefronts: mix.wavefronts,
            valu_frac: mix.valu_frac,
            mem_frac: mix.mem_frac,
            lds_frac: mix.lds_frac,
            dep_prob: mix.dep_prob,
            reg_reuse: mix.reg_reuse,
            mem_miss_rate: mix.mem_miss_rate,
        };
        let result = Gpu::new(design.gpu_config()).run(&kernel, seed);
        for (name, value) in result.stats.iter() {
            writeln!(
                out,
                "gpu seed={seed} design={} {name}={value}",
                design.name()
            )
            .expect("write to string");
        }
    }
    out
}

#[test]
fn fuzzed_workload_counters_match_pre_rewrite_goldens() {
    let current = render_current();
    if bless_requested() {
        std::fs::write(GOLDEN, &current).expect("write golden");
        eprintln!("blessed {} lines into {GOLDEN}", current.lines().count());
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("golden missing: run once with STEP_EQUIV_BLESS=1 on the reference build");
    if golden == current {
        return;
    }
    // Report the first few diverging lines, not a 2000-line dump.
    let mut diffs = golden
        .lines()
        .zip(current.lines())
        .filter(|(g, c)| g != c)
        .take(10)
        .map(|(g, c)| format!("  golden:  {g}\n  current: {c}"))
        .collect::<Vec<_>>();
    if golden.lines().count() != current.lines().count() {
        diffs.push(format!(
            "  line count: golden {} vs current {}",
            golden.lines().count(),
            current.lines().count()
        ));
    }
    panic!(
        "simulator counters diverged from the pre-rewrite goldens ({} first diffs):\n{}",
        diffs.len(),
        diffs.join("\n")
    );
}

/// The golden must cover both phases of the Amdahl model and both
/// simulators — guards against a generator change silently emptying it.
#[test]
fn golden_spans_every_section() {
    let golden = std::fs::read_to_string(GOLDEN).expect("golden present");
    for needle in [
        "phase=serial",
        "phase=parallel0",
        "phase=parallel1",
        "gpu seed=",
    ] {
        assert!(
            golden.contains(needle),
            "golden lost its `{needle}` section"
        );
    }
}
