//! Cross-crate invariants: event conservation between the trace, the
//! pipeline, the memory system and the power model.

use hetcore_repro::hetcore::config::CpuDesign;
use hetcore_repro::hetsim_cpu::core::Core;
use hetcore_repro::hetsim_power::account::CpuEnergyModel;
use hetcore_repro::hetsim_power::assignment::DeviceAssignment;
use hetcore_repro::hetsim_trace::{apps, stream::TraceGenerator};

const INSTS: u64 = 50_000;

/// Every committed instruction is exactly one of the operation classes,
/// and memory traffic equals the executed loads + stores.
#[test]
fn event_counts_are_conserved_for_every_design() {
    let app = apps::profile("fmm").expect("known app");
    for design in CpuDesign::ALL {
        let mut core = Core::new(design.core_config(), 0);
        let r = core.run(TraceGenerator::new(&app, 9), INSTS);
        let s = &r.stats;
        assert_eq!(s.committed, INSTS, "{}", design.name());
        let by_class = s.alu_ops()
            + s.int_mul_ops
            + s.int_div_ops
            + s.fpu_ops()
            + s.loads
            + s.stores
            + s.branches;
        assert_eq!(
            by_class,
            s.committed,
            "{}: class counts must partition",
            design.name()
        );
        assert_eq!(
            s.issues,
            s.committed,
            "{}: every inst issues once",
            design.name()
        );
        assert_eq!(
            s.loads + s.stores,
            r.mem.dl1_accesses(),
            "{}: every memory op reaches the DL1 exactly once",
            design.name()
        );
        assert!(s.mispredicts <= s.branches, "{}", design.name());
    }
}

/// The energy breakdown's parts always sum to the total, and every part is
/// non-negative; ED and ED^2 relate by the delay factor.
#[test]
fn energy_accounting_identities() {
    let app = apps::profile("water-sp").expect("known app");
    for design in [CpuDesign::BaseCmos, CpuDesign::BaseHet, CpuDesign::AdvHet] {
        let mut core = Core::new(design.core_config(), 0);
        let r = core.run(TraceGenerator::new(&app, 11), INSTS);
        let seconds = r.seconds();
        let e = design.energy_model().energy(&r.stats, &r.mem, seconds);
        let parts = e.core_dynamic_j
            + e.core_leakage_j
            + e.l2_dynamic_j
            + e.l2_leakage_j
            + e.l3_dynamic_j
            + e.l3_leakage_j;
        assert!((parts - e.total_j()).abs() < 1e-18, "{}", design.name());
        assert!(e.dynamic_j() > 0.0 && e.leakage_j() > 0.0);
        assert!((e.ed2(seconds) / e.ed(seconds) - seconds).abs() / seconds < 1e-12);
    }
}

/// The whole stack is deterministic: identical seeds produce bit-identical
/// statistics and energies.
#[test]
fn full_stack_determinism() {
    let app = apps::profile("radix").expect("known app");
    let run = || {
        let mut core = Core::new(CpuDesign::AdvHet.core_config(), 0);
        let r = core.run(TraceGenerator::new(&app, 5), INSTS);
        let e = CpuDesign::AdvHet
            .energy_model()
            .energy(&r.stats, &r.mem, r.seconds());
        (r.stats, r.mem, e.total_j())
    };
    let (s1, m1, e1) = run();
    let (s2, m2, e2) = run();
    assert_eq!(s1, s2);
    assert_eq!(m1, m2);
    assert_eq!(e1.to_bits(), e2.to_bits());
}

/// Dynamic energy depends only on events; leakage only on time. Scaling
/// runtime at fixed events moves exactly the leakage terms.
#[test]
fn leakage_scales_with_time_dynamic_does_not() {
    let app = apps::profile("dct-placeholder-not-used");
    assert!(app.is_none(), "guard: unknown names return None");

    let app = apps::profile("cholesky").expect("known app");
    let mut core = Core::new(CpuDesign::BaseCmos.core_config(), 0);
    let r = core.run(TraceGenerator::new(&app, 3), INSTS);
    let model = CpuEnergyModel::new(DeviceAssignment::all_cmos());
    let e1 = model.energy(&r.stats, &r.mem, 1.0e-5);
    let e2 = model.energy(&r.stats, &r.mem, 2.0e-5);
    assert!((e1.dynamic_j() - e2.dynamic_j()).abs() < 1e-18);
    assert!((e2.leakage_j() / e1.leakage_j() - 2.0).abs() < 1e-9);
}

/// Warmed runs measure exactly the requested region: the measured
/// committed count excludes the warmup instructions.
#[test]
fn warmup_region_is_excluded_from_measurement() {
    let app = apps::profile("lu").expect("known app");
    let mut core = Core::new(CpuDesign::BaseCmos.core_config(), 0);
    let r = core.run_warmed(TraceGenerator::new(&app, 3), 20_000, 30_000);
    assert_eq!(r.stats.committed, 30_000);
    // A cold run of the same region has at least as many DRAM accesses.
    let mut cold_core = Core::new(CpuDesign::BaseCmos.core_config(), 0);
    let cold = cold_core.run(TraceGenerator::new(&app, 3), 50_000);
    assert!(cold.mem.dram_accesses >= r.mem.dram_accesses);
}
