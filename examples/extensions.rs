//! Beyond Table IV: the paper's related-work comparison and future-work
//! extensions, implemented.
//!
//! 1. Section VIII's iso-area comparison against a heterogeneous CMP with
//!    barrier-aware thread migration (2 CMOS + 2 TFET whole cores vs. a
//!    4-core AdvHet chip).
//! 2. The partitioned vector register file (fast CMOS partition + slow
//!    TFET partition) as an alternative to the RF cache.
//! 3. The compiler latency-hiding pass the paper leaves to future work.
//!
//! ```text
//! cargo run --release --example extensions
//! ```

use hetcore::config::GpuDesign;
use hetcore::experiment::{run_gpu, run_gpu_scheduled};
use hetcore::migration::iso_area_comparison;
use hetsim_gpu::kernels;
use hetsim_trace::apps;

fn main() {
    // ---- 1. Thread migration vs. AdvHet (Section VIII) ----
    println!("Iso-area: 4-core AdvHet vs 2 CMOS + 2 TFET cores w/ barrier-aware migration");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12}",
        "app", "AdvHet t", "migration t", "AdvHet E", "migration E"
    );
    for app_name in ["lu", "fft", "barnes", "streamcluster"] {
        let app = apps::profile(app_name).expect("known app");
        let (adv, mig) = iso_area_comparison(&app, 11, 200_000);
        println!(
            "{:<14} {:>10.1}us {:>10.1}us {:>10.2}uJ {:>10.2}uJ",
            app.name,
            adv.seconds * 1e6,
            mig.seconds * 1e6,
            adv.energy.total_j() * 1e6,
            mig.energy.total_j() * 1e6
        );
    }
    println!("(the paper: \"AdvHet provides, on average, higher performance while");
    println!(" consuming lower energy\" — Section VIII)\n");

    // ---- 2. Partitioned RF vs. RF cache ----
    println!("GPU: RF cache (Table IV AdvHet) vs partitioned RF (Section VIII):");
    println!(
        "{:<16} {:>12} {:>12} {:>12}",
        "kernel", "BaseHet t", "RF-cache t", "PartRF t"
    );
    for kernel_name in ["binomialoption", "matmul", "reduction"] {
        let kernel = kernels::profile(kernel_name).expect("known kernel");
        let het = run_gpu(GpuDesign::BaseHet, &kernel, 42);
        let adv = run_gpu(GpuDesign::AdvHet, &kernel, 42);
        let part = run_gpu(GpuDesign::AdvHetPartitionedRf, &kernel, 42);
        println!(
            "{:<16} {:>10.1}us {:>10.1}us {:>10.1}us",
            kernel.name,
            het.seconds * 1e6,
            adv.seconds * 1e6,
            part.seconds * 1e6
        );
    }
    println!();

    // ---- 3. Compiler latency hiding (future work) ----
    println!("GPU: compiler latency-hiding pass (future work, IV-C4).");
    println!("BaseHet slowdown vs BaseCMOS, with the scheduler applied to both:");
    println!(
        "{:<16} {:>14} {:>16}",
        "kernel", "raw slowdown", "sched. slowdown"
    );
    for kernel_name in ["binomialoption", "dct", "sobel"] {
        let kernel = kernels::profile(kernel_name).expect("known kernel");
        let base_raw = run_gpu(GpuDesign::BaseCmos, &kernel, 42);
        let het_raw = run_gpu(GpuDesign::BaseHet, &kernel, 42);
        let base_sched = run_gpu_scheduled(GpuDesign::BaseCmos, &kernel, 42, 6);
        let het_sched = run_gpu_scheduled(GpuDesign::BaseHet, &kernel, 42, 6);
        println!(
            "{:<16} {:>13.3}x {:>15.3}x",
            kernel.name,
            het_raw.seconds / base_raw.seconds,
            het_sched.seconds / base_sched.seconds,
        );
    }
    println!("(the scheduler hides the deeper TFET pipelines specifically, so the");
    println!(" hetero design's *relative* slowdown shrinks — the effect the paper");
    println!(" anticipated when it left compiler support to future work)");
}
