//! Quickstart: compare the paper's headline designs on one application.
//!
//! Runs BaseCMOS, BaseHet and AdvHet on the `lu` workload and prints time,
//! energy and ED^2 — the tradeoff HetCore is about.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hetcore::config::CpuDesign;
use hetcore::experiment::run_cpu;
use hetsim_trace::apps;

fn main() {
    let app = apps::profile("lu").expect("lu is part of the suite");
    let insts = 120_000;

    println!(
        "HetCore quickstart: {} ({} instructions)\n",
        app.name, insts
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>10}",
        "design", "time (us)", "energy (uJ)", "power (W)", "ED^2 norm"
    );

    let base = run_cpu(CpuDesign::BaseCmos, &app, 42, insts);
    let base_ed2 = base.ed2();
    for design in [
        CpuDesign::BaseCmos,
        CpuDesign::BaseTfet,
        CpuDesign::BaseHet,
        CpuDesign::AdvHet,
    ] {
        let o = run_cpu(design, &app, 42, insts);
        println!(
            "{:<12} {:>12.2} {:>12.3} {:>12.3} {:>10.3}",
            design.name(),
            o.seconds * 1e6,
            o.energy.total_j() * 1e6,
            o.power_w(),
            o.ed2() / base_ed2,
        );
    }

    println!();
    let adv = run_cpu(CpuDesign::AdvHet, &app, 42, insts);
    println!(
        "AdvHet: {:.0}% slower than BaseCMOS, {:.0}% less energy.",
        (adv.seconds / base.seconds - 1.0) * 100.0,
        (1.0 - adv.energy.total_j() / base.energy.total_j()) * 100.0
    );
}
