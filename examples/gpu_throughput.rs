//! GPU throughput study: the four Table IV GPU designs plus AdvHet-2X on
//! the synthetic AMD APP SDK kernels — a miniature of Figures 10-12.
//!
//! ```text
//! cargo run --release --example gpu_throughput
//! ```

use hetcore::config::GpuDesign;
use hetcore::experiment::run_gpu;
use hetsim_gpu::kernels;

fn main() {
    println!("GPU designs on the kernel suite (normalized to BaseCMOS)\n");
    println!(
        "{:<16} {:>11} {:>9} {:>9} {:>9} {:>11}",
        "kernel", "design", "time", "energy", "ED^2", "RFC hits"
    );
    for kernel in kernels::all() {
        let base = run_gpu(GpuDesign::BaseCmos, &kernel, 42);
        for design in GpuDesign::ALL {
            let o = run_gpu(design, &kernel, 42);
            println!(
                "{:<16} {:>11} {:>9.3} {:>9.3} {:>9.3} {:>11}",
                if design == GpuDesign::BaseCmos {
                    kernel.name
                } else {
                    ""
                },
                design.name(),
                o.seconds / base.seconds,
                o.energy.total_j() / base.energy.total_j(),
                o.ed2() / base.ed2(),
                "-",
            );
        }
    }

    // The register-file cache at work: BaseHet vs AdvHet on a
    // dependency-dense kernel.
    let kernel = kernels::profile("binomialoption").expect("known kernel");
    let het = run_gpu(GpuDesign::BaseHet, &kernel, 42);
    let adv = run_gpu(GpuDesign::AdvHet, &kernel, 42);
    println!(
        "\nbinomialoption: RF cache recovers {:.0}% of BaseHet's slowdown",
        {
            let base = run_gpu(GpuDesign::BaseCmos, &kernel, 42);
            let lost = het.seconds - base.seconds;
            let recovered = het.seconds - adv.seconds;
            100.0 * recovered / lost
        }
    );
}
