//! Paired-voltage DVFS and process variation (paper Sections III-D/E,
//! Figure 14).
//!
//! Shows the device layer directly: the V-f curves, the paired
//! `(V_CMOS, V_TFET)` operating points, the turbo/slow voltage deltas the
//! paper quotes, and the 15 nm guardbands.
//!
//! ```text
//! cargo run --release --example dvfs_and_variation
//! ```

use hetsim_device::dvfs::DvfsController;
use hetsim_device::variation::{apply_guardbands, guardband_energy_factors};

fn main() {
    let dvfs = DvfsController::new();
    let nominal = dvfs.nominal();

    println!("Nominal HetCore operating point (Figure 3):");
    println!(
        "  f = {:.2} GHz, V_CMOS = {:.3} V, V_TFET = {:.3} V\n",
        nominal.frequency_hz / 1e9,
        nominal.v_cmos,
        nominal.v_tfet
    );

    println!("Paired DVFS operating points (TFET rail targets f/2):");
    println!(
        "{:>8} {:>9} {:>9} {:>10} {:>10}",
        "f (GHz)", "V_CMOS", "V_TFET", "dV_CMOS", "dV_TFET"
    );
    for f in [1.5e9, 1.75e9, 2.0e9, 2.25e9, 2.5e9] {
        let p = dvfs.operating_point(f).expect("reachable frequency");
        println!(
            "{:>8.2} {:>9.3} {:>9.3} {:>+10.0} {:>+10.0}",
            f / 1e9,
            p.v_cmos,
            p.v_tfet,
            (p.v_cmos - nominal.v_cmos) * 1000.0,
            (p.v_tfet - nominal.v_tfet) * 1000.0
        );
    }
    println!("  (paper: turbo to 2.5 GHz takes +75 mV CMOS but +90 mV TFET —");
    println!("   the shallower TFET curve needs larger swings)\n");

    let fmax = dvfs.max_frequency();
    println!(
        "Maximum paired frequency (TFET saturation-limited): {:.2} GHz\n",
        fmax / 1e9
    );

    let gb = apply_guardbands(&nominal);
    let (ec, et) = guardband_energy_factors(&nominal);
    println!("Process-variation guardbands at 15 nm (Section III-E):");
    println!(
        "  V_CMOS {:.3} -> {:.3} V (dynamic energy x{ec:.2})",
        nominal.v_cmos, gb.v_cmos
    );
    println!(
        "  V_TFET {:.3} -> {:.3} V (dynamic energy x{et:.2})",
        nominal.v_tfet, gb.v_tfet
    );
}
