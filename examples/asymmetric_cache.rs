//! The asymmetric DL1 cache in isolation (paper Section IV-C1, Figure 5).
//!
//! Drives the 4 KB CMOS FastCache + 28 KB TFET SlowCache structure with a
//! real application address stream and reports the hit structure and
//! effective latency against the plain CMOS and TFET alternatives.
//!
//! ```text
//! cargo run --release --example asymmetric_cache
//! ```

use hetsim_mem::asymmetric::{AsymHit, AsymmetricCache};
use hetsim_mem::cache::{Cache, CacheConfig};
use hetsim_trace::{apps, stream::TraceGenerator};

fn main() {
    let n = 200_000;
    println!("Asymmetric DL1 vs plain DL1 on application address streams\n");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "app", "fast hits", "slow hits", "misses", "asym cyc", "CMOS cyc", "TFET cyc"
    );

    for app_name in ["lu", "blackscholes", "fft", "canneal"] {
        let app = apps::profile(app_name).expect("known app");
        let mut asym = AsymmetricCache::advhet_dl1();
        let mut cmos = Cache::new(CacheConfig::new(32 * 1024, 8, 64, 2));
        let mut tfet = Cache::new(CacheConfig::new(32 * 1024, 8, 64, 4));

        let (mut fast, mut slow, mut miss) = (0u64, 0u64, 0u64);
        let (mut asym_cycles, mut cmos_cycles, mut tfet_cycles) = (0u64, 0u64, 0u64);
        const MISS_COST: u64 = 12; // L2 round trip stands in for miss time

        for inst in TraceGenerator::new(&app, 7).take(n) {
            let Some(addr) = inst.addr else { continue };
            let is_write = inst.op == hetsim_trace::OpClass::Store;

            let out = asym.access(addr, is_write);
            match out.hit {
                AsymHit::Fast => fast += 1,
                AsymHit::Slow => slow += 1,
                AsymHit::Miss => miss += 1,
            }
            asym_cycles += if out.hit == AsymHit::Miss {
                MISS_COST
            } else {
                u64::from(out.latency)
            };

            let c = cmos.access(addr, is_write);
            cmos_cycles += if c.hit { 2 } else { MISS_COST };
            let t = tfet.access(addr, is_write);
            tfet_cycles += if t.hit { 4 } else { MISS_COST };
        }

        println!(
            "{:<14} {:>10} {:>10} {:>10} {:>12} {:>12} {:>12}",
            app.name, fast, slow, miss, asym_cycles, cmos_cycles, tfet_cycles
        );
    }

    println!("\nThe asymmetric organization beats even the all-CMOS DL1 when the");
    println!("MRU working set fits the 4 KB fast way (1-cycle hits), while its");
    println!("TFET ways leak ~10x less — the AdvHet tradeoff of Section IV-C1.");
}
