//! CPU design-space walk: every Table IV configuration on a few
//! applications, as 4-core chips, plus the fixed-power-budget AdvHet-2X
//! chip (8 cores) — a miniature of the paper's Figures 7-9 and 13.
//!
//! ```text
//! cargo run --release --example cpu_design_space
//! ```

use hetcore::config::CpuDesign;
use hetcore::experiment::run_cpu_multicore;
use hetsim_trace::apps;

fn main() {
    let insts = 100_000;
    let apps = ["lu", "fft", "canneal"];

    for app_name in apps {
        let app = apps::profile(app_name).expect("known app");
        println!(
            "== {} (4-core chips, {} total instructions) ==",
            app.name, insts
        );
        println!(
            "{:<16} {:>10} {:>10} {:>10} {:>10}",
            "design", "time", "energy", "ED", "ED^2"
        );
        let base = run_cpu_multicore(CpuDesign::BaseCmos, 4, &app, 7, insts);
        for design in CpuDesign::ALL {
            let o = run_cpu_multicore(design, 4, &app, 7, insts);
            println!(
                "{:<16} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                design.name(),
                o.seconds / base.seconds,
                o.energy.total_j() / base.energy.total_j(),
                o.ed() / base.ed(),
                o.ed2() / base.ed2(),
            );
        }
        // The 2X chip: twice the AdvHet cores at the BaseCMOS power budget.
        let twox = run_cpu_multicore(CpuDesign::AdvHet, 8, &app, 7, insts);
        println!(
            "{:<16} {:>10.3} {:>10.3} {:>10.3} {:>10.3}  (8 cores)",
            "AdvHet-2X",
            twox.seconds / base.seconds,
            twox.energy.total_j() / base.energy.total_j(),
            twox.ed() / base.ed(),
            twox.ed2() / base.ed2(),
        );
        println!(
            "power: BaseCMOS {:.2} W vs AdvHet-2X {:.2} W (the budget premise)\n",
            base.power_w(),
            twox.power_w()
        );
    }
}
