//! Root re-exports: the workspace crates behind one dependency for the
//! examples and integration tests.
//!
//! The real entry point of the reproduction is the [`hetcore`] crate; the
//! simulators and models live in the `hetsim_*` substrate crates.

#![warn(missing_docs)]

pub use hetcore;
pub use hetsim_cpu;
pub use hetsim_device;
pub use hetsim_gpu;
pub use hetsim_mem;
pub use hetsim_power;
pub use hetsim_runner;
pub use hetsim_trace;
