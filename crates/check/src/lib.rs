//! The runtime invariant layer: a tiny `Invariant`/`Violation`
//! framework the simulation crates hang their accounting checks on.
//!
//! A cycle-level model that silently violates its own bookkeeping
//! (committed > issued instructions, cache hits + misses != accesses,
//! negative energy) produces plausible-looking wrong figures; the
//! regression gate of `hetcore::regression` only catches drift against
//! a pinned baseline, not internal inconsistency. This crate provides
//! the common vocabulary:
//!
//! * [`Violation`] — one broken invariant, carrying a stable invariant
//!   name, the path of the object it was observed on, the expected
//!   relation and the actual values;
//! * [`Checker`] — an accumulator the validators of `hetsim-cpu`,
//!   `hetsim-gpu`, `hetsim-mem` and `hetsim-power` write into, with
//!   relation helpers (`eq_u64`, `le_u64`, ...) and hierarchical path
//!   scoping;
//! * [`CheckConfig`] — the on/off switch guarding the in-loop checks
//!   inside the simulators, so the hot path stays branch-cheap (one
//!   predictable test) when checking is disabled.
//!
//! The layer deliberately has **no dependencies**: every simulation
//! crate can use it without cycles, and `hetcore` renders violations
//! to tables/JSON itself.

use std::fmt;

/// One violated invariant: what broke, where, and by how much.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable dotted invariant name, e.g. `"cpu.commit_conservation"`.
    pub invariant: &'static str,
    /// Where it was observed, e.g. `"fig7/AdvHet/lu/core"`.
    pub path: String,
    /// The relation that should have held, e.g. `"hits + misses == accesses"`.
    pub expected: String,
    /// The observed values, e.g. `"hits=10 misses=2 accesses=13"`.
    pub actual: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "violation[{}] at {}: expected {}, got {}",
            self.invariant, self.path, self.expected, self.actual
        )
    }
}

/// Whether runtime checking is enabled. Simulators carry one of these
/// and skip all invariant work when it is off, so the default
/// (unchecked) hot path pays a single well-predicted branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckConfig {
    /// Run the checks?
    pub enabled: bool,
}

/// Environment variable that turns checking on process-wide
/// (`HETSIM_CHECK=1`); see [`CheckConfig::from_env`].
pub const CHECK_ENV: &str = "HETSIM_CHECK";

impl CheckConfig {
    /// Checking disabled (the default).
    pub const OFF: CheckConfig = CheckConfig { enabled: false };
    /// Checking enabled.
    pub const ON: CheckConfig = CheckConfig { enabled: true };

    /// Reads [`CHECK_ENV`]: any non-empty value other than `"0"`
    /// enables checking.
    pub fn from_env() -> CheckConfig {
        match std::env::var(CHECK_ENV) {
            Ok(v) if !v.is_empty() && v != "0" => CheckConfig::ON,
            _ => CheckConfig::OFF,
        }
    }

    /// Whether checks should run.
    pub fn enabled(self) -> bool {
        self.enabled
    }
}

/// Accumulates invariant evaluations and their violations.
///
/// Validators receive a `&mut Checker`, narrow the current location
/// with [`Checker::scoped`], and assert relations through the helpers;
/// every helper counts toward [`Checker::checks_run`] so a report can
/// say "N invariants checked, M violated" rather than a bare pass.
#[derive(Debug, Default, Clone)]
pub struct Checker {
    path: Vec<String>,
    checks: u64,
    violations: Vec<Violation>,
}

impl Checker {
    /// A fresh checker rooted at the empty path.
    pub fn new() -> Checker {
        Checker::default()
    }

    /// Runs `f` with `segment` pushed onto the location path.
    pub fn scoped<R>(
        &mut self,
        segment: impl Into<String>,
        f: impl FnOnce(&mut Checker) -> R,
    ) -> R {
        self.path.push(segment.into());
        let out = f(self);
        self.path.pop();
        out
    }

    /// The current location path (`/`-joined scopes).
    pub fn path(&self) -> String {
        self.path.join("/")
    }

    /// The fundamental operation: records one invariant evaluation,
    /// and a [`Violation`] if `holds` is false.
    pub fn check(
        &mut self,
        invariant: &'static str,
        expected: impl fmt::Display,
        holds: bool,
        actual: impl fmt::Display,
    ) {
        self.checks += 1;
        if !holds {
            self.violations.push(Violation {
                invariant,
                path: self.path(),
                expected: expected.to_string(),
                actual: actual.to_string(),
            });
        }
    }

    /// Asserts `lhs == rhs` over named u64 counters.
    pub fn eq_u64(&mut self, invariant: &'static str, lhs: (&str, u64), rhs: (&str, u64)) {
        self.check(
            invariant,
            format!("{} == {}", lhs.0, rhs.0),
            lhs.1 == rhs.1,
            format!("{}={} {}={}", lhs.0, lhs.1, rhs.0, rhs.1),
        );
    }

    /// Asserts `lhs <= rhs` over named u64 counters.
    pub fn le_u64(&mut self, invariant: &'static str, lhs: (&str, u64), rhs: (&str, u64)) {
        self.check(
            invariant,
            format!("{} <= {}", lhs.0, rhs.0),
            lhs.1 <= rhs.1,
            format!("{}={} {}={}", lhs.0, lhs.1, rhs.0, rhs.1),
        );
    }

    /// Asserts `lhs >= rhs` over named u64 counters.
    pub fn ge_u64(&mut self, invariant: &'static str, lhs: (&str, u64), rhs: (&str, u64)) {
        self.check(
            invariant,
            format!("{} >= {}", lhs.0, rhs.0),
            lhs.1 >= rhs.1,
            format!("{}={} {}={}", lhs.0, lhs.1, rhs.0, rhs.1),
        );
    }

    /// Asserts a named f64 is finite and `>= bound`.
    pub fn ge_f64(&mut self, invariant: &'static str, value: (&str, f64), bound: f64) {
        self.check(
            invariant,
            format!("{} >= {bound} (finite)", value.0),
            value.1.is_finite() && value.1 >= bound,
            format!("{}={}", value.0, value.1),
        );
    }

    /// Asserts two named f64s agree within relative tolerance
    /// `rel_tol` (absolute for magnitudes below 1).
    pub fn close_f64(
        &mut self,
        invariant: &'static str,
        lhs: (&str, f64),
        rhs: (&str, f64),
        rel_tol: f64,
    ) {
        let scale = lhs.1.abs().max(rhs.1.abs()).max(1.0);
        let holds =
            lhs.1.is_finite() && rhs.1.is_finite() && (lhs.1 - rhs.1).abs() <= rel_tol * scale;
        self.check(
            invariant,
            format!("{} ~= {} (rel_tol={rel_tol})", lhs.0, rhs.0),
            holds,
            format!("{}={} {}={}", lhs.0, lhs.1, rhs.0, rhs.1),
        );
    }

    /// Number of invariant evaluations so far.
    pub fn checks_run(&self) -> u64 {
        self.checks
    }

    /// The violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// True when no violation has been recorded.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Absorbs externally collected violations (e.g. the in-loop
    /// occupancy checks a simulator gathered while running), rebasing
    /// their paths under the checker's current scope.
    pub fn absorb(&mut self, violations: Vec<Violation>) {
        let base = self.path();
        for mut v in violations {
            if !base.is_empty() {
                v.path = if v.path.is_empty() {
                    base.clone()
                } else {
                    format!("{base}/{}", v.path)
                };
            }
            self.violations.push(v);
        }
    }

    /// Consumes the checker, returning all violations.
    pub fn into_violations(self) -> Vec<Violation> {
        self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_checker_counts_checks() {
        let mut c = Checker::new();
        c.eq_u64("t.eq", ("a", 3), ("b", 3));
        c.le_u64("t.le", ("a", 3), ("b", 4));
        c.ge_u64("t.ge", ("a", 3), ("b", 3));
        c.ge_f64("t.gef", ("x", 0.0), 0.0);
        c.close_f64("t.close", ("x", 1.0), ("y", 1.0 + 1e-12), 1e-9);
        assert!(c.is_clean());
        assert_eq!(c.checks_run(), 5);
    }

    #[test]
    fn violation_carries_path_expected_actual() {
        let mut c = Checker::new();
        c.scoped("fig7", |c| {
            c.scoped("AdvHet", |c| {
                c.eq_u64("cpu.commit", ("committed", 5), ("issued", 4));
            })
        });
        let v = &c.violations()[0];
        assert_eq!(v.invariant, "cpu.commit");
        assert_eq!(v.path, "fig7/AdvHet");
        assert_eq!(v.expected, "committed == issued");
        assert_eq!(v.actual, "committed=5 issued=4");
        assert!(v
            .to_string()
            .contains("violation[cpu.commit] at fig7/AdvHet"));
    }

    #[test]
    fn scopes_pop_even_on_nested_use() {
        let mut c = Checker::new();
        c.scoped("a", |c| {
            assert_eq!(c.path(), "a");
            c.scoped("b", |c| assert_eq!(c.path(), "a/b"));
            assert_eq!(c.path(), "a");
        });
        assert_eq!(c.path(), "");
    }

    #[test]
    fn nan_and_infinite_values_violate_float_checks() {
        let mut c = Checker::new();
        c.ge_f64("t.nan", ("x", f64::NAN), 0.0);
        c.ge_f64("t.inf", ("x", f64::INFINITY), 0.0);
        c.close_f64("t.closenan", ("x", f64::NAN), ("y", 0.0), 1e-9);
        assert_eq!(c.violations().len(), 3);
    }

    #[test]
    fn absorb_rebases_paths() {
        let mut inner = Checker::new();
        inner.scoped("core0", |c| c.eq_u64("cpu.rob", ("occ", 9), ("cap", 8)));
        let mut outer = Checker::new();
        outer.scoped("fuzz", |c| c.absorb(inner.into_violations()));
        assert_eq!(outer.violations()[0].path, "fuzz/core0");
    }

    #[test]
    fn config_defaults_off_and_env_turns_on() {
        assert!(!CheckConfig::default().enabled());
        assert!(CheckConfig::ON.enabled());
        assert!(!CheckConfig::OFF.enabled());
    }
}
