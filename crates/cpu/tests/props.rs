//! Property tests for the CPU pipeline components and the whole core.

#![allow(clippy::field_reassign_with_default)]

use proptest::prelude::*;

use hetsim_cpu::config::CoreConfig;
use hetsim_cpu::core::Core;
use hetsim_cpu::fu::{FuPool, FuPoolConfig};
use hetsim_cpu::predictor::{PredictorConfig, TournamentPredictor};
use hetsim_cpu::stats::CoreStats;
use hetsim_trace::stream::TraceGenerator;
use hetsim_trace::{apps, OpClass};

/// One value per [`CoreStats`] counter, bounded well below overflow so
/// merged sums stay exact.
fn counter_values() -> impl Strategy<Value = Vec<u64>> {
    let fields = CoreStats::default().iter().count();
    proptest::collection::vec(0u64..(1 << 32), fields)
}

/// Builds a [`CoreStats`] by assigning each generated value through the
/// name-addressed `set`, exercising the same path consumers use.
fn stats_from(values: &[u64]) -> CoreStats {
    let mut s = CoreStats::default();
    for ((name, _), v) in CoreStats::default().iter().zip(values) {
        assert!(s.set(&name, *v), "unknown counter {name}");
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The predictor never issues more structural resources than exist:
    /// arbitrary outcome streams keep its tables consistent (no panics)
    /// and accuracy stays a probability.
    #[test]
    fn predictor_is_total(outcomes in proptest::collection::vec(any::<bool>(), 1..2000),
                          pcs in proptest::collection::vec(0u64..64, 2000)) {
        let mut p = TournamentPredictor::new(PredictorConfig::default());
        let mut correct = 0u64;
        let n = outcomes.len();
        for (taken, pc_idx) in outcomes.into_iter().zip(pcs) {
            let pc = 0x4000_0000 + pc_idx * 16;
            if p.predict(pc).taken == taken {
                correct += 1;
            }
            p.update(pc, taken);
        }
        let acc = correct as f64 / n as f64;
        prop_assert!((0.0..=1.0).contains(&acc));
    }

    /// The FU pool never exceeds per-cycle structural capacity for any
    /// request sequence.
    #[test]
    fn fu_pool_respects_capacity(ops in proptest::collection::vec(0u8..7, 1..200)) {
        let mut pool = FuPool::new(FuPoolConfig::cmos());
        let classes = [
            OpClass::IntAlu, OpClass::IntMul, OpClass::IntDiv,
            OpClass::FpAdd, OpClass::FpMul, OpClass::FpDiv, OpClass::Load,
        ];
        for cycle in 0..50u64 {
            let mut alu = 0;
            let mut lsu = 0;
            for &o in &ops {
                let class = classes[o as usize];
                if pool.try_issue(class, cycle, false).is_some() {
                    match class {
                        OpClass::IntAlu => alu += 1,
                        OpClass::Load => lsu += 1,
                        _ => {}
                    }
                }
            }
            prop_assert!(alu <= 4, "at most 4 ALU issues per cycle, got {alu}");
            prop_assert!(lsu <= 2, "at most 2 LSU issues per cycle, got {lsu}");
        }
    }

    /// The core commits exactly what is asked, never exceeds the machine
    /// width, and produces consistent counters — for any app and seed.
    #[test]
    fn core_runs_are_well_formed(seed in any::<u64>(), idx in 0usize..14) {
        let app = &apps::all()[idx];
        let n = 8_000u64;
        let mut core = Core::new(CoreConfig::default(), 0);
        let r = core.run(TraceGenerator::new(app, seed), n);
        prop_assert_eq!(r.stats.committed, n);
        prop_assert!(r.stats.cycles >= n / 4, "cannot beat the 4-wide limit");
        prop_assert!(r.ipc() <= 4.0);
        prop_assert!(r.stats.mispredicts <= r.stats.branches);
        prop_assert_eq!(r.stats.loads + r.stats.stores, r.mem.dl1_accesses());
    }

    /// `merge` then `minus` round-trips every sum/sub counter: folding
    /// `b` into `a` and subtracting `a` back out recovers `b` exactly.
    /// `cycles` (max/keep) and `committed` (sum/keep) are the two
    /// policy-annotated exceptions.
    #[test]
    fn stats_merge_then_minus_round_trips(a in counter_values(), b in counter_values()) {
        let sa = stats_from(&a);
        let sb = stats_from(&b);
        let mut merged = sa;
        merged.merge(&sb);
        let diff = merged.minus(&sa);
        for (name, value) in diff.iter() {
            if name == "cycles" || name == "committed" {
                continue;
            }
            prop_assert_eq!(Some(value), sb.get(&name), "counter {}", name);
        }
    }

    /// `iter()` names are unique, value-independent, and every pair is
    /// addressable back through `get`.
    #[test]
    fn stats_iter_names_are_stable_and_unique(a in counter_values()) {
        let s = stats_from(&a);
        let names: Vec<String> = s.iter().map(|(n, _)| n).collect();
        let default_names: Vec<String> =
            CoreStats::default().iter().map(|(n, _)| n).collect();
        prop_assert_eq!(&names, &default_names, "names do not depend on values");
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), names.len(), "names are unique");
        for (name, value) in s.iter() {
            prop_assert_eq!(s.get(&name), Some(value), "get({}) addresses iter()", name);
        }
    }

    /// Halving the clock never makes the wall-clock time shorter.
    #[test]
    fn lower_clock_is_never_faster(seed in any::<u64>()) {
        let app = apps::profile("fft").expect("known app");
        let fast = {
            let mut core = Core::new(CoreConfig::default(), 0);
            core.run(TraceGenerator::new(&app, seed), 8_000).seconds()
        };
        let slow = {
            let mut cfg = CoreConfig::default();
            cfg.clock_hz = 1.0e9;
            let mut core = Core::new(cfg, 0);
            core.run(TraceGenerator::new(&app, seed), 8_000).seconds()
        };
        prop_assert!(slow > fast);
    }
}
