//! Per-core cycle-attribution profile.
//!
//! [`CoreProfile`] is the CPU half of the top-down profiler: every
//! simulated cycle of [`crate::core::Core::run_warmed`]'s measured
//! window is charged to exactly one [`CycleClass`], so the class
//! counts sum to `CoreStats::cycles` — an identity `hetsim-check`
//! enforces (`cpu.profile_class_conservation`). Class counting is
//! always on; the occupancy and latency histograms are recorded only
//! while [`hetsim_stats::attribution::enabled`] profiling is active,
//! keeping plain runs free of the extra stores.

use hetsim_stats::attribution::{ClassCounts, OccupancyHistograms};
use hetsim_stats::serde::value::Value;
use hetsim_stats::serde::{Deserialize, Error, Serialize};
use hetsim_stats::Histogram;

pub use hetsim_stats::attribution::CycleClass;

/// Top-down attribution for one core run: where every measured cycle
/// went, plus (when profiling is enabled) window-occupancy and
/// demand-load latency distributions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreProfile {
    /// Cycles charged per top-down class; sums to [`CoreProfile::cycles`].
    pub classes: ClassCounts,
    /// Total measured cycles (equals `CoreStats::cycles` for the same run).
    pub cycles: u64,
    /// ROB/IQ/LSQ fill levels, sampled every measured cycle
    /// (bulk-sampled across dead-cycle skips). Empty when profiling is
    /// off.
    pub occupancy: OccupancyHistograms,
    /// Demand-load round-trip latencies that hit in the DL1 (either
    /// partition). Empty when profiling is off.
    pub mem_hit_latency: Histogram,
    /// Demand-load round-trip latencies that missed the DL1. Empty when
    /// profiling is off.
    pub mem_miss_latency: Histogram,
}

impl CoreProfile {
    /// `true` when no cycle was attributed (profile-free contexts:
    /// reconstructed dumps, merged outcomes). The conservation check is
    /// skipped for empty profiles.
    pub fn is_empty(&self) -> bool {
        self.cycles == 0 && self.classes.is_empty()
    }

    /// Folds another run's attribution in (multicore phases, campaign
    /// roll-ups): class counts and cycles add, histograms merge.
    pub fn merge(&mut self, other: &CoreProfile) {
        self.classes.merge(&other.classes);
        self.cycles = self.cycles.saturating_add(other.cycles);
        self.occupancy.merge(&other.occupancy);
        self.mem_hit_latency.merge(&other.mem_hit_latency);
        self.mem_miss_latency.merge(&other.mem_miss_latency);
    }
}

impl Serialize for CoreProfile {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("cycles".into(), Value::UInt(self.cycles)),
            ("classes".into(), self.classes.to_value()),
            ("occupancy".into(), self.occupancy.to_value()),
            ("mem_hit_latency".into(), self.mem_hit_latency.to_value()),
            ("mem_miss_latency".into(), self.mem_miss_latency.to_value()),
        ])
    }
}

impl Deserialize for CoreProfile {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| Error::custom(format!("CoreProfile has no `{name}`")))
        };
        Ok(CoreProfile {
            cycles: field("cycles")?
                .as_u64()
                .ok_or_else(|| Error::custom("CoreProfile.cycles is not unsigned"))?,
            classes: ClassCounts::from_value(field("classes")?)?,
            occupancy: OccupancyHistograms::from_value(field("occupancy")?)?,
            mem_hit_latency: Histogram::from_value(field("mem_hit_latency")?)?,
            mem_miss_latency: Histogram::from_value(field("mem_miss_latency")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_stats::attribution::CycleClass;

    #[test]
    fn merge_adds_classes_and_cycles() {
        let mut a = CoreProfile::default();
        a.classes.charge(CycleClass::Retire, 10);
        a.cycles = 10;
        a.mem_hit_latency.record(1);
        let mut b = CoreProfile::default();
        b.classes.charge(CycleClass::MemLatency, 4);
        b.cycles = 4;
        b.mem_miss_latency.record(40);
        a.merge(&b);
        assert_eq!(a.cycles, 14);
        assert_eq!(a.classes.total(), 14);
        assert_eq!(a.mem_hit_latency.count(), 1);
        assert_eq!(a.mem_miss_latency.count(), 1);
        assert!(!a.is_empty());
        assert!(CoreProfile::default().is_empty());
    }

    #[test]
    fn serde_round_trips() {
        let mut p = CoreProfile::default();
        p.classes.charge(CycleClass::Frontend, 3);
        p.classes.charge(CycleClass::IdleSkipped, 2);
        p.cycles = 5;
        p.occupancy.rob.record_n(17, 5);
        p.mem_miss_latency.record(200);
        let back = CoreProfile::from_value(&p.to_value()).expect("round trip");
        assert_eq!(back, p);
    }
}
