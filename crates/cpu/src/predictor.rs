//! Tournament branch predictor (paper Table III).
//!
//! "Tournament: 2-level, 32-entry RAS, 4-way 2K-entry BTB". The predictor
//! combines a two-level *local* component (per-branch history indexing a
//! pattern table) with a *global* gshare component, arbitrated by a chooser
//! table indexed by global history. Taken branches additionally need a BTB
//! hit to redirect fetch in time; returns are predicted through the RAS.

/// A saturating 2-bit counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Counter2(u8);

impl Counter2 {
    const WEAKLY_TAKEN: Counter2 = Counter2(2);

    fn predict(self) -> bool {
        self.0 >= 2
    }

    fn update(&mut self, taken: bool) {
        // Branchless saturating walk: +1 clamped to 3 on taken, -1
        // clamped to 0 on not-taken. Identical to the naive
        // min/saturating_sub pair, but compiles to straight-line
        // arithmetic on the predictor-update hot path.
        let delta = i8::from(taken) * 2 - 1;
        self.0 = (self.0 as i8 + delta).clamp(0, 3) as u8;
    }
}

/// Sizing knobs for the tournament predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Entries in the local history table (power of two).
    pub local_entries: usize,
    /// Bits of local history per branch.
    pub local_history_bits: u32,
    /// Bits of global history (sizes the global and chooser tables).
    pub global_history_bits: u32,
    /// BTB entries.
    pub btb_entries: usize,
    /// BTB associativity.
    pub btb_ways: usize,
    /// Return-address-stack depth.
    pub ras_entries: usize,
}

impl Default for PredictorConfig {
    /// The paper's Table III predictor.
    fn default() -> Self {
        PredictorConfig {
            local_entries: 1024,
            local_history_bits: 10,
            global_history_bits: 12,
            btb_entries: 2048,
            btb_ways: 4,
            ras_entries: 32,
        }
    }
}

/// Outcome of a prediction, consumed by the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Whether a taken prediction could actually redirect fetch (BTB or
    /// RAS supplied a target). A taken branch without a target is a
    /// misfetch and costs the full redirect penalty.
    pub target_known: bool,
}

/// The tournament predictor with BTB and RAS.
#[derive(Debug, Clone)]
pub struct TournamentPredictor {
    cfg: PredictorConfig,
    /// Per-branch local histories.
    local_history: Vec<u16>,
    /// Local pattern table.
    local_pattern: Vec<Counter2>,
    /// Global (gshare) table.
    global: Vec<Counter2>,
    /// Chooser: true-ward counters favour the *global* component.
    chooser: Vec<Counter2>,
    /// Global history register.
    ghr: u64,
    /// BTB: flat `sets x ways` tag rows, MRU-first (same layout idea as
    /// `hetsim_mem::Cache`); `btb_lens[set]` live entries per row.
    btb: Vec<u64>,
    btb_lens: Vec<u8>,
    /// `sets - 1` (sets are a power of two, so set selection is a mask,
    /// not a division).
    btb_set_mask: usize,
    /// Return address stack (depth only; targets are exact in the trace).
    ras_depth: usize,
    /// Count of RAS overflows (pushes beyond capacity corrupt the stack).
    ras_corrupted: u32,
}

impl TournamentPredictor {
    /// Builds a predictor.
    ///
    /// # Panics
    ///
    /// Panics if table sizes are not powers of two.
    pub fn new(cfg: PredictorConfig) -> Self {
        assert!(
            cfg.local_entries.is_power_of_two(),
            "local table must be 2^n"
        );
        assert!(cfg.btb_entries.is_power_of_two(), "BTB must be 2^n");
        let local_pattern_entries = 1usize << cfg.local_history_bits;
        let global_entries = 1usize << cfg.global_history_bits;
        let btb_sets = cfg.btb_entries / cfg.btb_ways;
        assert!(btb_sets.is_power_of_two(), "BTB sets must be 2^n");
        TournamentPredictor {
            local_history: vec![0; cfg.local_entries],
            local_pattern: vec![Counter2::WEAKLY_TAKEN; local_pattern_entries],
            global: vec![Counter2::WEAKLY_TAKEN; global_entries],
            chooser: vec![Counter2::WEAKLY_TAKEN; global_entries],
            ghr: 0,
            btb: vec![0; btb_sets * cfg.btb_ways],
            btb_lens: vec![0; btb_sets],
            btb_set_mask: btb_sets - 1,
            ras_depth: 0,
            ras_corrupted: 0,
            cfg,
        }
    }

    fn local_index(&self, pc: u64) -> usize {
        (pc >> 2) as usize & (self.cfg.local_entries - 1)
    }

    fn global_index(&self, pc: u64) -> usize {
        let mask = (1usize << self.cfg.global_history_bits) - 1;
        ((self.ghr as usize) ^ ((pc >> 2) as usize)) & mask
    }

    /// The chooser is indexed by PC so that each branch site learns which
    /// component (local vs. global) predicts it better. (A GHR-indexed
    /// chooser, as in the Alpha 21264, relies on correlated path history;
    /// per-site indexing is the robust choice and is also common practice.)
    fn chooser_index(&self, pc: u64) -> usize {
        (pc >> 2) as usize & ((1usize << self.cfg.global_history_bits) - 1)
    }

    /// Predicts a conditional branch at `pc`.
    pub fn predict(&self, pc: u64) -> Prediction {
        let lh = self.local_history[self.local_index(pc)] as usize
            & ((1usize << self.cfg.local_history_bits) - 1);
        let local = self.local_pattern[lh].predict();
        let global = self.global[self.global_index(pc)].predict();
        let use_global = self.chooser[self.chooser_index(pc)].predict();
        let taken = if use_global { global } else { local };
        let target_known = !taken || self.btb_hit(pc);
        Prediction {
            taken,
            target_known,
        }
    }

    /// Trains the predictor with the architectural outcome and updates the
    /// BTB for taken branches.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let li = self.local_index(pc);
        let lh = self.local_history[li] as usize & ((1usize << self.cfg.local_history_bits) - 1);
        let gi = self.global_index(pc);
        let ci = self.chooser_index(pc);

        let local_correct = self.local_pattern[lh].predict() == taken;
        let global_correct = self.global[gi].predict() == taken;
        if local_correct != global_correct {
            // Move the chooser toward whichever component was right.
            self.chooser[ci].update(global_correct);
        }
        self.local_pattern[lh].update(taken);
        self.global[gi].update(taken);

        // Histories.
        let lh_mask = (1u16 << self.cfg.local_history_bits) - 1;
        self.local_history[li] = ((self.local_history[li] << 1) | u16::from(taken)) & lh_mask;
        self.ghr = (self.ghr << 1) | u64::from(taken);

        if taken {
            self.btb_install(pc);
        }
    }

    fn btb_set(&self, pc: u64) -> usize {
        (pc >> 2) as usize & self.btb_set_mask
    }

    fn btb_hit(&self, pc: u64) -> bool {
        let base = self.btb_set(pc) * self.cfg.btb_ways;
        let len = self.btb_lens[self.btb_set(pc)] as usize;
        self.btb[base..base + len].contains(&pc)
    }

    fn btb_install(&mut self, pc: u64) {
        let ways = self.cfg.btb_ways;
        let set_idx = self.btb_set(pc);
        let base = set_idx * ways;
        let mut len = self.btb_lens[set_idx] as usize;
        let row = &mut self.btb[base..base + len];
        if let Some(pos) = row.iter().position(|&t| t == pc) {
            // Refresh to MRU.
            row[..=pos].rotate_right(1);
            return;
        }
        if len < ways {
            len += 1;
            self.btb_lens[set_idx] = len as u8;
        }
        self.btb[base..base + len].rotate_right(1);
        self.btb[base] = pc;
    }

    /// Records a call: pushes the RAS. Returns beyond capacity corrupt the
    /// bottom of the stack.
    pub fn push_call(&mut self) {
        if self.ras_depth == self.cfg.ras_entries {
            self.ras_corrupted += 1;
        } else {
            self.ras_depth += 1;
        }
    }

    /// Predicts a return: pops the RAS and reports whether the predicted
    /// target is trustworthy. Frames that were pushed past capacity
    /// overwrote the bottom of the (circular) stack, so the corresponding
    /// deep returns mispredict.
    pub fn pop_return(&mut self) -> bool {
        if self.ras_depth > 0 {
            self.ras_depth -= 1;
            true
        } else if self.ras_corrupted > 0 {
            self.ras_corrupted -= 1;
            false
        } else {
            false
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken() {
        let mut p = TournamentPredictor::new(PredictorConfig::default());
        let pc = 0x4000_0000;
        for _ in 0..16 {
            p.update(pc, true);
        }
        let pred = p.predict(pc);
        assert!(pred.taken);
        assert!(pred.target_known, "BTB learned the target");
    }

    #[test]
    fn learns_loop_pattern_via_local_history() {
        // Pattern: TTTN repeated. Local 2-level should learn it ~perfectly.
        let mut p = TournamentPredictor::new(PredictorConfig::default());
        let pc = 0x4000_0010;
        let pattern = [true, true, true, false];
        // Train.
        for i in 0..400 {
            p.update(pc, pattern[i % 4]);
        }
        // Measure.
        let mut correct = 0;
        for i in 0..400 {
            let actual = pattern[i % 4];
            if p.predict(pc).taken == actual {
                correct += 1;
            }
            p.update(pc, actual);
        }
        assert!(correct > 380, "loop pattern accuracy {correct}/400");
    }

    #[test]
    fn accuracy_tracks_bias_on_random_branches() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut p = TournamentPredictor::new(PredictorConfig::default());
        let mut correct = 0;
        let n = 20_000;
        for i in 0..n {
            let pc = 0x4000_0000 + (i % 16) * 16;
            let actual = rng.gen_bool(0.9);
            if p.predict(pc).taken == actual {
                correct += 1;
            }
            p.update(pc, actual);
        }
        let acc = correct as f64 / n as f64;
        assert!(
            (0.85..0.95).contains(&acc),
            "accuracy {acc} should approach bias 0.9"
        );
    }

    #[test]
    fn cold_taken_branch_has_unknown_target() {
        let p = TournamentPredictor::new(PredictorConfig::default());
        let pred = p.predict(0x4000_0040);
        if pred.taken {
            assert!(!pred.target_known);
        }
    }

    #[test]
    fn ras_balanced_calls_predict_returns() {
        let mut p = TournamentPredictor::new(PredictorConfig::default());
        for _ in 0..8 {
            p.push_call();
        }
        for _ in 0..8 {
            assert!(p.pop_return());
        }
        assert!(!p.pop_return(), "underflow mispredicts");
    }

    #[test]
    fn ras_overflow_corrupts() {
        let mut cfg = PredictorConfig::default();
        cfg.ras_entries = 2;
        let mut p = TournamentPredictor::new(cfg);
        p.push_call();
        p.push_call();
        p.push_call(); // overflow
        assert!(p.pop_return());
        assert!(p.pop_return());
        assert!(!p.pop_return(), "overflowed frame mispredicts");
    }
}
