//! Functional-unit pool with device-dependent timing.
//!
//! Table III gives per-class latencies for the CMOS and TFET
//! implementations:
//!
//! | unit          | CMOS          | TFET           |
//! |---------------|---------------|----------------|
//! | 4x ALU        | 1 cycle       | 2 cycles       |
//! | 2x Int Mul/Div| 2 / 4 cycles  | 4 / 8 cycles   |
//! | 2x LSU        | 1 cycle       | 1 cycle        |
//! | 2x FPU A/M/D  | 2 / 4 / 8     | 4 / 8 / 16     |
//!
//! Adds and multiplies are fully pipelined (issue every cycle); divides
//! issue every `latency` cycles (int) or every 8/16 cycles (FP). The
//! dual-speed ALU cluster of AdvHet is expressed by giving individual ALUs
//! individual timings (one 1-cycle CMOS ALU plus three 2-cycle TFET ALUs).

use hetsim_trace::OpClass;

/// Timing of one operation class on one unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuTiming {
    /// Result latency in cycles.
    pub latency: u32,
    /// Minimum cycles between issues to the same unit (1 = pipelined).
    pub issue_interval: u32,
}

impl FuTiming {
    /// Fully pipelined unit with the given latency.
    pub const fn pipelined(latency: u32) -> Self {
        FuTiming {
            latency,
            issue_interval: 1,
        }
    }

    /// Unpipelined unit: next issue waits out the full latency.
    pub const fn unpipelined(latency: u32) -> Self {
        FuTiming {
            latency,
            issue_interval: latency,
        }
    }
}

/// Configuration of the whole pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuPoolConfig {
    /// Per-ALU timing (one entry per ALU instance; heterogeneity expresses
    /// the dual-speed cluster).
    pub alus: Vec<FuTiming>,
    /// Integer multiply timing (2 shared mul/div units).
    pub int_mul: FuTiming,
    /// Integer divide timing.
    pub int_div: FuTiming,
    /// Number of integer mul/div units.
    pub int_muldiv_units: u32,
    /// FP add timing (2 shared FPU units).
    pub fp_add: FuTiming,
    /// FP multiply timing.
    pub fp_mul: FuTiming,
    /// FP divide timing.
    pub fp_div: FuTiming,
    /// Number of FPU units.
    pub fpu_units: u32,
    /// Number of load/store units (1-cycle address generation).
    pub lsu_units: u32,
}

impl FuPoolConfig {
    /// The all-CMOS pool of BaseCMOS (Table III, CMOS column).
    pub fn cmos() -> Self {
        FuPoolConfig {
            alus: vec![FuTiming::pipelined(1); 4],
            int_mul: FuTiming::pipelined(2),
            int_div: FuTiming::unpipelined(4),
            int_muldiv_units: 2,
            fp_add: FuTiming::pipelined(2),
            fp_mul: FuTiming::pipelined(4),
            fp_div: FuTiming {
                latency: 8,
                issue_interval: 8,
            },
            fpu_units: 2,
            lsu_units: 2,
        }
    }

    /// The all-TFET pool of BaseHet (Table III, TFET column).
    pub fn tfet() -> Self {
        FuPoolConfig {
            alus: vec![FuTiming::pipelined(2); 4],
            int_mul: FuTiming::pipelined(4),
            int_div: FuTiming::unpipelined(8),
            int_muldiv_units: 2,
            fp_add: FuTiming::pipelined(4),
            fp_mul: FuTiming::pipelined(8),
            fp_div: FuTiming {
                latency: 16,
                issue_interval: 16,
            },
            fpu_units: 2,
            lsu_units: 2,
        }
    }

    /// The dual-speed ALU cluster of AdvHet: 1 CMOS ALU + 3 TFET ALUs, with
    /// TFET everything-else (Table IV, AdvHet row).
    pub fn dual_speed() -> Self {
        let mut cfg = FuPoolConfig::tfet();
        cfg.alus = vec![
            FuTiming::pipelined(1), // the CMOS ALU
            FuTiming::pipelined(2),
            FuTiming::pipelined(2),
            FuTiming::pipelined(2),
        ];
        cfg
    }

    /// BaseHet-FastALU: TFET FPUs but all-CMOS ALUs (Table IV).
    pub fn tfet_fast_alu() -> Self {
        let mut cfg = FuPoolConfig::tfet();
        cfg.alus = vec![FuTiming::pipelined(1); 4];
        cfg
    }

    /// BaseHighVt: FPUs and ALUs built from high-V_t CMOS only; Table IV
    /// gives Int Add/Mul/Div = 2/3/6 and FP Add/Mul/Div = 3/6/12.
    pub fn high_vt() -> Self {
        FuPoolConfig {
            alus: vec![FuTiming::pipelined(2); 4],
            int_mul: FuTiming::pipelined(3),
            int_div: FuTiming::unpipelined(6),
            int_muldiv_units: 2,
            fp_add: FuTiming::pipelined(3),
            fp_mul: FuTiming::pipelined(6),
            fp_div: FuTiming {
                latency: 12,
                issue_interval: 12,
            },
            fpu_units: 2,
            lsu_units: 2,
        }
    }

    /// Whether any ALU is strictly faster than another (dual-speed).
    pub fn has_dual_speed_alus(&self) -> bool {
        let min = self.alus.iter().map(|t| t.latency).min();
        let max = self.alus.iter().map(|t| t.latency).max();
        min != max
    }

    /// Latency of the fastest ALU.
    pub fn fast_alu_latency(&self) -> u32 {
        self.alus
            .iter()
            .map(|t| t.latency)
            .min()
            .expect("at least one ALU")
    }
}

/// A successfully issued operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Issued {
    /// Result latency of the chosen unit.
    pub latency: u32,
    /// Whether the op landed on a fastest-latency ALU (for steering stats;
    /// `false` for non-ALU classes).
    pub on_fast_alu: bool,
}

/// Runtime state of the pool: per-instance next-free cycles. The ALU
/// instances are *permuted at construction* so the fast (lowest-latency)
/// cluster occupies indices `0..n_fast_alus` — both steering orders then
/// become contiguous scans over `alu_free` with no index indirection.
/// (Units within a cluster are interchangeable, so the permutation is
/// invisible in any timing or statistic.)
#[derive(Debug, Clone)]
pub struct FuPool {
    cfg: FuPoolConfig,
    alu_free: Vec<u64>,
    muldiv_free: Vec<u64>,
    fpu_free: Vec<u64>,
    lsu_free: Vec<u64>,
    /// Per-ALU timings in the permuted (fast-cluster-first) order.
    alu_timing: Vec<FuTiming>,
    /// Number of fastest-latency ALUs (they sit first in `alu_free`).
    n_fast_alus: usize,
    fast_latency: u32,
}

impl FuPool {
    /// Creates an idle pool.
    ///
    /// # Panics
    ///
    /// Panics if any unit count is zero.
    pub fn new(cfg: FuPoolConfig) -> Self {
        assert!(!cfg.alus.is_empty(), "need at least one ALU");
        assert!(cfg.int_muldiv_units > 0 && cfg.fpu_units > 0 && cfg.lsu_units > 0);
        let fast_latency = cfg.fast_alu_latency();
        // Permute fast cluster first, stable within each cluster (ascending
        // unit index) — the same candidate order the old per-issue index
        // vectors produced.
        let mut alu_timing: Vec<FuTiming> = cfg
            .alus
            .iter()
            .copied()
            .filter(|t| t.latency == fast_latency)
            .collect();
        let n_fast_alus = alu_timing.len();
        alu_timing.extend(
            cfg.alus
                .iter()
                .copied()
                .filter(|t| t.latency != fast_latency),
        );
        FuPool {
            alu_free: vec![0; cfg.alus.len()],
            muldiv_free: vec![0; cfg.int_muldiv_units as usize],
            fpu_free: vec![0; cfg.fpu_units as usize],
            lsu_free: vec![0; cfg.lsu_units as usize],
            alu_timing,
            n_fast_alus,
            fast_latency,
            cfg,
        }
    }

    /// The pool configuration.
    pub fn config(&self) -> &FuPoolConfig {
        &self.cfg
    }

    /// Attempts to issue `op` at `cycle`. For ALU ops, `prefer_fast`
    /// selects the steering cluster: the fast (lowest-latency) ALUs are
    /// tried first when `true`, the slow ones first when `false`; either
    /// way a free unit from the other cluster is used as fallback (the
    /// mis-steer penalty is only the latency difference, Section IV-C2).
    #[inline]
    pub fn try_issue(&mut self, op: OpClass, cycle: u64, prefer_fast: bool) -> Option<Issued> {
        match op {
            OpClass::IntAlu => self.issue_alu(cycle, prefer_fast),
            OpClass::IntMul => {
                Self::issue_on(&mut self.muldiv_free, self.cfg.int_mul, cycle).map(|l| Issued {
                    latency: l,
                    on_fast_alu: false,
                })
            }
            OpClass::IntDiv => {
                Self::issue_on(&mut self.muldiv_free, self.cfg.int_div, cycle).map(|l| Issued {
                    latency: l,
                    on_fast_alu: false,
                })
            }
            OpClass::FpAdd => {
                Self::issue_on(&mut self.fpu_free, self.cfg.fp_add, cycle).map(|l| Issued {
                    latency: l,
                    on_fast_alu: false,
                })
            }
            OpClass::FpMul => {
                Self::issue_on(&mut self.fpu_free, self.cfg.fp_mul, cycle).map(|l| Issued {
                    latency: l,
                    on_fast_alu: false,
                })
            }
            OpClass::FpDiv => {
                Self::issue_on(&mut self.fpu_free, self.cfg.fp_div, cycle).map(|l| Issued {
                    latency: l,
                    on_fast_alu: false,
                })
            }
            OpClass::Load | OpClass::Store => {
                Self::issue_on(&mut self.lsu_free, FuTiming::pipelined(1), cycle).map(|l| Issued {
                    latency: l,
                    on_fast_alu: false,
                })
            }
            // Branches resolve on an ALU.
            OpClass::Branch => self.issue_alu(cycle, prefer_fast),
        }
    }

    #[inline]
    fn issue_alu(&mut self, cycle: u64, prefer_fast: bool) -> Option<Issued> {
        // The fast cluster is 0..n_fast_alus; scan it first or last
        // depending on steering. Candidate order within each cluster is
        // the stable construction order, matching the pre-permutation
        // implementation unit-for-unit.
        let n = self.alu_free.len();
        let (first, second) = if prefer_fast {
            (0..n, n..n)
        } else {
            (self.n_fast_alus..n, 0..self.n_fast_alus)
        };
        for i in first.chain(second) {
            if self.alu_free[i] <= cycle {
                let timing = self.alu_timing[i];
                self.alu_free[i] = cycle + u64::from(timing.issue_interval);
                return Some(Issued {
                    latency: timing.latency,
                    on_fast_alu: timing.latency == self.fast_latency,
                });
            }
        }
        None
    }

    #[inline]
    fn issue_on(free: &mut [u64], timing: FuTiming, cycle: u64) -> Option<u32> {
        let slot = free.iter_mut().find(|f| **f <= cycle)?;
        *slot = cycle + u64::from(timing.issue_interval);
        Some(timing.latency)
    }

    /// The arbitration pool `op` competes in (0 = ALU, 1 = int mul/div,
    /// 2 = FPU, 3 = LSU). Two ops with the same pool id contend for the
    /// same units: if one fails to issue at a cycle, the other cannot
    /// succeed at that cycle either (pool state advances only on issue).
    #[inline]
    pub fn pool_of(op: OpClass) -> u32 {
        match op {
            OpClass::IntAlu | OpClass::Branch => 0,
            OpClass::IntMul | OpClass::IntDiv => 1,
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv => 2,
            OpClass::Load | OpClass::Store => 3,
        }
    }

    /// The earliest cycle at which *some* unit capable of executing `op`
    /// is free. A [`FuPool::try_issue`] for `op` at that cycle is
    /// guaranteed a unit; any earlier attempt returns `None`. Used by
    /// the event-driven core step to compute wakeup times.
    #[inline]
    pub fn next_free(&self, op: OpClass) -> u64 {
        let free = match op {
            OpClass::IntAlu | OpClass::Branch => &self.alu_free,
            OpClass::IntMul | OpClass::IntDiv => &self.muldiv_free,
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv => &self.fpu_free,
            OpClass::Load | OpClass::Store => &self.lsu_free,
        };
        free.iter().copied().min().expect("pools are never empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmos_alu_is_single_cycle() {
        let mut p = FuPool::new(FuPoolConfig::cmos());
        let i = p.try_issue(OpClass::IntAlu, 0, false).expect("free ALU");
        assert_eq!(i.latency, 1);
    }

    #[test]
    fn four_alus_per_cycle_then_structural_stall() {
        let mut p = FuPool::new(FuPoolConfig::cmos());
        for _ in 0..4 {
            assert!(p.try_issue(OpClass::IntAlu, 5, false).is_some());
        }
        assert!(
            p.try_issue(OpClass::IntAlu, 5, false).is_none(),
            "only 4 ALUs"
        );
        assert!(
            p.try_issue(OpClass::IntAlu, 6, false).is_some(),
            "pipelined: free next cycle"
        );
    }

    #[test]
    fn int_div_is_unpipelined() {
        let mut p = FuPool::new(FuPoolConfig::cmos());
        assert!(p.try_issue(OpClass::IntDiv, 0, false).is_some());
        assert!(
            p.try_issue(OpClass::IntDiv, 0, false).is_some(),
            "two units"
        );
        assert!(
            p.try_issue(OpClass::IntDiv, 1, false).is_none(),
            "both busy for 4 cycles"
        );
        assert!(p.try_issue(OpClass::IntDiv, 4, false).is_some());
    }

    #[test]
    fn fp_div_issue_interval_matches_table_iii() {
        let mut cmos = FuPool::new(FuPoolConfig::cmos());
        cmos.try_issue(OpClass::FpDiv, 0, false).expect("free");
        cmos.try_issue(OpClass::FpDiv, 0, false)
            .expect("second unit");
        assert!(cmos.try_issue(OpClass::FpDiv, 7, false).is_none());
        assert!(cmos.try_issue(OpClass::FpDiv, 8, false).is_some());

        let mut tfet = FuPool::new(FuPoolConfig::tfet());
        tfet.try_issue(OpClass::FpDiv, 0, false).expect("free");
        tfet.try_issue(OpClass::FpDiv, 0, false)
            .expect("second unit");
        assert!(tfet.try_issue(OpClass::FpDiv, 15, false).is_none());
        assert!(tfet.try_issue(OpClass::FpDiv, 16, false).is_some());
    }

    #[test]
    fn tfet_latencies_double_cmos() {
        let c = FuPoolConfig::cmos();
        let t = FuPoolConfig::tfet();
        assert_eq!(t.alus[0].latency, 2 * c.alus[0].latency);
        assert_eq!(t.int_mul.latency, 2 * c.int_mul.latency);
        assert_eq!(t.int_div.latency, 2 * c.int_div.latency);
        assert_eq!(t.fp_add.latency, 2 * c.fp_add.latency);
        assert_eq!(t.fp_mul.latency, 2 * c.fp_mul.latency);
        assert_eq!(t.fp_div.latency, 2 * c.fp_div.latency);
    }

    #[test]
    fn dual_speed_steering_prefers_requested_cluster() {
        let mut p = FuPool::new(FuPoolConfig::dual_speed());
        let fast = p.try_issue(OpClass::IntAlu, 0, true).expect("free");
        assert!(fast.on_fast_alu);
        assert_eq!(fast.latency, 1);
        let slow = p.try_issue(OpClass::IntAlu, 0, false).expect("free");
        assert!(!slow.on_fast_alu);
        assert_eq!(slow.latency, 2);
    }

    #[test]
    fn steering_falls_back_when_cluster_busy() {
        let mut p = FuPool::new(FuPoolConfig::dual_speed());
        // Occupy the single fast ALU.
        assert!(
            p.try_issue(OpClass::IntAlu, 0, true)
                .expect("free")
                .on_fast_alu
        );
        // A second fast-preferring op lands on a slow ALU (mis-steer).
        let second = p.try_issue(OpClass::IntAlu, 0, true).expect("fallback");
        assert!(!second.on_fast_alu);
        assert_eq!(second.latency, 2);
    }

    #[test]
    fn high_vt_latencies_match_table_iv() {
        let h = FuPoolConfig::high_vt();
        assert_eq!(h.alus[0].latency, 2);
        assert_eq!(h.int_mul.latency, 3);
        assert_eq!(h.int_div.latency, 6);
        assert_eq!(h.fp_add.latency, 3);
        assert_eq!(h.fp_mul.latency, 6);
        assert_eq!(h.fp_div.latency, 12);
    }

    #[test]
    fn dual_speed_detection() {
        assert!(FuPoolConfig::dual_speed().has_dual_speed_alus());
        assert!(!FuPoolConfig::cmos().has_dual_speed_alus());
        assert!(!FuPoolConfig::tfet().has_dual_speed_alus());
    }

    #[test]
    fn next_free_predicts_issue_success() {
        let mut p = FuPool::new(FuPoolConfig::cmos());
        // Saturate both int div units (unpipelined, 4-cycle interval).
        assert!(p.try_issue(OpClass::IntDiv, 0, false).is_some());
        assert!(p.try_issue(OpClass::IntDiv, 0, false).is_some());
        let at = p.next_free(OpClass::IntDiv);
        assert_eq!(at, 4);
        assert!(p.try_issue(OpClass::IntDiv, at - 1, false).is_none());
        assert!(p.try_issue(OpClass::IntDiv, at, false).is_some());
        // An idle class is free immediately.
        assert_eq!(p.next_free(OpClass::FpAdd), 0);
    }

    #[test]
    fn lsu_capacity() {
        let mut p = FuPool::new(FuPoolConfig::cmos());
        assert!(p.try_issue(OpClass::Load, 0, false).is_some());
        assert!(p.try_issue(OpClass::Store, 0, false).is_some());
        assert!(p.try_issue(OpClass::Load, 0, false).is_none(), "2 LSUs");
    }
}
