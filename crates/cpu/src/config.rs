//! Core configuration — every knob of the paper's Table III.

use hetsim_mem::cache::CacheConfig;
use hetsim_mem::hierarchy::{DataCacheSpec, HierarchyConfig};

use crate::fu::FuPoolConfig;
use crate::predictor::PredictorConfig;

/// Dual-speed ALU steering policy (paper Section IV-C2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SteeringPolicy {
    /// No steering: all ALUs are equivalent (homogeneous cluster).
    None,
    /// Generation-Time-Gap steering: an instruction whose consumer appears
    /// within `window` upcoming instructions is steered to the fast (CMOS)
    /// ALU; everything else goes to the slow (TFET) cluster. The paper sets
    /// the window to the issue width.
    DualSpeed {
        /// Lookahead window in instructions.
        window: u32,
    },
}

impl SteeringPolicy {
    /// The dispatch lookahead this policy requires, in instructions (0
    /// when no steering). A run of `n` committed instructions pulls at
    /// most `warmup + n + lookahead_window() + 1` from its trace, which
    /// callers use to bound memoized-trace requests.
    pub fn lookahead_window(self) -> u64 {
        match self {
            SteeringPolicy::None => 0,
            SteeringPolicy::DualSpeed { window } => u64::from(window),
        }
    }
}

/// Full configuration of one out-of-order core.
#[derive(Debug, Clone)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions dispatched/issued/committed per cycle.
    pub issue_width: u32,
    /// Reorder-buffer entries (160 baseline; 192 in the Enh designs).
    pub rob_entries: u32,
    /// Issue-queue entries.
    pub iq_entries: u32,
    /// Load-store-queue entries.
    pub lsq_entries: u32,
    /// Integer rename registers.
    pub int_regs: u32,
    /// FP rename registers (80 baseline; 128 in the Enh designs).
    pub fp_regs: u32,
    /// Front-end depth: the fetch-to-dispatch refill delay paid after a
    /// branch misprediction (the front end stays CMOS in every design).
    pub frontend_delay: u32,
    /// Core clock (Hz).
    pub clock_hz: f64,
    /// Functional-unit pool timings.
    pub fus: FuPoolConfig,
    /// ALU steering policy.
    pub steering: SteeringPolicy,
    /// Memory-hierarchy geometry/latencies.
    pub memory: MemoryConfig,
    /// Branch predictor sizing.
    pub predictor: PredictorConfig,
}

/// Cache latencies/geometries for the four Table III levels.
#[derive(Debug, Clone)]
pub struct MemoryConfig {
    /// IL1 round trip (2 cycles in every design — IL1 stays CMOS).
    pub il1_latency: u32,
    /// DL1 organization.
    pub dl1: Dl1Config,
    /// L2 round trip (8 CMOS / 12 TFET).
    pub l2_latency: u32,
    /// L3 round trip (32 CMOS / 40 TFET).
    pub l3_latency: u32,
}

/// DL1 organization options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dl1Config {
    /// Conventional 32 KB 8-way DL1 with the given round trip
    /// (2 CMOS / 4 TFET).
    Plain {
        /// Round-trip latency in cycles.
        latency: u32,
    },
    /// Asymmetric DL1: 4 KB 1-way fast partition (1 cycle) + 28 KB 7-way
    /// slow partition (`slow_extra` additional cycles; 4 for TFET ways,
    /// 2 for the all-CMOS Enh variant).
    Asymmetric {
        /// Extra cycles past the fast probe for a slow-partition hit.
        slow_extra: u32,
    },
}

impl MemoryConfig {
    /// The all-CMOS memory latencies of BaseCMOS.
    pub fn cmos() -> Self {
        MemoryConfig {
            il1_latency: 2,
            dl1: Dl1Config::Plain { latency: 2 },
            l2_latency: 8,
            l3_latency: 32,
        }
    }

    /// The TFET cache latencies of BaseHet (DL1/L2/L3 in TFET).
    pub fn tfet() -> Self {
        MemoryConfig {
            il1_latency: 2,
            dl1: Dl1Config::Plain { latency: 4 },
            l2_latency: 12,
            l3_latency: 40,
        }
    }

    /// AdvHet: asymmetric DL1 (1-cycle CMOS way + 4-extra-cycle TFET ways)
    /// over TFET L2/L3.
    pub fn advhet() -> Self {
        MemoryConfig {
            il1_latency: 2,
            dl1: Dl1Config::Asymmetric { slow_extra: 4 },
            l2_latency: 12,
            l3_latency: 40,
        }
    }

    /// Lowers to the `hetsim-mem` hierarchy configuration.
    pub fn to_hierarchy(&self, clock_hz: f64) -> HierarchyConfig {
        let dl1 = match self.dl1 {
            Dl1Config::Plain { latency } => {
                DataCacheSpec::Plain(CacheConfig::new(32 * 1024, 8, 64, latency))
            }
            Dl1Config::Asymmetric { slow_extra } => DataCacheSpec::Asymmetric {
                fast: CacheConfig::new(4 * 1024, 1, 64, 1),
                slow: CacheConfig::new(28 * 1024, 7, 64, slow_extra),
            },
        };
        HierarchyConfig {
            il1: CacheConfig::new(32 * 1024, 2, 64, self.il1_latency),
            dl1,
            l2: CacheConfig::new(256 * 1024, 8, 64, self.l2_latency),
            l3: CacheConfig::new(2 * 1024 * 1024, 16, 64, self.l3_latency),
            clock_hz,
        }
    }
}

impl Default for CoreConfig {
    /// The paper's BaseCMOS core (Table III at 2 GHz).
    fn default() -> Self {
        CoreConfig {
            fetch_width: 4,
            issue_width: 4,
            rob_entries: 160,
            iq_entries: 64,
            lsq_entries: 48,
            int_regs: 128,
            fp_regs: 80,
            frontend_delay: 10,
            clock_hz: 2.0e9,
            fus: FuPoolConfig::cmos(),
            steering: SteeringPolicy::None,
            memory: MemoryConfig::cmos(),
            predictor: PredictorConfig::default(),
        }
    }
}

impl CoreConfig {
    /// Validates structural parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.fetch_width == 0 || self.issue_width == 0 {
            return Err("widths must be positive".into());
        }
        if self.rob_entries < self.issue_width {
            return Err("ROB must hold at least one issue group".into());
        }
        if self.iq_entries == 0 || self.lsq_entries == 0 {
            return Err("queues must be non-empty".into());
        }
        if self.int_regs < 32 || self.fp_regs < 32 {
            return Err("need at least the architectural register count".into());
        }
        if self.clock_hz <= 0.0 {
            return Err(format!("clock must be positive: {}", self.clock_hz));
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn default_is_table_iii() {
        let c = CoreConfig::default();
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.rob_entries, 160);
        assert_eq!(c.iq_entries, 64);
        assert_eq!(c.lsq_entries, 48);
        assert_eq!(c.int_regs, 128);
        assert_eq!(c.fp_regs, 80);
        assert_eq!(c.clock_hz, 2.0e9);
        c.validate().expect("default validates");
    }

    #[test]
    fn memory_latency_presets() {
        let cmos = MemoryConfig::cmos();
        assert_eq!(cmos.dl1, Dl1Config::Plain { latency: 2 });
        assert_eq!(cmos.l2_latency, 8);
        assert_eq!(cmos.l3_latency, 32);
        let tfet = MemoryConfig::tfet();
        assert_eq!(tfet.dl1, Dl1Config::Plain { latency: 4 });
        assert_eq!(tfet.l2_latency, 12);
        assert_eq!(tfet.l3_latency, 40);
    }

    #[test]
    fn hierarchy_lowering_builds() {
        let h = MemoryConfig::advhet().to_hierarchy(2.0e9);
        match h.dl1 {
            DataCacheSpec::Asymmetric { fast, slow } => {
                assert_eq!(fast.size_bytes, 4 * 1024);
                assert_eq!(slow.size_bytes, 28 * 1024);
            }
            DataCacheSpec::Plain(_) => panic!("advhet DL1 must be asymmetric"),
        }
    }

    #[test]
    fn validation_rejects_zero_clock() {
        let mut c = CoreConfig::default();
        c.clock_hz = 0.0;
        assert!(c.validate().is_err());
    }
}
