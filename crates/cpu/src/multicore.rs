//! Multicore execution model for the fixed-power-budget comparison.
//!
//! The paper's AdvHet-2X study (Section VII-A1) runs 8 AdvHet cores against
//! 4 BaseCMOS cores at equal chip power. The synthetic workloads model
//! parallelism Amdahl-style: a profile's `parallel_fraction` of the dynamic
//! instructions splits evenly across cores (SPLASH-2-style data-parallel
//! phases, disjoint per-thread working sets), and the remainder runs
//! serially on core 0 while the other cores idle (leaking but not
//! switching).
//!
//! Total time is therefore `T_serial + max_i T_parallel_i`, and the energy
//! model charges active energy per phase plus idle leakage for the cores
//! that sit out the serial phase.

use hetsim_check::{CheckConfig, Checker, Violation};
use hetsim_trace::WorkloadProfile;

use crate::config::CoreConfig;
use crate::core::{validate_run, Core, RunResult};

/// Result of a multicore run.
#[derive(Debug, Clone)]
pub struct MulticoreResult {
    /// Number of cores.
    pub cores: u32,
    /// The serial phase on core 0 (`None` if the workload is fully
    /// parallel).
    pub serial: Option<RunResult>,
    /// Per-core parallel-phase results.
    pub parallel: Vec<RunResult>,
    /// Core clock (Hz).
    pub clock_hz: f64,
}

impl MulticoreResult {
    /// Seconds of the serial phase.
    pub fn serial_seconds(&self) -> f64 {
        self.serial.as_ref().map_or(0.0, RunResult::seconds)
    }

    /// Seconds of the parallel phase (the slowest core).
    pub fn parallel_seconds(&self) -> f64 {
        self.parallel
            .iter()
            .map(RunResult::seconds)
            .fold(0.0, f64::max)
    }

    /// End-to-end execution time.
    pub fn total_seconds(&self) -> f64 {
        self.serial_seconds() + self.parallel_seconds()
    }

    /// Total committed instructions across phases and cores.
    pub fn total_committed(&self) -> u64 {
        self.serial.as_ref().map_or(0, |r| r.stats.committed)
            + self.parallel.iter().map(|r| r.stats.committed).sum::<u64>()
    }
}

/// Runs `total_insts` dynamic instructions of `profile` on `cores` cores.
///
/// # Panics
///
/// Panics if `cores` is zero or the profile is invalid.
pub fn run_multicore(
    core_cfg: &CoreConfig,
    cores: u32,
    profile: &WorkloadProfile,
    seed: u64,
    total_insts: u64,
) -> MulticoreResult {
    run_multicore_checked(
        core_cfg,
        cores,
        profile,
        seed,
        total_insts,
        CheckConfig::OFF,
    )
    .0
}

/// Like [`run_multicore`], but with the invariant layer enabled per
/// `check`: each core runs its in-flight occupancy/ordering checks, and
/// the finished result is validated against the post-run conservation
/// relations ([`validate_multicore`]). Returns the result together with
/// every violation observed (empty when `check` is off or all checks
/// hold).
///
/// # Panics
///
/// Panics if `cores` is zero or the profile is invalid.
pub fn run_multicore_checked(
    core_cfg: &CoreConfig,
    cores: u32,
    profile: &WorkloadProfile,
    seed: u64,
    total_insts: u64,
    check: CheckConfig,
) -> (MulticoreResult, Vec<Violation>) {
    assert!(cores >= 1, "need at least one core");
    profile.validate().expect("valid profile");

    let serial_insts = (total_insts as f64 * (1.0 - profile.parallel_fraction)).round() as u64;
    let parallel_insts = total_insts - serial_insts;
    let per_core = parallel_insts / u64::from(cores);

    let mut checker = Checker::new();
    let warmup = |n: u64| (n / 4).min(25_000);
    // Design sweeps rerun the same (profile, seed) streams, so pull them
    // through the trace memo. A run of `n` committed instructions pulls at
    // most `warmup + n + steering window + 1` from the stream (the
    // dispatch lookahead holds up to `window + 1` undispatched insts).
    let pull_bound = |n: u64| warmup(n) + n + core_cfg.steering.lookahead_window() + 1;
    let ws = profile.memory.working_set_bytes;
    let serial = if serial_insts > 0 {
        let mut core = Core::new(core_cfg.clone(), 0).with_checks(check);
        core.prewarm(0, ws);
        let r = core.run_warmed(
            hetsim_trace::cache::replay(profile, seed, 0, pull_bound(serial_insts)),
            warmup(serial_insts),
            serial_insts,
        );
        checker.scoped("serial", |c| c.absorb(core.take_violations()));
        Some(r)
    } else {
        None
    };

    let parallel = (0..cores)
        .filter(|_| per_core > 0)
        .map(|t| {
            let mut core = Core::new(core_cfg.clone(), t).with_checks(check);
            core.prewarm(
                u64::from(t) * hetsim_trace::stream::THREAD_ADDRESS_STRIDE,
                ws,
            );
            let r = core.run_warmed(
                hetsim_trace::cache::replay(profile, seed.wrapping_add(1), t, pull_bound(per_core)),
                warmup(per_core),
                per_core,
            );
            checker.scoped("parallel", |c| c.absorb(core.take_violations()));
            r
        })
        .collect();

    let result = MulticoreResult {
        cores,
        serial,
        parallel,
        clock_hz: core_cfg.clock_hz,
    };
    if check.enabled() {
        validate_multicore(core_cfg, total_insts, &result, &mut checker);
    }
    (result, checker.into_violations())
}

/// Validates a finished [`MulticoreResult`] against the work-conservation
/// relations: committed instructions never exceed the request, at most
/// the per-core integer-division remainder is lost, the parallel phase is
/// all-or-nothing, and every phase result satisfies the single-core
/// post-run relations ([`validate_run`]).
pub fn validate_multicore(
    cfg: &CoreConfig,
    total_insts: u64,
    result: &MulticoreResult,
    checker: &mut Checker,
) {
    checker.scoped("multicore", |c| {
        let total = result.total_committed();
        c.le_u64(
            "cpu.multicore_work_bound",
            ("total committed", total),
            ("requested insts", total_insts),
        );
        c.check(
            "cpu.multicore_work_loss",
            format!("< {} (cores)", result.cores),
            total_insts - total.min(total_insts) < u64::from(result.cores),
            total_insts - total.min(total_insts),
        );
        c.check(
            "cpu.parallel_all_or_nothing",
            format!("0 or {} phase results", result.cores),
            result.parallel.is_empty() || result.parallel.len() == result.cores as usize,
            result.parallel.len(),
        );
        if let Some(serial) = &result.serial {
            c.scoped("serial", |c| validate_run(cfg, serial, 1, c));
        }
        for (t, r) in result.parallel.iter().enumerate() {
            c.scoped(format!("parallel{t}"), |c| validate_run(cfg, r, 1, c));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_trace::apps;

    const N: u64 = 40_000;

    #[test]
    fn more_cores_run_faster() {
        let profile = apps::profile("fft").expect("known");
        let cfg = CoreConfig::default();
        let one = run_multicore(&cfg, 1, &profile, 11, N);
        let four = run_multicore(&cfg, 4, &profile, 11, N);
        let eight = run_multicore(&cfg, 8, &profile, 11, N);
        assert!(four.total_seconds() < one.total_seconds());
        assert!(eight.total_seconds() < four.total_seconds());
    }

    #[test]
    fn scaling_respects_amdahl() {
        let profile = apps::profile("canneal").expect("known"); // f = 0.90
        let cfg = CoreConfig::default();
        let one = run_multicore(&cfg, 1, &profile, 12, N);
        let eight = run_multicore(&cfg, 8, &profile, 12, N);
        let speedup = one.total_seconds() / eight.total_seconds();
        let amdahl_limit = 1.0 / (1.0 - profile.parallel_fraction);
        assert!(
            speedup < amdahl_limit,
            "speedup {speedup} cannot beat the Amdahl limit {amdahl_limit}"
        );
        assert!(
            speedup > 2.0,
            "8 cores at f=0.9 should exceed 2x: {speedup}"
        );
    }

    #[test]
    fn work_is_conserved() {
        let profile = apps::profile("lu").expect("known");
        let cfg = CoreConfig::default();
        let r = run_multicore(&cfg, 4, &profile, 13, N);
        // Committed work equals the requested total up to the per-core
        // integer division remainder.
        let total = r.total_committed();
        assert!(total <= N);
        assert!(
            N - total < u64::from(r.cores),
            "lost more than rounding: {total}/{N}"
        );
    }

    #[test]
    fn checked_run_is_clean_and_matches_unchecked() {
        let profile = apps::profile("fft").expect("known");
        let cfg = CoreConfig::default();
        let (checked, violations) =
            run_multicore_checked(&cfg, 4, &profile, 11, N, CheckConfig::ON);
        assert!(
            violations.is_empty(),
            "invariants must hold on a healthy run: {violations:?}"
        );
        // Checking must not perturb the simulation itself.
        let plain = run_multicore(&cfg, 4, &profile, 11, N);
        assert_eq!(checked.total_committed(), plain.total_committed());
        assert_eq!(checked.total_seconds(), plain.total_seconds());
    }

    #[test]
    fn validate_multicore_flags_fabricated_work() {
        let profile = apps::profile("fft").expect("known");
        let cfg = CoreConfig::default();
        let mut r = run_multicore(&cfg, 2, &profile, 15, 20_000);
        // Fabricate committed work beyond the request.
        r.parallel[0].stats.committed += 50_000;
        let mut checker = Checker::new();
        validate_multicore(&cfg, 20_000, &r, &mut checker);
        assert!(checker
            .violations()
            .iter()
            .any(|v| v.invariant == "cpu.multicore_work_bound"));
    }

    #[test]
    fn fully_serial_profile_has_no_parallel_phase() {
        let mut profile = apps::profile("lu").expect("known");
        profile.parallel_fraction = 0.0;
        let cfg = CoreConfig::default();
        let r = run_multicore(&cfg, 4, &profile, 14, 10_000);
        assert!(r.serial.is_some());
        assert!(r.parallel.is_empty());
        assert!(r.parallel_seconds() == 0.0);
    }
}
