//! The cycle-level out-of-order core.
//!
//! A trace-driven model of a 4-wide OoO pipeline: instructions are pulled
//! from the synthetic trace (always the correct path, as in standard
//! trace-driven simulation), dispatched into a ROB/IQ/LSQ subject to every
//! Table III capacity, issued oldest-first when their producers complete
//! and a functional unit is free, and committed in order. Branch
//! mispredictions block dispatch from the mispredicted branch until it
//! resolves, then charge the front-end refill delay — wrong-path *work* is
//! not simulated, but its *timing* cost is.
//!
//! The TFET-specific behaviours all emerge from configuration:
//! deeper-pipelined TFET units lengthen producer-consumer chains and branch
//! resolution; the TFET DL1/L2/L3 latencies stretch the memory path; the
//! dual-speed ALU cluster steers consumer-soon instructions to the CMOS ALU
//! (Section IV-C2); and the asymmetric DL1 shortens the common case back to
//! one cycle (Section IV-C1).

use std::collections::VecDeque;

use hetsim_check::{CheckConfig, Checker, Violation};
use hetsim_mem::hierarchy::Hierarchy;
use hetsim_mem::stats::MemStats;
use hetsim_trace::isa::{BranchInfo, Inst, OpClass};

use crate::config::{CoreConfig, SteeringPolicy};
use crate::fu::FuPool;
use crate::predictor::TournamentPredictor;
use crate::stats::CoreStats;

/// Synthetic code region for instruction-fetch energy accounting.
const CODE_BASE: u64 = 0x4000_0000;
/// Modeled code footprint (fits IL1 after warm-up; IL1 stays CMOS in every
/// design, so its timing is identical across configurations).
const CODE_FOOTPRINT: u64 = 16 * 1024;

/// An instruction in flight.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    seq: u64,
    op: OpClass,
    /// Absolute producer sequence numbers.
    src1: Option<u64>,
    src2: Option<u64>,
    addr: Option<u64>,
    mispredicted: bool,
    prefer_fast: bool,
    issued: bool,
    done: u64,
}

/// Result of running a trace on a core.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Pipeline event counters.
    pub stats: CoreStats,
    /// Memory-system event counters.
    pub mem: MemStats,
    /// The clock the core ran at (Hz).
    pub clock_hz: f64,
}

impl RunResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// Wall-clock seconds of the simulated execution.
    pub fn seconds(&self) -> f64 {
        self.stats.cycles as f64 / self.clock_hz
    }
}

/// One out-of-order core.
#[derive(Debug)]
pub struct Core {
    cfg: CoreConfig,
    pool: FuPool,
    predictor: TournamentPredictor,
    hierarchy: Hierarchy,
    stats: CoreStats,
    fetch_pc: u64,
    core_id: u32,
    check: CheckConfig,
    violations: Vec<Violation>,
}

impl Core {
    /// Builds a core from `cfg`. `core_id` selects the L3 slice/identity in
    /// multicore runs (it does not change single-core behaviour).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: CoreConfig, core_id: u32) -> Self {
        cfg.validate().expect("valid core config");
        let hierarchy = Hierarchy::new(cfg.memory.to_hierarchy(cfg.clock_hz));
        Core {
            pool: FuPool::new(cfg.fus.clone()),
            predictor: TournamentPredictor::new(cfg.predictor),
            hierarchy,
            stats: CoreStats::default(),
            fetch_pc: CODE_BASE + u64::from(core_id) * CODE_FOOTPRINT,
            core_id,
            check: CheckConfig::OFF,
            violations: Vec::new(),
            cfg,
        }
    }

    /// Enables in-loop invariant checking (occupancy bounds, cycle
    /// monotonicity, pipeline ordering). Off by default so the hot path
    /// pays a single predictable branch per cycle.
    pub fn with_checks(mut self, check: CheckConfig) -> Self {
        self.check = check;
        self
    }

    /// Drains the violations collected by the in-loop checks (empty
    /// unless checking was enabled and an invariant broke).
    pub fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// The configuration this core was built with.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Pre-warms the caches with the leading portion of a working set at
    /// `base` (see `hetsim_mem::Hierarchy::prewarm`).
    pub fn prewarm(&mut self, base: u64, working_set_bytes: u64) {
        self.hierarchy.prewarm(base, working_set_bytes);
    }

    /// Runs `n` instructions from `trace` to completion (dispatch `n`, then
    /// drain), returning the collected statistics.
    ///
    /// # Panics
    ///
    /// Panics if the trace ends before `n` instructions (plus steering
    /// lookahead) are available, or if the pipeline fails to make forward
    /// progress (an internal invariant violation).
    pub fn run<T: Iterator<Item = Inst>>(&mut self, trace: T, n: u64) -> RunResult {
        self.run_warmed(trace, 0, n)
    }

    /// Like [`Core::run`], but first executes `warmup` instructions to warm
    /// the caches and predictors, then measures the next `n` instructions
    /// (standard sampled-simulation methodology; cold-start misses would
    /// otherwise dominate short runs).
    ///
    /// # Panics
    ///
    /// As for [`Core::run`].
    pub fn run_warmed<T: Iterator<Item = Inst>>(
        &mut self,
        trace: T,
        warmup: u64,
        n: u64,
    ) -> RunResult {
        let window = match self.cfg.steering {
            SteeringPolicy::None => 0,
            SteeringPolicy::DualSpeed { window } => window,
        };
        let mut trace = trace.fuse();
        let mut lookahead: VecDeque<Inst> = VecDeque::with_capacity(window as usize + 1);

        let mut rob: VecDeque<InFlight> = VecDeque::with_capacity(self.cfg.rob_entries as usize);
        // Sequence numbers of dispatched-but-unissued instructions (the IQ).
        let mut iq: Vec<u64> = Vec::with_capacity(self.cfg.iq_entries as usize);

        let mut cycle: u64 = u64::from(self.cfg.frontend_delay); // pipeline fill
        let mut dispatched: u64 = 0;
        let mut committed: u64 = 0;
        let mut next_seq: u64 = 0;
        let mut lsq_occ: u32 = 0;
        let mut int_inflight: u32 = 0;
        let mut fp_inflight: u32 = 0;
        // Misprediction redirect: dispatch is blocked until `redirect_at`.
        // `u64::MAX` means the branch has not resolved yet.
        let mut redirect_at: Option<u64> = None;
        let mut last_progress_cycle = cycle;
        let mut last_verified_cycle: Option<u64> = None;
        let total = warmup + n;
        // Snapshot taken when the warmup region retires.
        let mut snapshot: Option<(u64, CoreStats, MemStats)> = if warmup == 0 {
            Some((cycle, self.stats, self.hierarchy.stats()))
        } else {
            None
        };

        while committed < total || !rob.is_empty() {
            // ---- Commit (in order, up to issue_width) ----
            let mut committed_now = 0;
            while committed_now < self.cfg.issue_width {
                let Some(head) = rob.front() else { break };
                if !head.issued || head.done > cycle {
                    break;
                }
                let inst = rob.pop_front().expect("checked front");
                self.commit(&inst, &mut lsq_occ, &mut int_inflight, &mut fp_inflight);
                committed += 1;
                committed_now += 1;
            }
            if committed_now > 0 {
                last_progress_cycle = cycle;
                if snapshot.is_none() && committed >= warmup {
                    snapshot = Some((cycle, self.stats, self.hierarchy.stats()));
                }
            }

            // ---- Issue (oldest-first from the IQ, up to issue_width) ----
            let rob_first_seq = rob.front().map(|i| i.seq);
            let mut issued_now = 0u32;
            let mut issued_seqs: Vec<u64> = Vec::new();
            for &seq in iq.iter() {
                if issued_now == self.cfg.issue_width {
                    break;
                }
                let first = rob_first_seq.expect("IQ nonempty implies ROB nonempty");
                let idx = (seq - first) as usize;
                let ready = {
                    let inst = &rob[idx];
                    Self::source_ready(&rob, first, inst.src1, cycle)
                        && Self::source_ready(&rob, first, inst.src2, cycle)
                };
                if !ready {
                    continue;
                }
                let (op, prefer_fast, addr) = {
                    let inst = &rob[idx];
                    (inst.op, inst.prefer_fast, inst.addr)
                };
                let Some(issued) = self.pool.try_issue(op, cycle, prefer_fast) else {
                    continue;
                };
                // Compute completion time and record energy events.
                let done = match op {
                    OpClass::Load => {
                        let mem = self.hierarchy.load(addr.expect("loads carry addresses"));
                        cycle + u64::from(issued.latency) + u64::from(mem.latency)
                    }
                    OpClass::Store => cycle + u64::from(issued.latency),
                    _ => cycle + u64::from(issued.latency),
                };
                {
                    let inst = &mut rob[idx];
                    inst.issued = true;
                    inst.done = done;
                }
                self.count_issue(&rob[idx], issued.on_fast_alu);
                if rob[idx].mispredicted {
                    // The branch resolves at `done`; dispatch resumes after
                    // the front-end refill. Until resolution the front end
                    // fetched down the wrong path — charge those fetch
                    // groups as energy events (the work is discarded, the
                    // switching is not).
                    redirect_at = Some(done + u64::from(self.cfg.frontend_delay));
                    self.stats.wrong_path_fetch_groups += done.saturating_sub(cycle).min(32);
                }
                issued_seqs.push(seq);
                issued_now += 1;
            }
            if !issued_seqs.is_empty() {
                iq.retain(|s| !issued_seqs.contains(s));
                last_progress_cycle = cycle;
            }

            // ---- Dispatch (front end, up to issue_width) ----
            let dispatch_open = match redirect_at {
                Some(at) => {
                    if cycle >= at && at != u64::MAX {
                        redirect_at = None;
                        true
                    } else {
                        false
                    }
                }
                None => true,
            };
            if dispatch_open && dispatched < total {
                let mut dispatched_now = 0;
                while dispatched_now < self.cfg.fetch_width && dispatched < total {
                    // Structural hazards.
                    if rob.len() as u32 == self.cfg.rob_entries {
                        self.stats.rob_full_stalls += 1;
                        break;
                    }
                    if iq.len() as u32 == self.cfg.iq_entries {
                        self.stats.iq_full_stalls += 1;
                        break;
                    }
                    // Refill the lookahead so steering can peek.
                    while lookahead.len() <= window as usize {
                        match trace.next() {
                            Some(i) => lookahead.push_back(i),
                            None => break,
                        }
                    }
                    let Some(inst) = lookahead.pop_front() else {
                        panic!("trace ended after {dispatched} of {total} instructions")
                    };
                    if inst.op.is_mem() && lsq_occ == self.cfg.lsq_entries {
                        self.stats.lsq_full_stalls += 1;
                        lookahead.push_front(inst);
                        break;
                    }
                    if inst.op.produces_value() {
                        if inst.op.is_fp() {
                            if fp_inflight == self.cfg.fp_regs {
                                self.stats.reg_full_stalls += 1;
                                lookahead.push_front(inst);
                                break;
                            }
                        } else if int_inflight == self.cfg.int_regs {
                            self.stats.reg_full_stalls += 1;
                            lookahead.push_front(inst);
                            break;
                        }
                    }

                    // Steering decision (Section IV-C2): consumer within
                    // the next `window` instructions -> fast ALU, subject
                    // to the utilization-balancing objective (the single
                    // CMOS ALU must not saturate; the majority of ops keep
                    // flowing to the TFET ALUs).
                    let balance_ok = self.stats.alu_fast_ops * 9 <= (self.stats.alu_ops() + 16) * 4;
                    let prefer_fast = window > 0
                        && inst.op == OpClass::IntAlu
                        && balance_ok
                        && Self::consumer_in_window(&lookahead, window);

                    // Branch prediction at dispatch.
                    let mut mispredicted = false;
                    if let Some(b) = inst.branch {
                        mispredicted = self.predict_branch(&b);
                    }

                    let seq = next_seq;
                    next_seq += 1;
                    if inst.op.is_mem() {
                        lsq_occ += 1;
                    }
                    if inst.op.produces_value() {
                        if inst.op.is_fp() {
                            fp_inflight += 1;
                        } else {
                            int_inflight += 1;
                        }
                    }
                    let to_src =
                        |d: Option<u32>| d.and_then(|dist| seq.checked_sub(u64::from(dist)));
                    rob.push_back(InFlight {
                        seq,
                        op: inst.op,
                        src1: to_src(inst.src1_dist),
                        src2: to_src(inst.src2_dist),
                        addr: inst.addr,
                        mispredicted,
                        prefer_fast,
                        issued: false,
                        done: 0,
                    });
                    iq.push(seq);
                    dispatched += 1;
                    self.stats.dispatched += 1;
                    dispatched_now += 1;

                    if mispredicted {
                        // Block dispatch until this branch resolves.
                        redirect_at = Some(u64::MAX);
                        break;
                    }
                }
                if dispatched_now > 0 {
                    // One fetch group reached dispatch: IL1 energy event.
                    self.stats.fetch_groups += 1;
                    let pc = CODE_BASE + (self.fetch_pc % CODE_FOOTPRINT);
                    self.fetch_pc = self.fetch_pc.wrapping_add(64);
                    let _ = self.hierarchy.fetch(pc);
                    last_progress_cycle = cycle;
                }
            }

            if self.check.enabled() {
                self.verify_cycle(
                    cycle,
                    last_verified_cycle,
                    rob.len(),
                    iq.len(),
                    lsq_occ,
                    int_inflight,
                    fp_inflight,
                    committed,
                    dispatched,
                );
                last_verified_cycle = Some(cycle);
            }

            cycle += 1;
            assert!(
                cycle - last_progress_cycle < 1_000_000,
                "pipeline deadlock at cycle {cycle} (committed {committed}/{total})"
            );
        }

        let (snap_cycle, snap_stats, snap_mem) =
            snapshot.expect("warmup <= total instructions, so the snapshot was taken");
        self.stats.cycles = cycle;
        self.stats.committed = committed;
        let mut stats = self.stats.minus(&snap_stats);
        stats.cycles = cycle - snap_cycle;
        stats.committed = committed - warmup.min(committed);
        RunResult {
            stats,
            mem: self.hierarchy.stats().minus(&snap_mem),
            clock_hz: self.cfg.clock_hz,
        }
    }

    /// The per-cycle invariant sweep (only called with checking
    /// enabled): structure occupancies within their configured
    /// capacities, the pipeline-order relation, and cycle
    /// monotonicity. Each invariant is reported at most once per core
    /// so a broken bound does not flood the report.
    #[allow(clippy::too_many_arguments)]
    fn verify_cycle(
        &mut self,
        cycle: u64,
        last_verified: Option<u64>,
        rob_len: usize,
        iq_len: usize,
        lsq_occ: u32,
        int_inflight: u32,
        fp_inflight: u32,
        committed: u64,
        dispatched: u64,
    ) {
        let caps = [
            (
                "cpu.rob_occupancy",
                "rob",
                rob_len as u32,
                self.cfg.rob_entries,
            ),
            ("cpu.iq_occupancy", "iq", iq_len as u32, self.cfg.iq_entries),
            ("cpu.lsq_occupancy", "lsq", lsq_occ, self.cfg.lsq_entries),
            (
                "cpu.int_rf_occupancy",
                "int_rf",
                int_inflight,
                self.cfg.int_regs,
            ),
            (
                "cpu.fp_rf_occupancy",
                "fp_rf",
                fp_inflight,
                self.cfg.fp_regs,
            ),
        ];
        for (invariant, what, occ, cap) in caps {
            if occ > cap {
                self.record_once(
                    invariant,
                    format!("{what} occupancy <= {cap}"),
                    format!("{what}={occ} cycle={cycle}"),
                );
            }
        }
        if committed > dispatched {
            self.record_once(
                "cpu.pipeline_order",
                "committed <= dispatched".to_string(),
                format!("committed={committed} dispatched={dispatched} cycle={cycle}"),
            );
        }
        if let Some(prev) = last_verified {
            if cycle <= prev {
                self.record_once(
                    "cpu.cycle_monotone",
                    "cycle strictly increases".to_string(),
                    format!("cycle={cycle} previous={prev}"),
                );
            }
        }
    }

    /// Records a violation at this core's path, once per invariant.
    fn record_once(&mut self, invariant: &'static str, expected: String, actual: String) {
        if self.violations.iter().any(|v| v.invariant == invariant) {
            return;
        }
        self.violations.push(Violation {
            invariant,
            path: format!("core{}", self.core_id),
            expected,
            actual,
        });
    }

    /// Whether `src` (an absolute producer seq) has produced its value by
    /// `cycle`. Producers no longer in the ROB have committed.
    fn source_ready(
        rob: &VecDeque<InFlight>,
        first_seq: u64,
        src: Option<u64>,
        cycle: u64,
    ) -> bool {
        let Some(seq) = src else { return true };
        if seq < first_seq {
            return true; // committed
        }
        let idx = (seq - first_seq) as usize;
        match rob.get(idx) {
            Some(p) => p.issued && p.done <= cycle,
            None => true, // beyond ROB tail cannot happen for a producer
        }
    }

    /// Steering lookahead: does any of the next `window` instructions
    /// consume the value produced by the instruction just popped?
    fn consumer_in_window(lookahead: &VecDeque<Inst>, window: u32) -> bool {
        for k in 1..=window {
            let Some(next) = lookahead.get((k - 1) as usize) else {
                break;
            };
            if next.src1_dist == Some(k) || next.src2_dist == Some(k) {
                return true;
            }
        }
        false
    }

    /// Predicts a branch at dispatch and trains the predictor; returns
    /// whether the prediction was wrong (direction, BTB target, or RAS).
    fn predict_branch(&mut self, b: &BranchInfo) -> bool {
        if b.is_call {
            self.predictor.push_call();
            // Calls are unconditional with known targets.
            self.predictor.update(b.pc, true);
            return false;
        }
        if b.is_return {
            let ras_ok = self.predictor.pop_return();
            return !ras_ok;
        }
        let pred = self.predictor.predict(b.pc);
        self.predictor.update(b.pc, b.taken);
        let direction_wrong = pred.taken != b.taken;
        let target_missing = b.taken && pred.taken && !pred.target_known;
        direction_wrong || target_missing
    }

    /// Per-class counters at issue (each instruction issues exactly once).
    fn count_issue(&mut self, inst: &InFlight, on_fast_alu: bool) {
        self.stats.issues += 1;
        // Register-file reads.
        let reads = u64::from(inst.src1.is_some()) + u64::from(inst.src2.is_some());
        if inst.op.is_fp() {
            self.stats.fp_rf_reads += reads;
        } else {
            self.stats.int_rf_reads += reads;
        }
        match inst.op {
            OpClass::IntAlu => {
                if on_fast_alu {
                    self.stats.alu_fast_ops += 1;
                } else {
                    self.stats.alu_slow_ops += 1;
                }
            }
            OpClass::IntMul => self.stats.int_mul_ops += 1,
            OpClass::IntDiv => self.stats.int_div_ops += 1,
            OpClass::FpAdd => self.stats.fp_add_ops += 1,
            OpClass::FpMul => self.stats.fp_mul_ops += 1,
            OpClass::FpDiv => self.stats.fp_div_ops += 1,
            OpClass::Load => self.stats.loads += 1,
            OpClass::Store => self.stats.stores += 1,
            OpClass::Branch => {
                self.stats.branches += 1;
                if inst.mispredicted {
                    self.stats.mispredicts += 1;
                }
            }
        }
    }

    /// Commit bookkeeping: RF writes, store write-through, occupancies.
    fn commit(
        &mut self,
        inst: &InFlight,
        lsq_occ: &mut u32,
        int_inflight: &mut u32,
        fp_inflight: &mut u32,
    ) {
        if inst.op == OpClass::Store {
            let _ = self
                .hierarchy
                .store(inst.addr.expect("stores carry addresses"));
        }
        if inst.op.is_mem() {
            *lsq_occ -= 1;
        }
        if inst.op.produces_value() {
            if inst.op.is_fp() {
                *fp_inflight -= 1;
                self.stats.fp_rf_writes += 1;
            } else {
                *int_inflight -= 1;
                self.stats.int_rf_writes += 1;
            }
        }
    }
}

/// Validates the accounting identities of one [`RunResult`] against
/// `cfg`, recording violations into `checker` (scoped under `core`).
///
/// The relations are chosen to hold for *any* measured window: warmed
/// runs ([`Core::run_warmed`]) subtract a snapshot taken at a commit
/// boundary, so issue-time counters (per-class ops) and commit-time
/// counters (`committed`, RF writes, store DL1 accesses) can diverge
/// by the in-flight window — the bounds carry exactly that slack
/// (`rob_entries`, `lsq_entries`), and collapse to equalities for
/// unwarmed runs. All relations are linear, so they also hold for
/// `merge`d stats (multicore chips, campaign aggregates) with the
/// slack scaled by the run count (see the `slack_runs` parameter).
pub fn validate_run(cfg: &CoreConfig, result: &RunResult, slack_runs: u64, checker: &mut Checker) {
    let s = &result.stats;
    let m = &result.mem;
    checker.scoped("core", |c| {
        let by_class = s.alu_ops()
            + s.int_mul_ops
            + s.int_div_ops
            + s.fpu_ops()
            + s.loads
            + s.stores
            + s.branches;
        c.eq_u64(
            "cpu.issue_class_conservation",
            ("by_class_ops", by_class),
            ("issues", s.issues),
        );
        c.le_u64(
            "cpu.issue_le_commit",
            ("issues", s.issues),
            ("committed", s.committed),
        );
        c.le_u64(
            "cpu.commit_issue_slack",
            ("committed", s.committed),
            (
                "issues + inflight_bound",
                s.issues + slack_runs * u64::from(cfg.rob_entries + cfg.issue_width),
            ),
        );
        c.le_u64(
            "cpu.mispredict_le_branches",
            ("mispredicts", s.mispredicts),
            ("branches", s.branches),
        );
        c.le_u64(
            "cpu.wrong_path_bound",
            ("wrong_path_fetch_groups", s.wrong_path_fetch_groups),
            ("32 * mispredicts", 32 * s.mispredicts),
        );
        c.le_u64(
            "cpu.rf_read_bound",
            ("rf_reads", s.int_rf_reads + s.fp_rf_reads),
            ("2 * issues", 2 * s.issues),
        );
        c.le_u64(
            "cpu.rf_write_le_commit",
            ("rf_writes", s.int_rf_writes + s.fp_rf_writes),
            ("committed", s.committed),
        );
        c.check(
            "cpu.cycles_positive",
            "cycles > 0 when work committed",
            s.committed == 0 || s.cycles > 0,
            format!("cycles={} committed={}", s.cycles, s.committed),
        );
        c.eq_u64(
            "cpu.il1_fetch_conservation",
            ("fetch_groups", s.fetch_groups),
            ("il1_accesses", m.il1.accesses),
        );
        let ls = s.loads + s.stores;
        let dl1 = m.dl1_accesses();
        c.le_u64(
            "cpu.dl1_demand_lower",
            ("loads + stores", ls),
            ("dl1_accesses", dl1),
        );
        c.le_u64(
            "cpu.dl1_demand_upper",
            ("dl1_accesses", dl1),
            (
                "loads + stores + lsq_bound",
                ls + slack_runs * u64::from(cfg.lsq_entries),
            ),
        );
    });
    hetsim_mem::stats::validate_mem_stats(m, checker);
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::config::{Dl1Config, MemoryConfig};
    use crate::fu::FuPoolConfig;
    use hetsim_trace::apps;
    use hetsim_trace::stream::TraceGenerator;

    const N: u64 = 20_000;

    fn run_app(app: &str, cfg: CoreConfig, seed: u64) -> RunResult {
        let profile = apps::profile(app).expect("known app");
        let mut core = Core::new(cfg, 0);
        core.run(TraceGenerator::new(&profile, seed), N)
    }

    #[test]
    fn commits_exactly_n() {
        let r = run_app("lu", CoreConfig::default(), 1);
        assert_eq!(r.stats.committed, N);
        assert_eq!(r.stats.dispatched, N);
    }

    #[test]
    fn ipc_is_plausible_for_a_4_wide_core() {
        let r = run_app("lu", CoreConfig::default(), 1);
        let ipc = r.ipc();
        assert!(ipc > 0.8, "LU on BaseCMOS should exceed IPC 0.8, got {ipc}");
        assert!(ipc <= 4.0, "cannot exceed machine width, got {ipc}");
    }

    #[test]
    fn tfet_fus_and_caches_slow_the_core_down() {
        let base = run_app("lu", CoreConfig::default(), 1);
        let mut het = CoreConfig::default();
        het.fus = FuPoolConfig::tfet();
        het.memory = MemoryConfig::tfet();
        let slow = run_app("lu", het, 1);
        assert!(
            slow.stats.cycles > base.stats.cycles,
            "BaseHet-style core must be slower: {} vs {}",
            slow.stats.cycles,
            base.stats.cycles
        );
    }

    #[test]
    fn asymmetric_dl1_recovers_performance() {
        let mut het = CoreConfig::default();
        het.fus = FuPoolConfig::tfet();
        het.memory = MemoryConfig::tfet();
        let basehet = run_app("lu", het.clone(), 1);

        let mut adv = het;
        adv.memory.dl1 = Dl1Config::Asymmetric { slow_extra: 4 };
        let advhet = run_app("lu", adv, 1);
        assert!(
            advhet.stats.cycles < basehet.stats.cycles,
            "asymmetric DL1 should win on a DL1-resident app: {} vs {}",
            advhet.stats.cycles,
            basehet.stats.cycles
        );
    }

    #[test]
    fn dual_speed_steering_uses_both_clusters() {
        let mut cfg = CoreConfig::default();
        cfg.fus = FuPoolConfig::dual_speed();
        cfg.steering = SteeringPolicy::DualSpeed { window: 4 };
        let r = run_app("radix", cfg, 2);
        assert!(r.stats.alu_fast_ops > 0, "some ops steered fast");
        assert!(r.stats.alu_slow_ops > 0, "some ops steered slow");
        assert!(
            r.stats.alu_slow_ops > r.stats.alu_fast_ops,
            "majority should go to the TFET cluster: fast={} slow={}",
            r.stats.alu_fast_ops,
            r.stats.alu_slow_ops
        );
    }

    #[test]
    fn mispredictions_occur_at_plausible_rates() {
        let r = run_app("raytrace", CoreConfig::default(), 3);
        let rate = r.stats.mispredict_rate();
        assert!(rate > 0.005, "raytrace must mispredict sometimes: {rate}");
        assert!(rate < 0.25, "and not pathologically: {rate}");
    }

    #[test]
    fn predictable_apps_mispredict_less_than_branchy_ones() {
        let bs = run_app("blackscholes", CoreConfig::default(), 4);
        let rt = run_app("raytrace", CoreConfig::default(), 4);
        assert!(
            bs.stats.mispredict_rate() < rt.stats.mispredict_rate(),
            "blackscholes {} vs raytrace {}",
            bs.stats.mispredict_rate(),
            rt.stats.mispredict_rate()
        );
    }

    #[test]
    fn event_counts_are_consistent() {
        let r = run_app("fft", CoreConfig::default(), 5);
        let s = &r.stats;
        let by_class = s.alu_ops()
            + s.int_mul_ops
            + s.int_div_ops
            + s.fpu_ops()
            + s.loads
            + s.stores
            + s.branches;
        assert_eq!(by_class, s.committed);
        assert_eq!(s.issues, s.committed);
        assert_eq!(s.loads + s.stores, r.mem.dl1_accesses());
    }

    #[test]
    fn small_working_set_hits_dl1() {
        let r = run_app("blackscholes", CoreConfig::default(), 6);
        assert!(
            r.mem.dl1_hit_rate() > 0.8,
            "hit rate {}",
            r.mem.dl1_hit_rate()
        );
        let c = run_app("canneal", CoreConfig::default(), 6);
        assert!(
            r.mem.dl1_hit_rate() > c.mem.dl1_hit_rate() + 0.3,
            "blackscholes must be far more cache-friendly than canneal"
        );
    }

    #[test]
    fn canneal_misses_everywhere() {
        let r = run_app("canneal", CoreConfig::default(), 7);
        assert!(r.mem.dram_accesses > 100, "canneal should reach DRAM");
        let lu = run_app("lu", CoreConfig::default(), 7);
        assert!(r.ipc() < lu.ipc(), "memory-bound canneal slower than LU");
    }

    #[test]
    fn larger_rob_never_hurts() {
        let mut big = CoreConfig::default();
        big.rob_entries = 192;
        big.fp_regs = 128;
        let base = run_app("fft", CoreConfig::default(), 8);
        let enh = run_app("fft", big, 8);
        assert!(enh.stats.cycles <= base.stats.cycles + base.stats.cycles / 50);
    }

    #[test]
    fn wrong_path_fetch_tracks_mispredictions() {
        let r = run_app("raytrace", CoreConfig::default(), 3);
        assert!(r.stats.mispredicts > 0);
        assert!(
            r.stats.wrong_path_fetch_groups > 0,
            "mispredicts must burn wrong-path fetches"
        );
        // Bounded: at most the clamp (32) per misprediction.
        assert!(r.stats.wrong_path_fetch_groups <= 32 * r.stats.mispredicts);

        let bs = run_app("blackscholes", CoreConfig::default(), 3);
        let per_miss = |s: &crate::stats::CoreStats| {
            s.wrong_path_fetch_groups as f64 / s.mispredicts.max(1) as f64
        };
        assert!(per_miss(&bs.stats) < 33.0);
    }

    #[test]
    fn mispredict_penalty_scales_with_frontend_depth() {
        // A deeper front end pays a larger redirect penalty on a branchy
        // app; cycle counts must increase monotonically.
        let cycles = |depth: u32| {
            let mut cfg = CoreConfig::default();
            cfg.frontend_delay = depth;
            run_app("raytrace", cfg, 5).stats.cycles
        };
        let shallow = cycles(4);
        let nominal = cycles(10);
        let deep = cycles(20);
        assert!(shallow < nominal, "{shallow} < {nominal}");
        assert!(nominal < deep, "{nominal} < {deep}");
    }

    #[test]
    fn half_clock_doubles_runtime_in_seconds() {
        let base = run_app("lu", CoreConfig::default(), 9);
        let mut slow = CoreConfig::default();
        slow.clock_hz = 1.0e9;
        let tfet = run_app("lu", slow, 9);
        // Core-bound work doubles in seconds; memory-bound portions cost
        // fewer *cycles* at the lower clock (DRAM nanoseconds are fixed),
        // so the overall ratio lands between 1.3x and 2x.
        let ratio = tfet.seconds() / base.seconds();
        assert!((1.3..2.2).contains(&ratio), "seconds ratio {ratio}");
    }
}
