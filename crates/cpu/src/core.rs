//! The cycle-level out-of-order core.
//!
//! A trace-driven model of a 4-wide OoO pipeline: instructions are pulled
//! from the synthetic trace (always the correct path, as in standard
//! trace-driven simulation), dispatched into a ROB/IQ/LSQ subject to every
//! Table III capacity, issued oldest-first when their producers complete
//! and a functional unit is free, and committed in order. Branch
//! mispredictions block dispatch from the mispredicted branch until it
//! resolves, then charge the front-end refill delay — wrong-path *work* is
//! not simulated, but its *timing* cost is.
//!
//! The TFET-specific behaviours all emerge from configuration:
//! deeper-pipelined TFET units lengthen producer-consumer chains and branch
//! resolution; the TFET DL1/L2/L3 latencies stretch the memory path; the
//! dual-speed ALU cluster steers consumer-soon instructions to the CMOS ALU
//! (Section IV-C2); and the asymmetric DL1 shortens the common case back to
//! one cycle (Section IV-C1).
//!
//! # Execution-layer implementation
//!
//! The model is cycle-accurate but the implementation is event-driven in
//! the MGSim/MosaicSim style, and counter-exact against the plain
//! cycle-by-cycle loop it replaced (pinned by `tests/step_equivalence.rs`
//! and the byte-identity goldens):
//!
//! * **Struct-of-arrays ROB ring** ([`RobRing`]): in-flight state lives in
//!   fixed parallel arrays indexed by `seq & mask` — no `VecDeque`
//!   pointer-chasing, no per-instruction allocation.
//! * **Wakeup-driven issue**: instead of re-testing every IQ entry's
//!   operands each cycle (the O(IQ x cycles) cost that dominated the old
//!   loop), each producer keeps an intrusive consumer chain; when it
//!   issues, its consumers learn their exact operands-ready cycle and
//!   enter an O(1) *timing wheel* of ready events. Each cycle drains
//!   the current wheel bucket into a *ready bitmask* and the
//!   oldest-first issue scan walks only genuinely ready instructions —
//!   word-wise bit tricks give seq order for free.
//! * **Dead-cycle skip**: when a cycle makes no progress (no commit, no
//!   issue, no dispatch), nothing in the pipeline can change until the
//!   next *event* — the ROB head completing, a ready instruction's
//!   functional-unit class freeing up, the next operand-ready event, or
//!   a mispredict redirect reopening the front end. The loop computes
//!   that next-wakeup time and jumps to it in one step. Skipping is
//!   sound because on a zero-progress cycle every piece of simulator
//!   state except the cycle counter and at most one dispatch-stall
//!   counter is frozen, and the stall hazard re-evaluates identically on
//!   every skipped cycle — so the elided ticks are accounted in bulk and
//!   all `counters!` stats stay exactly identical (see DESIGN.md for the
//!   invariant list).

use std::collections::VecDeque;

use hetsim_check::{CheckConfig, Checker, Violation};
use hetsim_mem::hierarchy::Hierarchy;
use hetsim_mem::stats::MemStats;
use hetsim_trace::isa::{BranchInfo, Inst, OpClass};

use hetsim_stats::attribution;

use crate::config::{CoreConfig, SteeringPolicy};
use crate::fu::FuPool;
use crate::predictor::TournamentPredictor;
use crate::profile::{CoreProfile, CycleClass};
use crate::stats::CoreStats;
use crate::telemetry;

/// Synthetic code region for instruction-fetch energy accounting.
const CODE_BASE: u64 = 0x4000_0000;
/// Modeled code footprint (fits IL1 after warm-up; IL1 stays CMOS in every
/// design, so its timing is identical across configurations).
const CODE_FOOTPRINT: u64 = 16 * 1024;

/// "No producer" sentinel in the source-seq arrays (operand ready at
/// rename: an immediate, or a producer older than the trace window).
const NO_SRC: u64 = u64::MAX;

/// Empty-chain sentinel in the intrusive wakeup/wheel linked lists.
const NIL: u32 = u32::MAX;

/// Timing-wheel span in cycles (power of two). One bucket per future
/// cycle covers every functional-unit latency and all but the slowest
/// memory round trips; an event farther out than the wheel aliases onto
/// an earlier bucket, where the drain pass filters it by its exact
/// `ready_at` (keeping it queued) and the dead-cycle skip treats the
/// bucket as a harmless *early* wakeup candidate — early wakeups
/// execute one dead cycle and re-arm the skip.
const WHEEL: usize = 2048;

/// Per-slot flag bits.
const F_ISSUED: u8 = 1 << 0;
const F_MISPREDICTED: u8 = 1 << 1;
const F_PREFER_FAST: u8 = 1 << 2;

/// Front-end redirect state. A mispredicted branch closes dispatch when
/// it enters the ROB ([`Redirect::Waiting`]); once it issues its
/// resolution cycle is known and dispatch reopens after the refill delay
/// ([`Redirect::ResumeAt`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Redirect {
    /// Dispatch is open.
    Open,
    /// An in-flight mispredicted branch has not issued yet, so its
    /// resolution cycle is unknown.
    Waiting,
    /// The branch issued; dispatch resumes at this cycle.
    ResumeAt(u64),
}

/// Which structural hazard (if any) broke this cycle's dispatch loop.
/// Used to account the same stall counter in bulk across skipped dead
/// cycles — the hazard is a pure function of state that is frozen while
/// no commit/issue/dispatch happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stall {
    None,
    Rob,
    Iq,
    Lsq,
    Reg,
}

/// Struct-of-arrays ROB ring with wakeup-driven scheduling. Slot index
/// is `seq & mask`; the live window is `[head_seq, tail_seq)`.
///
/// Scheduling state per slot:
///
/// * `unresolved` — how many of this entry's producers are still
///   unissued. While nonzero the operands-ready cycle is unknown and
///   the entry sits in its producers' `consumers` lists.
/// * `ready_at` — the running max of (dispatch cycle + 1, issued
///   producers' completion cycles). Once `unresolved` hits zero this is
///   exact and final (an issued producer's `done` never changes), and
///   the entry enters the timing wheel.
/// * wheel → `ready` — each cycle, events in the current wheel bucket
///   move into the `ready` bitmask; the issue scan walks only those
///   bits. Entries that fail structural (FU) arbitration simply stay
///   in the mask.
///
/// All scheduling links are *intrusive*: consumer wakeup lists and
/// wheel buckets are singly linked chains threaded through fixed
/// per-slot arrays, so the steady state allocates nothing and pays no
/// heap sift costs.
///
/// IQ occupancy is `pending_count` (dispatched minus issued).
#[derive(Debug)]
struct RobRing {
    mask: u64,
    op: Vec<OpClass>,
    /// Absolute producer sequence numbers ([`NO_SRC`] = none).
    src1: Vec<u64>,
    src2: Vec<u64>,
    /// Byte address for loads/stores (0 otherwise, never read).
    addr: Vec<u64>,
    /// Completion cycle (valid once [`F_ISSUED`] is set).
    done: Vec<u64>,
    flags: Vec<u8>,
    /// Operands-ready cycle (exact once `unresolved` is 0).
    ready_at: Vec<u64>,
    /// Producers not yet issued (0..=2).
    unresolved: Vec<u8>,
    /// Head of this producer's consumer chain ([`NIL`] = none). Chain
    /// entries are `consumer_slot << 1 | src_index`, so an instruction
    /// reading the same producer through both operands appears twice —
    /// exactly matching its `unresolved` count of 2.
    cons_head: Vec<u32>,
    /// Chain links, indexed by `consumer_slot << 1 | src_index`.
    cons_next: Vec<u32>,
    /// Timing wheel: head of the slot chain whose operand-ready events
    /// land on this bucket (`bucket = ready_at % WHEEL`).
    wheel: Vec<u32>,
    /// Wheel chain links, indexed by slot. A slot carries at most one
    /// pending ready event, so one link suffices.
    wheel_next: Vec<u32>,
    /// One bit per wheel bucket: bucket chain non-empty.
    wheel_occ: Vec<u64>,
    /// One bit per slot: operands ready, waiting on FU arbitration.
    ready: Vec<u64>,
    head_seq: u64,
    tail_seq: u64,
    pending_count: u32,
}

impl RobRing {
    /// Builds a ring for `rob_entries` in-flight instructions. Capacity
    /// is padded by 64 slots (then rounded to a power of two) so the
    /// occupied window never wraps into the low bits of the head slot's
    /// mask word — which lets the issue scan visit each word exactly
    /// once and still enumerate slots in ascending seq order.
    fn new(rob_entries: u32) -> Self {
        let cap = (rob_entries as usize + 64).next_power_of_two();
        RobRing {
            mask: cap as u64 - 1,
            op: vec![OpClass::IntAlu; cap],
            src1: vec![NO_SRC; cap],
            src2: vec![NO_SRC; cap],
            addr: vec![0; cap],
            done: vec![0; cap],
            flags: vec![0; cap],
            ready_at: vec![0; cap],
            unresolved: vec![0; cap],
            cons_head: vec![NIL; cap],
            cons_next: vec![NIL; cap * 2],
            wheel: vec![NIL; WHEEL],
            wheel_next: vec![NIL; cap],
            wheel_occ: vec![0; WHEEL / 64],
            ready: vec![0; cap / 64],
            head_seq: 0,
            tail_seq: 0,
            pending_count: 0,
        }
    }

    #[inline]
    fn slot(&self, seq: u64) -> usize {
        (seq & self.mask) as usize
    }

    #[inline]
    fn len(&self) -> u64 {
        self.tail_seq - self.head_seq
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.head_seq == self.tail_seq
    }

    /// Appends one instruction at the tail: resolves whatever producers
    /// have already issued (or committed), registers on the wakeup lists
    /// of those that have not. Entries with no outstanding producers
    /// become issue-eligible next cycle (`dispatch_cycle + 1`: the issue
    /// stage runs before dispatch within a cycle, so a just-dispatched
    /// instruction is first visible to it one cycle later — exactly as
    /// in the cycle-by-cycle loop).
    #[inline]
    fn push(&mut self, op: OpClass, src1: u64, src2: u64, addr: u64, flags: u8, cycle: u64) {
        let s = self.slot(self.tail_seq);
        self.op[s] = op;
        self.src1[s] = src1;
        self.src2[s] = src2;
        self.addr[s] = addr;
        self.done[s] = 0;
        self.flags[s] = flags;
        let mut ready_at = cycle + 1;
        let mut unresolved = 0u8;
        for (idx, src) in [src1, src2].into_iter().enumerate() {
            if src == NO_SRC || src < self.head_seq {
                continue; // immediate, or producer already committed
            }
            let ps = self.slot(src);
            if self.flags[ps] & F_ISSUED != 0 {
                ready_at = ready_at.max(self.done[ps]);
            } else {
                unresolved += 1;
                let e = ((s << 1) | idx) as u32;
                self.cons_next[e as usize] = self.cons_head[ps];
                self.cons_head[ps] = e;
            }
        }
        self.ready_at[s] = ready_at;
        self.unresolved[s] = unresolved;
        if unresolved == 0 {
            self.push_event(s, ready_at);
        }
        self.pending_count += 1;
        self.tail_seq += 1;
    }

    /// Queues `slot`'s operand-ready event at cycle `at` on the wheel.
    #[inline]
    fn push_event(&mut self, s: usize, at: u64) {
        let b = (at as usize) & (WHEEL - 1);
        self.wheel_next[s] = self.wheel[b];
        self.wheel[b] = s as u32;
        self.wheel_occ[b >> 6] |= 1u64 << (b & 63);
    }

    /// Moves every operand-ready event due at `cycle` into the ready
    /// bitmask. Aliased entries (a later lap of the wheel) stay queued.
    #[inline]
    fn drain_ready(&mut self, cycle: u64) {
        let b = (cycle as usize) & (WHEEL - 1);
        if self.wheel_occ[b >> 6] & (1u64 << (b & 63)) == 0 {
            return;
        }
        let mut s = self.wheel[b];
        let mut keep = NIL;
        while s != NIL {
            let next = self.wheel_next[s as usize];
            if self.ready_at[s as usize] <= cycle {
                self.ready[(s >> 6) as usize] |= 1u64 << (s & 63);
            } else {
                self.wheel_next[s as usize] = keep;
                keep = s;
            }
            s = next;
        }
        self.wheel[b] = keep;
        if keep == NIL {
            self.wheel_occ[b >> 6] &= !(1u64 << (b & 63));
        }
    }

    /// The earliest cycle strictly after `cycle` holding a queued
    /// operand-ready event, or `u64::MAX` if the wheel is empty.
    /// Aliased buckets make this a *lower bound* — exactly what the
    /// dead-cycle skip needs.
    fn next_event_after(&self, cycle: u64) -> u64 {
        let start = ((cycle + 1) as usize) & (WHEEL - 1);
        let nwords = self.wheel_occ.len();
        let start_word = start >> 6;
        let mut word = self.wheel_occ[start_word] & (!0u64 << (start & 63));
        let mut k = 0;
        loop {
            if word != 0 {
                let b = ((start_word + k) % nwords) * 64 + word.trailing_zeros() as usize;
                let d = (b + WHEEL - start) & (WHEEL - 1);
                return cycle + 1 + d as u64;
            }
            k += 1;
            if k > nwords {
                return u64::MAX;
            }
            word = self.wheel_occ[(start_word + k) % nwords];
        }
    }

    /// Marks the entry in `slot` issued with completion cycle `done`,
    /// and wakes its consumers: each learns this producer's completion
    /// cycle, and the last producer to issue queues the consumer's
    /// now-exact ready event on the wheel.
    fn mark_issued(&mut self, slot: usize, done: u64) {
        self.flags[slot] |= F_ISSUED;
        self.done[slot] = done;
        self.ready[slot >> 6] &= !(1u64 << (slot & 63));
        self.pending_count -= 1;
        let mut e = self.cons_head[slot];
        self.cons_head[slot] = NIL;
        while e != NIL {
            let c = (e >> 1) as usize;
            let next = self.cons_next[e as usize];
            self.ready_at[c] = self.ready_at[c].max(done);
            self.unresolved[c] -= 1;
            if self.unresolved[c] == 0 {
                self.push_event(c, self.ready_at[c]);
            }
            e = next;
        }
    }
}

/// Result of running a trace on a core.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Pipeline event counters.
    pub stats: CoreStats,
    /// Memory-system event counters.
    pub mem: MemStats,
    /// The clock the core ran at (Hz).
    pub clock_hz: f64,
    /// Top-down cycle attribution for the measured window. Class counts
    /// always sum to `stats.cycles`; empty (all zero) in contexts that
    /// reconstruct results from frozen dumps.
    pub profile: CoreProfile,
}

impl RunResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// Wall-clock seconds of the simulated execution.
    pub fn seconds(&self) -> f64 {
        self.stats.cycles as f64 / self.clock_hz
    }
}

/// One out-of-order core.
#[derive(Debug)]
pub struct Core {
    cfg: CoreConfig,
    pool: FuPool,
    predictor: TournamentPredictor,
    hierarchy: Hierarchy,
    stats: CoreStats,
    fetch_pc: u64,
    core_id: u32,
    check: CheckConfig,
    violations: Vec<Violation>,
}

impl Core {
    /// Builds a core from `cfg`. `core_id` selects the L3 slice/identity in
    /// multicore runs (it does not change single-core behaviour).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: CoreConfig, core_id: u32) -> Self {
        cfg.validate().expect("valid core config");
        let hierarchy = Hierarchy::new(cfg.memory.to_hierarchy(cfg.clock_hz));
        Core {
            pool: FuPool::new(cfg.fus.clone()),
            predictor: TournamentPredictor::new(cfg.predictor),
            hierarchy,
            stats: CoreStats::default(),
            fetch_pc: CODE_BASE + u64::from(core_id) * CODE_FOOTPRINT,
            core_id,
            check: CheckConfig::OFF,
            violations: Vec::new(),
            cfg,
        }
    }

    /// Enables in-loop invariant checking (occupancy bounds, cycle
    /// monotonicity, pipeline ordering). Off by default so the hot path
    /// pays a single predictable branch per cycle.
    pub fn with_checks(mut self, check: CheckConfig) -> Self {
        self.check = check;
        self
    }

    /// Drains the violations collected by the in-loop checks (empty
    /// unless checking was enabled and an invariant broke).
    pub fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// The configuration this core was built with.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Pre-warms the caches with the leading portion of a working set at
    /// `base` (see `hetsim_mem::Hierarchy::prewarm`).
    pub fn prewarm(&mut self, base: u64, working_set_bytes: u64) {
        self.hierarchy.prewarm(base, working_set_bytes);
    }

    /// Runs `n` instructions from `trace` to completion (dispatch `n`, then
    /// drain), returning the collected statistics.
    ///
    /// # Panics
    ///
    /// Panics if the trace ends before `n` instructions (plus steering
    /// lookahead) are available, or if the pipeline fails to make forward
    /// progress (an internal invariant violation).
    pub fn run<T: Iterator<Item = Inst>>(&mut self, trace: T, n: u64) -> RunResult {
        self.run_warmed(trace, 0, n)
    }

    /// Like [`Core::run`], but first executes `warmup` instructions to warm
    /// the caches and predictors, then measures the next `n` instructions
    /// (standard sampled-simulation methodology; cold-start misses would
    /// otherwise dominate short runs).
    ///
    /// # Panics
    ///
    /// As for [`Core::run`].
    pub fn run_warmed<T: Iterator<Item = Inst>>(
        &mut self,
        trace: T,
        warmup: u64,
        n: u64,
    ) -> RunResult {
        let window = match self.cfg.steering {
            SteeringPolicy::None => 0,
            SteeringPolicy::DualSpeed { window } => window,
        };
        let mut trace = trace.fuse();
        let mut lookahead: VecDeque<Inst> = VecDeque::with_capacity(window as usize + 1);

        let mut rob = RobRing::new(self.cfg.rob_entries);

        let mut cycle: u64 = u64::from(self.cfg.frontend_delay); // pipeline fill
        let mut dispatched: u64 = 0;
        let mut committed: u64 = 0;
        let mut lsq_occ: u32 = 0;
        let mut int_inflight: u32 = 0;
        let mut fp_inflight: u32 = 0;
        let mut redirect = Redirect::Open;
        let mut last_progress_cycle = cycle;
        let mut last_verified_cycle: Option<u64> = None;
        let mut skipped_cycles: u64 = 0;
        let mut wakeup_jumps: u64 = 0;
        let total = warmup + n;
        // Snapshot taken when the warmup region retires.
        let mut snapshot: Option<(u64, CoreStats, MemStats)> = if warmup == 0 {
            Some((cycle, self.stats, self.hierarchy.stats()))
        } else {
            None
        };
        // Top-down attribution: class counts are always maintained (they
        // must sum to the measured cycles), the histograms only under
        // the process-wide profiling switch, read once per run.
        let profiling = attribution::enabled();
        let mut profile = CoreProfile::default();

        while committed < total || !rob.is_empty() {
            // ---- Commit (in order, up to issue_width) ----
            let mut committed_now = 0;
            while committed_now < self.cfg.issue_width {
                if rob.is_empty() {
                    break;
                }
                let slot = rob.slot(rob.head_seq);
                if rob.flags[slot] & F_ISSUED == 0 || rob.done[slot] > cycle {
                    break;
                }
                let op = rob.op[slot];
                if op == OpClass::Store {
                    let _ = self.hierarchy.store(rob.addr[slot]);
                }
                if op.is_mem() {
                    lsq_occ -= 1;
                }
                if op.produces_value() {
                    if op.is_fp() {
                        fp_inflight -= 1;
                        self.stats.fp_rf_writes += 1;
                    } else {
                        int_inflight -= 1;
                        self.stats.int_rf_writes += 1;
                    }
                }
                rob.head_seq += 1;
                committed += 1;
                committed_now += 1;
            }
            if committed_now > 0 {
                last_progress_cycle = cycle;
                if snapshot.is_none() && committed >= warmup {
                    snapshot = Some((cycle, self.stats, self.hierarchy.stats()));
                }
            }

            // ---- Issue (oldest-first over the ready bitmask, up to
            // issue_width) ----
            rob.drain_ready(cycle);
            let mut issued_now = 0u32;
            if rob.pending_count > 0 {
                let head_slot = rob.slot(rob.head_seq);
                let nwords = rob.ready.len();
                let start_word = head_slot >> 6;
                // Pools that already refused an issue this cycle. Pool
                // state only changes on a *successful* issue, so one
                // refusal condemns every later candidate of the same pool
                // at this cycle — skip them instead of re-arbitrating
                // (and stop scanning once all four pools are dry).
                let mut blocked_pools: u32 = 0;
                'scan: for k in 0..nwords {
                    let mut w = start_word + k;
                    if w >= nwords {
                        w -= nwords;
                    }
                    let mut bits = rob.ready[w];
                    if k == 0 {
                        // Bits below the head slot are at least 63 slots
                        // dead by construction (see RobRing::new), so this
                        // mask is belt-and-braces for seq ordering.
                        bits &= !0u64 << (head_slot & 63);
                    }
                    // Every set bit is operands-ready by construction;
                    // only FU arbitration can still refuse.
                    while bits != 0 {
                        let slot = (w << 6) | bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let op = rob.op[slot];
                        let pool_bit = 1u32 << FuPool::pool_of(op);
                        if blocked_pools & pool_bit != 0 {
                            continue;
                        }
                        let prefer_fast = rob.flags[slot] & F_PREFER_FAST != 0;
                        let Some(issued) = self.pool.try_issue(op, cycle, prefer_fast) else {
                            blocked_pools |= pool_bit;
                            if blocked_pools == 0b1111 {
                                break 'scan;
                            }
                            continue;
                        };
                        // Compute completion time and record energy events.
                        let done = match op {
                            OpClass::Load => {
                                let mem = self.hierarchy.load(rob.addr[slot]);
                                if profiling && snapshot.is_some() {
                                    let h = if mem.level.is_dl1_miss() {
                                        &mut profile.mem_miss_latency
                                    } else {
                                        &mut profile.mem_hit_latency
                                    };
                                    h.record(u64::from(mem.latency));
                                }
                                cycle + u64::from(issued.latency) + u64::from(mem.latency)
                            }
                            _ => cycle + u64::from(issued.latency),
                        };
                        rob.mark_issued(slot, done);
                        let mispredicted = rob.flags[slot] & F_MISPREDICTED != 0;
                        self.count_issue(
                            op,
                            rob.src1[slot] != NO_SRC,
                            rob.src2[slot] != NO_SRC,
                            mispredicted,
                            issued.on_fast_alu,
                        );
                        if mispredicted {
                            // The branch resolves at `done`; dispatch
                            // resumes after the front-end refill. Until
                            // resolution the front end fetched down the
                            // wrong path — charge those fetch groups as
                            // energy events (the work is discarded, the
                            // switching is not).
                            redirect =
                                Redirect::ResumeAt(done + u64::from(self.cfg.frontend_delay));
                            self.stats.wrong_path_fetch_groups +=
                                done.saturating_sub(cycle).min(32);
                        }
                        issued_now += 1;
                        if issued_now == self.cfg.issue_width {
                            break 'scan;
                        }
                    }
                }
                if issued_now > 0 {
                    last_progress_cycle = cycle;
                }
            }

            // ---- Dispatch (front end, up to issue_width) ----
            let dispatch_open = match redirect {
                Redirect::Open => true,
                Redirect::Waiting => false,
                Redirect::ResumeAt(at) => {
                    if cycle >= at {
                        redirect = Redirect::Open;
                        true
                    } else {
                        false
                    }
                }
            };
            let mut dispatched_now = 0;
            let mut stall = Stall::None;
            if dispatch_open && dispatched < total {
                while dispatched_now < self.cfg.fetch_width && dispatched < total {
                    // Structural hazards.
                    if rob.len() as u32 == self.cfg.rob_entries {
                        self.stats.rob_full_stalls += 1;
                        stall = Stall::Rob;
                        break;
                    }
                    if rob.pending_count == self.cfg.iq_entries {
                        self.stats.iq_full_stalls += 1;
                        stall = Stall::Iq;
                        break;
                    }
                    // Pull the next instruction: with no steering window
                    // the lookahead buffer only ever holds a
                    // hazard-stalled pushback, so bypass it and read the
                    // trace directly; otherwise refill it so steering
                    // can peek.
                    let next = if window == 0 {
                        lookahead.pop_front().or_else(|| trace.next())
                    } else {
                        while lookahead.len() <= window as usize {
                            match trace.next() {
                                Some(i) => lookahead.push_back(i),
                                None => break,
                            }
                        }
                        lookahead.pop_front()
                    };
                    let Some(inst) = next else {
                        panic!("trace ended after {dispatched} of {total} instructions")
                    };
                    if inst.op.is_mem() && lsq_occ == self.cfg.lsq_entries {
                        self.stats.lsq_full_stalls += 1;
                        stall = Stall::Lsq;
                        lookahead.push_front(inst);
                        break;
                    }
                    if inst.op.produces_value() {
                        if inst.op.is_fp() {
                            if fp_inflight == self.cfg.fp_regs {
                                self.stats.reg_full_stalls += 1;
                                stall = Stall::Reg;
                                lookahead.push_front(inst);
                                break;
                            }
                        } else if int_inflight == self.cfg.int_regs {
                            self.stats.reg_full_stalls += 1;
                            stall = Stall::Reg;
                            lookahead.push_front(inst);
                            break;
                        }
                    }

                    // Steering decision (Section IV-C2): consumer within
                    // the next `window` instructions -> fast ALU, subject
                    // to the utilization-balancing objective (the single
                    // CMOS ALU must not saturate; the majority of ops keep
                    // flowing to the TFET ALUs).
                    let balance_ok = self.stats.alu_fast_ops * 9 <= (self.stats.alu_ops() + 16) * 4;
                    let prefer_fast = window > 0
                        && inst.op == OpClass::IntAlu
                        && balance_ok
                        && Self::consumer_in_window(&lookahead, window);

                    // Branch prediction at dispatch.
                    let mut mispredicted = false;
                    if let Some(b) = inst.branch {
                        mispredicted = self.predict_branch(&b);
                    }

                    let seq = rob.tail_seq;
                    if inst.op.is_mem() {
                        lsq_occ += 1;
                    }
                    if inst.op.produces_value() {
                        if inst.op.is_fp() {
                            fp_inflight += 1;
                        } else {
                            int_inflight += 1;
                        }
                    }
                    let to_src = |d: Option<u32>| {
                        d.and_then(|dist| seq.checked_sub(u64::from(dist)))
                            .unwrap_or(NO_SRC)
                    };
                    rob.push(
                        inst.op,
                        to_src(inst.src1_dist),
                        to_src(inst.src2_dist),
                        inst.addr.unwrap_or(0),
                        (u8::from(mispredicted) * F_MISPREDICTED)
                            | (u8::from(prefer_fast) * F_PREFER_FAST),
                        cycle,
                    );
                    dispatched += 1;
                    self.stats.dispatched += 1;
                    dispatched_now += 1;

                    if mispredicted {
                        // Block dispatch until this branch resolves.
                        redirect = Redirect::Waiting;
                        break;
                    }
                }
                if dispatched_now > 0 {
                    // One fetch group reached dispatch: IL1 energy event.
                    self.stats.fetch_groups += 1;
                    let pc = CODE_BASE + (self.fetch_pc % CODE_FOOTPRINT);
                    self.fetch_pc = self.fetch_pc.wrapping_add(64);
                    let _ = self.hierarchy.fetch(pc);
                    last_progress_cycle = cycle;
                }
            }

            if self.check.enabled() {
                self.verify_cycle(
                    cycle,
                    last_verified_cycle,
                    rob.len() as usize,
                    rob.pending_count as usize,
                    lsq_occ,
                    int_inflight,
                    fp_inflight,
                    committed,
                    dispatched,
                );
                last_verified_cycle = Some(cycle);
            }

            let mut iter_cycles: u64 = 1;
            cycle += 1;
            assert!(
                cycle - last_progress_cycle < 1_000_000,
                "pipeline deadlock at cycle {cycle} (committed {committed}/{total})"
            );

            // ---- Event-driven step: skip dead cycles in one jump ----
            // On a zero-progress cycle the pipeline is frozen: the only
            // state that advanced is the cycle counter and (at most) one
            // dispatch-stall counter, and both evolve identically on
            // every following cycle until the next event. Jump there.
            if committed_now == 0
                && issued_now == 0
                && dispatched_now == 0
                && (committed < total || !rob.is_empty())
            {
                let target = Self::next_wakeup(&rob, &self.pool, redirect, cycle - 1);
                if target > cycle {
                    // The plain loop would tick every dead cycle and trip
                    // its deadlock assert 1M cycles after the last
                    // progress; replicate that exactly.
                    let deadline = last_progress_cycle + 1_000_000;
                    assert!(
                        target < deadline,
                        "pipeline deadlock at cycle {deadline} (committed {committed}/{total})"
                    );
                    let skipped = target - cycle;
                    match stall {
                        Stall::Rob => self.stats.rob_full_stalls += skipped,
                        Stall::Iq => self.stats.iq_full_stalls += skipped,
                        Stall::Lsq => self.stats.lsq_full_stalls += skipped,
                        Stall::Reg => self.stats.reg_full_stalls += skipped,
                        Stall::None => {}
                    }
                    skipped_cycles += skipped;
                    wakeup_jumps += 1;
                    iter_cycles += skipped;
                    cycle = target;
                }
            }

            // ---- Top-down cycle attribution ----
            // Charge this iteration's cycle — plus any skipped dead
            // cycles, whose classification is frozen along with the rest
            // of the pipeline state — to exactly one class. Iterations
            // before the warmup snapshot are outside the measured window
            // and stay uncharged, so the classes sum to `stats.cycles`.
            if snapshot.is_some() {
                let class = if committed_now > 0 {
                    CycleClass::Retire
                } else if dispatched_now > 0 {
                    CycleClass::Frontend
                } else if !dispatch_open {
                    CycleClass::BranchRedirect
                } else if !rob.is_empty() && {
                    let hs = rob.slot(rob.head_seq);
                    rob.flags[hs] & F_ISSUED != 0 && rob.op[hs].is_mem()
                } {
                    // The oldest in-flight instruction is an outstanding
                    // load/store: everything behind it (including any
                    // dispatch stall) is waiting on memory.
                    CycleClass::MemLatency
                } else if stall != Stall::None {
                    CycleClass::RobFull
                } else if !rob.is_empty() {
                    CycleClass::IssueBound
                } else {
                    CycleClass::IdleSkipped
                };
                profile.classes.charge(class, iter_cycles);
                if profiling {
                    profile.occupancy.rob.record_n(rob.len(), iter_cycles);
                    profile
                        .occupancy
                        .iq
                        .record_n(u64::from(rob.pending_count), iter_cycles);
                    profile
                        .occupancy
                        .lsq
                        .record_n(u64::from(lsq_occ), iter_cycles);
                }
            }
        }

        telemetry::record(skipped_cycles, wakeup_jumps);
        let (snap_cycle, snap_stats, snap_mem) =
            snapshot.expect("warmup <= total instructions, so the snapshot was taken");
        self.stats.cycles = cycle;
        self.stats.committed = committed;
        let mut stats = self.stats.minus(&snap_stats);
        stats.cycles = cycle - snap_cycle;
        stats.committed = committed - warmup.min(committed);
        profile.cycles = cycle - snap_cycle;
        debug_assert_eq!(
            profile.classes.total(),
            profile.cycles,
            "every measured cycle is charged to exactly one class"
        );
        RunResult {
            stats,
            mem: self.hierarchy.stats().minus(&snap_mem),
            clock_hz: self.cfg.clock_hz,
            profile,
        }
    }

    /// The earliest cycle after `cycle` at which any pipeline stage could
    /// make progress, given that the cycle just executed made none:
    ///
    /// * the ROB head's completion (commit),
    /// * the next occupied timing-wheel bucket (a lower bound on the
    ///   next operand-ready event — aliased entries wake early, and if
    ///   the entry's unit class is still busy when it arrives, the
    ///   resulting dead cycle re-enters this function and the
    ///   ready-mask branch below takes over),
    /// * per ready-but-FU-blocked instruction: its unit class's
    ///   next-free time (exact — FU free times are frozen during a dead
    ///   gap, and the entry just failed arbitration so the class is busy
    ///   strictly past `cycle`),
    /// * the front-end redirect resume time (dispatch).
    ///
    /// Dispatch stalls need no candidate of their own: a structural
    /// hazard only clears through a commit or an issue. Waking *early*
    /// is harmless (the wakeup cycle executes as a dead cycle and the
    /// skip re-arms); waking late is impossible because every candidate
    /// above is a lower bound on the corresponding event. Returns
    /// `u64::MAX` when nothing can ever progress (a genuine deadlock,
    /// reported by the caller exactly like the cycle-by-cycle loop did).
    fn next_wakeup(rob: &RobRing, pool: &FuPool, redirect: Redirect, cycle: u64) -> u64 {
        let mut wake = match redirect {
            Redirect::ResumeAt(at) => at,
            _ => u64::MAX,
        };
        if !rob.is_empty() {
            let hs = rob.slot(rob.head_seq);
            if rob.flags[hs] & F_ISSUED != 0 {
                wake = wake.min(rob.done[hs]);
            }
        }
        wake = wake.min(rob.next_event_after(cycle));
        for (w, &word) in rob.ready.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let slot = (w << 6) | bits.trailing_zeros() as usize;
                bits &= bits - 1;
                wake = wake.min(pool.next_free(rob.op[slot]));
            }
        }
        debug_assert!(wake > cycle, "wakeup must move forward");
        wake
    }

    /// The per-cycle invariant sweep (only called with checking
    /// enabled): structure occupancies within their configured
    /// capacities, the pipeline-order relation, and cycle
    /// monotonicity. Each invariant is reported at most once per core
    /// so a broken bound does not flood the report.
    #[allow(clippy::too_many_arguments)]
    fn verify_cycle(
        &mut self,
        cycle: u64,
        last_verified: Option<u64>,
        rob_len: usize,
        iq_len: usize,
        lsq_occ: u32,
        int_inflight: u32,
        fp_inflight: u32,
        committed: u64,
        dispatched: u64,
    ) {
        let caps = [
            (
                "cpu.rob_occupancy",
                "rob",
                rob_len as u32,
                self.cfg.rob_entries,
            ),
            ("cpu.iq_occupancy", "iq", iq_len as u32, self.cfg.iq_entries),
            ("cpu.lsq_occupancy", "lsq", lsq_occ, self.cfg.lsq_entries),
            (
                "cpu.int_rf_occupancy",
                "int_rf",
                int_inflight,
                self.cfg.int_regs,
            ),
            (
                "cpu.fp_rf_occupancy",
                "fp_rf",
                fp_inflight,
                self.cfg.fp_regs,
            ),
        ];
        for (invariant, what, occ, cap) in caps {
            if occ > cap {
                self.record_once(
                    invariant,
                    format!("{what} occupancy <= {cap}"),
                    format!("{what}={occ} cycle={cycle}"),
                );
            }
        }
        if committed > dispatched {
            self.record_once(
                "cpu.pipeline_order",
                "committed <= dispatched".to_string(),
                format!("committed={committed} dispatched={dispatched} cycle={cycle}"),
            );
        }
        if let Some(prev) = last_verified {
            if cycle <= prev {
                self.record_once(
                    "cpu.cycle_monotone",
                    "cycle strictly increases".to_string(),
                    format!("cycle={cycle} previous={prev}"),
                );
            }
        }
    }

    /// Records a violation at this core's path, once per invariant.
    fn record_once(&mut self, invariant: &'static str, expected: String, actual: String) {
        if self.violations.iter().any(|v| v.invariant == invariant) {
            return;
        }
        self.violations.push(Violation {
            invariant,
            path: format!("core{}", self.core_id),
            expected,
            actual,
        });
    }

    /// Steering lookahead: does any of the next `window` instructions
    /// consume the value produced by the instruction just popped?
    fn consumer_in_window(lookahead: &VecDeque<Inst>, window: u32) -> bool {
        for k in 1..=window {
            let Some(next) = lookahead.get((k - 1) as usize) else {
                break;
            };
            if next.src1_dist == Some(k) || next.src2_dist == Some(k) {
                return true;
            }
        }
        false
    }

    /// Predicts a branch at dispatch and trains the predictor; returns
    /// whether the prediction was wrong (direction, BTB target, or RAS).
    fn predict_branch(&mut self, b: &BranchInfo) -> bool {
        if b.is_call {
            self.predictor.push_call();
            // Calls are unconditional with known targets.
            self.predictor.update(b.pc, true);
            return false;
        }
        if b.is_return {
            let ras_ok = self.predictor.pop_return();
            return !ras_ok;
        }
        let pred = self.predictor.predict(b.pc);
        self.predictor.update(b.pc, b.taken);
        let direction_wrong = pred.taken != b.taken;
        let target_missing = b.taken && pred.taken && !pred.target_known;
        direction_wrong || target_missing
    }

    /// Per-class counters at issue (each instruction issues exactly once).
    fn count_issue(
        &mut self,
        op: OpClass,
        has_src1: bool,
        has_src2: bool,
        mispredicted: bool,
        on_fast_alu: bool,
    ) {
        self.stats.issues += 1;
        // Register-file reads.
        let reads = u64::from(has_src1) + u64::from(has_src2);
        if op.is_fp() {
            self.stats.fp_rf_reads += reads;
        } else {
            self.stats.int_rf_reads += reads;
        }
        match op {
            OpClass::IntAlu => {
                if on_fast_alu {
                    self.stats.alu_fast_ops += 1;
                } else {
                    self.stats.alu_slow_ops += 1;
                }
            }
            OpClass::IntMul => self.stats.int_mul_ops += 1,
            OpClass::IntDiv => self.stats.int_div_ops += 1,
            OpClass::FpAdd => self.stats.fp_add_ops += 1,
            OpClass::FpMul => self.stats.fp_mul_ops += 1,
            OpClass::FpDiv => self.stats.fp_div_ops += 1,
            OpClass::Load => self.stats.loads += 1,
            OpClass::Store => self.stats.stores += 1,
            OpClass::Branch => {
                self.stats.branches += 1;
                if mispredicted {
                    self.stats.mispredicts += 1;
                }
            }
        }
    }
}

/// Validates the accounting identities of one [`RunResult`] against
/// `cfg`, recording violations into `checker` (scoped under `core`).
///
/// The relations are chosen to hold for *any* measured window: warmed
/// runs ([`Core::run_warmed`]) subtract a snapshot taken at a commit
/// boundary, so issue-time counters (per-class ops) and commit-time
/// counters (`committed`, RF writes, store DL1 accesses) can diverge
/// by the in-flight window — the bounds carry exactly that slack
/// (`rob_entries`, `lsq_entries`), and collapse to equalities for
/// unwarmed runs. All relations are linear, so they also hold for
/// `merge`d stats (multicore chips, campaign aggregates) with the
/// slack scaled by the run count (see the `slack_runs` parameter).
pub fn validate_run(cfg: &CoreConfig, result: &RunResult, slack_runs: u64, checker: &mut Checker) {
    let s = &result.stats;
    let m = &result.mem;
    checker.scoped("core", |c| {
        let by_class = s.alu_ops()
            + s.int_mul_ops
            + s.int_div_ops
            + s.fpu_ops()
            + s.loads
            + s.stores
            + s.branches;
        c.eq_u64(
            "cpu.issue_class_conservation",
            ("by_class_ops", by_class),
            ("issues", s.issues),
        );
        c.le_u64(
            "cpu.issue_le_commit",
            ("issues", s.issues),
            ("committed", s.committed),
        );
        c.le_u64(
            "cpu.commit_issue_slack",
            ("committed", s.committed),
            (
                "issues + inflight_bound",
                s.issues + slack_runs * u64::from(cfg.rob_entries + cfg.issue_width),
            ),
        );
        c.le_u64(
            "cpu.mispredict_le_branches",
            ("mispredicts", s.mispredicts),
            ("branches", s.branches),
        );
        c.le_u64(
            "cpu.wrong_path_bound",
            ("wrong_path_fetch_groups", s.wrong_path_fetch_groups),
            ("32 * mispredicts", 32 * s.mispredicts),
        );
        c.le_u64(
            "cpu.rf_read_bound",
            ("rf_reads", s.int_rf_reads + s.fp_rf_reads),
            ("2 * issues", 2 * s.issues),
        );
        c.le_u64(
            "cpu.rf_write_le_commit",
            ("rf_writes", s.int_rf_writes + s.fp_rf_writes),
            ("committed", s.committed),
        );
        c.check(
            "cpu.cycles_positive",
            "cycles > 0 when work committed",
            s.committed == 0 || s.cycles > 0,
            format!("cycles={} committed={}", s.cycles, s.committed),
        );
        c.eq_u64(
            "cpu.il1_fetch_conservation",
            ("fetch_groups", s.fetch_groups),
            ("il1_accesses", m.il1.accesses),
        );
        let ls = s.loads + s.stores;
        let dl1 = m.dl1_accesses();
        c.le_u64(
            "cpu.dl1_demand_lower",
            ("loads + stores", ls),
            ("dl1_accesses", dl1),
        );
        c.le_u64(
            "cpu.dl1_demand_upper",
            ("dl1_accesses", dl1),
            (
                "loads + stores + lsq_bound",
                ls + slack_runs * u64::from(cfg.lsq_entries),
            ),
        );
        // Top-down attribution conservation: every measured cycle is
        // charged to exactly one class. Skipped for contexts that carry
        // no profile (results reconstructed from frozen dumps, merged
        // outcomes).
        if !result.profile.is_empty() {
            c.eq_u64(
                "cpu.profile_class_conservation",
                ("class_cycles", result.profile.classes.total()),
                ("profile_cycles", result.profile.cycles),
            );
            c.eq_u64(
                "cpu.profile_cycles_match",
                ("profile_cycles", result.profile.cycles),
                ("cycles", s.cycles),
            );
        }
    });
    hetsim_mem::stats::validate_mem_stats(m, checker);
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::config::{Dl1Config, MemoryConfig};
    use crate::fu::FuPoolConfig;
    use hetsim_trace::apps;
    use hetsim_trace::stream::TraceGenerator;

    const N: u64 = 20_000;

    fn run_app(app: &str, cfg: CoreConfig, seed: u64) -> RunResult {
        let profile = apps::profile(app).expect("known app");
        let mut core = Core::new(cfg, 0);
        core.run(TraceGenerator::new(&profile, seed), N)
    }

    #[test]
    fn commits_exactly_n() {
        let r = run_app("lu", CoreConfig::default(), 1);
        assert_eq!(r.stats.committed, N);
        assert_eq!(r.stats.dispatched, N);
    }

    #[test]
    fn ipc_is_plausible_for_a_4_wide_core() {
        let r = run_app("lu", CoreConfig::default(), 1);
        let ipc = r.ipc();
        assert!(ipc > 0.8, "LU on BaseCMOS should exceed IPC 0.8, got {ipc}");
        assert!(ipc <= 4.0, "cannot exceed machine width, got {ipc}");
    }

    #[test]
    fn tfet_fus_and_caches_slow_the_core_down() {
        let base = run_app("lu", CoreConfig::default(), 1);
        let mut het = CoreConfig::default();
        het.fus = FuPoolConfig::tfet();
        het.memory = MemoryConfig::tfet();
        let slow = run_app("lu", het, 1);
        assert!(
            slow.stats.cycles > base.stats.cycles,
            "BaseHet-style core must be slower: {} vs {}",
            slow.stats.cycles,
            base.stats.cycles
        );
    }

    #[test]
    fn asymmetric_dl1_recovers_performance() {
        let mut het = CoreConfig::default();
        het.fus = FuPoolConfig::tfet();
        het.memory = MemoryConfig::tfet();
        let basehet = run_app("lu", het.clone(), 1);

        let mut adv = het;
        adv.memory.dl1 = Dl1Config::Asymmetric { slow_extra: 4 };
        let advhet = run_app("lu", adv, 1);
        assert!(
            advhet.stats.cycles < basehet.stats.cycles,
            "asymmetric DL1 should win on a DL1-resident app: {} vs {}",
            advhet.stats.cycles,
            basehet.stats.cycles
        );
    }

    #[test]
    fn dual_speed_steering_uses_both_clusters() {
        let mut cfg = CoreConfig::default();
        cfg.fus = FuPoolConfig::dual_speed();
        cfg.steering = SteeringPolicy::DualSpeed { window: 4 };
        let r = run_app("radix", cfg, 2);
        assert!(r.stats.alu_fast_ops > 0, "some ops steered fast");
        assert!(r.stats.alu_slow_ops > 0, "some ops steered slow");
        assert!(
            r.stats.alu_slow_ops > r.stats.alu_fast_ops,
            "majority should go to the TFET cluster: fast={} slow={}",
            r.stats.alu_fast_ops,
            r.stats.alu_slow_ops
        );
    }

    #[test]
    fn mispredictions_occur_at_plausible_rates() {
        let r = run_app("raytrace", CoreConfig::default(), 3);
        let rate = r.stats.mispredict_rate();
        assert!(rate > 0.005, "raytrace must mispredict sometimes: {rate}");
        assert!(rate < 0.25, "and not pathologically: {rate}");
    }

    #[test]
    fn predictable_apps_mispredict_less_than_branchy_ones() {
        let bs = run_app("blackscholes", CoreConfig::default(), 4);
        let rt = run_app("raytrace", CoreConfig::default(), 4);
        assert!(
            bs.stats.mispredict_rate() < rt.stats.mispredict_rate(),
            "blackscholes {} vs raytrace {}",
            bs.stats.mispredict_rate(),
            rt.stats.mispredict_rate()
        );
    }

    #[test]
    fn event_counts_are_consistent() {
        let r = run_app("fft", CoreConfig::default(), 5);
        let s = &r.stats;
        let by_class = s.alu_ops()
            + s.int_mul_ops
            + s.int_div_ops
            + s.fpu_ops()
            + s.loads
            + s.stores
            + s.branches;
        assert_eq!(by_class, s.committed);
        assert_eq!(s.issues, s.committed);
        assert_eq!(s.loads + s.stores, r.mem.dl1_accesses());
    }

    #[test]
    fn small_working_set_hits_dl1() {
        let r = run_app("blackscholes", CoreConfig::default(), 6);
        assert!(
            r.mem.dl1_hit_rate() > 0.8,
            "hit rate {}",
            r.mem.dl1_hit_rate()
        );
        let c = run_app("canneal", CoreConfig::default(), 6);
        assert!(
            r.mem.dl1_hit_rate() > c.mem.dl1_hit_rate() + 0.3,
            "blackscholes must be far more cache-friendly than canneal"
        );
    }

    #[test]
    fn canneal_misses_everywhere() {
        let r = run_app("canneal", CoreConfig::default(), 7);
        assert!(r.mem.dram_accesses > 100, "canneal should reach DRAM");
        let lu = run_app("lu", CoreConfig::default(), 7);
        assert!(r.ipc() < lu.ipc(), "memory-bound canneal slower than LU");
    }

    #[test]
    fn larger_rob_never_hurts() {
        let mut big = CoreConfig::default();
        big.rob_entries = 192;
        big.fp_regs = 128;
        let base = run_app("fft", CoreConfig::default(), 8);
        let enh = run_app("fft", big, 8);
        assert!(enh.stats.cycles <= base.stats.cycles + base.stats.cycles / 50);
    }

    #[test]
    fn wrong_path_fetch_tracks_mispredictions() {
        let r = run_app("raytrace", CoreConfig::default(), 3);
        assert!(r.stats.mispredicts > 0);
        assert!(
            r.stats.wrong_path_fetch_groups > 0,
            "mispredicts must burn wrong-path fetches"
        );
        // Bounded: at most the clamp (32) per misprediction.
        assert!(r.stats.wrong_path_fetch_groups <= 32 * r.stats.mispredicts);

        let bs = run_app("blackscholes", CoreConfig::default(), 3);
        let per_miss = |s: &crate::stats::CoreStats| {
            s.wrong_path_fetch_groups as f64 / s.mispredicts.max(1) as f64
        };
        assert!(per_miss(&bs.stats) < 33.0);
    }

    #[test]
    fn mispredict_penalty_scales_with_frontend_depth() {
        // A deeper front end pays a larger redirect penalty on a branchy
        // app; cycle counts must increase monotonically.
        let cycles = |depth: u32| {
            let mut cfg = CoreConfig::default();
            cfg.frontend_delay = depth;
            run_app("raytrace", cfg, 5).stats.cycles
        };
        let shallow = cycles(4);
        let nominal = cycles(10);
        let deep = cycles(20);
        assert!(shallow < nominal, "{shallow} < {nominal}");
        assert!(nominal < deep, "{nominal} < {deep}");
    }

    /// Regression for the redirect machinery: a return with an empty RAS
    /// mispredicts deterministically, dispatch stays closed until the
    /// branch resolves plus the refill delay, and the end-to-end cycle
    /// count therefore shifts by *exactly* the front-end depth delta.
    #[test]
    fn redirect_resumes_exactly_after_frontend_refill() {
        let alu = Inst::simple(OpClass::IntAlu);
        let ret = Inst {
            op: OpClass::Branch,
            src1_dist: None,
            src2_dist: None,
            addr: None,
            branch: Some(BranchInfo {
                pc: 0x4000_0100,
                taken: true,
                is_call: false,
                is_return: true,
            }),
        };
        let run = |depth: u32| {
            let mut cfg = CoreConfig::default();
            cfg.frontend_delay = depth;
            let trace = std::iter::repeat_n(alu, 40)
                .chain(std::iter::once(ret))
                .chain(std::iter::repeat_n(alu, 40));
            let mut core = Core::new(cfg, 0);
            core.run(trace, 81)
        };
        let shallow = run(10);
        let deep = run(25);
        assert_eq!(shallow.stats.mispredicts, 1, "empty-RAS return mispredicts");
        assert_eq!(deep.stats.mispredicts, 1);
        assert_eq!(
            deep.stats.cycles - shallow.stats.cycles,
            25 - 10,
            "the only difference between the runs is the refill delay"
        );
        // The redirect shadow is timed from branch resolution, not from
        // the refill: wrong-path fetch accounting is depth-independent.
        assert_eq!(
            shallow.stats.wrong_path_fetch_groups,
            deep.stats.wrong_path_fetch_groups
        );
    }

    #[test]
    fn half_clock_doubles_runtime_in_seconds() {
        let base = run_app("lu", CoreConfig::default(), 9);
        let mut slow = CoreConfig::default();
        slow.clock_hz = 1.0e9;
        let tfet = run_app("lu", slow, 9);
        // Core-bound work doubles in seconds; memory-bound portions cost
        // fewer *cycles* at the lower clock (DRAM nanoseconds are fixed),
        // so the overall ratio lands between 1.3x and 2x.
        let ratio = tfet.seconds() / base.seconds();
        assert!((1.3..2.2).contains(&ratio), "seconds ratio {ratio}");
    }
}
