//! Process-global telemetry for the event-driven core step.
//!
//! The core's dead-cycle skip (see [`crate::core`]) is a pure
//! performance device: it must never change a single `CoreStats`
//! counter, so its own accounting cannot live there (outcome layouts
//! are pinned by the result-cache schema and the regression baselines).
//! Instead each finished run folds its skip totals into these relaxed
//! process-wide atomics, and the CLI surfaces them under the
//! machine-dependent `runner.timing.*` section of the stats dump —
//! exempt from the regression diff by the same policy that covers the
//! wall-time histograms.
//!
//! One atomic add per *run* (not per skip), so the hot loop never
//! touches shared cache lines.

use std::sync::atomic::{AtomicU64, Ordering};

static SKIPPED_CYCLES: AtomicU64 = AtomicU64::new(0);
static WAKEUP_JUMPS: AtomicU64 = AtomicU64::new(0);

/// Folds one run's skip totals in: `skipped` dead cycles elided across
/// `jumps` wakeup jumps.
pub fn record(skipped: u64, jumps: u64) {
    if skipped == 0 && jumps == 0 {
        return;
    }
    SKIPPED_CYCLES.fetch_add(skipped, Ordering::Relaxed);
    WAKEUP_JUMPS.fetch_add(jumps, Ordering::Relaxed);
}

/// Total dead cycles skipped by every run since the last [`reset`].
pub fn skipped_cycles() -> u64 {
    SKIPPED_CYCLES.load(Ordering::Relaxed)
}

/// Total wakeup jumps taken by every run since the last [`reset`].
pub fn wakeup_jumps() -> u64 {
    WAKEUP_JUMPS.load(Ordering::Relaxed)
}

/// Zeroes both totals (start of a measured region).
pub fn reset() {
    SKIPPED_CYCLES.store(0, Ordering::Relaxed);
    WAKEUP_JUMPS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Other tests in this crate run cores concurrently (which also
    /// record), so only delta-monotonicity is assertable here.
    #[test]
    fn record_accumulates() {
        let before_skipped = skipped_cycles();
        let before_jumps = wakeup_jumps();
        record(100, 3);
        record(50, 1);
        assert!(skipped_cycles() >= before_skipped + 150);
        assert!(wakeup_jumps() >= before_jumps + 4);
    }
}
