//! Pipeline event counters.
//!
//! Every counter here is an energy event for the power model: committed
//! operations drive functional-unit dynamic energy, register-file
//! reads/writes drive RF energy, dispatches drive ROB/rename energy, and so
//! on. Cycle counts drive leakage.

/// Event counters for one core's run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Instructions dispatched into the ROB (equals committed in this
    /// trace-driven model: wrong-path work is modeled as fetch bubbles).
    pub dispatched: u64,
    /// Fetch groups delivered by the front end (IL1 accesses).
    pub fetch_groups: u64,
    /// Wrong-path fetch groups: cycles the front end spent fetching down a
    /// mispredicted path before the redirect. Trace-driven simulation does
    /// not execute wrong-path work, but the fetch/decode *energy* is real
    /// and McPAT charges it; so do we.
    pub wrong_path_fetch_groups: u64,
    /// Issue-queue issue events.
    pub issues: u64,

    // Committed operations by class.
    /// Simple ALU ops executed on the fast (CMOS) ALU cluster.
    pub alu_fast_ops: u64,
    /// Simple ALU ops executed on the slow (TFET) ALU cluster. For
    /// homogeneous designs all ALU ops land here or in `alu_fast_ops`
    /// depending on the cluster technology.
    pub alu_slow_ops: u64,
    /// Integer multiplies.
    pub int_mul_ops: u64,
    /// Integer divides.
    pub int_div_ops: u64,
    /// FP adds.
    pub fp_add_ops: u64,
    /// FP multiplies.
    pub fp_mul_ops: u64,
    /// FP divides.
    pub fp_div_ops: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Branches executed.
    pub branches: u64,
    /// Branches mispredicted (direction or target).
    pub mispredicts: u64,

    // Register-file traffic.
    /// Integer RF reads.
    pub int_rf_reads: u64,
    /// Integer RF writes.
    pub int_rf_writes: u64,
    /// FP RF reads.
    pub fp_rf_reads: u64,
    /// FP RF writes.
    pub fp_rf_writes: u64,

    // Backpressure diagnostics (not energy events; used in tests/reports).
    /// Cycles dispatch stalled because the ROB was full.
    pub rob_full_stalls: u64,
    /// Cycles dispatch stalled because the IQ was full.
    pub iq_full_stalls: u64,
    /// Cycles dispatch stalled because the LSQ was full.
    pub lsq_full_stalls: u64,
    /// Cycles dispatch stalled because rename registers ran out.
    pub reg_full_stalls: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Total simple-ALU operations across both clusters.
    pub fn alu_ops(&self) -> u64 {
        self.alu_fast_ops + self.alu_slow_ops
    }

    /// Total FPU operations.
    pub fn fpu_ops(&self) -> u64 {
        self.fp_add_ops + self.fp_mul_ops + self.fp_div_ops
    }

    /// Counter-wise difference `self - baseline` (for warmup snapshots);
    /// `cycles`/`committed` are left to the caller to recompute.
    pub fn minus(&self, b: &CoreStats) -> CoreStats {
        CoreStats {
            cycles: self.cycles,
            committed: self.committed,
            dispatched: self.dispatched - b.dispatched,
            fetch_groups: self.fetch_groups - b.fetch_groups,
            wrong_path_fetch_groups: self.wrong_path_fetch_groups - b.wrong_path_fetch_groups,
            issues: self.issues - b.issues,
            alu_fast_ops: self.alu_fast_ops - b.alu_fast_ops,
            alu_slow_ops: self.alu_slow_ops - b.alu_slow_ops,
            int_mul_ops: self.int_mul_ops - b.int_mul_ops,
            int_div_ops: self.int_div_ops - b.int_div_ops,
            fp_add_ops: self.fp_add_ops - b.fp_add_ops,
            fp_mul_ops: self.fp_mul_ops - b.fp_mul_ops,
            fp_div_ops: self.fp_div_ops - b.fp_div_ops,
            loads: self.loads - b.loads,
            stores: self.stores - b.stores,
            branches: self.branches - b.branches,
            mispredicts: self.mispredicts - b.mispredicts,
            int_rf_reads: self.int_rf_reads - b.int_rf_reads,
            int_rf_writes: self.int_rf_writes - b.int_rf_writes,
            fp_rf_reads: self.fp_rf_reads - b.fp_rf_reads,
            fp_rf_writes: self.fp_rf_writes - b.fp_rf_writes,
            rob_full_stalls: self.rob_full_stalls - b.rob_full_stalls,
            iq_full_stalls: self.iq_full_stalls - b.iq_full_stalls,
            lsq_full_stalls: self.lsq_full_stalls - b.lsq_full_stalls,
            reg_full_stalls: self.reg_full_stalls - b.reg_full_stalls,
        }
    }

    /// Accumulates another core's counters.
    pub fn merge(&mut self, o: &CoreStats) {
        self.cycles = self.cycles.max(o.cycles);
        self.committed += o.committed;
        self.dispatched += o.dispatched;
        self.fetch_groups += o.fetch_groups;
        self.wrong_path_fetch_groups += o.wrong_path_fetch_groups;
        self.issues += o.issues;
        self.alu_fast_ops += o.alu_fast_ops;
        self.alu_slow_ops += o.alu_slow_ops;
        self.int_mul_ops += o.int_mul_ops;
        self.int_div_ops += o.int_div_ops;
        self.fp_add_ops += o.fp_add_ops;
        self.fp_mul_ops += o.fp_mul_ops;
        self.fp_div_ops += o.fp_div_ops;
        self.loads += o.loads;
        self.stores += o.stores;
        self.branches += o.branches;
        self.mispredicts += o.mispredicts;
        self.int_rf_reads += o.int_rf_reads;
        self.int_rf_writes += o.int_rf_writes;
        self.fp_rf_reads += o.fp_rf_reads;
        self.fp_rf_writes += o.fp_rf_writes;
        self.rob_full_stalls += o.rob_full_stalls;
        self.iq_full_stalls += o.iq_full_stalls;
        self.lsq_full_stalls += o.lsq_full_stalls;
        self.reg_full_stalls += o.reg_full_stalls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(CoreStats::default().ipc(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let s = CoreStats {
            cycles: 100,
            committed: 250,
            branches: 50,
            mispredicts: 5,
            ..CoreStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn merge_takes_max_cycles_and_sums_events() {
        let mut a = CoreStats {
            cycles: 100,
            committed: 10,
            ..CoreStats::default()
        };
        let b = CoreStats {
            cycles: 80,
            committed: 20,
            ..CoreStats::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 100);
        assert_eq!(a.committed, 30);
    }
}
