//! Pipeline event counters.
//!
//! Every counter here is an energy event for the power model: committed
//! operations drive functional-unit dynamic energy, register-file
//! reads/writes drive RF energy, dispatches drive ROB/rename energy, and so
//! on. Cycle counts drive leakage.
//!
//! The struct is defined through [`hetsim_stats::counters!`], which derives
//! `merge`/`minus` from the per-field policy annotations (and `iter()`,
//! `get`/`set` by name, serde support). The two aggregation directions are
//! asymmetric by design and the annotations spell that out:
//!
//! * `cycles = max / keep` — cores run in parallel, so multicore merges
//!   take the slowest core; warmup subtraction keeps the running value for
//!   the caller to recompute (the measured region's cycle span is
//!   `end_cycle - snapshot_cycle`, not a counter difference).
//! * `committed = sum / keep` — commits add across cores, but the warmup
//!   path recomputes the measured-region commit count itself.
//! * Everything else defaults to `sum / sub` (saturating subtraction).

use hetsim_stats::counters;

counters! {
    /// Event counters for one core's run.
    pub struct CoreStats {
        /// Total cycles simulated.
        pub cycles: u64 = max / keep,
        /// Instructions committed.
        pub committed: u64 = sum / keep,
        /// Instructions dispatched into the ROB (equals committed in this
        /// trace-driven model: wrong-path work is modeled as fetch bubbles).
        pub dispatched: u64,
        /// Fetch groups delivered by the front end (IL1 accesses).
        pub fetch_groups: u64,
        /// Wrong-path fetch groups: cycles the front end spent fetching down a
        /// mispredicted path before the redirect. Trace-driven simulation does
        /// not execute wrong-path work, but the fetch/decode *energy* is real
        /// and McPAT charges it; so do we.
        pub wrong_path_fetch_groups: u64,
        /// Issue-queue issue events.
        pub issues: u64,

        // Committed operations by class.
        /// Simple ALU ops executed on the fast (CMOS) ALU cluster.
        pub alu_fast_ops: u64,
        /// Simple ALU ops executed on the slow (TFET) ALU cluster. For
        /// homogeneous designs all ALU ops land here or in `alu_fast_ops`
        /// depending on the cluster technology.
        pub alu_slow_ops: u64,
        /// Integer multiplies.
        pub int_mul_ops: u64,
        /// Integer divides.
        pub int_div_ops: u64,
        /// FP adds.
        pub fp_add_ops: u64,
        /// FP multiplies.
        pub fp_mul_ops: u64,
        /// FP divides.
        pub fp_div_ops: u64,
        /// Loads executed.
        pub loads: u64,
        /// Stores executed.
        pub stores: u64,
        /// Branches executed.
        pub branches: u64,
        /// Branches mispredicted (direction or target).
        pub mispredicts: u64,

        // Register-file traffic.
        /// Integer RF reads.
        pub int_rf_reads: u64,
        /// Integer RF writes.
        pub int_rf_writes: u64,
        /// FP RF reads.
        pub fp_rf_reads: u64,
        /// FP RF writes.
        pub fp_rf_writes: u64,

        // Backpressure diagnostics (not energy events; used in tests/reports).
        /// Cycles dispatch stalled because the ROB was full.
        pub rob_full_stalls: u64,
        /// Cycles dispatch stalled because the IQ was full.
        pub iq_full_stalls: u64,
        /// Cycles dispatch stalled because the LSQ was full.
        pub lsq_full_stalls: u64,
        /// Cycles dispatch stalled because rename registers ran out.
        pub reg_full_stalls: u64,
    }
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Total simple-ALU operations across both clusters.
    pub fn alu_ops(&self) -> u64 {
        self.alu_fast_ops + self.alu_slow_ops
    }

    /// Total FPU operations.
    pub fn fpu_ops(&self) -> u64 {
        self.fp_add_ops + self.fp_mul_ops + self.fp_div_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(CoreStats::default().ipc(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let s = CoreStats {
            cycles: 100,
            committed: 250,
            branches: 50,
            mispredicts: 5,
            ..CoreStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn merge_takes_max_cycles_and_sums_events() {
        let mut a = CoreStats {
            cycles: 100,
            committed: 10,
            ..CoreStats::default()
        };
        let b = CoreStats {
            cycles: 80,
            committed: 20,
            ..CoreStats::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 100);
        assert_eq!(a.committed, 30);
    }

    #[test]
    fn minus_keeps_cycles_and_committed_subtracts_the_rest() {
        let a = CoreStats {
            cycles: 500,
            committed: 400,
            loads: 100,
            ..CoreStats::default()
        };
        let snap = CoreStats {
            cycles: 120,
            committed: 90,
            loads: 25,
            ..CoreStats::default()
        };
        let d = a.minus(&snap);
        assert_eq!(d.cycles, 500, "keep: caller recomputes");
        assert_eq!(d.committed, 400, "keep: caller recomputes");
        assert_eq!(d.loads, 75, "sub");
    }

    /// Regression: a warmup snapshot can exceed the final count for
    /// in-flight work; in release builds `self.x - b.x` used to wrap
    /// silently. The generated `minus` must saturate at zero.
    #[test]
    fn minus_saturates_instead_of_wrapping() {
        let a = CoreStats {
            issues: 10,
            ..CoreStats::default()
        };
        let snap = CoreStats {
            issues: 11,
            ..CoreStats::default()
        };
        assert_eq!(a.minus(&snap).issues, 0);
    }

    #[test]
    fn iter_names_are_unique_and_cover_every_field() {
        let names: Vec<String> = CoreStats::default().iter().map(|(n, _)| n).collect();
        assert_eq!(names.len(), 25, "one entry per counter field");
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "names are unique");
        assert_eq!(names[0], "cycles");
        assert!(names.contains(&"fp_rf_writes".to_string()));
    }
}
