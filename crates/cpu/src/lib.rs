//! Cycle-level out-of-order CPU core and multicore models.
//!
//! This crate reproduces the CPU side of the paper's evaluation platform
//! (Multi2Sim's x86 OoO model, Table III): a 4-wide out-of-order core with
//! a 160-entry ROB, 64-entry issue queue, 48-entry load-store queue,
//! 128/80 INT/FP rename registers, a tournament branch predictor with BTB
//! and RAS, and a functional-unit pool whose latencies depend on the device
//! technology each unit is built in — the essence of HetCore.
//!
//! * [`stats`] — pipeline event counters consumed by the power model.
//! * [`predictor`] — tournament predictor, 4-way 2K-entry BTB, 32-entry RAS.
//! * [`fu`] — functional-unit pool with per-class latency/issue interval,
//!   including per-ALU timing for the dual-speed ALU cluster.
//! * [`config`] — [`config::CoreConfig`], every Table III knob.
//! * [`core`] — the cycle loop: dispatch/issue/execute/commit with
//!   mispredict flushes and dual-speed ALU steering (Section IV-C2).
//! * [`multicore`] — Amdahl-faithful multicore runs for AdvHet-2X.
//!
//! # Example
//!
//! ```
//! use hetsim_cpu::{config::CoreConfig, core::Core};
//! use hetsim_trace::{apps, TraceGenerator};
//!
//! let cfg = CoreConfig::default(); // the paper's BaseCMOS core
//! let profile = apps::profile("lu").expect("known app");
//! let mut core = Core::new(cfg, 0);
//! let result = core.run(TraceGenerator::new(&profile, 7), 20_000);
//! assert_eq!(result.stats.committed, 20_000);
//! assert!(result.ipc() > 0.5, "LU should extract ILP");
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod core;
pub mod fu;
pub mod multicore;
pub mod predictor;
pub mod profile;
pub mod stats;
pub mod telemetry;

pub use config::CoreConfig;
pub use core::{Core, RunResult};
pub use profile::CoreProfile;
pub use stats::CoreStats;
