//! Process variation guardbands (paper Sections III-E and VII-D).
//!
//! Work-function variation affects TFETs and MOSFETs to a similar extent,
//! but hits I_off harder in TFETs and I_on harder in CMOS. Following Avci et
//! al., lost performance is reclaimed by raising V_dd on both rails. At
//! 15 nm the paper adopts large guardbands — ΔV_CMOS = 120 mV and
//! ΔV_TFET = 70 mV on top of the respective operating voltages — and shows
//! (Figure 14, rightmost bars) that both designs then consume more energy,
//! with AdvHet keeping most (37% vs. 39%) of its relative saving.

use crate::dvfs::OperatingPoint;

/// Process-variation V_dd guardband at 15 nm for the CMOS rail (V).
pub const CMOS_GUARDBAND_V: f64 = 0.120;

/// Process-variation V_dd guardband at 15 nm for the TFET rail (V).
pub const TFET_GUARDBAND_V: f64 = 0.070;

/// Applies the 15 nm process-variation guardbands to an operating point,
/// raising both rails. The clock frequency is unchanged — the guardband
/// exists precisely to keep timing closed under variation.
pub fn apply_guardbands(point: &OperatingPoint) -> OperatingPoint {
    OperatingPoint {
        frequency_hz: point.frequency_hz,
        v_cmos: point.v_cmos + CMOS_GUARDBAND_V,
        v_tfet: point.v_tfet + TFET_GUARDBAND_V,
    }
}

/// Dynamic-energy multipliers `(cmos, tfet)` caused by the guardbands,
/// relative to the un-guardbanded point (CV^2 scaling).
pub fn guardband_energy_factors(point: &OperatingPoint) -> (f64, f64) {
    apply_guardbands(point).energy_factors_vs(point)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvfs::DvfsController;

    #[test]
    fn guardbands_raise_both_rails() {
        let nominal = DvfsController::new().nominal();
        let gb = apply_guardbands(&nominal);
        assert!((gb.v_cmos - (nominal.v_cmos + 0.120)).abs() < 1e-12);
        assert!((gb.v_tfet - (nominal.v_tfet + 0.070)).abs() < 1e-12);
        assert_eq!(gb.frequency_hz, nominal.frequency_hz);
    }

    #[test]
    fn cmos_pays_relatively_more_for_variation() {
        // ΔV/V is larger on the CMOS rail (120/730 vs 70/400)? No: 16.4% vs
        // 17.5% — the TFET rail actually pays slightly more in relative
        // voltage, which is why AdvHet's relative saving dips from 39% to
        // ~37% (Figure 14).
        let nominal = DvfsController::new().nominal();
        let (ec, et) = guardband_energy_factors(&nominal);
        assert!(et > ec, "TFET energy factor {et} should exceed CMOS {ec}");
        assert!((1.2..1.5).contains(&ec), "CMOS factor {ec}");
        assert!((1.3..1.5).contains(&et), "TFET factor {et}");
    }
}
