//! HetCore multi-V_dd substrate overheads and power-scaling factors
//! (paper Sections III-B and V-B).
//!
//! Moving a unit from Si-CMOS to HetJTFET ideally saves 8x dynamic power
//! (4x energy at half the stage speed). The paper then charges a series of
//! conservative overheads against that ideal:
//!
//! * dual V_dd rails: ~5% core area;
//! * level converters in CMOS-facing latches: ~5% stage delay;
//! * unequal work partitioning across the deeper TFET pipeline: ~5% delay;
//! * slow TFET latches: ~10% of stage latency, and ~10% stage power for the
//!   extra pipeline latches;
//! * recovering the combined ~15% stage delay by raising V_TFET by 40 mV,
//!   which costs ~24% TFET power, lowering the dynamic saving from 8x to
//!   ~6.1x;
//! * and finally an extra-strict guardband that assumes TFET saves *only 4x*
//!   dynamic power, the factor actually used throughout the evaluation.
//!
//! Leakage is likewise derated: although Table I suggests >100x savings, the
//! evaluation conservatively assumes TFET leaks only 10x less than CMOS, as
//! if every CMOS transistor were high-V_t.

/// Ideal dynamic-power ratio of a Si-CMOS unit over its HetJTFET
/// replacement, before overheads (Section III-B).
pub const IDEAL_DYNAMIC_POWER_RATIO: f64 = 8.0;

/// Dynamic-power ratio after charging the multi-V_dd overheads
/// (Section V-B: "HetJTFET still consumes 6.1x lower power").
pub const MEASURED_DYNAMIC_POWER_RATIO: f64 = 6.1;

/// The conservative dynamic-power ratio the paper actually evaluates with.
pub const CONSERVATIVE_DYNAMIC_POWER_RATIO: f64 = 4.0;

/// Conservative leakage-power ratio CMOS/TFET used in the evaluation, as if
/// all CMOS transistors were high-V_t (Section VI).
pub const CONSERVATIVE_LEAKAGE_POWER_RATIO: f64 = 10.0;

/// Area overhead of the dual V_dd rails, as a fraction of core area.
pub const DUAL_RAIL_AREA_OVERHEAD: f64 = 0.05;

/// Stage-delay overhead of a level converter in a TFET-to-CMOS latch.
pub const LEVEL_CONVERTER_DELAY_OVERHEAD: f64 = 0.05;

/// Stage-delay overhead from unequal work partitioning when a CMOS stage is
/// split into two TFET stages.
pub const STAGE_IMBALANCE_DELAY_OVERHEAD: f64 = 0.05;

/// Stage-delay overhead from the slower TFET latch (latches are ~10% of a
/// stage's latency).
pub const TFET_LATCH_DELAY_OVERHEAD: f64 = 0.10;

/// Power overhead of the extra latches added by deeper pipelining, as a
/// fraction of stage power.
pub const EXTRA_LATCH_POWER_OVERHEAD: f64 = 0.10;

/// Worst-case total TFET stage-delay overhead: 5% imbalance plus 10% for a
/// level converter *or* a slow TFET latch (but not both).
pub const TOTAL_TFET_STAGE_DELAY_OVERHEAD: f64 = 0.15;

/// Voltage bump applied to V_TFET to recover the 15% stage delay (V).
pub const VTFET_GUARDBAND_BUMP_V: f64 = 0.040;

/// TFET power increase caused by the 40 mV guardband bump.
pub const VTFET_BUMP_POWER_INCREASE: f64 = 0.24;

/// The effective V_TFET the evaluation runs at: the Table I 0.40 V optimum
/// plus the 40 mV guardband (Section VI: "TFET units now operate at 0.440 V").
pub const EFFECTIVE_VTFET_V: f64 = 0.40 + VTFET_GUARDBAND_BUMP_V;

/// The evaluation's CMOS supply (Table I optimum).
pub const EFFECTIVE_VCMOS_V: f64 = 0.73;

/// TFET pipeline-depth multiplier: TFET units get at least twice the
/// pipeline stages of their CMOS equivalents so the whole core keeps a
/// single clock (Section IV-A).
pub const TFET_PIPELINE_DEPTH_FACTOR: u32 = 2;

/// How the chosen dynamic-power ratio degrades from ideal to conservative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PowerAssumption {
    /// 8x: no overheads (Section III-B headline).
    Ideal,
    /// 6.1x: after multi-V_dd overheads (Section V-B estimate).
    Measured,
    /// 4x: the extra-strict factor the paper evaluates with (default).
    #[default]
    Conservative,
}

impl PowerAssumption {
    /// Dynamic-power ratio CMOS/TFET under this assumption.
    pub fn dynamic_power_ratio(self) -> f64 {
        match self {
            PowerAssumption::Ideal => IDEAL_DYNAMIC_POWER_RATIO,
            PowerAssumption::Measured => MEASURED_DYNAMIC_POWER_RATIO,
            PowerAssumption::Conservative => CONSERVATIVE_DYNAMIC_POWER_RATIO,
        }
    }

    /// Dynamic *energy* ratio per operation. The TFET unit is pipelined 2x
    /// deeper and retires the same work per second, so the energy-per-op
    /// ratio equals the power ratio at matched throughput.
    pub fn dynamic_energy_ratio(self) -> f64 {
        self.dynamic_power_ratio()
    }

    /// Leakage-power ratio CMOS/TFET (the paper holds this at a
    /// conservative 10x regardless of the dynamic assumption).
    pub fn leakage_power_ratio(self) -> f64 {
        CONSERVATIVE_LEAKAGE_POWER_RATIO
    }
}

/// Checks the paper's own arithmetic: the 8x ideal ratio divided by the 24%
/// guardband power increase lands near the quoted 6.1x.
pub fn measured_ratio_from_overheads() -> f64 {
    IDEAL_DYNAMIC_POWER_RATIO / (1.0 + VTFET_BUMP_POWER_INCREASE) / (1.0 + 0.05)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_assumption_is_conservative() {
        assert_eq!(PowerAssumption::default(), PowerAssumption::Conservative);
        assert_eq!(PowerAssumption::default().dynamic_power_ratio(), 4.0);
    }

    #[test]
    fn overhead_arithmetic_reproduces_6_1x() {
        let r = measured_ratio_from_overheads();
        assert!(
            (5.8..6.5).contains(&r),
            "8x derated by guardband+latch power should be ~6.1x, got {r}"
        );
    }

    #[test]
    fn total_stage_delay_overhead_is_15_percent() {
        // 5% imbalance + 10% (level converter or TFET latch, not both).
        assert!(
            (TOTAL_TFET_STAGE_DELAY_OVERHEAD
                - (STAGE_IMBALANCE_DELAY_OVERHEAD + TFET_LATCH_DELAY_OVERHEAD))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn effective_voltages_match_section_vi() {
        assert!((EFFECTIVE_VTFET_V - 0.440).abs() < 1e-12);
        assert!((EFFECTIVE_VCMOS_V - 0.730).abs() < 1e-12);
    }

    #[test]
    fn assumptions_are_ordered() {
        assert!(
            PowerAssumption::Ideal.dynamic_power_ratio()
                > PowerAssumption::Measured.dynamic_power_ratio()
        );
        assert!(
            PowerAssumption::Measured.dynamic_power_ratio()
                > PowerAssumption::Conservative.dynamic_power_ratio()
        );
    }

    #[test]
    fn leakage_ratio_is_10x_for_all_assumptions() {
        for a in [
            PowerAssumption::Ideal,
            PowerAssumption::Measured,
            PowerAssumption::Conservative,
        ] {
            assert_eq!(a.leakage_power_ratio(), 10.0);
        }
    }
}
