//! Device-level models for the HetCore reproduction.
//!
//! This crate reproduces the device-technology layer of *HetCore: TFET-CMOS
//! Hetero-Device Architecture for CPUs and GPUs* (ISCA 2018):
//!
//! * [`tech`] — the Table I characterization of Si-CMOS, HetJTFET, InAs-CMOS
//!   and HomJTFET at the 15 nm node, each at its most cost-effective supply
//!   voltage.
//! * [`iv`] — I-V (drain current vs. gate voltage) curve models for
//!   N-HetJTFET and N-MOSFET devices (paper Figure 1).
//! * [`activity`] — total ALU power as a function of activity factor for a
//!   dual-V_t Si-CMOS ALU vs. a HetJTFET ALU (paper Figure 2).
//! * [`vf`] — supply-voltage/frequency curves for Si-CMOS and HetJTFET
//!   (paper Figure 3) with exact reproduction of the paper's anchor points.
//! * [`dvfs`] — paired-voltage DVFS operating points `(V_CMOS, V_TFET)` such
//!   that the CMOS pipeline stage is always 2x faster than the TFET stage
//!   (paper Section III-D).
//! * [`scaling`] — the HetCore multi-V_dd substrate overheads and the
//!   resulting conservative power-scaling factors (paper Section V-B).
//! * [`area`] — core/chip area accounting for the iso-area comparisons
//!   (paper Sections III-F and V-B).
//! * [`variation`] — process-variation guardbands and their energy impact
//!   (paper Sections III-E and VII-D).
//!
//! # Example
//!
//! ```
//! use hetsim_device::tech::Technology;
//! use hetsim_device::vf::VfCurve;
//!
//! // The paper's nominal operating point: Si-CMOS at 0.73 V runs at 2 GHz.
//! let cmos = VfCurve::for_technology(Technology::SiCmos);
//! let f = cmos.frequency_at(0.73);
//! assert!((f - 2.0e9).abs() < 1.0e6);
//! ```

#![warn(missing_docs)]

pub mod activity;
pub mod area;
pub mod dvfs;
pub mod iv;
pub mod overheads;
pub mod scaling;
pub mod tech;
pub mod variation;
pub mod vf;

pub use tech::{DeviceParams, Technology};
