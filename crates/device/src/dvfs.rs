//! Paired-voltage DVFS for a hetero-device core (paper Section III-D).
//!
//! HetCore runs its CMOS and TFET units from two supply rails but one clock.
//! Under DVFS both rails move together: to clock the core at frequency `f`,
//! the CMOS rail must reach `f` on the CMOS V-f curve while the TFET rail
//! must reach `f/2` on the TFET curve (TFET stages do half the work, being
//! pipelined twice as deep). Because the TFET curve is shallower, voltage
//! deltas on the TFET rail are typically *larger* than on the CMOS rail —
//! e.g. turbo from 2 GHz to 2.5 GHz takes +75 mV of V_CMOS but +90 mV of
//! V_TFET.

use crate::tech::Technology;
use crate::vf::VfCurve;

/// The nominal HetCore operating point: 2 GHz, V_CMOS = 0.73 V,
/// V_TFET = 0.40 V (Figure 3).
pub const NOMINAL_FREQUENCY_HZ: f64 = 2.0e9;

/// A joint DVFS operating point for a hetero-device core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Core clock frequency (Hz); every unit runs at this clock.
    pub frequency_hz: f64,
    /// Supply voltage of the CMOS units (V).
    pub v_cmos: f64,
    /// Supply voltage of the TFET units (V).
    pub v_tfet: f64,
}

impl OperatingPoint {
    /// Dynamic-energy multipliers relative to a reference point, per rail.
    ///
    /// CV^2 scaling: energy per operation scales with the square of the
    /// supply voltage on each rail independently.
    pub fn energy_factors_vs(&self, reference: &OperatingPoint) -> (f64, f64) {
        let cmos = (self.v_cmos / reference.v_cmos).powi(2);
        let tfet = (self.v_tfet / reference.v_tfet).powi(2);
        (cmos, tfet)
    }
}

/// The paired CMOS/TFET DVFS controller.
#[derive(Debug, Clone)]
pub struct DvfsController {
    cmos: VfCurve,
    tfet: VfCurve,
}

impl Default for DvfsController {
    fn default() -> Self {
        Self::new()
    }
}

impl DvfsController {
    /// Builds a controller from the published Figure 3 curves.
    pub fn new() -> Self {
        DvfsController {
            cmos: VfCurve::for_technology(Technology::SiCmos),
            tfet: VfCurve::for_technology(Technology::HetJTfet),
        }
    }

    /// The nominal 2 GHz operating point (V_CMOS = 0.73, V_TFET = 0.40).
    pub fn nominal(&self) -> OperatingPoint {
        self.operating_point(NOMINAL_FREQUENCY_HZ)
            .expect("nominal frequency is on both curves")
    }

    /// Computes the joint operating point for core frequency `hz`.
    ///
    /// Returns `None` if either rail cannot reach its required frequency
    /// (`hz` for CMOS, `hz/2` for the deeper-pipelined TFET units).
    pub fn operating_point(&self, hz: f64) -> Option<OperatingPoint> {
        let v_cmos = self.cmos.voltage_for(hz)?;
        let v_tfet = self.tfet.voltage_for(hz / 2.0)?;
        Some(OperatingPoint {
            frequency_hz: hz,
            v_cmos,
            v_tfet,
        })
    }

    /// Voltage deltas (V) on each rail to move from `from` to frequency
    /// `to_hz`: `(delta_v_cmos, delta_v_tfet)`.
    ///
    /// Returns `None` when `to_hz` is unreachable.
    pub fn voltage_deltas(&self, from: &OperatingPoint, to_hz: f64) -> Option<(f64, f64)> {
        let to = self.operating_point(to_hz)?;
        Some((to.v_cmos - from.v_cmos, to.v_tfet - from.v_tfet))
    }

    /// The maximum core frequency both rails can sustain (Hz) — limited by
    /// the saturating TFET curve.
    pub fn max_frequency(&self) -> f64 {
        let cmos_max = self.cmos.frequency_at(self.cmos.max_voltage());
        let tfet_max = 2.0 * self.tfet.frequency_at(self.tfet.max_voltage());
        cmos_max.min(tfet_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_point_matches_figure3() {
        let d = DvfsController::new();
        let p = d.nominal();
        assert!((p.v_cmos - 0.73).abs() < 1e-4, "V_CMOS {}", p.v_cmos);
        assert!((p.v_tfet - 0.40).abs() < 1e-4, "V_TFET {}", p.v_tfet);
    }

    #[test]
    fn turbo_deltas_match_paper() {
        // "to turbo-boost to 2.5 GHz, we need dV_CMOS=75mV and dV_TFET=90mV".
        let d = DvfsController::new();
        let (dc, dt) = d
            .voltage_deltas(&d.nominal(), 2.5e9)
            .expect("turbo reachable");
        assert!((dc - 0.075).abs() < 2e-3, "dV_CMOS {dc}");
        assert!((dt - 0.090).abs() < 2e-3, "dV_TFET {dt}");
    }

    #[test]
    fn slowdown_deltas_match_paper() {
        // Section VII-D: 1.5 GHz needs dV_CMOS=-70mV and dV_TFET=-80mV.
        let d = DvfsController::new();
        let (dc, dt) = d
            .voltage_deltas(&d.nominal(), 1.5e9)
            .expect("slow reachable");
        assert!((dc + 0.070).abs() < 2e-3, "dV_CMOS {dc}");
        assert!((dt + 0.080).abs() < 2e-3, "dV_TFET {dt}");
    }

    #[test]
    fn tfet_deltas_exceed_cmos_deltas() {
        // The TFET curve is shallower around the operating point.
        let d = DvfsController::new();
        let (dc, dt) = d.voltage_deltas(&d.nominal(), 2.5e9).expect("reachable");
        assert!(dt > dc, "TFET turbo delta {dt} should exceed CMOS {dc}");
    }

    #[test]
    fn unreachable_frequency_returns_none() {
        let d = DvfsController::new();
        assert!(d.operating_point(10.0e9).is_none());
    }

    #[test]
    fn max_frequency_is_tfet_limited_but_above_turbo() {
        let d = DvfsController::new();
        let fmax = d.max_frequency();
        assert!(fmax >= 2.5e9, "turbo must be reachable, fmax={fmax}");
        assert!(
            fmax <= 3.5e9,
            "TFET saturation should cap fmax, fmax={fmax}"
        );
    }

    #[test]
    fn energy_factors_square_with_voltage() {
        let d = DvfsController::new();
        let nominal = d.nominal();
        let turbo = d.operating_point(2.5e9).expect("reachable");
        let (ec, et) = turbo.energy_factors_vs(&nominal);
        assert!(ec > 1.0 && et > 1.0);
        assert!((ec - (turbo.v_cmos / 0.73).powi(2)).abs() < 1e-9);
        assert!((et - (turbo.v_tfet / 0.40).powi(2)).abs() < 1e-3);
    }
}
