//! Deriving the multi-V_dd overhead chain of Section V-B.
//!
//! The paper walks a chain of conservative estimates:
//!
//! 1. a TFET pipeline stage is up to **15% slower** than ideal (5% unequal
//!    work partitioning + 10% for a level converter *or* a slow TFET
//!    latch);
//! 2. to keep the single core clock, V_TFET is raised until the TFET
//!    stage is 15% faster — about **+40 mV** on the Figure 3 curve;
//! 3. that bump costs about **+24% TFET power**, degrading the ideal 8x
//!    dynamic-power saving to about **6.1x**;
//! 4. the evaluation then derates further to a flat **4x**.
//!
//! [`scaling`](crate::scaling) stores those numbers as published
//! constants; this module *recomputes* steps 2 and 3 from the V-f curve so
//! the chain is internally consistent and testable.

use crate::scaling::{IDEAL_DYNAMIC_POWER_RATIO, TOTAL_TFET_STAGE_DELAY_OVERHEAD};
use crate::tech::Technology;
use crate::vf::VfCurve;

/// The derived overhead chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadChain {
    /// Voltage bump needed to recover the stage-delay overhead (V).
    pub vtfet_bump_v: f64,
    /// TFET dynamic-power increase caused by the bump (fraction, e.g.
    /// 0.24 for +24%).
    pub power_increase: f64,
    /// The resulting dynamic-power ratio (ideal 8x derated by the bump).
    pub derated_ratio: f64,
}

/// Recomputes the Section V-B chain from the published V-f curve.
///
/// The TFET stage must run `1 + overhead` faster than its nominal
/// half-clock rate, so the required voltage comes from the curve's inverse
/// at `1.15 x f0/2`; power scales with `f V^2` on the TFET rail (the
/// frequency target is fixed, so the V^2 term at the higher switching
/// activity margin carries an extra linear factor for the guardbanded
/// operating region — matching the paper's 24% at +40 mV).
pub fn derive_chain() -> OverheadChain {
    let tfet = VfCurve::for_technology(Technology::HetJTfet);
    let f_half = 1.0e9; // nominal TFET stage rate (f0/2 at f0 = 2 GHz)
    let v_nominal = tfet.voltage_for(f_half).expect("nominal point on curve");
    let v_bumped = tfet
        .voltage_for(f_half * (1.0 + TOTAL_TFET_STAGE_DELAY_OVERHEAD))
        .expect("guardbanded point on curve");
    let vtfet_bump_v = v_bumped - v_nominal;

    // Dynamic power on the TFET rail: C V^2 at the restored clock. (The
    // deeper pipeline's extra latch power is a separate 10% charge in
    // Section V-B, not part of the 24% voltage term.)
    let v_ratio2 = (v_bumped / v_nominal).powi(2);
    let power_increase = v_ratio2 - 1.0;
    let derated_ratio = IDEAL_DYNAMIC_POWER_RATIO / (1.0 + power_increase);

    OverheadChain {
        vtfet_bump_v,
        power_increase,
        derated_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaling::{
        MEASURED_DYNAMIC_POWER_RATIO, VTFET_BUMP_POWER_INCREASE, VTFET_GUARDBAND_BUMP_V,
    };

    #[test]
    fn derived_bump_matches_the_published_40mv() {
        let chain = derive_chain();
        assert!(
            (chain.vtfet_bump_v - VTFET_GUARDBAND_BUMP_V).abs() < 0.012,
            "derived bump {:.3} V vs published 0.040 V",
            chain.vtfet_bump_v
        );
    }

    #[test]
    fn derived_power_increase_matches_the_published_24_percent() {
        let chain = derive_chain();
        assert!(
            (chain.power_increase - VTFET_BUMP_POWER_INCREASE).abs() < 0.08,
            "derived increase {:.3} vs published 0.24",
            chain.power_increase
        );
    }

    #[test]
    fn derated_ratio_lands_near_6_1x() {
        let chain = derive_chain();
        assert!(
            (chain.derated_ratio - MEASURED_DYNAMIC_POWER_RATIO).abs() < 0.6,
            "derated ratio {:.2} vs published 6.1",
            chain.derated_ratio
        );
    }

    #[test]
    fn the_conservative_4x_is_strictly_below_the_derivation() {
        // The paper's evaluation factor (4x) must be more conservative
        // than anything the physics derives.
        let chain = derive_chain();
        assert!(chain.derated_ratio > 4.0);
    }
}
