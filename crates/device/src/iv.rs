//! I-V (drain current vs. gate voltage) characteristics (paper Figure 1).
//!
//! Figure 1 of the paper contrasts an N-HetJTFET with an N-MOSFET at 15 nm,
//! based on Intel data: the TFET turns on with a *steep* sub-threshold slope
//! (well under the 60 mV/decade thermionic limit of a MOSFET) and therefore
//! dominates at low gate voltage, but its drive current saturates beyond
//! roughly 0.6 V, past which the MOSFET wins. These two facts are the
//! device-level foundation for the whole HetCore design.
//!
//! We model each device with a classic two-region form — an exponential
//! sub-threshold region with a device-specific slope that smoothly blends
//! into a saturating on-region — with parameters calibrated so the curves
//! show the published qualitative behaviour: a crossover near 0.6 V, a TFET
//! advantage of orders of magnitude near the off-state, and a TFET on-current
//! ceiling.

/// The MOSFET thermionic sub-threshold slope limit at room temperature:
/// 60 mV of gate voltage per decade of drain current.
pub const MOSFET_SS_MV_PER_DECADE: f64 = 60.0;

/// Average HetJTFET sub-threshold slope used by the model. TFET devices in
/// the literature report 30-40 mV/decade averages over the swing.
pub const TFET_SS_MV_PER_DECADE: f64 = 30.0;

/// An I-V curve model for one transistor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IvCurve {
    /// Off-state current at V_g = 0 (uA/um).
    off_current_ua: f64,
    /// Sub-threshold slope (mV/decade).
    ss_mv_per_decade: f64,
    /// Gate voltage where the device transitions to the on-region (V).
    v_on: f64,
    /// Saturated on-current ceiling (uA/um); `f64::INFINITY` for no ceiling
    /// within the modeled range.
    i_sat_ua: f64,
    /// Super-threshold current growth per volt for the non-saturating
    /// device (uA/um per V^alpha), used when `i_sat_ua` is infinite.
    on_gain: f64,
}

impl IvCurve {
    /// The N-HetJTFET model of Figure 1.
    pub fn n_hetjtfet() -> Self {
        IvCurve {
            off_current_ua: 1.0e-5,
            ss_mv_per_decade: TFET_SS_MV_PER_DECADE,
            v_on: 0.21,
            // Record HetJTFET on-currents are ~180 uA/um at 0.5 V.
            i_sat_ua: 190.0,
            on_gain: 0.0,
        }
    }

    /// The N-MOSFET model of Figure 1.
    pub fn n_mosfet() -> Self {
        IvCurve {
            off_current_ua: 3.0e-4,
            ss_mv_per_decade: MOSFET_SS_MV_PER_DECADE,
            v_on: 0.33,
            i_sat_ua: f64::INFINITY,
            // Alpha-power-law-ish super-threshold growth; calibrated so the
            // MOSFET overtakes the TFET near 0.6 V and keeps scaling.
            on_gain: 600.0,
        }
    }

    /// Drain current (uA/um) at gate voltage `vg` (V), for `vg >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `vg` is negative or not finite.
    pub fn drain_current(&self, vg: f64) -> f64 {
        assert!(
            vg.is_finite() && vg >= 0.0,
            "gate voltage must be >= 0, got {vg}"
        );
        let ss_v = self.ss_mv_per_decade / 1000.0;
        if vg <= self.v_on {
            // Exponential sub-threshold region.
            self.off_current_ua * 10f64.powf(vg / ss_v)
        } else {
            let i_on_edge = self.off_current_ua * 10f64.powf(self.v_on / ss_v);
            if self.i_sat_ua.is_finite() {
                // Saturating on-region: approach the ceiling exponentially.
                let span = self.i_sat_ua - i_on_edge;
                self.i_sat_ua - span * (-(vg - self.v_on) / 0.08).exp()
            } else {
                // Non-saturating: alpha-power-law growth (alpha ~ 1.3).
                i_on_edge + self.on_gain * (vg - self.v_on).powf(1.3)
            }
        }
    }

    /// On/off current ratio between `vdd` and 0 V.
    pub fn on_off_ratio(&self, vdd: f64) -> f64 {
        self.drain_current(vdd) / self.drain_current(0.0)
    }

    /// Samples the curve at `n` evenly spaced points over `[0, v_max]`,
    /// returning `(vg, id_ua)` pairs — the series plotted in Figure 1.
    pub fn sample(&self, v_max: f64, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least two sample points");
        (0..n)
            .map(|i| {
                let vg = v_max * i as f64 / (n - 1) as f64;
                (vg, self.drain_current(vg))
            })
            .collect()
    }
}

/// The gate voltage (V) at which the MOSFET current overtakes the
/// HetJTFET current for good — the crossover visible in Figure 1 (~0.6 V).
///
/// (At very low voltage the MOSFET's higher off-current also exceeds the
/// TFET current; that leakage regime is not the crossover of interest, so
/// we scan downward from the high-voltage end.)
pub fn crossover_voltage() -> f64 {
    let tfet = IvCurve::n_hetjtfet();
    let mos = IvCurve::n_mosfet();
    let mut v = 1.2;
    while v > 0.0 {
        if tfet.drain_current(v) > mos.drain_current(v) {
            return v;
        }
        v -= 0.001;
    }
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tfet_wins_at_low_voltage() {
        let tfet = IvCurve::n_hetjtfet();
        let mos = IvCurve::n_mosfet();
        for vg in [0.2, 0.3, 0.4, 0.5] {
            assert!(
                tfet.drain_current(vg) > mos.drain_current(vg),
                "TFET should beat MOSFET at {vg} V"
            );
        }
    }

    #[test]
    fn mosfet_wins_at_high_voltage() {
        let tfet = IvCurve::n_hetjtfet();
        let mos = IvCurve::n_mosfet();
        for vg in [0.75, 0.9, 1.1] {
            assert!(
                mos.drain_current(vg) > tfet.drain_current(vg),
                "MOSFET should beat TFET at {vg} V"
            );
        }
    }

    #[test]
    fn crossover_is_near_0_6v() {
        let v = crossover_voltage();
        assert!((0.5..0.75).contains(&v), "crossover at {v} V");
    }

    #[test]
    fn tfet_saturates() {
        let tfet = IvCurve::n_hetjtfet();
        let gain = tfet.drain_current(1.0) / tfet.drain_current(0.6);
        assert!(gain < 1.1, "TFET on-current should be flat past 0.6 V");
    }

    #[test]
    fn tfet_has_lower_off_current_and_steeper_slope() {
        let tfet = IvCurve::n_hetjtfet();
        let mos = IvCurve::n_mosfet();
        assert!(tfet.drain_current(0.0) < mos.drain_current(0.0));
        // Steeper slope: more decades gained over the first 0.2 V.
        let tfet_decades = (tfet.drain_current(0.2) / tfet.drain_current(0.0)).log10();
        let mos_decades = (mos.drain_current(0.2) / mos.drain_current(0.0)).log10();
        assert!(tfet_decades > 1.5 * mos_decades);
    }

    #[test]
    fn on_off_ratio_exceeds_four_decades() {
        // "Ideally, the ON and OFF currents should be separated by four
        // orders of magnitude" — the TFET achieves it well before V_dd.
        let tfet = IvCurve::n_hetjtfet();
        assert!(tfet.on_off_ratio(0.4) > 1.0e4);
    }

    #[test]
    fn sample_covers_range() {
        let s = IvCurve::n_mosfet().sample(0.8, 9);
        assert_eq!(s.len(), 9);
        assert_eq!(s[0].0, 0.0);
        assert!((s[8].0 - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "gate voltage")]
    fn negative_vg_panics() {
        let _ = IvCurve::n_mosfet().drain_current(-0.1);
    }
}
