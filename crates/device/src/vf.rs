//! Supply-voltage/frequency curves (paper Figure 3).
//!
//! Each technology has its own V_dd-frequency curve with a different slope
//! and range. The paper generates the Si-CMOS curve from ScalCore data and
//! the HetJTFET curve from Intel TFET data, and reads several operating
//! points off them:
//!
//! * Si-CMOS: 0.73 V -> 2.0 GHz, +75 mV -> 2.5 GHz, -70 mV -> 1.5 GHz.
//! * HetJTFET: 0.40 V -> 1.0 GHz (half-speed stages at the same core clock),
//!   +90 mV -> 1.25 GHz, -80 mV -> 0.75 GHz; the curve saturates beyond
//!   ~0.6 V.
//!
//! We reproduce the curves as monotone piecewise-cubic (PCHIP) interpolants
//! through anchor tables that embed exactly those published points, so the
//! paper's DVFS arithmetic is reproduced bit-for-bit at the anchors.

use crate::tech::Technology;

/// A monotone V_dd -> frequency curve for one technology.
///
/// # Example
///
/// ```
/// use hetsim_device::{vf::VfCurve, tech::Technology};
///
/// let tfet = VfCurve::for_technology(Technology::HetJTfet);
/// // The paper's TFET turbo point: 0.40 V + 90 mV reaches 1.25 GHz.
/// let f = tfet.frequency_at(0.49);
/// assert!((f - 1.25e9).abs() < 1.0e6);
/// ```
#[derive(Debug, Clone)]
pub struct VfCurve {
    /// Anchor voltages (V), strictly increasing.
    volts: Vec<f64>,
    /// Anchor frequencies (Hz), strictly increasing.
    freqs: Vec<f64>,
    /// PCHIP endpoint-safe derivatives at the anchors.
    slopes: Vec<f64>,
}

/// Si-CMOS anchor table: (V, GHz). Embeds the paper's 1.5/2.0/2.5 GHz points.
const CMOS_ANCHORS: &[(f64, f64)] = &[
    (0.40, 0.20),
    (0.50, 0.55),
    (0.58, 1.00),
    (0.66, 1.50),
    (0.73, 2.00),
    (0.805, 2.50),
    (0.88, 2.95),
    (0.95, 3.30),
    (1.05, 3.70),
];

/// HetJTFET anchor table: (V, GHz). Embeds the paper's 0.75/1.0/1.25 GHz
/// points and the saturation beyond ~0.6 V visible in Figure 1/3.
const TFET_ANCHORS: &[(f64, f64)] = &[
    (0.20, 0.28),
    (0.26, 0.50),
    (0.32, 0.75),
    (0.40, 1.00),
    (0.49, 1.25),
    (0.55, 1.37),
    (0.60, 1.44),
    (0.70, 1.52),
    (0.80, 1.56),
];

impl VfCurve {
    /// Builds a curve from `(volts, hz)` anchor pairs.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two anchors are given or if the anchors are not
    /// strictly increasing in both voltage and frequency.
    pub fn from_anchors(anchors: &[(f64, f64)]) -> Self {
        assert!(anchors.len() >= 2, "need at least two V-f anchors");
        for w in anchors.windows(2) {
            assert!(
                w[1].0 > w[0].0 && w[1].1 > w[0].1,
                "V-f anchors must be strictly increasing: {w:?}"
            );
        }
        let volts: Vec<f64> = anchors.iter().map(|a| a.0).collect();
        let freqs: Vec<f64> = anchors.iter().map(|a| a.1).collect();
        let slopes = pchip_slopes(&volts, &freqs);
        VfCurve {
            volts,
            freqs,
            slopes,
        }
    }

    /// The published curve for `tech`.
    ///
    /// # Panics
    ///
    /// Panics for [`Technology::InAsCmos`] and [`Technology::HomJTfet`]; the
    /// paper publishes V-f curves only for the two technologies HetCore
    /// actually mixes.
    pub fn for_technology(tech: Technology) -> Self {
        let ghz = |t: &[(f64, f64)]| -> Vec<(f64, f64)> {
            t.iter().map(|&(v, g)| (v, g * 1.0e9)).collect()
        };
        match tech {
            Technology::SiCmos => VfCurve::from_anchors(&ghz(CMOS_ANCHORS)),
            Technology::HetJTfet => VfCurve::from_anchors(&ghz(TFET_ANCHORS)),
            other => panic!("no published V-f curve for {other}"),
        }
    }

    /// Lowest anchored voltage (V).
    pub fn min_voltage(&self) -> f64 {
        self.volts[0]
    }

    /// Highest anchored voltage (V).
    pub fn max_voltage(&self) -> f64 {
        *self.volts.last().expect("non-empty anchors")
    }

    /// Frequency (Hz) attained at supply voltage `vdd` (V).
    ///
    /// Voltages outside the anchored range are clamped to the range ends;
    /// the curves are only meaningful over their published span.
    pub fn frequency_at(&self, vdd: f64) -> f64 {
        let v = vdd.clamp(self.min_voltage(), self.max_voltage());
        let i = match self
            .volts
            .binary_search_by(|p| p.partial_cmp(&v).expect("finite"))
        {
            Ok(i) => return self.freqs[i],
            Err(i) => i - 1, // v > volts[0] guaranteed by clamp
        };
        let i = i.min(self.volts.len() - 2);
        hermite(
            v,
            self.volts[i],
            self.volts[i + 1],
            self.freqs[i],
            self.freqs[i + 1],
            self.slopes[i],
            self.slopes[i + 1],
        )
    }

    /// Inverse lookup: the supply voltage (V) needed to reach `hz`.
    ///
    /// Returns `None` if `hz` lies outside the frequency span of the curve
    /// (e.g. asking a saturated TFET curve for 2 GHz).
    pub fn voltage_for(&self, hz: f64) -> Option<f64> {
        if hz < self.freqs[0] || hz > *self.freqs.last().expect("non-empty") {
            return None;
        }
        // The interpolant is monotone (PCHIP) so bisection converges.
        let (mut lo, mut hi) = (self.min_voltage(), self.max_voltage());
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.frequency_at(mid) < hz {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(0.5 * (lo + hi))
    }
}

/// Fritsch-Carlson monotone cubic (PCHIP) slope computation.
fn pchip_slopes(xs: &[f64], ys: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let h: Vec<f64> = (0..n - 1).map(|i| xs[i + 1] - xs[i]).collect();
    let d: Vec<f64> = (0..n - 1).map(|i| (ys[i + 1] - ys[i]) / h[i]).collect();
    let mut m = vec![0.0; n];
    m[0] = d[0];
    m[n - 1] = d[n - 2];
    for i in 1..n - 1 {
        if d[i - 1] * d[i] <= 0.0 {
            m[i] = 0.0;
        } else {
            let w1 = 2.0 * h[i] + h[i - 1];
            let w2 = h[i] + 2.0 * h[i - 1];
            m[i] = (w1 + w2) / (w1 / d[i - 1] + w2 / d[i]);
        }
    }
    // Clamp endpoint slopes for monotonicity.
    for (i, di) in [(0usize, 0usize), (n - 1, n - 2)] {
        if m[i] * d[di] <= 0.0 {
            m[i] = 0.0;
        } else if m[i].abs() > 3.0 * d[di].abs() {
            m[i] = 3.0 * d[di];
        }
    }
    m
}

/// Cubic Hermite evaluation on `[x0, x1]`.
#[allow(clippy::too_many_arguments)]
fn hermite(x: f64, x0: f64, x1: f64, y0: f64, y1: f64, m0: f64, m1: f64) -> f64 {
    let h = x1 - x0;
    let t = (x - x0) / h;
    let t2 = t * t;
    let t3 = t2 * t;
    let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
    let h10 = t3 - 2.0 * t2 + t;
    let h01 = -2.0 * t3 + 3.0 * t2;
    let h11 = t3 - t2;
    h00 * y0 + h10 * h * m0 + h01 * y1 + h11 * h * m1
}

#[cfg(test)]
mod tests {
    use super::*;

    const GHZ: f64 = 1.0e9;

    #[test]
    fn cmos_nominal_point() {
        let c = VfCurve::for_technology(Technology::SiCmos);
        assert!((c.frequency_at(0.73) - 2.0 * GHZ).abs() < 1.0e3);
    }

    #[test]
    fn cmos_turbo_and_slow_points_match_paper() {
        // Paper Section III-D / VII-D: +75 mV -> 2.5 GHz, -70 mV -> 1.5 GHz.
        let c = VfCurve::for_technology(Technology::SiCmos);
        assert!((c.frequency_at(0.73 + 0.075) - 2.5 * GHZ).abs() < 1.0e3);
        assert!((c.frequency_at(0.73 - 0.070) - 1.5 * GHZ).abs() < 1.0e3);
    }

    #[test]
    fn tfet_anchor_points_match_paper() {
        // 0.40 V -> 1 GHz; +90 mV -> 1.25 GHz; -80 mV -> 0.75 GHz.
        let t = VfCurve::for_technology(Technology::HetJTfet);
        assert!((t.frequency_at(0.40) - 1.0 * GHZ).abs() < 1.0e3);
        assert!((t.frequency_at(0.49) - 1.25 * GHZ).abs() < 1.0e3);
        assert!((t.frequency_at(0.32) - 0.75 * GHZ).abs() < 1.0e3);
    }

    #[test]
    fn tfet_saturates_at_high_voltage() {
        // Doubling V beyond 0.6 V buys almost nothing (Figure 1 narrative).
        let t = VfCurve::for_technology(Technology::HetJTfet);
        let f06 = t.frequency_at(0.60);
        let f08 = t.frequency_at(0.80);
        assert!(f08 / f06 < 1.12, "TFET should saturate: {f06} -> {f08}");
    }

    #[test]
    fn curves_are_monotone() {
        for tech in [Technology::SiCmos, Technology::HetJTfet] {
            let c = VfCurve::for_technology(tech);
            let mut prev = 0.0;
            let mut v = c.min_voltage();
            while v <= c.max_voltage() {
                let f = c.frequency_at(v);
                assert!(f >= prev, "{tech} not monotone at {v}");
                prev = f;
                v += 0.001;
            }
        }
    }

    #[test]
    fn inverse_roundtrips() {
        let c = VfCurve::for_technology(Technology::SiCmos);
        for target in [1.5 * GHZ, 2.0 * GHZ, 2.5 * GHZ, 3.0 * GHZ] {
            let v = c.voltage_for(target).expect("reachable frequency");
            assert!((c.frequency_at(v) - target).abs() / target < 1.0e-6);
        }
    }

    #[test]
    fn inverse_rejects_unreachable_frequency() {
        let t = VfCurve::for_technology(Technology::HetJTfet);
        assert!(t.voltage_for(2.0 * GHZ).is_none(), "TFET can't reach 2 GHz");
    }

    #[test]
    fn clamping_outside_range() {
        let c = VfCurve::for_technology(Technology::SiCmos);
        assert_eq!(c.frequency_at(0.0), c.frequency_at(c.min_voltage()));
        assert_eq!(c.frequency_at(5.0), c.frequency_at(c.max_voltage()));
    }

    #[test]
    #[should_panic(expected = "no published V-f curve")]
    fn no_curve_for_homjtfet() {
        let _ = VfCurve::for_technology(Technology::HomJTfet);
    }
}
