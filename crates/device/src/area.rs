//! Area model (paper Sections III-F and V-B).
//!
//! At the 15 nm node, HetJTFET standard cells occupy essentially the same
//! area as FinFET cells (same transistor dimensions, same contacted gate
//! pitch, same MP0/MP1 metal pitches — Kim et al., JETC'16), so replacing
//! a unit's device type does not change its footprint. HetCore's area
//! costs come from the *substrate*: the dual V_dd rails add ~5% of core
//! area (Section V-B), and the deeper TFET pipelines add latches (a power
//! cost, Section V-B, but negligible area).
//!
//! This model supports the iso-area comparisons the paper makes: an
//! AdvHet core ≈ 1.05 CMOS-core-equivalents, a whole TFET core ≈ 1.0, so
//! a 4-core AdvHet chip and a 2 CMOS + 2 TFET migration CMP occupy ~the
//! same silicon (Section VIII).

use crate::scaling::DUAL_RAIL_AREA_OVERHEAD;

/// Area of one core, in CMOS-core-equivalents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreArea(pub f64);

/// Area of an all-CMOS core (the unit of measure).
pub fn cmos_core() -> CoreArea {
    CoreArea(1.0)
}

/// Area of an all-TFET core: TFET cells match FinFET cells at 15 nm, and a
/// single-rail core needs no dual-rail routing.
pub fn tfet_core() -> CoreArea {
    CoreArea(1.0)
}

/// Area of a HetCore (BaseHet or AdvHet) core: same cells, plus the dual
/// V_dd rail overhead. (AdvHet's asymmetric DL1 and RF-cache structures
/// re-partition existing arrays rather than adding capacity; the level
/// converters' area is negligible per Ishihara et al.)
pub fn hetcore_core() -> CoreArea {
    CoreArea(1.0 + DUAL_RAIL_AREA_OVERHEAD)
}

/// Area of a chip with `n` cores of per-core area `core`.
pub fn chip(n: u32, core: CoreArea) -> f64 {
    f64::from(n) * core.0
}

/// How many cores of area `core` fit in the silicon of `reference_chips`
/// CMOS-core-equivalents (floor).
pub fn cores_within(budget_cmos_equivalents: f64, core: CoreArea) -> u32 {
    (budget_cmos_equivalents / core.0).floor() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tfet_cells_cost_no_extra_area_at_15nm() {
        // Section III-F: "the areas are similar" at 15 nm.
        assert_eq!(tfet_core().0, cmos_core().0);
    }

    #[test]
    fn hetcore_pays_the_dual_rail_overhead() {
        assert!((hetcore_core().0 - 1.05).abs() < 1e-12);
    }

    #[test]
    fn section_viii_iso_area_setup_is_consistent() {
        // 4 AdvHet cores ~ 4.2 CMOS equivalents; 2 CMOS + 2 TFET cores =
        // 4.0 — the migration CMP gets the (slight) area benefit, which is
        // the conservative direction for the comparison AdvHet then wins.
        let advhet_chip = chip(4, hetcore_core());
        let migration_chip = chip(2, cmos_core()) + chip(2, tfet_core());
        assert!(advhet_chip >= migration_chip);
        assert!(advhet_chip <= migration_chip * 1.06);
    }

    #[test]
    fn power_budget_argument_is_area_feasible() {
        // AdvHet-2X puts 8 cores where the power budget allows; area-wise
        // 8 AdvHet cores cost 8.4 CMOS equivalents — the paper's fixed
        // budget is *power*, not area, and this quantifies the area cost.
        let twox = chip(8, hetcore_core());
        assert!((twox - 8.4).abs() < 1e-12);
        assert_eq!(cores_within(8.4, hetcore_core()), 8);
        assert_eq!(
            cores_within(4.0, hetcore_core()),
            3,
            "strict iso-area would fit 3"
        );
    }
}
