//! Device technologies and their Table I characterization.
//!
//! The paper compares four device technologies at the 15 nm node, each at its
//! most cost-effective supply voltage (data from Nikonov and Young):
//! Si-CMOS at 0.73 V, HetJTFET at 0.40 V, InAs-CMOS at 0.30 V and HomJTFET at
//! 0.20 V. The raw values below are Table I of the paper, embedded verbatim.

use std::fmt;

/// A transistor device technology evaluated by the paper (Table I).
///
/// # Example
///
/// ```
/// use hetsim_device::tech::Technology;
///
/// let params = Technology::HetJTfet.params();
/// assert_eq!(params.supply_voltage_v, 0.40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Technology {
    /// Conventional silicon FinFET CMOS — the high-performance baseline.
    SiCmos,
    /// Heterojunction TFET (GaSb source / InAs drain) — the device HetCore
    /// mixes into the core. Roughly 2x slower than Si-CMOS but ~8x lower
    /// power at its optimal voltage.
    HetJTfet,
    /// Futuristic InAs MOSFET operating at very low voltage. Too slow (~10x)
    /// to mix with Si-CMOS inside one core; suited to ultra-low-power parts.
    InAsCmos,
    /// Homojunction TFET (InAs source and drain). Lowest power but ~16x
    /// slower than Si-CMOS; suited to wearables/IoT, not HetCore.
    HomJTfet,
}

impl Technology {
    /// All four technologies, in Table I column order.
    pub const ALL: [Technology; 4] = [
        Technology::SiCmos,
        Technology::HetJTfet,
        Technology::InAsCmos,
        Technology::HomJTfet,
    ];

    /// The Table I characterization of this technology at 15 nm.
    pub fn params(self) -> DeviceParams {
        match self {
            Technology::SiCmos => SI_CMOS,
            Technology::HetJTfet => HETJ_TFET,
            Technology::InAsCmos => INAS_CMOS,
            Technology::HomJTfet => HOMJ_TFET,
        }
    }

    /// Switching-delay ratio of this technology relative to Si-CMOS.
    ///
    /// The paper reads these off Table I as roughly 2x (HetJTFET), 10x
    /// (InAs-CMOS) and 16x (HomJTFET).
    pub fn delay_ratio_vs_cmos(self) -> f64 {
        self.params().switching_delay_ps / SI_CMOS.switching_delay_ps
    }

    /// Whether the technology can realistically be mixed with Si-CMOS inside
    /// a single-frequency core by deeper pipelining (Section III-A).
    ///
    /// Only HetJTFET qualifies: its 2x speed differential is absorbed by
    /// doubling pipeline depth, whereas 10x/16x differentials would require
    /// unrealistically deep pipelines.
    pub fn mixable_with_cmos(self) -> bool {
        matches!(self, Technology::SiCmos | Technology::HetJTfet)
    }
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Technology::SiCmos => "Si-CMOS",
            Technology::HetJTfet => "HetJTFET",
            Technology::InAsCmos => "InAs-CMOS",
            Technology::HomJTfet => "HomJTFET",
        };
        f.write_str(name)
    }
}

/// Table I: characteristics of a device technology at 15 nm, at its most
/// cost-effective supply voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceParams {
    /// Supply voltage (V).
    pub supply_voltage_v: f64,
    /// Transistor switching delay (ps).
    pub switching_delay_ps: f64,
    /// Interconnect delay per transistor length (ps).
    pub interconnect_delay_ps: f64,
    /// 32-bit ALU operation delay (ps).
    pub alu32_delay_ps: f64,
    /// Transistor switching energy (aJ).
    pub switching_energy_aj: f64,
    /// Interconnect energy per transistor length (aJ).
    pub interconnect_energy_aj: f64,
    /// 32-bit ALU dynamic energy per operation (fJ).
    pub alu32_dynamic_energy_fj: f64,
    /// 32-bit ALU leakage power (uW).
    pub alu32_leakage_uw: f64,
    /// ALU power density (W/cm^2).
    pub alu_power_density_w_cm2: f64,
}

impl DeviceParams {
    /// Dynamic energy ratio of a 32-bit ALU op vs. this technology.
    ///
    /// E.g. `SI_CMOS.alu_energy_ratio_over(&HETJ_TFET)` is about 4x.
    pub fn alu_energy_ratio_over(&self, other: &DeviceParams) -> f64 {
        self.alu32_dynamic_energy_fj / other.alu32_dynamic_energy_fj
    }
}

/// Si-CMOS at 0.73 V (Table I, column 1).
pub const SI_CMOS: DeviceParams = DeviceParams {
    supply_voltage_v: 0.73,
    switching_delay_ps: 0.41,
    interconnect_delay_ps: 0.18,
    alu32_delay_ps: 939.0,
    switching_energy_aj: 32.71,
    interconnect_energy_aj: 10.08,
    alu32_dynamic_energy_fj: 170.1,
    alu32_leakage_uw: 90.2,
    alu_power_density_w_cm2: 50.4,
};

/// HetJTFET at 0.40 V (Table I, column 2).
pub const HETJ_TFET: DeviceParams = DeviceParams {
    supply_voltage_v: 0.40,
    switching_delay_ps: 0.79,
    interconnect_delay_ps: 0.42,
    alu32_delay_ps: 1881.0,
    switching_energy_aj: 7.86,
    interconnect_energy_aj: 3.03,
    alu32_dynamic_energy_fj: 43.4,
    alu32_leakage_uw: 0.30,
    alu_power_density_w_cm2: 5.1,
};

/// InAs-CMOS at 0.30 V (Table I, column 3).
pub const INAS_CMOS: DeviceParams = DeviceParams {
    supply_voltage_v: 0.30,
    switching_delay_ps: 3.80,
    interconnect_delay_ps: 2.50,
    alu32_delay_ps: 9327.0,
    switching_energy_aj: 3.62,
    interconnect_energy_aj: 1.70,
    alu32_dynamic_energy_fj: 20.5,
    alu32_leakage_uw: 0.14,
    alu_power_density_w_cm2: 0.6,
};

/// HomJTFET at 0.20 V (Table I, column 4).
pub const HOMJ_TFET: DeviceParams = DeviceParams {
    supply_voltage_v: 0.20,
    switching_delay_ps: 6.68,
    interconnect_delay_ps: 3.60,
    alu32_delay_ps: 15990.0,
    switching_energy_aj: 1.96,
    interconnect_energy_aj: 0.76,
    alu32_dynamic_energy_fj: 10.8,
    alu32_leakage_uw: 1.44,
    alu_power_density_w_cm2: 0.2,
};

/// Fraction of high-V_t transistors in commercial CMOS processor logic
/// (e.g. AMD Ryzen); used to derate CMOS leakage (Section III-B).
pub const HIGH_VT_LOGIC_FRACTION: f64 = 0.60;

/// Leakage-power reduction of a high-V_t CMOS transistor vs. regular-V_t
/// (midpoint of the paper's 25-30x from a 28/32 nm Synopsys library).
pub const HIGH_VT_LEAKAGE_REDUCTION: f64 = 27.5;

/// Effective leakage of a typical dual-V_t Si-CMOS unit relative to the
/// all-regular-V_t Table I value: with 60% high-V_t transistors the unit
/// leaks about 42% of the Table I figure (paper Section III-B).
pub fn dual_vt_leakage_factor() -> f64 {
    (1.0 - HIGH_VT_LOGIC_FRACTION) + HIGH_VT_LOGIC_FRACTION / HIGH_VT_LEAKAGE_REDUCTION
}

/// High-V_t delay penalty vs. regular-V_t CMOS: the paper cites 1.4-1.6x;
/// we use the midpoint for the BaseHighVt configuration.
pub const HIGH_VT_DELAY_RATIO: f64 = 1.5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_voltages_match_paper() {
        assert_eq!(Technology::SiCmos.params().supply_voltage_v, 0.73);
        assert_eq!(Technology::HetJTfet.params().supply_voltage_v, 0.40);
        assert_eq!(Technology::InAsCmos.params().supply_voltage_v, 0.30);
        assert_eq!(Technology::HomJTfet.params().supply_voltage_v, 0.20);
    }

    #[test]
    fn delay_ratios_match_paper_narrative() {
        // "about 2x, 10x, and 16x longer" (Section III-A).
        let het = Technology::HetJTfet.delay_ratio_vs_cmos();
        let inas = Technology::InAsCmos.delay_ratio_vs_cmos();
        let hom = Technology::HomJTfet.delay_ratio_vs_cmos();
        assert!((1.8..2.2).contains(&het), "HetJTFET ratio {het}");
        assert!((8.5..10.5).contains(&inas), "InAs-CMOS ratio {inas}");
        assert!((15.0..17.5).contains(&hom), "HomJTFET ratio {hom}");
    }

    #[test]
    fn energy_ratios_match_paper_narrative() {
        // "about 4x, 8x, and 16x as much energy" (Section III-B).
        let r_het = SI_CMOS.alu_energy_ratio_over(&HETJ_TFET);
        let r_inas = SI_CMOS.alu_energy_ratio_over(&INAS_CMOS);
        let r_hom = SI_CMOS.alu_energy_ratio_over(&HOMJ_TFET);
        assert!((3.5..4.5).contains(&r_het), "HetJTFET energy ratio {r_het}");
        assert!((7.5..9.0).contains(&r_inas), "InAs energy ratio {r_inas}");
        assert!((15.0..17.0).contains(&r_hom), "HomJ energy ratio {r_hom}");
    }

    #[test]
    fn alu_leakage_ratio_is_about_300x() {
        let r = SI_CMOS.alu32_leakage_uw / HETJ_TFET.alu32_leakage_uw;
        assert!((290.0..310.0).contains(&r), "leakage ratio {r}");
    }

    #[test]
    fn dual_vt_leakage_factor_is_about_42_percent() {
        let f = dual_vt_leakage_factor();
        assert!((0.40..0.44).contains(&f), "dual-Vt factor {f}");
    }

    #[test]
    fn dual_vt_alu_vs_tfet_is_about_125x() {
        // Paper: "a HetJTFET ALU consumes 125x lower leakage power than a
        // dual-Vt Si-CMOS ALU".
        let dual_vt_leak = SI_CMOS.alu32_leakage_uw * dual_vt_leakage_factor();
        let r = dual_vt_leak / HETJ_TFET.alu32_leakage_uw;
        assert!((115.0..135.0).contains(&r), "dual-Vt/TFET ratio {r}");
    }

    #[test]
    fn only_hetjtfet_mixes_with_cmos() {
        assert!(Technology::HetJTfet.mixable_with_cmos());
        assert!(!Technology::InAsCmos.mixable_with_cmos());
        assert!(!Technology::HomJTfet.mixable_with_cmos());
    }

    #[test]
    fn display_names() {
        assert_eq!(Technology::SiCmos.to_string(), "Si-CMOS");
        assert_eq!(Technology::HetJTfet.to_string(), "HetJTFET");
    }
}
