//! ALU power vs. activity factor (paper Figure 2).
//!
//! Because HetJTFETs leak so little, they shine in units with a low activity
//! factor: when the unit idles, a Si-CMOS implementation keeps burning
//! leakage power while the TFET one consumes almost nothing. Figure 2 plots
//! the total power of a 32-bit Si-CMOS ALU (built with 60% high-V_t
//! transistors in non-critical paths, as commercial processors do) and of a
//! HetJTFET ALU as the activity factor sweeps from 1 down to ~0, along with
//! the ratio of the two, which grows toward the ~125x leakage-only limit.

use crate::tech::{dual_vt_leakage_factor, HETJ_TFET, SI_CMOS};

/// Nominal clock used in the Figure 2 comparison (the 2 GHz core clock).
pub const NOMINAL_CLOCK_HZ: f64 = 2.0e9;

/// Total-power model of a 32-bit ALU in a given implementation.
///
/// `activity factor = 1` means one ALU operation completes every core cycle.
/// The HetJTFET ALU is pipelined twice as deep, so at equal activity factor
/// both designs retire the same operations per second; only energy per
/// operation and leakage differ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AluPowerModel {
    /// Dynamic energy per 32-bit operation (J).
    pub energy_per_op_j: f64,
    /// Leakage power (W).
    pub leakage_w: f64,
    /// Operation throughput at activity factor 1 (ops/s).
    pub peak_ops_per_s: f64,
}

impl AluPowerModel {
    /// The dual-V_t Si-CMOS ALU of Figure 2: Table I dynamic energy, with
    /// leakage derated to ~42% by the 60% high-V_t transistor share.
    pub fn si_cmos_dual_vt() -> Self {
        AluPowerModel {
            energy_per_op_j: SI_CMOS.alu32_dynamic_energy_fj * 1.0e-15,
            leakage_w: SI_CMOS.alu32_leakage_uw * 1.0e-6 * dual_vt_leakage_factor(),
            peak_ops_per_s: NOMINAL_CLOCK_HZ,
        }
    }

    /// The HetJTFET ALU of Figure 2 (Table I values).
    pub fn hetjtfet() -> Self {
        AluPowerModel {
            energy_per_op_j: HETJ_TFET.alu32_dynamic_energy_fj * 1.0e-15,
            leakage_w: HETJ_TFET.alu32_leakage_uw * 1.0e-6,
            peak_ops_per_s: NOMINAL_CLOCK_HZ,
        }
    }

    /// Total power (W) at activity factor `af` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `af` is outside `[0, 1]`.
    pub fn total_power(&self, af: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&af),
            "activity factor must be in [0,1], got {af}"
        );
        af * self.peak_ops_per_s * self.energy_per_op_j + self.leakage_w
    }
}

/// One row of the Figure 2 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityPoint {
    /// Activity factor.
    pub af: f64,
    /// Si-CMOS (dual-V_t) total ALU power (W).
    pub cmos_w: f64,
    /// HetJTFET total ALU power (W).
    pub tfet_w: f64,
    /// CMOS/TFET power ratio.
    pub ratio: f64,
}

/// Generates the Figure 2 series over logarithmically spaced activity
/// factors from `af_min` up to 1.
///
/// # Panics
///
/// Panics unless `0 < af_min < 1` and `points >= 2`.
pub fn figure2_series(af_min: f64, points: usize) -> Vec<ActivityPoint> {
    assert!(
        af_min > 0.0 && af_min < 1.0,
        "af_min must be in (0,1), got {af_min}"
    );
    assert!(points >= 2, "need at least two points");
    let cmos = AluPowerModel::si_cmos_dual_vt();
    let tfet = AluPowerModel::hetjtfet();
    let log_min = af_min.log10();
    (0..points)
        .map(|i| {
            let t = i as f64 / (points - 1) as f64;
            let af = 10f64.powf(log_min * (1.0 - t));
            let cmos_w = cmos.total_power(af);
            let tfet_w = tfet.total_power(af);
            ActivityPoint {
                af,
                cmos_w,
                tfet_w,
                ratio: cmos_w / tfet_w,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_activity_ratio_is_about_4x() {
        // At af=1 dynamic dominates; Table I gives ~3.9x dynamic ratio, and
        // leakage nudges the total ratio slightly above it.
        let p = figure2_series(1e-4, 2);
        let full = p.last().expect("non-empty");
        assert!(
            (3.5..5.0).contains(&full.ratio),
            "af=1 ratio {}",
            full.ratio
        );
    }

    #[test]
    fn idle_ratio_approaches_leakage_limit() {
        // As af -> 0 the ratio approaches dual-Vt leakage ratio (~125x).
        let cmos = AluPowerModel::si_cmos_dual_vt();
        let tfet = AluPowerModel::hetjtfet();
        let r = cmos.total_power(0.0) / tfet.total_power(0.0);
        assert!((115.0..135.0).contains(&r), "idle ratio {r}");
    }

    #[test]
    fn ratio_grows_monotonically_as_activity_falls() {
        let series = figure2_series(1e-4, 40);
        for w in series.windows(2) {
            assert!(
                w[0].ratio >= w[1].ratio,
                "ratio must shrink as af grows: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn cmos_power_at_full_activity_is_hundreds_of_microwatts() {
        let cmos = AluPowerModel::si_cmos_dual_vt();
        let p = cmos.total_power(1.0);
        // 170.1 fJ * 2 GHz = 340 uW dynamic + ~38 uW leakage.
        assert!((3.0e-4..4.5e-4).contains(&p), "CMOS af=1 power {p}");
    }

    #[test]
    #[should_panic(expected = "activity factor")]
    fn out_of_range_af_panics() {
        let _ = AluPowerModel::hetjtfet().total_power(1.5);
    }

    #[test]
    fn series_spans_requested_range() {
        let s = figure2_series(1e-3, 7);
        assert!((s[0].af - 1e-3).abs() < 1e-9);
        assert!((s[6].af - 1.0).abs() < 1e-12);
    }
}
