//! Property tests for the device models.

use proptest::prelude::*;

use hetsim_device::dvfs::DvfsController;
use hetsim_device::iv::IvCurve;
use hetsim_device::tech::Technology;
use hetsim_device::vf::VfCurve;

proptest! {
    /// Both published V-f curves are monotone non-decreasing everywhere.
    #[test]
    fn vf_curves_are_monotone(v1 in 0.0f64..1.2, v2 in 0.0f64..1.2) {
        let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        for tech in [Technology::SiCmos, Technology::HetJTfet] {
            let c = VfCurve::for_technology(tech);
            prop_assert!(c.frequency_at(lo) <= c.frequency_at(hi) + 1e-6);
        }
    }

    /// Inverse lookup round-trips for any reachable frequency.
    #[test]
    fn vf_inverse_roundtrips(t in 0.0f64..1.0) {
        let c = VfCurve::for_technology(Technology::SiCmos);
        let f_min = c.frequency_at(c.min_voltage());
        let f_max = c.frequency_at(c.max_voltage());
        let target = f_min + t * (f_max - f_min);
        let v = c.voltage_for(target).expect("in range");
        prop_assert!((c.frequency_at(v) - target).abs() / target < 1e-6);
    }

    /// DVFS pairing invariant: at any reachable core frequency, the TFET
    /// rail's own curve delivers exactly half the core frequency (the
    /// 2x-deeper TFET pipeline does half the work per stage).
    #[test]
    fn dvfs_pairing_invariant(t in 0.0f64..1.0) {
        let d = DvfsController::new();
        let f = 1.0e9 + t * (d.max_frequency() - 1.0e9);
        if let Some(p) = d.operating_point(f) {
            let tfet = VfCurve::for_technology(Technology::HetJTfet);
            prop_assert!((tfet.frequency_at(p.v_tfet) - f / 2.0).abs() / f < 1e-5);
            prop_assert!(p.v_cmos > p.v_tfet, "CMOS rail is always the higher one");
        }
    }

    /// I-V curves are monotone in gate voltage.
    #[test]
    fn iv_curves_are_monotone(v1 in 0.0f64..1.2, v2 in 0.0f64..1.2) {
        let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        for curve in [IvCurve::n_hetjtfet(), IvCurve::n_mosfet()] {
            prop_assert!(curve.drain_current(lo) <= curve.drain_current(hi) * (1.0 + 1e-9));
        }
    }

    /// Energy factors scale quadratically with voltage for any pair of
    /// operating points.
    #[test]
    fn energy_factors_are_quadratic(f1 in 0.0f64..1.0, f2 in 0.0f64..1.0) {
        let d = DvfsController::new();
        let fa = 1.2e9 + f1 * 1.2e9;
        let fb = 1.2e9 + f2 * 1.2e9;
        let (Some(a), Some(b)) = (d.operating_point(fa), d.operating_point(fb)) else {
            return Ok(());
        };
        let (ec, et) = b.energy_factors_vs(&a);
        prop_assert!((ec - (b.v_cmos / a.v_cmos).powi(2)).abs() < 1e-9);
        prop_assert!((et - (b.v_tfet / a.v_tfet).powi(2)).abs() < 1e-9);
    }
}
