//! Jobs and their content-addressed keys.

use serde::value::Value;
use serde::Serialize;

/// A 128-bit content hash identifying one simulation by its *full*
/// configuration.
///
/// Two jobs share a key exactly when their canonical config trees are
/// equal, so a key is a safe cache address: design parameters,
/// workload profile content, instruction budget, seed and core count
/// all feed the hash. The hash is FNV-1a over the compact JSON
/// encoding of the canonical config [`Value`] — stable across runs,
/// processes and machines (no pointer identity, no randomized state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobKey(u128);

const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl JobKey {
    /// Keys a job by the canonical serialization of `config`.
    ///
    /// Callers should include a schema tag (e.g. `"cpu-v1"`) in the
    /// config so key spaces of different job kinds never collide and
    /// incompatible cache formats can be retired by bumping the tag.
    pub fn of<T: Serialize + ?Sized>(config: &T) -> JobKey {
        let canonical =
            serde_json::to_string(&config.to_value()).expect("value serialization is infallible");
        JobKey::from_bytes(canonical.as_bytes())
    }

    /// FNV-1a over raw bytes.
    pub fn from_bytes(bytes: &[u8]) -> JobKey {
        let mut hash = FNV_OFFSET;
        for &b in bytes {
            hash ^= u128::from(b);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        JobKey(hash)
    }

    /// The key as a fixed-width lowercase hex string (32 chars) — used
    /// as the on-disk cache file stem.
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses a key back from its [`JobKey::hex`] rendering (shard
    /// manifests persist keys this way).
    pub fn from_hex(s: &str) -> Option<JobKey> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(JobKey)
    }

    /// The shard (in `0..shards`) this key belongs to.
    ///
    /// The assignment is a pure function of the key — not of the job's
    /// position in a batch — so adding or removing *other* jobs never
    /// moves a job between shards, and every process computing the
    /// partition independently (supervisor and each worker) agrees on
    /// it. `shards` is clamped to at least 1; with one shard every key
    /// maps to shard 0.
    pub fn shard_of(self, shards: usize) -> usize {
        (self.0 % shards.max(1) as u128) as usize
    }
}

impl std::fmt::Display for JobKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

/// One schedulable simulation: a content-addressed key, a human label
/// for progress output, and the closure that produces the outcome.
pub struct Job<T> {
    /// Content hash of the job's full configuration.
    pub key: JobKey,
    /// Short human-readable label, e.g. `"fig7/lu/AdvHet"`.
    pub label: String,
    /// The simulation itself. Must be pure: a function of the config
    /// captured at construction, with no shared mutable state.
    pub run: Box<dyn FnOnce() -> T + Send>,
}

impl<T> Job<T> {
    /// Creates a job.
    pub fn new(
        key: JobKey,
        label: impl Into<String>,
        run: impl FnOnce() -> T + Send + 'static,
    ) -> Self {
        Job {
            key,
            label: label.into(),
            run: Box::new(run),
        }
    }

    /// Creates a job keyed directly by a serializable config tree.
    pub fn keyed<C: Serialize + ?Sized>(
        config: &C,
        label: impl Into<String>,
        run: impl FnOnce() -> T + Send + 'static,
    ) -> Self {
        Job::new(JobKey::of(config), label, run)
    }
}

impl<T> std::fmt::Debug for Job<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("key", &self.key)
            .field("label", &self.label)
            .finish()
    }
}

/// Builds a canonical config [`Value`] from `(name, value)` pairs — a
/// convenience for callers assembling job keys by hand.
pub fn config_object(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_configs_share_a_key() {
        let a = JobKey::of(&("cpu-v1", "lu", 42u64, 300_000u64));
        let b = JobKey::of(&("cpu-v1", "lu", 42u64, 300_000u64));
        assert_eq!(a, b);
    }

    #[test]
    fn any_config_change_changes_the_key() {
        let base = JobKey::of(&("cpu-v1", "lu", 42u64, 300_000u64));
        assert_ne!(
            base,
            JobKey::of(&("cpu-v1", "lu", 43u64, 300_000u64)),
            "seed"
        );
        assert_ne!(
            base,
            JobKey::of(&("cpu-v1", "lu", 42u64, 300_001u64)),
            "budget"
        );
        assert_ne!(
            base,
            JobKey::of(&("cpu-v1", "fft", 42u64, 300_000u64)),
            "app"
        );
        assert_ne!(
            base,
            JobKey::of(&("gpu-v1", "lu", 42u64, 300_000u64)),
            "schema tag"
        );
    }

    #[test]
    fn hex_is_fixed_width_and_round_trips_display() {
        let k = JobKey::from_bytes(b"x");
        assert_eq!(k.hex().len(), 32);
        assert_eq!(k.to_string(), k.hex());
    }

    #[test]
    fn keys_are_stable_across_calls() {
        // A pinned vector: if the hash or the canonical encoding ever
        // changes, on-disk caches silently become garbage — fail loudly
        // here instead.
        let k = JobKey::from_bytes(b"hetsim");
        assert_eq!(k, JobKey::from_bytes(b"hetsim"));
        assert_ne!(k, JobKey::from_bytes(b"hetsim "));
    }

    #[test]
    fn jobs_run_their_closure() {
        let job = Job::keyed(&("t", 1u32), "label", || 7u32);
        assert_eq!((job.run)(), 7);
    }
}
