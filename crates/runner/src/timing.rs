//! Wall-time histograms for the runner's per-job phases.
//!
//! Every job passes through up to four timed phases: the cache probe
//! (all jobs), then — for misses only — the wait for a free worker,
//! the simulation itself, and the cache write-back. [`RunnerTiming`]
//! keeps one bounded [`Histogram`] per phase, accumulated on every
//! batch whether or not tracing is enabled (recording four samples per
//! job is far below measurement noise).
//!
//! The histograms surface in the stats dump under `runner.timing.*`.
//! Like the rest of the runner section they are **not deterministic**
//! (wall time varies with machine load), so the regression gate's
//! [`RunnerStats::DETERMINISTIC`](crate::RunnerStats::DETERMINISTIC)
//! exemption covers them automatically.

use hetsim_stats::Histogram;
use serde::value::Value;
use serde::Serialize;

/// Per-phase wall-time histograms for one runner (microsecond samples).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunnerTiming {
    /// Time a cache miss spent queued before a worker picked it up.
    pub queue_wait_us: Histogram,
    /// Time spent probing the cache (every job, hit or miss).
    pub cache_lookup_us: Histogram,
    /// Time spent inside the simulation closure (misses only).
    pub simulate_us: Histogram,
    /// Time spent writing the outcome back to the cache (misses only).
    pub cache_write_us: Histogram,
    /// Dead cycles elided by the event-driven simulator step (folded in
    /// from the simulator's process-global telemetry by the CLI; zero
    /// unless the caller attaches it).
    pub skipped_cycles: u64,
    /// Next-event jumps taken by the event-driven simulator step (same
    /// provenance as `skipped_cycles`).
    pub wakeup_jumps: u64,
}

impl RunnerTiming {
    /// Folds another timing record in (element-wise histogram merge;
    /// associative and commutative, like [`Histogram::merge`]).
    pub fn merge(&mut self, other: &RunnerTiming) {
        self.queue_wait_us.merge(&other.queue_wait_us);
        self.cache_lookup_us.merge(&other.cache_lookup_us);
        self.simulate_us.merge(&other.simulate_us);
        self.cache_write_us.merge(&other.cache_write_us);
        self.skipped_cycles += other.skipped_cycles;
        self.wakeup_jumps += other.wakeup_jumps;
    }

    /// `true` when no phase has recorded a sample and no skip counter
    /// is set.
    pub fn is_empty(&self) -> bool {
        self.queue_wait_us.is_empty()
            && self.cache_lookup_us.is_empty()
            && self.simulate_us.is_empty()
            && self.cache_write_us.is_empty()
            && self.skipped_cycles == 0
            && self.wakeup_jumps == 0
    }
}

impl Serialize for RunnerTiming {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("queue_wait_us".into(), self.queue_wait_us.to_value()),
            ("cache_lookup_us".into(), self.cache_lookup_us.to_value()),
            ("simulate_us".into(), self.simulate_us.to_value()),
            ("cache_write_us".into(), self.cache_write_us.to_value()),
            ("skipped_cycles".into(), Value::UInt(self.skipped_cycles)),
            ("wakeup_jumps".into(), Value::UInt(self.wakeup_jumps)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_each_phase() {
        let mut a = RunnerTiming::default();
        a.cache_lookup_us.record(10);
        let mut b = RunnerTiming::default();
        b.cache_lookup_us.record(20);
        b.simulate_us.record(1000);
        b.skipped_cycles = 40;
        b.wakeup_jumps = 4;
        a.merge(&b);
        assert_eq!(a.cache_lookup_us.count(), 2);
        assert_eq!(a.simulate_us.count(), 1);
        assert!(a.queue_wait_us.is_empty());
        assert_eq!(a.skipped_cycles, 40);
        assert_eq!(a.wakeup_jumps, 4);
        assert!(!a.is_empty());
    }

    #[test]
    fn skip_counters_alone_make_it_non_empty() {
        let mut t = RunnerTiming::default();
        assert!(t.is_empty());
        t.skipped_cycles = 1;
        assert!(!t.is_empty());
    }

    #[test]
    fn serializes_one_object_per_phase() {
        let mut t = RunnerTiming::default();
        t.queue_wait_us.record(5);
        let Value::Object(fields) = t.to_value() else {
            panic!("RunnerTiming must serialize to an object");
        };
        let names: Vec<&str> = fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "queue_wait_us",
                "cache_lookup_us",
                "simulate_us",
                "cache_write_us",
                "skipped_cycles",
                "wakeup_jumps"
            ]
        );
    }
}
