//! A live, in-place campaign dashboard (`repro --progress=dashboard`).
//!
//! Where [`StderrSink`](crate::StderrSink) appends one line per job —
//! fine for logs, noisy for a 100-job sweep — [`DashboardSink`] keeps
//! a small block of lines at the bottom of the terminal and redraws it
//! in place with ANSI cursor movement: overall completion, cache hit
//! ratio, throughput and ETA, plus a per-design job count so a sweep's
//! shape is visible while it runs.
//!
//! The sink assumes its writer is a terminal that understands ANSI
//! escapes; the `repro` CLI checks `stderr.is_terminal()` and falls
//! back to the plain line sink when piped, so trace files and CI logs
//! never contain control sequences. Redraws are rate-limited (~10/s)
//! so a cache-warm campaign finishing thousands of jobs per second is
//! not bottlenecked on terminal I/O. Time comes from an injected
//! [`Clock`], which makes both the rate limit and the ETA math
//! deterministic under test.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::{Arc, Mutex};

use hetsim_obs::Clock;

use crate::progress::{design_of, ProgressEvent, ProgressSink, Provenance};

/// Minimum interval between in-place redraws, in microseconds.
const REDRAW_INTERVAL_US: u64 = 100_000;

#[derive(Default)]
struct DashState {
    /// Jobs expected across all batches seen so far.
    total: usize,
    /// Jobs finished across all batches.
    done: usize,
    /// Finished jobs answered from a cache layer.
    cache_hits: usize,
    /// Clock stamp of the first `BatchStarted`.
    started_us: Option<u64>,
    /// Clock stamp of the last redraw.
    last_draw_us: u64,
    /// Lines currently occupied by the live block (0 = nothing drawn).
    drawn_lines: usize,
    /// Per design: finished jobs and accumulated simulated seconds
    /// (BTreeMap for stable line order).
    per_design: BTreeMap<String, (usize, f64)>,
    /// Expected jobs per design, from `BatchStarted` columns.
    column_totals: BTreeMap<String, usize>,
    /// Column first-submission order; the first entry is the
    /// campaign's baseline design.
    column_order: Vec<String>,
    /// Baseline simulated seconds, set when the baseline column
    /// completes — figure-row ratios normalize against it.
    baseline_sim: Option<f64>,
    /// Completed non-baseline columns waiting for the baseline:
    /// `(design, jobs, sim_seconds)` in completion order.
    pending_rows: Vec<(String, usize, f64)>,
}

/// A permanent per-design figure row: the column's simulated time and,
/// when the baseline column has completed, the ratio against it — the
/// live equivalent of one bar in the paper's per-design figures.
fn figure_row(design: &str, jobs: usize, sim: f64, baseline: Option<(&str, f64)>) -> String {
    let rel = match baseline {
        Some((base, base_sim)) if base_sim > 0.0 => {
            format!(" · {:.2}x {base}", sim / base_sim)
        }
        _ => String::new(),
    };
    format!(
        "[dash] fig {design}: {jobs} jobs, {:.2} sim-ms{rel}\n",
        sim * 1e3
    )
}

/// Renders campaign progress as an in-place, multi-line TTY dashboard.
pub struct DashboardSink {
    clock: Arc<dyn Clock>,
    out: Mutex<(Box<dyn Write + Send>, DashState)>,
}

impl DashboardSink {
    /// A dashboard on the process's stderr, timed by `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        DashboardSink::with_writer(clock, Box::new(std::io::stderr()))
    }

    /// A dashboard on an arbitrary writer (tests inject a buffer).
    pub fn with_writer(clock: Arc<dyn Clock>, out: Box<dyn Write + Send>) -> Self {
        DashboardSink {
            clock,
            out: Mutex::new((out, DashState::default())),
        }
    }

    /// The live block's lines for the current state.
    fn lines(state: &DashState, now_us: u64) -> Vec<String> {
        let elapsed_s = state
            .started_us
            .map(|t0| now_us.saturating_sub(t0) as f64 / 1e6)
            .unwrap_or(0.0);
        let rate = if elapsed_s > 0.0 {
            state.done as f64 / elapsed_s
        } else {
            0.0
        };
        let eta = if rate > 0.0 && state.total > state.done {
            format!("{:.0}s", (state.total - state.done) as f64 / rate)
        } else {
            "--".to_string()
        };
        let hit_pct = if state.done > 0 {
            state.cache_hits as f64 * 100.0 / state.done as f64
        } else {
            0.0
        };
        let mut lines = vec![format!(
            "[dash] {}/{} jobs · {:.0}% cached · {:.1} jobs/s · ETA {}",
            state.done, state.total, hit_pct, rate, eta
        )];
        for (design, (count, _sim)) in &state.per_design {
            match state.column_totals.get(design) {
                Some(total) => lines.push(format!("[dash]   {design}: {count}/{total}")),
                None => lines.push(format!("[dash]   {design}: {count}")),
            }
        }
        lines
    }

    /// Writes permanent lines below the live block: settle the block,
    /// emit the lines, and let the next redraw start a fresh block.
    fn emit_permanent(out: &mut (Box<dyn Write + Send>, DashState), now_us: u64, text: &str) {
        DashboardSink::redraw(out, now_us, true);
        let (writer, state) = out;
        state.drawn_lines = 0;
        let _ = writer.write_all(text.as_bytes());
        let _ = writer.flush();
    }

    /// Redraws the live block in place: move the cursor up over the
    /// previous block, then rewrite each line (clearing its tail).
    fn redraw(out: &mut (Box<dyn Write + Send>, DashState), now_us: u64, force: bool) {
        let (writer, state) = out;
        if !force && now_us.saturating_sub(state.last_draw_us) < REDRAW_INTERVAL_US {
            return;
        }
        state.last_draw_us = now_us;
        let lines = DashboardSink::lines(state, now_us);
        let mut block = String::new();
        if state.drawn_lines > 0 {
            block.push_str(&format!("\x1b[{}A", state.drawn_lines));
        }
        for line in &lines {
            block.push_str("\x1b[2K");
            block.push_str(line);
            block.push('\n');
        }
        state.drawn_lines = lines.len();
        // Best-effort, like every progress writer: never kill a job
        // over a closed terminal.
        let _ = writer.write_all(block.as_bytes());
        let _ = writer.flush();
    }
}

impl ProgressSink for DashboardSink {
    fn event(&self, event: &ProgressEvent) {
        let now_us = self.clock.now_us();
        let mut out = self.out.lock().expect("dashboard lock");
        match event {
            ProgressEvent::BatchStarted { total, columns, .. } => {
                let state = &mut out.1;
                state.total += total;
                state.started_us.get_or_insert(now_us);
                for (design, count) in columns {
                    *state.column_totals.entry(design.clone()).or_insert(0) += count;
                    if !state.column_order.contains(design) {
                        state.column_order.push(design.clone());
                    }
                }
                DashboardSink::redraw(&mut out, now_us, true);
            }
            ProgressEvent::JobStarted { .. } => {}
            ProgressEvent::JobFinished {
                label,
                provenance,
                sim_seconds,
                ..
            } => {
                let state = &mut out.1;
                state.done += 1;
                if !matches!(provenance, Provenance::Executed) {
                    state.cache_hits += 1;
                }
                let design = design_of(label).to_string();
                let entry = state.per_design.entry(design.clone()).or_insert((0, 0.0));
                entry.0 += 1;
                entry.1 += sim_seconds;
                let (jobs, sim) = *entry;
                // When a whole campaign column completes, stream its
                // figure row out as a permanent line. Columns that
                // finish before the baseline queue until its sim-time
                // is known, so every row carries a ratio.
                let column_done = state
                    .column_totals
                    .get(&design)
                    .is_some_and(|&t| t > 0 && jobs == t);
                let mut rows = String::new();
                if column_done {
                    let is_baseline =
                        state.column_order.first().map(String::as_str) == Some(design.as_str());
                    if is_baseline {
                        state.baseline_sim = Some(sim);
                    }
                    match (state.column_order.first(), state.baseline_sim) {
                        (Some(base), Some(base_sim)) => {
                            let base = base.clone();
                            rows.push_str(&figure_row(&design, jobs, sim, Some((&base, base_sim))));
                            for (d, j, s) in std::mem::take(&mut state.pending_rows) {
                                rows.push_str(&figure_row(&d, j, s, Some((&base, base_sim))));
                            }
                        }
                        _ => state.pending_rows.push((design, jobs, sim)),
                    }
                }
                if rows.is_empty() {
                    DashboardSink::redraw(&mut out, now_us, false);
                } else {
                    DashboardSink::emit_permanent(&mut out, now_us, &rows);
                }
            }
            ProgressEvent::BatchFinished { stats } => {
                // Settle the block, then leave a permanent summary
                // line below it; the next batch draws a fresh block.
                let summary = format!(
                    "[dash] batch done: {} jobs, {} executed, {} cached, {:.2} s wall\n",
                    stats.jobs,
                    stats.executed,
                    stats.cache_hits,
                    stats.wall.as_secs_f64(),
                );
                DashboardSink::emit_permanent(&mut out, now_us, &summary);
            }
        }
    }

    /// Forces a final redraw so the last rate-limited frame never
    /// leaves the TTY showing stale mid-run state: a burst of
    /// completions inside one redraw interval would otherwise end the
    /// campaign with the block frozen at an earlier count.
    fn flush(&self) {
        let now_us = self.clock.now_us();
        let mut out = self.out.lock().expect("dashboard lock");
        if out.1.started_us.is_some() {
            DashboardSink::redraw(&mut out, now_us, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    use hetsim_obs::ManualClock;

    use crate::progress::RunnerStats;

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().expect("buf lock").clone()).expect("utf8")
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("buf lock").extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn finished(index: usize, label: &str, provenance: Provenance) -> ProgressEvent {
        finished_sim(index, label, provenance, 0.0)
    }

    fn finished_sim(
        index: usize,
        label: &str,
        provenance: Provenance,
        sim_seconds: f64,
    ) -> ProgressEvent {
        ProgressEvent::JobFinished {
            index,
            label: label.to_string(),
            provenance,
            done: index + 1,
            total: 4,
            counters: Vec::new(),
            sim_seconds,
        }
    }

    #[test]
    fn dashboard_tracks_designs_hits_and_eta() {
        let clock = Arc::new(ManualClock::new());
        let buf = SharedBuf::default();
        let sink = DashboardSink::with_writer(clock.clone(), Box::new(buf.clone()));
        sink.event(&ProgressEvent::BatchStarted {
            total: 4,
            workers: 2,
            columns: Vec::new(),
        });
        clock.advance(1_000_000); // 1 s per job => 1.0 jobs/s
        sink.event(&finished(0, "cpu/lu/AdvHetx4", Provenance::Executed));
        clock.advance(1_000_000);
        sink.event(&finished(1, "cpu/lu/CmosHPx4", Provenance::MemoryCache));
        let text = buf.text();
        assert!(text.contains("2/4 jobs"), "{text}");
        assert!(text.contains("50% cached"), "{text}");
        assert!(text.contains("1.0 jobs/s"), "{text}");
        assert!(text.contains("ETA 2s"), "{text}");
        assert!(text.contains("AdvHet: 1"), "{text}");
        assert!(text.contains("CmosHP: 1"), "{text}");
        assert!(text.contains("\x1b[2K"), "redraws must clear lines");

        sink.event(&ProgressEvent::BatchFinished {
            stats: RunnerStats {
                jobs: 4,
                executed: 1,
                cache_hits: 3,
                wall: Duration::from_secs(2),
                ..RunnerStats::default()
            },
        });
        let text = buf.text();
        assert!(text.contains("batch done: 4 jobs"), "{text}");
    }

    #[test]
    fn figure_rows_stream_as_columns_complete_and_wait_for_the_baseline() {
        let clock = Arc::new(ManualClock::new());
        let buf = SharedBuf::default();
        let sink = DashboardSink::with_writer(clock.clone(), Box::new(buf.clone()));
        sink.event(&ProgressEvent::BatchStarted {
            total: 4,
            workers: 2,
            columns: vec![("BaseCmosHP".into(), 2), ("AdvHet".into(), 2)],
        });
        // The non-baseline column completes first: its row must wait
        // for the baseline so it can carry a ratio.
        sink.event(&finished_sim(
            0,
            "cpu/lu/AdvHetx4",
            Provenance::Executed,
            0.25,
        ));
        sink.event(&finished_sim(
            1,
            "cpu/fft/AdvHetx4",
            Provenance::Executed,
            0.25,
        ));
        assert!(!buf.text().contains("fig AdvHet"), "{}", buf.text());
        // Baseline completes: its own row, then the queued one.
        sink.event(&finished_sim(
            2,
            "cpu/lu/BaseCmosHPx4",
            Provenance::Executed,
            0.5,
        ));
        sink.event(&finished_sim(
            3,
            "cpu/fft/BaseCmosHPx4",
            Provenance::MemoryCache,
            0.5,
        ));
        let text = buf.text();
        let base_at = text
            .find("fig BaseCmosHP: 2 jobs, 1000.00 sim-ms · 1.00x BaseCmosHP")
            .unwrap_or_else(|| panic!("no baseline row in {text}"));
        let adv_at = text
            .find("fig AdvHet: 2 jobs, 500.00 sim-ms · 0.50x BaseCmosHP")
            .unwrap_or_else(|| panic!("no AdvHet row in {text}"));
        assert!(base_at < adv_at, "baseline row flushes first: {text}");
        // Rows are permanent: the live block shows per-column progress.
        assert!(text.contains("AdvHet: 2/2"), "{text}");
    }

    #[test]
    fn redraws_are_rate_limited_by_the_injected_clock() {
        let clock = Arc::new(ManualClock::new());
        let buf = SharedBuf::default();
        let sink = DashboardSink::with_writer(clock.clone(), Box::new(buf.clone()));
        sink.event(&ProgressEvent::BatchStarted {
            total: 100,
            workers: 2,
            columns: Vec::new(),
        });
        let drawn_after_start = buf.text().matches("[dash] ").count();
        // A burst of completions inside one redraw interval coalesces
        // into zero additional draws...
        for i in 0..50 {
            clock.advance(10); // far below REDRAW_INTERVAL_US
            sink.event(&finished(i, "gpu/matmul/HetGPU", Provenance::MemoryCache));
        }
        assert_eq!(buf.text().matches("[dash] ").count(), drawn_after_start);
        // ...and the next completion after the interval draws once.
        clock.advance(REDRAW_INTERVAL_US);
        sink.event(&finished(50, "gpu/matmul/HetGPU", Provenance::MemoryCache));
        let text = buf.text();
        assert!(text.contains("51/100 jobs"), "{text}");
    }

    #[test]
    fn final_flush_settles_a_rate_limited_block() {
        let clock = Arc::new(ManualClock::new());
        let buf = SharedBuf::default();
        let sink = DashboardSink::with_writer(clock.clone(), Box::new(buf.clone()));
        sink.event(&ProgressEvent::BatchStarted {
            total: 4,
            workers: 2,
            columns: Vec::new(),
        });
        // Every completion lands inside the redraw interval, so the
        // block still shows the count from `BatchStarted`...
        for i in 0..4 {
            clock.advance(10);
            sink.event(&finished(i, "gpu/matmul/HetGPU", Provenance::MemoryCache));
        }
        assert!(!buf.text().contains("4/4 jobs"), "{}", buf.text());
        // ...until the campaign driver flushes on completion.
        sink.flush();
        assert!(buf.text().contains("4/4 jobs"), "{}", buf.text());
    }

    #[test]
    fn flush_before_any_batch_draws_nothing() {
        let clock = Arc::new(ManualClock::new());
        let buf = SharedBuf::default();
        let sink = DashboardSink::with_writer(clock, Box::new(buf.clone()));
        sink.flush();
        assert!(buf.text().is_empty(), "{}", buf.text());
    }
}
