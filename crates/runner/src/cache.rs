//! The content-addressed result cache.
//!
//! Two layers, both keyed by [`JobKey`]:
//!
//! * an **in-process store** (`HashMap` behind a mutex) that memoizes
//!   every outcome produced or loaded during this process — repeated
//!   figures within one `repro` invocation never re-simulate;
//! * an optional **on-disk layer** (`--cache-dir`): one JSON file per
//!   key, `<hex-key>.json`, written atomically (temp file + rename) so
//!   concurrent campaigns sharing a directory never observe torn
//!   writes. Corrupted, truncated or type-incompatible files are
//!   treated as misses and re-simulated — a cache can never make a
//!   campaign wrong, only slow.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use hetsim_stats::counters;
use serde::{Deserialize, Serialize};

use crate::job::JobKey;

counters! {
    /// Counters describing how a cache behaved over some window.
    ///
    /// Defined through [`hetsim_stats::counters!`], so `merge`/`minus`
    /// and `iter()` over `(name, value)` pairs come for free.
    pub struct CacheStats {
        /// Lookups answered from the in-process store.
        pub memory_hits: u64,
        /// Lookups answered from the on-disk layer.
        pub disk_hits: u64,
        /// Lookups that found nothing (the job must run).
        pub misses: u64,
        /// Disk files that existed but failed to parse (counted as misses).
        pub corrupt_files: u64,
    }
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.memory_hits + self.disk_hits + self.misses
    }

    /// Hits (memory + disk).
    pub fn hits(&self) -> u64 {
        self.memory_hits + self.disk_hits
    }

    /// Hit rate in `[0, 1]`; `0` when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits() as f64 / self.lookups() as f64
        }
    }
}

/// Which cache layer answered a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLayer {
    /// The in-process store.
    Memory,
    /// The on-disk JSON layer.
    Disk,
}

/// A two-layer (memory + optional disk) result cache.
pub struct ResultCache<T> {
    memory: Mutex<HashMap<JobKey, T>>,
    dir: Option<PathBuf>,
    stats: Mutex<CacheStats>,
}

impl<T: Clone + Serialize + Deserialize> ResultCache<T> {
    /// An in-process-only cache.
    pub fn in_memory() -> Self {
        ResultCache {
            memory: Mutex::new(HashMap::new()),
            dir: None,
            stats: Mutex::default(),
        }
    }

    /// A cache backed by `dir` (created if missing).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be
    /// created.
    pub fn on_disk(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultCache {
            memory: Mutex::new(HashMap::new()),
            dir: Some(dir),
            stats: Mutex::default(),
        })
    }

    /// The disk path for `key`, if this cache has a disk layer.
    pub fn path_of(&self, key: JobKey) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{}.json", key.hex())))
    }

    /// Looks up `key`, trying memory then disk.
    pub fn get(&self, key: JobKey) -> Option<T> {
        self.get_traced(key).map(|(value, _)| value)
    }

    /// Like [`ResultCache::get`], also reporting which layer answered.
    pub fn get_traced(&self, key: JobKey) -> Option<(T, CacheLayer)> {
        if let Some(hit) = self.memory.lock().expect("cache lock").get(&key).cloned() {
            self.stats.lock().expect("stats lock").memory_hits += 1;
            return Some((hit, CacheLayer::Memory));
        }
        if let Some(path) = self.path_of(key) {
            match load_json::<T>(&path) {
                LoadResult::Loaded(value) => {
                    self.stats.lock().expect("stats lock").disk_hits += 1;
                    self.memory
                        .lock()
                        .expect("cache lock")
                        .insert(key, value.clone());
                    return Some((value, CacheLayer::Disk));
                }
                LoadResult::Corrupt => {
                    // A torn or stale file: count it, then fall through
                    // to a miss so the job re-simulates and overwrites.
                    let mut stats = self.stats.lock().expect("stats lock");
                    stats.corrupt_files += 1;
                }
                LoadResult::Absent => {}
            }
        }
        self.stats.lock().expect("stats lock").misses += 1;
        None
    }

    /// Stores `value` under `key` in both layers.
    ///
    /// Disk write failures are swallowed: the cache is an accelerator,
    /// and a full disk must not fail a campaign that already computed
    /// its result.
    pub fn put(&self, key: JobKey, value: &T) {
        self.memory
            .lock()
            .expect("cache lock")
            .insert(key, value.clone());
        if let Some(path) = self.path_of(key) {
            let _ = store_json(&path, value);
        }
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock().expect("stats lock")
    }

    /// Resets the counters (e.g. between campaigns sharing a runner).
    pub fn reset_stats(&self) {
        *self.stats.lock().expect("stats lock") = CacheStats::default();
    }
}

enum LoadResult<T> {
    Loaded(T),
    Corrupt,
    Absent,
}

fn load_json<T: Deserialize>(path: &Path) -> LoadResult<T> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return LoadResult::Absent,
        Err(_) => return LoadResult::Corrupt,
    };
    match serde_json::from_str::<T>(&text) {
        Ok(value) => LoadResult::Loaded(value),
        Err(_) => LoadResult::Corrupt,
    }
}

fn store_json<T: Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    let text = serde_json::to_string(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    write_atomic(path, &text)
}

/// Writes `contents` to `path` atomically: temp file in the same
/// directory, then rename, so concurrent readers never observe a torn
/// file. Missing parent directories are created first.
///
/// This is the write path every cache entry goes through; telemetry
/// dumps and baseline files reuse it so a crashed or concurrent run
/// can never leave a half-written JSON document behind.
///
/// # Errors
///
/// Returns the underlying I/O error if the directory cannot be
/// created or either write step fails.
pub fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hetsim-runner-cache-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_cache_hits_after_put() {
        let cache: ResultCache<u64> = ResultCache::in_memory();
        let key = JobKey::from_bytes(b"k");
        assert_eq!(cache.get(key), None);
        cache.put(key, &99);
        assert_eq!(cache.get(key), Some(99));
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.memory_hits), (1, 1));
    }

    #[test]
    fn disk_cache_survives_process_boundaries() {
        let dir = tmp_dir("persist");
        let key = JobKey::from_bytes(b"persisted");
        {
            let cache: ResultCache<Vec<f64>> = ResultCache::on_disk(&dir).expect("mkdir");
            cache.put(key, &vec![1.5, 2.5]);
        }
        // A fresh cache (fresh memory layer) must load from disk.
        let cache: ResultCache<Vec<f64>> = ResultCache::on_disk(&dir).expect("mkdir");
        assert_eq!(cache.get(key), Some(vec![1.5, 2.5]));
        assert_eq!(cache.stats().disk_hits, 1);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn corrupted_file_is_a_counted_miss() {
        let dir = tmp_dir("corrupt");
        let cache: ResultCache<Vec<f64>> = ResultCache::on_disk(&dir).expect("mkdir");
        let key = JobKey::from_bytes(b"torn");
        std::fs::write(cache.path_of(key).expect("disk layer"), "[1.5, 2.").expect("write");
        assert_eq!(cache.get(key), None);
        let stats = cache.stats();
        assert_eq!((stats.corrupt_files, stats.misses), (1, 1));
        // Re-simulation overwrites the torn file and the cache heals.
        cache.put(key, &vec![3.0]);
        assert_eq!(cache.get(key), Some(vec![3.0]));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn write_atomic_creates_missing_parent_directories() {
        let dir = tmp_dir("atomic-parents");
        let nested = dir.join("a/b/c/out.json");
        write_atomic(&nested, "{\"ok\": true}").expect("write with missing parents");
        assert_eq!(
            std::fs::read_to_string(&nested).expect("readable"),
            "{\"ok\": true}"
        );
        // No temp-file droppings left beside the target.
        let siblings: Vec<_> = std::fs::read_dir(nested.parent().expect("parent"))
            .expect("dir")
            .map(|e| e.expect("entry").file_name())
            .collect();
        assert_eq!(siblings, ["out.json"]);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn write_atomic_overwrites_in_place() {
        let dir = tmp_dir("atomic-overwrite");
        let path = dir.join("out.json");
        write_atomic(&path, "first").expect("initial write");
        write_atomic(&path, "second, longer contents").expect("overwrite");
        assert_eq!(
            std::fs::read_to_string(&path).expect("readable"),
            "second, longer contents"
        );
        let siblings: Vec<_> = std::fs::read_dir(&dir)
            .expect("dir")
            .map(|e| e.expect("entry").file_name())
            .collect();
        assert_eq!(siblings, ["out.json"], "no temp files survive overwrite");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn write_atomic_unwritable_parent_fails_cleanly() {
        // A regular file where a parent directory should be: the write
        // must fail with an error (not panic) and leave no temp files.
        // (A chmod-based read-only directory can't be used here — the
        // test may run as root, which bypasses permission bits.)
        let dir = tmp_dir("atomic-obstructed");
        std::fs::create_dir_all(&dir).expect("setup");
        let obstruction = dir.join("not-a-dir");
        std::fs::write(&obstruction, "file").expect("setup");
        let target = obstruction.join("out.json");
        assert!(
            write_atomic(&target, "{}").is_err(),
            "must surface an error"
        );
        let entries: Vec<_> = std::fs::read_dir(&dir)
            .expect("dir")
            .map(|e| e.expect("entry").file_name())
            .collect();
        assert_eq!(entries, ["not-a-dir"], "no temp files left behind");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn hit_rate_is_well_defined() {
        let empty = CacheStats::default();
        assert_eq!(empty.hit_rate(), 0.0);
        let half = CacheStats {
            memory_hits: 1,
            disk_hits: 1,
            misses: 2,
            corrupt_files: 0,
        };
        assert!((half.hit_rate() - 0.5).abs() < 1e-12);
    }
}
