//! The shard protocol: deterministic partitioning of a campaign across
//! worker *processes*, plus the supervisor that drives them.
//!
//! A sharded run splits one campaign's job list into `N` disjoint
//! shards and hands each shard to a separate worker process. The
//! pieces, all in this module:
//!
//! * **partitioner** — [`JobKey::shard_of`] assigns every key to
//!   exactly one shard as a pure function of the key, so the
//!   supervisor and every worker compute the identical partition
//!   independently, and the assignment is stable when jobs are added
//!   or removed elsewhere in the campaign ([`partition`] builds the
//!   full index cover);
//! * **manifest** — a worker commits its shard by writing a
//!   [`ShardManifest`] through [`write_atomic`] *after* all of its
//!   results are durably in the shared result cache; a missing or
//!   mismatched manifest means the shard did not complete, no matter
//!   how the process exited;
//! * **wire events** — workers narrate per-job completion as JSONL
//!   [`WorkerEvent`] lines on stdout ([`ShardEventSink`]); the
//!   supervisor parses them ([`WorkerEvent::from_line`]) and fans them
//!   into its own [`ProgressSink`], so `--progress=dashboard`
//!   aggregates across workers;
//! * **supervisor** — [`supervise`] spawns one child per shard,
//!   streams their stdout, and retries failed or crashed shards with
//!   bounded exponential backoff ([`ShardPolicy`]). A shard that still
//!   has no valid manifest after the last attempt fails the run with
//!   an error naming the shard.
//!
//! The module stays simulator-agnostic: it sees `std::process::Command`
//! factories and manifest files, never job closures or outcome types.
//! Outcome transport is the content-addressed result cache the workers
//! and the supervisor share — a shard's results are exactly the cache
//! entries its jobs produced, so the supervisor's merge pass replays
//! the campaign against a warm cache and inherits the determinism
//! contract (a cache hit is bit-identical to a fresh simulation).

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Mutex;
use std::time::Duration;

use serde::value::Value;
use serde::{Deserialize, Serialize};

use crate::cache::write_atomic;
use crate::job::JobKey;
use crate::progress::{ProgressEvent, ProgressSink, Provenance};

/// Schema tag of manifest and fragment files; bump on incompatible
/// layout changes so stale shard directories retire themselves.
pub const SHARD_SCHEMA: &str = "hetsim-shard-v1";

/// Splits `keys` into `shards` disjoint index lists (an exact cover:
/// every index appears in exactly one shard, in submission order).
///
/// Shard membership comes from [`JobKey::shard_of`], so the partition
/// is deterministic across calls and processes, and stable under
/// changes to the rest of the job list. With `shards == 1` every index
/// lands in shard 0.
pub fn partition(keys: &[JobKey], shards: usize) -> Vec<Vec<usize>> {
    let shards = shards.max(1);
    let mut out = vec![Vec::new(); shards];
    for (index, key) in keys.iter().enumerate() {
        out[key.shard_of(shards)].push(index);
    }
    out
}

/// The commit record one worker writes (atomically, last) after every
/// result of its shard is durably in the shared cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardManifest {
    /// [`SHARD_SCHEMA`].
    pub schema: String,
    /// This worker's shard index in `0..shards`.
    pub shard: u64,
    /// Total shard count of the run.
    pub shards: u64,
    /// Which attempt produced this manifest (0 = first).
    pub attempt: u64,
    /// Jobs in this shard.
    pub jobs: u64,
    /// Jobs the worker actually simulated (the rest were already in
    /// the shared cache).
    pub executed: u64,
    /// Hex [`JobKey`]s of every job in the shard, submission order —
    /// the supervisor can audit the cover without re-deriving it.
    pub keys: Vec<String>,
}

/// `shard-<I>.manifest.json` under `dir`.
pub fn manifest_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.manifest.json"))
}

/// `shard-<I>.stats.json` under `dir` (the per-shard `StatsDump`
/// fragment; written by the worker, merged by the supervisor).
pub fn fragment_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.stats.json"))
}

/// `shard-<I>.trace.jsonl` under `dir` (per-worker trace log, stitched
/// by `trace-export`).
pub fn trace_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.trace.jsonl"))
}

impl ShardManifest {
    /// Writes the manifest atomically (temp file + rename), creating
    /// missing parent directories.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(&self.to_value())
            .expect("manifest serialization is infallible");
        write_atomic(path, &json)
    }

    /// Loads and validates a manifest file.
    pub fn load(path: &Path) -> Result<ShardManifest, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let value: Value =
            serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let manifest = ShardManifest::from_value(&value)
            .map_err(|e| format!("{}: malformed manifest: {e:?}", path.display()))?;
        if manifest.schema != SHARD_SCHEMA {
            return Err(format!(
                "{}: schema {} (expected {SHARD_SCHEMA})",
                path.display(),
                manifest.schema
            ));
        }
        Ok(manifest)
    }
}

/// One per-job completion line on a worker's stdout.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerEvent {
    /// The job's label (globally unique within a campaign, so the
    /// supervisor can map it back to a submission index).
    pub label: String,
    /// How the worker obtained the outcome.
    pub provenance: Provenance,
    /// Simulated seconds the outcome covers.
    pub sim_seconds: f64,
}

impl WorkerEvent {
    /// The JSONL wire rendering (one line, newline-terminated).
    pub fn to_line(&self) -> String {
        let value = Value::Object(vec![
            ("ev".into(), Value::Str("job-finished".into())),
            ("label".into(), Value::Str(self.label.clone())),
            (
                "provenance".into(),
                Value::Str(self.provenance.tag().into()),
            ),
            ("sim_seconds".into(), self.sim_seconds.to_value()),
        ]);
        let mut line = serde_json::to_string(&value).expect("wire serialization is infallible");
        line.push('\n');
        line
    }

    /// Parses one stdout line; `None` for anything that is not a
    /// well-formed worker event (workers own their stdout, but a
    /// hostile or truncated line must not kill the supervisor).
    pub fn from_line(line: &str) -> Option<WorkerEvent> {
        let value: Value = serde_json::from_str(line.trim()).ok()?;
        let Value::Object(fields) = value else {
            return None;
        };
        let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        match get("ev") {
            Some(Value::Str(ev)) if ev == "job-finished" => {}
            _ => return None,
        }
        let Some(Value::Str(label)) = get("label") else {
            return None;
        };
        let provenance = match get("provenance") {
            Some(Value::Str(tag)) => Provenance::from_tag(tag)?,
            _ => return None,
        };
        let sim_seconds = match get("sim_seconds") {
            Some(v) => f64::from_value(v).ok()?,
            None => return None,
        };
        Some(WorkerEvent {
            label: label.clone(),
            provenance,
            sim_seconds,
        })
    }
}

/// A [`ProgressSink`] that narrates job completions as [`WorkerEvent`]
/// JSONL on a writer (workers pass their stdout). Lines are formatted
/// before the lock is taken and written with one `write_all`, so
/// concurrent completions never tear mid-line.
pub struct ShardEventSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl ShardEventSink {
    /// A sink writing to the process's stdout (the worker side of the
    /// shard protocol — the supervisor reads the pipe).
    pub fn stdout() -> Self {
        ShardEventSink::with_writer(Box::new(std::io::stdout()))
    }

    /// A sink writing to an arbitrary writer (tests inject buffers).
    pub fn with_writer(out: Box<dyn Write + Send>) -> Self {
        ShardEventSink {
            out: Mutex::new(out),
        }
    }
}

impl ProgressSink for ShardEventSink {
    fn event(&self, event: &ProgressEvent) {
        let ProgressEvent::JobFinished {
            label,
            provenance,
            sim_seconds,
            ..
        } = event
        else {
            return;
        };
        let line = WorkerEvent {
            label: label.clone(),
            provenance: *provenance,
            sim_seconds: *sim_seconds,
        }
        .to_line();
        let mut out = self.out.lock().expect("shard sink lock");
        // Best-effort: a supervisor that hung up must not kill the job.
        let _ = out.write_all(line.as_bytes());
        let _ = out.flush();
    }
}

/// Retry discipline of the supervisor.
#[derive(Debug, Clone, Copy)]
pub struct ShardPolicy {
    /// Attempts per shard (first try + retries), at least 1.
    pub max_attempts: u32,
    /// Backoff before retry `k` is `backoff << (k - 1)`, capped at
    /// [`ShardPolicy::MAX_BACKOFF`] — bounded, so a permanently broken
    /// shard fails the run quickly instead of stalling it.
    pub backoff: Duration,
}

impl ShardPolicy {
    /// The backoff ceiling.
    pub const MAX_BACKOFF: Duration = Duration::from_secs(2);
}

impl Default for ShardPolicy {
    fn default() -> Self {
        ShardPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(50),
        }
    }
}

/// One successfully completed shard.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// The shard index.
    pub shard: usize,
    /// Attempts it took (1 = clean first run).
    pub attempts: u32,
    /// The worker's commit record.
    pub manifest: ShardManifest,
}

/// Spawns one worker process per shard, streams their stdout line by
/// line into `on_line`, and retries failed shards per `policy`.
///
/// `command_for(shard, attempt)` builds the worker invocation; the
/// supervisor pipes its stdout and inherits its stderr. A shard
/// succeeds when its process exits 0 **and** its manifest under
/// `out_dir` parses with matching shard/shards — an exit status alone
/// proves nothing after a mid-write crash. Stale manifests from prior
/// attempts are removed before each spawn so they cannot mask one.
///
/// All shards run concurrently (one supervising thread each). On
/// success the manifests are returned in shard order; on failure the
/// error names every shard that exhausted its attempts.
pub fn supervise(
    shards: usize,
    out_dir: &Path,
    policy: &ShardPolicy,
    command_for: &(dyn Fn(usize, u32) -> Command + Sync),
    on_line: &(dyn Fn(usize, &str) + Sync),
) -> Result<Vec<ShardRun>, String> {
    let shards = shards.max(1);
    let max_attempts = policy.max_attempts.max(1);
    let runs: Vec<Result<ShardRun, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|shard| {
                scope.spawn(move || {
                    run_shard(
                        shard,
                        shards,
                        out_dir,
                        max_attempts,
                        policy,
                        command_for,
                        on_line,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard supervisor thread panicked"))
            .collect()
    });
    let mut ok = Vec::with_capacity(shards);
    let mut errors = Vec::new();
    for run in runs {
        match run {
            Ok(r) => ok.push(r),
            Err(e) => errors.push(e),
        }
    }
    if errors.is_empty() {
        Ok(ok)
    } else {
        Err(errors.join("; "))
    }
}

/// The per-shard attempt loop of [`supervise`].
fn run_shard(
    shard: usize,
    shards: usize,
    out_dir: &Path,
    max_attempts: u32,
    policy: &ShardPolicy,
    command_for: &(dyn Fn(usize, u32) -> Command + Sync),
    on_line: &(dyn Fn(usize, &str) + Sync),
) -> Result<ShardRun, String> {
    let mpath = manifest_path(out_dir, shard);
    let mut last_error = String::new();
    for attempt in 0..max_attempts {
        if attempt > 0 {
            let backoff = policy
                .backoff
                .saturating_mul(1 << (attempt - 1).min(16))
                .min(ShardPolicy::MAX_BACKOFF);
            eprintln!(
                "[shard] retrying shard {shard} (attempt {} of {max_attempts}, backoff {} ms): {last_error}",
                attempt + 1,
                backoff.as_millis()
            );
            std::thread::sleep(backoff);
        }
        // A manifest from a previous attempt must not count as this
        // attempt's commit.
        let _ = std::fs::remove_file(&mpath);
        let mut command = command_for(shard, attempt);
        command.stdout(Stdio::piped());
        let mut child = match command.spawn() {
            Ok(c) => c,
            Err(e) => {
                last_error = format!("shard {shard}: cannot spawn worker: {e}");
                continue;
            }
        };
        if let Some(out) = child.stdout.take() {
            for line in BufReader::new(out).lines() {
                match line {
                    Ok(line) => on_line(shard, &line),
                    Err(_) => break, // pipe died with the child; wait() below judges
                }
            }
        }
        let status = match child.wait() {
            Ok(s) => s,
            Err(e) => {
                last_error = format!("shard {shard}: cannot wait for worker: {e}");
                continue;
            }
        };
        if !status.success() {
            last_error = format!("shard {shard}: worker exited with {status}");
            continue;
        }
        match ShardManifest::load(&mpath) {
            Ok(m) if m.shard == shard as u64 && m.shards == shards as u64 => {
                return Ok(ShardRun {
                    shard,
                    attempts: attempt + 1,
                    manifest: m,
                });
            }
            Ok(m) => {
                last_error = format!(
                    "shard {shard}: manifest claims shard {}/{} (expected {shard}/{shards})",
                    m.shard, m.shards
                );
            }
            Err(e) => {
                last_error =
                    format!("shard {shard}: worker exited 0 without a valid manifest: {e}");
            }
        }
    }
    Err(format!(
        "shard {shard} failed after {max_attempts} attempt(s): {last_error}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hetsim-shard-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    fn keys(n: usize) -> Vec<JobKey> {
        (0..n)
            .map(|i| JobKey::from_bytes(format!("job-{i}").as_bytes()))
            .collect()
    }

    #[test]
    fn partition_is_an_exact_cover_in_submission_order() {
        let keys = keys(37);
        for shards in [1, 2, 3, 7, 64] {
            let parts = partition(&keys, shards);
            assert_eq!(parts.len(), shards);
            let mut seen: Vec<usize> = parts.iter().flatten().copied().collect();
            for part in &parts {
                assert!(part.windows(2).all(|w| w[0] < w[1]), "order preserved");
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..keys.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn one_shard_takes_everything_and_zero_clamps() {
        let keys = keys(9);
        assert_eq!(partition(&keys, 1)[0].len(), 9);
        assert_eq!(partition(&keys, 0).len(), 1);
        assert_eq!(partition(&keys, 0)[0].len(), 9);
    }

    #[test]
    fn assignment_is_stable_under_other_jobs() {
        // Membership depends only on the key: dropping half the batch
        // must not move any surviving job to a different shard.
        let all = keys(40);
        let survivors: Vec<JobKey> = all.iter().copied().step_by(2).collect();
        for shards in [2, 5] {
            for key in &survivors {
                assert_eq!(key.shard_of(shards), key.shard_of(shards));
            }
            let full = partition(&all, shards);
            let half = partition(&survivors, shards);
            for (shard, part) in half.iter().enumerate() {
                for &idx in part {
                    let original = survivors[idx];
                    let pos = all.iter().position(|k| *k == original).expect("subset");
                    assert!(
                        full[shard].contains(&pos),
                        "key moved shards when the batch shrank"
                    );
                }
            }
        }
    }

    #[test]
    fn manifest_round_trips_through_disk() {
        let dir = tmp_dir("manifest");
        let m = ShardManifest {
            schema: SHARD_SCHEMA.into(),
            shard: 2,
            shards: 4,
            attempt: 1,
            jobs: 3,
            executed: 2,
            keys: vec!["a".repeat(32), "b".repeat(32), "c".repeat(32)],
        };
        let path = manifest_path(&dir, 2);
        m.write_to(&path).expect("write manifest");
        assert_eq!(ShardManifest::load(&path).expect("load"), m);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn manifest_load_rejects_garbage_and_wrong_schema() {
        let dir = tmp_dir("badmanifest");
        let path = manifest_path(&dir, 0);
        assert!(ShardManifest::load(&path).is_err(), "missing file");
        std::fs::write(&path, "{ torn").expect("write");
        assert!(ShardManifest::load(&path).is_err(), "torn json");
        let wrong = ShardManifest {
            schema: "hetsim-shard-v0".into(),
            shard: 0,
            shards: 1,
            attempt: 0,
            jobs: 0,
            executed: 0,
            keys: Vec::new(),
        };
        wrong.write_to(&path).expect("write");
        assert!(ShardManifest::load(&path).is_err(), "wrong schema");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn wire_events_round_trip_and_reject_noise() {
        let event = WorkerEvent {
            label: "cpu/lu/AdvHetx4".into(),
            provenance: Provenance::DiskCache,
            sim_seconds: 0.125,
        };
        let line = event.to_line();
        assert!(line.ends_with('\n'));
        assert_eq!(WorkerEvent::from_line(&line), Some(event));
        assert_eq!(WorkerEvent::from_line("not json"), None);
        assert_eq!(WorkerEvent::from_line("{\"ev\":\"other\"}"), None);
        assert_eq!(
            WorkerEvent::from_line("{\"ev\":\"job-finished\",\"label\":\"x\"}"),
            None,
            "missing fields"
        );
    }

    #[test]
    fn shard_event_sink_narrates_only_job_finished() {
        #[derive(Clone, Default)]
        struct SharedBuf(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("buf lock").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = SharedBuf::default();
        let sink = ShardEventSink::with_writer(Box::new(buf.clone()));
        sink.event(&ProgressEvent::BatchStarted {
            total: 1,
            workers: 1,
            columns: Vec::new(),
        });
        sink.event(&ProgressEvent::JobFinished {
            index: 0,
            label: "gpu/matmul/AdvHet".into(),
            provenance: Provenance::Executed,
            done: 1,
            total: 1,
            counters: vec![("gpu.cycles".into(), 7)],
            sim_seconds: 0.5,
        });
        let bytes = buf.0.lock().expect("buf lock").clone();
        let text = String::from_utf8(bytes).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "batch events are not wire events");
        let event = WorkerEvent::from_line(lines[0]).expect("valid wire line");
        assert_eq!(event.label, "gpu/matmul/AdvHet");
        assert_eq!(event.provenance, Provenance::Executed);
    }

    /// A worker stub: emits one wire line, then commits a manifest via
    /// a tiny shell script (the supervisor only sees a `Command`).
    fn stub_worker(dir: &Path, shard: usize, shards: usize, fail_first: bool) -> Command {
        let mpath = manifest_path(dir, shard);
        let marker = dir.join(format!("attempted-{shard}"));
        let manifest = format!(
            "{{\"schema\":\"{SHARD_SCHEMA}\",\"shard\":{shard},\"shards\":{shards},\
             \"attempt\":0,\"jobs\":1,\"executed\":1,\"keys\":[\"{}\"]}}",
            "0".repeat(32)
        );
        let fail_clause = if fail_first {
            format!(
                "if [ ! -e {marker} ]; then touch {marker}; exit 7; fi;",
                marker = marker.display()
            )
        } else {
            String::new()
        };
        let script = format!(
            "{fail_clause} printf '%s\\n' '{{\"ev\":\"job-finished\",\"label\":\"cpu/lu/AdvHetx4\",\
             \"provenance\":\"ran\",\"sim_seconds\":0.25}}'; printf '%s' '{manifest}' > {mpath}",
            mpath = mpath.display()
        );
        let mut cmd = Command::new("sh");
        cmd.arg("-c").arg(script);
        cmd
    }

    #[test]
    fn supervisor_collects_manifests_and_fans_in_events() {
        let dir = tmp_dir("supervise");
        let events = Mutex::new(Vec::new());
        let runs = supervise(
            2,
            &dir,
            &ShardPolicy::default(),
            &|shard, _attempt| stub_worker(&dir, shard, 2, false),
            &|shard, line| {
                if let Some(e) = WorkerEvent::from_line(line) {
                    events.lock().expect("events lock").push((shard, e.label));
                }
            },
        )
        .expect("both shards succeed");
        assert_eq!(runs.len(), 2);
        for run in &runs {
            assert_eq!(run.attempts, 1);
            assert_eq!(run.manifest.jobs, 1);
        }
        let mut seen = events.into_inner().expect("events lock");
        seen.sort();
        assert_eq!(seen.len(), 2, "one wire event per worker");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn supervisor_retries_a_crashed_shard_and_succeeds() {
        let dir = tmp_dir("retry");
        let policy = ShardPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(1),
        };
        let runs = supervise(
            2,
            &dir,
            &policy,
            &|shard, _attempt| stub_worker(&dir, shard, 2, shard == 1),
            &|_, _| {},
        )
        .expect("retry heals the crash");
        let by_shard = |s: usize| runs.iter().find(|r| r.shard == s).expect("shard ran");
        assert_eq!(by_shard(0).attempts, 1);
        assert_eq!(by_shard(1).attempts, 2, "crashed once, then succeeded");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn supervisor_fails_when_attempts_are_exhausted() {
        let dir = tmp_dir("exhaust");
        let policy = ShardPolicy {
            max_attempts: 2,
            backoff: Duration::from_millis(1),
        };
        let err = supervise(
            1,
            &dir,
            &policy,
            &|_, _| {
                let mut cmd = Command::new("sh");
                cmd.arg("-c").arg("exit 9");
                cmd
            },
            &|_, _| {},
        )
        .expect_err("a permanently broken shard must fail the run");
        assert!(
            err.contains("shard 0 failed after 2 attempt(s)"),
            "error names the shard and the attempts: {err}"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn exit_zero_without_a_manifest_is_a_failure() {
        let dir = tmp_dir("nomanifest");
        let policy = ShardPolicy {
            max_attempts: 1,
            backoff: Duration::from_millis(1),
        };
        let err = supervise(
            1,
            &dir,
            &policy,
            &|_, _| {
                let mut cmd = Command::new("sh");
                cmd.arg("-c").arg("exit 0");
                cmd
            },
            &|_, _| {},
        )
        .expect_err("exit 0 without a commit record proves nothing");
        assert!(err.contains("without a valid manifest"), "{err}");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
