//! The [`Runner`]: cache lookup, pool dispatch, deterministic merge.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::cache::{CacheLayer, ResultCache};
use crate::job::Job;
use crate::pool::{run_batch, Task};
use crate::progress::{NullSink, ProgressEvent, ProgressSink, Provenance, RunnerStats};
use crate::SimMetrics;

/// The campaign-execution engine: a worker count, a result cache and a
/// progress sink.
///
/// A batch of [`Job`]s submitted through [`Runner::run`] is answered in
/// three steps:
///
/// 1. **lookup** — every key is probed in the cache (memory, then
///    disk); hits fill their result slot immediately and emit a
///    `JobFinished` event with cache provenance;
/// 2. **execute** — the remaining misses run on the work-stealing pool
///    ([`run_batch`]), each storing its outcome back into the cache;
/// 3. **merge** — results are returned in submission order, so the
///    output is independent of worker count and scheduling.
///
/// The runner keeps cumulative [`RunnerStats`] across batches (a
/// campaign is usually several figures' worth of batches on one
/// runner).
pub struct Runner<T> {
    workers: usize,
    cache: ResultCache<T>,
    sink: Arc<dyn ProgressSink>,
    total: Mutex<RunnerStats>,
    last: Mutex<RunnerStats>,
}

impl<T> Runner<T>
where
    T: Clone + Send + Serialize + Deserialize + SimMetrics,
{
    /// A runner with `workers` threads (clamped to at least 1) and an
    /// in-memory cache.
    pub fn new(workers: usize) -> Self {
        Runner {
            workers: workers.max(1),
            cache: ResultCache::in_memory(),
            sink: Arc::new(NullSink),
            total: Mutex::default(),
            last: Mutex::default(),
        }
    }

    /// A single-threaded runner — the reference execution order.
    pub fn serial() -> Self {
        Runner::new(1)
    }

    /// A runner sized by `std::thread::available_parallelism` (1 if
    /// that cannot be determined).
    pub fn parallel() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Runner::new(workers)
    }

    /// Adds an on-disk cache layer rooted at `dir` (created if
    /// missing). Results already memoized in memory are kept.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be
    /// created.
    pub fn with_cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        self.cache = ResultCache::on_disk(dir)?;
        Ok(self)
    }

    /// Replaces the progress sink.
    pub fn with_sink(mut self, sink: Arc<dyn ProgressSink>) -> Self {
        self.sink = sink;
        self
    }

    /// The worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs a batch, returning outcomes in submission order.
    pub fn run(&self, jobs: Vec<Job<T>>) -> Vec<T> {
        let started = Instant::now();
        let n = jobs.len();
        self.cache.reset_stats();
        self.sink.event(&ProgressEvent::BatchStarted {
            total: n,
            workers: self.workers,
        });

        // Step 1: probe the cache for every job, in submission order.
        let done = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        let mut misses: Vec<(usize, Job<T>)> = Vec::new();
        for (index, job) in jobs.into_iter().enumerate() {
            match self.cache.get_traced(job.key) {
                Some((value, layer)) => {
                    let provenance = match layer {
                        CacheLayer::Memory => Provenance::MemoryCache,
                        CacheLayer::Disk => Provenance::DiskCache,
                    };
                    self.sink.event(&ProgressEvent::JobFinished {
                        index,
                        label: job.label,
                        provenance,
                        done: done.fetch_add(1, Ordering::SeqCst) + 1,
                        total: n,
                        counters: value.counters(),
                    });
                    slots.push(Some(value));
                }
                None => {
                    slots.push(None);
                    misses.push((index, job));
                }
            }
        }

        // Step 2: execute the misses on the pool. Each task announces
        // itself, simulates, stores the outcome, and reports.
        let executed = misses.len() as u64;
        let cache = &self.cache;
        let sink = &self.sink;
        let done = &done;
        let tasks: Vec<Task<'_, (usize, T)>> = misses
            .into_iter()
            .map(|(index, job)| {
                let Job { key, label, run } = job;
                Box::new(move || {
                    sink.event(&ProgressEvent::JobStarted {
                        index,
                        label: label.clone(),
                    });
                    let value = run();
                    cache.put(key, &value);
                    sink.event(&ProgressEvent::JobFinished {
                        index,
                        label,
                        provenance: Provenance::Executed,
                        done: done.fetch_add(1, Ordering::SeqCst) + 1,
                        total: n,
                        counters: value.counters(),
                    });
                    (index, value)
                }) as Task<'_, (usize, T)>
            })
            .collect();
        for (index, value) in run_batch(self.workers, tasks) {
            slots[index] = Some(value);
        }

        // Step 3: merge by submission index.
        let results: Vec<T> = slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("job {i} produced no outcome")))
            .collect();

        let stats = RunnerStats {
            jobs: n as u64,
            executed,
            cache_hits: n as u64 - executed,
            cache: self.cache.stats(),
            sim_seconds: results.iter().map(SimMetrics::sim_seconds).sum(),
            wall: started.elapsed(),
        };
        self.sink.event(&ProgressEvent::BatchFinished { stats });
        *self.last.lock().expect("stats lock") = stats;
        self.total.lock().expect("stats lock").merge(&stats);
        results
    }

    /// Counters for the most recent batch.
    pub fn last_stats(&self) -> RunnerStats {
        *self.last.lock().expect("stats lock")
    }

    /// Cumulative counters across every batch this runner has run.
    pub fn total_stats(&self) -> RunnerStats {
        *self.total.lock().expect("stats lock")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[derive(Debug, Clone, PartialEq)]
    struct Out(f64);

    impl Serialize for Out {
        fn to_value(&self) -> serde::value::Value {
            self.0.to_value()
        }
    }

    impl Deserialize for Out {
        fn from_value(v: &serde::value::Value) -> Result<Self, serde::Error> {
            f64::from_value(v).map(Out)
        }
    }

    impl SimMetrics for Out {
        fn sim_seconds(&self) -> f64 {
            self.0
        }

        fn counters(&self) -> Vec<(String, u64)> {
            vec![("value_millis".into(), (self.0 * 1e3) as u64)]
        }
    }

    fn batch(counter: &'static AtomicU64, n: u64) -> Vec<Job<Out>> {
        (0..n)
            .map(|i| {
                Job::keyed(&("test-v1", i), format!("job{i}"), move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    Out(i as f64)
                })
            })
            .collect()
    }

    #[test]
    fn serial_and_parallel_runs_agree() {
        static RUNS: AtomicU64 = AtomicU64::new(0);
        let serial = Runner::serial().run(batch(&RUNS, 31));
        let parallel = Runner::new(8).run(batch(&RUNS, 31));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn second_batch_is_answered_from_memory() {
        static RUNS: AtomicU64 = AtomicU64::new(0);
        let runner = Runner::new(4);
        runner.run(batch(&RUNS, 10));
        assert_eq!(RUNS.load(Ordering::SeqCst), 10);
        runner.run(batch(&RUNS, 10));
        assert_eq!(
            RUNS.load(Ordering::SeqCst),
            10,
            "warm batch must execute nothing"
        );
        let last = runner.last_stats();
        assert_eq!((last.executed, last.cache_hits), (0, 10));
        assert_eq!(last.cache.memory_hits, 10);
        assert!((last.hit_rate() - 1.0).abs() < 1e-12);
        let total = runner.total_stats();
        assert_eq!((total.jobs, total.executed), (20, 10));
    }

    #[test]
    fn disk_cache_feeds_a_fresh_runner() {
        static RUNS: AtomicU64 = AtomicU64::new(0);
        let dir =
            std::env::temp_dir().join(format!("hetsim-runner-runner-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cold = Runner::new(2).with_cache_dir(&dir).expect("cache dir");
        let a = cold.run(batch(&RUNS, 6));
        assert_eq!(RUNS.load(Ordering::SeqCst), 6);
        let warm = Runner::new(2).with_cache_dir(&dir).expect("cache dir");
        let b = warm.run(batch(&RUNS, 6));
        assert_eq!(
            RUNS.load(Ordering::SeqCst),
            6,
            "disk-warm batch must execute nothing"
        );
        assert_eq!(a, b);
        assert_eq!(warm.last_stats().cache.disk_hits, 6);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn progress_events_cover_every_job() {
        struct Counting(AtomicU64, AtomicU64);
        impl ProgressSink for Counting {
            fn event(&self, event: &ProgressEvent) {
                match event {
                    ProgressEvent::JobFinished { .. } => {
                        self.0.fetch_add(1, Ordering::SeqCst);
                    }
                    ProgressEvent::BatchFinished { .. } => {
                        self.1.fetch_add(1, Ordering::SeqCst);
                    }
                    _ => {}
                }
            }
        }
        static RUNS: AtomicU64 = AtomicU64::new(0);
        let sink = Arc::new(Counting(AtomicU64::new(0), AtomicU64::new(0)));
        let runner = Runner::new(4).with_sink(sink.clone());
        runner.run(batch(&RUNS, 12));
        assert_eq!(sink.0.load(Ordering::SeqCst), 12);
        assert_eq!(sink.1.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn job_finished_events_carry_outcome_counters_cold_and_warm() {
        struct Collecting(Mutex<Vec<Vec<(String, u64)>>>);
        impl ProgressSink for Collecting {
            fn event(&self, event: &ProgressEvent) {
                if let ProgressEvent::JobFinished {
                    index, counters, ..
                } = event
                {
                    let mut seen = self.0.lock().expect("sink lock");
                    // Keyed by index so worker completion order is moot.
                    if seen.len() <= *index {
                        seen.resize(*index + 1, Vec::new());
                    }
                    seen[*index] = counters.clone();
                }
            }
        }
        static RUNS: AtomicU64 = AtomicU64::new(0);
        let sink = Arc::new(Collecting(Mutex::new(Vec::new())));
        let runner = Runner::new(4).with_sink(sink.clone());
        runner.run(batch(&RUNS, 3));
        let cold = std::mem::take(&mut *sink.0.lock().expect("sink lock"));
        assert_eq!(cold[2], vec![("value_millis".to_string(), 2000)]);

        // A warm batch (pure memory hits) must report the same counters.
        runner.run(batch(&RUNS, 3));
        assert_eq!(runner.last_stats().executed, 0);
        let warm = std::mem::take(&mut *sink.0.lock().expect("sink lock"));
        assert_eq!(cold, warm);
    }

    #[test]
    fn sim_seconds_accumulate_in_stats() {
        static RUNS: AtomicU64 = AtomicU64::new(0);
        let runner = Runner::serial();
        runner.run(batch(&RUNS, 4)); // outcomes 0.0 + 1.0 + 2.0 + 3.0
        assert!((runner.last_stats().sim_seconds - 6.0).abs() < 1e-12);
    }
}
