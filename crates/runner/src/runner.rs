//! The [`Runner`]: cache lookup, pool dispatch, deterministic merge.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use hetsim_obs::{Clock, MonotonicClock, TraceRecorder};
use serde::{Deserialize, Serialize};

use crate::cache::{CacheLayer, ResultCache};
use crate::job::Job;
use crate::pool::{run_batch, Task};
use crate::progress::{design_of, NullSink, ProgressEvent, ProgressSink, Provenance, RunnerStats};
use crate::timing::RunnerTiming;
use crate::SimMetrics;

/// The campaign-execution engine: a worker count, a result cache and a
/// progress sink.
///
/// A batch of [`Job`]s submitted through [`Runner::run`] is answered in
/// three steps:
///
/// 1. **lookup** — every key is probed in the cache (memory, then
///    disk); hits fill their result slot immediately and emit a
///    `JobFinished` event with cache provenance;
/// 2. **execute** — the remaining misses run on the work-stealing pool
///    ([`run_batch`]), each storing its outcome back into the cache;
/// 3. **merge** — results are returned in submission order, so the
///    output is independent of worker count and scheduling.
///
/// The runner keeps cumulative [`RunnerStats`] across batches (a
/// campaign is usually several figures' worth of batches on one
/// runner), plus per-phase wall-time histograms ([`RunnerTiming`]).
///
/// All timestamps come from an injected [`Clock`] — a
/// [`hetsim_obs::ManualClock`] under test makes timing and tracing
/// assertions exact — and, when a
/// [`TraceRecorder`] is attached via [`Runner::with_recorder`], each
/// job's phases (`cache-lookup`, `simulate`, `cache-write`) are
/// recorded as spans on the thread that ran them.
pub struct Runner<T> {
    workers: usize,
    cache: ResultCache<T>,
    bypass_cache: bool,
    sink: Arc<dyn ProgressSink>,
    clock: Arc<dyn Clock>,
    recorder: Option<Arc<TraceRecorder>>,
    total: Mutex<RunnerStats>,
    last: Mutex<RunnerStats>,
    timing: Mutex<RunnerTiming>,
}

impl<T> Runner<T>
where
    T: Clone + Send + Serialize + Deserialize + SimMetrics,
{
    /// A runner with `workers` threads (clamped to at least 1) and an
    /// in-memory cache.
    pub fn new(workers: usize) -> Self {
        Runner {
            workers: workers.max(1),
            cache: ResultCache::in_memory(),
            bypass_cache: false,
            sink: Arc::new(NullSink),
            clock: Arc::new(MonotonicClock::new()),
            recorder: None,
            total: Mutex::default(),
            last: Mutex::default(),
            timing: Mutex::default(),
        }
    }

    /// A single-threaded runner — the reference execution order.
    pub fn serial() -> Self {
        Runner::new(1)
    }

    /// A runner sized by `std::thread::available_parallelism` (1 if
    /// that cannot be determined).
    pub fn parallel() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Runner::new(workers)
    }

    /// Adds an on-disk cache layer rooted at `dir` (created if
    /// missing). Results already memoized in memory are kept.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be
    /// created.
    pub fn with_cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        self.cache = ResultCache::on_disk(dir)?;
        Ok(self)
    }

    /// Bypasses the result cache entirely: every job executes, nothing
    /// is probed or stored, and the `cache_lookup_us`/`cache_write_us`
    /// timing histograms stay empty.
    ///
    /// This is the benchmark mode — a perf measurement must time the
    /// simulation itself, never a warm-cache lookup, and must follow
    /// the *identical* timing path whether or not a previous run
    /// populated a cache.
    pub fn with_cache_bypass(mut self, bypass: bool) -> Self {
        self.bypass_cache = bypass;
        self
    }

    /// Replaces the progress sink.
    pub fn with_sink(mut self, sink: Arc<dyn ProgressSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Replaces the clock used for wall-time and span timestamps
    /// (tests inject a [`hetsim_obs::ManualClock`]).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Attaches a trace recorder: each job's phases are recorded as
    /// spans (`cache-lookup` for every probe; `simulate` and
    /// `cache-write` for misses; one `batch` span per [`Runner::run`]).
    ///
    /// The runner adopts the recorder's clock, so span timestamps and
    /// wall-time histograms share one timeline (a later
    /// [`Runner::with_clock`] call would split them — don't).
    pub fn with_recorder(mut self, recorder: Arc<TraceRecorder>) -> Self {
        self.clock = recorder.clock();
        self.recorder = Some(recorder);
        self
    }

    /// The worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs a batch, returning outcomes in submission order.
    pub fn run(&self, jobs: Vec<Job<T>>) -> Vec<T> {
        let started_us = self.clock.now_us();
        let n = jobs.len();
        self.cache.reset_stats();
        // Per-design job counts, first-submission order, so sinks know
        // each campaign column's size up front.
        let mut columns: Vec<(String, usize)> = Vec::new();
        for job in &jobs {
            let design = design_of(&job.label);
            match columns.iter_mut().find(|(d, _)| d == design) {
                Some((_, count)) => *count += 1,
                None => columns.push((design.to_string(), 1)),
            }
        }
        self.sink.event(&ProgressEvent::BatchStarted {
            total: n,
            workers: self.workers,
            columns,
        });
        let mut batch_timing = RunnerTiming::default();

        // Step 1: probe the cache for every job, in submission order.
        let done = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        let mut misses: Vec<(usize, Job<T>)> = Vec::new();
        for (index, job) in jobs.into_iter().enumerate() {
            if self.bypass_cache {
                // Benchmark mode: no probe, no lookup sample, no span —
                // the timing path is identical cold and warm.
                slots.push(None);
                misses.push((index, job));
                continue;
            }
            let lookup_start_us = self.clock.now_us();
            let hit = self.cache.get_traced(job.key);
            let lookup_end_us = self.clock.now_us();
            batch_timing
                .cache_lookup_us
                .record(lookup_end_us.saturating_sub(lookup_start_us));
            let provenance = match hit {
                Some((_, CacheLayer::Memory)) => Provenance::MemoryCache,
                Some((_, CacheLayer::Disk)) => Provenance::DiskCache,
                None => Provenance::Executed, // will run on the pool
            };
            if let Some(recorder) = &self.recorder {
                recorder.record_span(
                    "cache-lookup",
                    "job",
                    lookup_start_us,
                    lookup_end_us,
                    vec![
                        ("index".into(), index.into()),
                        ("job".into(), job.label.clone().into()),
                        (
                            "provenance".into(),
                            if hit.is_some() {
                                provenance.tag()
                            } else {
                                "miss"
                            }
                            .into(),
                        ),
                    ],
                );
            }
            match hit {
                Some((value, _)) => {
                    self.sink.event(&ProgressEvent::JobFinished {
                        index,
                        label: job.label,
                        provenance,
                        done: done.fetch_add(1, Ordering::SeqCst) + 1,
                        total: n,
                        counters: value.counters(),
                        sim_seconds: value.sim_seconds(),
                    });
                    slots.push(Some(value));
                }
                None => {
                    slots.push(None);
                    misses.push((index, job));
                }
            }
        }

        // Step 2: execute the misses on the pool. Each task announces
        // itself, simulates, stores the outcome, and reports. Phase
        // times land in `timing` (shared, per-sample lock) and — when
        // tracing — as spans on the worker's own track.
        let executed = misses.len() as u64;
        let bypass_cache = self.bypass_cache;
        let cache = &self.cache;
        let sink = &self.sink;
        let clock = &self.clock;
        let recorder = self.recorder.as_deref();
        let timing = &self.timing;
        let done = &done;
        let tasks: Vec<Task<'_, (usize, T)>> = misses
            .into_iter()
            .map(|(index, job)| {
                let Job { key, label, run } = job;
                Box::new(move || {
                    sink.event(&ProgressEvent::JobStarted {
                        index,
                        label: label.clone(),
                    });
                    // Queue wait: submission (= batch start; all misses
                    // are submitted together) to worker pickup. Not a
                    // span — waits overlap arbitrarily on a worker's
                    // track — so it rides on the simulate span as an
                    // annotation instead.
                    let sim_start_us = clock.now_us();
                    let queue_us = sim_start_us.saturating_sub(started_us);
                    let value = run();
                    let sim_end_us = clock.now_us();
                    let write_end_us = if bypass_cache {
                        sim_end_us // nothing stored, no write phase
                    } else {
                        cache.put(key, &value);
                        clock.now_us()
                    };
                    {
                        let mut timing = timing.lock().expect("timing lock");
                        timing.queue_wait_us.record(queue_us);
                        timing
                            .simulate_us
                            .record(sim_end_us.saturating_sub(sim_start_us));
                        if !bypass_cache {
                            timing
                                .cache_write_us
                                .record(write_end_us.saturating_sub(sim_end_us));
                        }
                    }
                    if let Some(recorder) = recorder {
                        recorder.record_span(
                            "simulate",
                            "job",
                            sim_start_us,
                            sim_end_us,
                            vec![
                                ("index".into(), index.into()),
                                ("job".into(), label.clone().into()),
                                ("queue_us".into(), queue_us.into()),
                            ],
                        );
                        if !bypass_cache {
                            recorder.record_span(
                                "cache-write",
                                "job",
                                sim_end_us,
                                write_end_us,
                                vec![("index".into(), index.into())],
                            );
                        }
                    }
                    sink.event(&ProgressEvent::JobFinished {
                        index,
                        label,
                        provenance: Provenance::Executed,
                        done: done.fetch_add(1, Ordering::SeqCst) + 1,
                        total: n,
                        counters: value.counters(),
                        sim_seconds: value.sim_seconds(),
                    });
                    (index, value)
                }) as Task<'_, (usize, T)>
            })
            .collect();
        for (index, value) in run_batch(self.workers, tasks) {
            slots[index] = Some(value);
        }

        // Step 3: merge by submission index.
        let results: Vec<T> = slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("job {i} produced no outcome")))
            .collect();

        let end_us = self.clock.now_us();
        // Step-1 lookup times merge here rather than sampling the
        // shared histogram once per probe on the hot submission path.
        self.timing
            .lock()
            .expect("timing lock")
            .merge(&batch_timing);
        if let Some(recorder) = &self.recorder {
            recorder.record_span(
                "batch",
                "runner",
                started_us,
                end_us,
                vec![
                    ("jobs".into(), n.into()),
                    ("executed".into(), executed.into()),
                ],
            );
        }
        let stats = RunnerStats {
            jobs: n as u64,
            executed,
            cache_hits: n as u64 - executed,
            cache: self.cache.stats(),
            sim_seconds: results.iter().map(SimMetrics::sim_seconds).sum(),
            wall: Duration::from_micros(end_us.saturating_sub(started_us)),
        };
        self.sink.event(&ProgressEvent::BatchFinished { stats });
        // Settle rate-limited sinks (the dashboard) so the final frame
        // always reflects the completed batch.
        self.sink.flush();
        *self.last.lock().expect("stats lock") = stats;
        self.total.lock().expect("stats lock").merge(&stats);
        results
    }

    /// Counters for the most recent batch.
    pub fn last_stats(&self) -> RunnerStats {
        *self.last.lock().expect("stats lock")
    }

    /// Cumulative counters across every batch this runner has run.
    pub fn total_stats(&self) -> RunnerStats {
        *self.total.lock().expect("stats lock")
    }

    /// Cumulative per-phase wall-time histograms across every batch
    /// (always collected, with or without a recorder attached).
    pub fn total_timing(&self) -> RunnerTiming {
        *self.timing.lock().expect("timing lock")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[derive(Debug, Clone, PartialEq)]
    struct Out(f64);

    impl Serialize for Out {
        fn to_value(&self) -> serde::value::Value {
            self.0.to_value()
        }
    }

    impl Deserialize for Out {
        fn from_value(v: &serde::value::Value) -> Result<Self, serde::Error> {
            f64::from_value(v).map(Out)
        }
    }

    impl SimMetrics for Out {
        fn sim_seconds(&self) -> f64 {
            self.0
        }

        fn counters(&self) -> Vec<(String, u64)> {
            vec![("value_millis".into(), (self.0 * 1e3) as u64)]
        }
    }

    fn batch(counter: &'static AtomicU64, n: u64) -> Vec<Job<Out>> {
        (0..n)
            .map(|i| {
                Job::keyed(&("test-v1", i), format!("job{i}"), move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    Out(i as f64)
                })
            })
            .collect()
    }

    #[test]
    fn serial_and_parallel_runs_agree() {
        static RUNS: AtomicU64 = AtomicU64::new(0);
        let serial = Runner::serial().run(batch(&RUNS, 31));
        let parallel = Runner::new(8).run(batch(&RUNS, 31));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn second_batch_is_answered_from_memory() {
        static RUNS: AtomicU64 = AtomicU64::new(0);
        let runner = Runner::new(4);
        runner.run(batch(&RUNS, 10));
        assert_eq!(RUNS.load(Ordering::SeqCst), 10);
        runner.run(batch(&RUNS, 10));
        assert_eq!(
            RUNS.load(Ordering::SeqCst),
            10,
            "warm batch must execute nothing"
        );
        let last = runner.last_stats();
        assert_eq!((last.executed, last.cache_hits), (0, 10));
        assert_eq!(last.cache.memory_hits, 10);
        assert!((last.hit_rate() - 1.0).abs() < 1e-12);
        let total = runner.total_stats();
        assert_eq!((total.jobs, total.executed), (20, 10));
    }

    #[test]
    fn disk_cache_feeds_a_fresh_runner() {
        static RUNS: AtomicU64 = AtomicU64::new(0);
        let dir =
            std::env::temp_dir().join(format!("hetsim-runner-runner-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cold = Runner::new(2).with_cache_dir(&dir).expect("cache dir");
        let a = cold.run(batch(&RUNS, 6));
        assert_eq!(RUNS.load(Ordering::SeqCst), 6);
        let warm = Runner::new(2).with_cache_dir(&dir).expect("cache dir");
        let b = warm.run(batch(&RUNS, 6));
        assert_eq!(
            RUNS.load(Ordering::SeqCst),
            6,
            "disk-warm batch must execute nothing"
        );
        assert_eq!(a, b);
        assert_eq!(warm.last_stats().cache.disk_hits, 6);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn progress_events_cover_every_job() {
        struct Counting(AtomicU64, AtomicU64);
        impl ProgressSink for Counting {
            fn event(&self, event: &ProgressEvent) {
                match event {
                    ProgressEvent::JobFinished { .. } => {
                        self.0.fetch_add(1, Ordering::SeqCst);
                    }
                    ProgressEvent::BatchFinished { .. } => {
                        self.1.fetch_add(1, Ordering::SeqCst);
                    }
                    _ => {}
                }
            }
        }
        static RUNS: AtomicU64 = AtomicU64::new(0);
        let sink = Arc::new(Counting(AtomicU64::new(0), AtomicU64::new(0)));
        let runner = Runner::new(4).with_sink(sink.clone());
        runner.run(batch(&RUNS, 12));
        assert_eq!(sink.0.load(Ordering::SeqCst), 12);
        assert_eq!(sink.1.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn job_finished_events_carry_outcome_counters_cold_and_warm() {
        struct Collecting(Mutex<Vec<Vec<(String, u64)>>>);
        impl ProgressSink for Collecting {
            fn event(&self, event: &ProgressEvent) {
                if let ProgressEvent::JobFinished {
                    index, counters, ..
                } = event
                {
                    let mut seen = self.0.lock().expect("sink lock");
                    // Keyed by index so worker completion order is moot.
                    if seen.len() <= *index {
                        seen.resize(*index + 1, Vec::new());
                    }
                    seen[*index] = counters.clone();
                }
            }
        }
        static RUNS: AtomicU64 = AtomicU64::new(0);
        let sink = Arc::new(Collecting(Mutex::new(Vec::new())));
        let runner = Runner::new(4).with_sink(sink.clone());
        runner.run(batch(&RUNS, 3));
        let cold = std::mem::take(&mut *sink.0.lock().expect("sink lock"));
        assert_eq!(cold[2], vec![("value_millis".to_string(), 2000)]);

        // A warm batch (pure memory hits) must report the same counters.
        runner.run(batch(&RUNS, 3));
        assert_eq!(runner.last_stats().executed, 0);
        let warm = std::mem::take(&mut *sink.0.lock().expect("sink lock"));
        assert_eq!(cold, warm);
    }

    #[test]
    fn sim_seconds_accumulate_in_stats() {
        static RUNS: AtomicU64 = AtomicU64::new(0);
        let runner = Runner::serial();
        runner.run(batch(&RUNS, 4)); // outcomes 0.0 + 1.0 + 2.0 + 3.0
        assert!((runner.last_stats().sim_seconds - 6.0).abs() < 1e-12);
    }

    #[test]
    fn timing_histograms_count_every_phase() {
        static RUNS: AtomicU64 = AtomicU64::new(0);
        let runner = Runner::new(4);
        runner.run(batch(&RUNS, 10)); // cold: 10 misses
        runner.run(batch(&RUNS, 10)); // warm: 10 memory hits
        let timing = runner.total_timing();
        assert_eq!(timing.cache_lookup_us.count(), 20, "every probe sampled");
        assert_eq!(timing.simulate_us.count(), 10, "misses only");
        assert_eq!(timing.cache_write_us.count(), 10);
        assert_eq!(timing.queue_wait_us.count(), 10);
    }

    #[test]
    fn cache_bypass_follows_the_identical_timing_path_cold_and_warm() {
        static RUNS: AtomicU64 = AtomicU64::new(0);
        let runner = Runner::new(4).with_cache_bypass(true);
        let cold = runner.run(batch(&RUNS, 7));
        assert_eq!(RUNS.load(Ordering::SeqCst), 7);
        let warm = runner.run(batch(&RUNS, 7));
        assert_eq!(
            RUNS.load(Ordering::SeqCst),
            14,
            "a bypassing runner re-executes every job"
        );
        assert_eq!(cold, warm, "determinism is unaffected");
        let last = runner.last_stats();
        assert_eq!((last.executed, last.cache_hits), (7, 0));
        let timing = runner.total_timing();
        assert_eq!(
            timing.cache_lookup_us.count(),
            0,
            "no lookup ever sampled — cold and warm time the same phases"
        );
        assert_eq!(timing.cache_write_us.count(), 0, "no write phase either");
        assert_eq!(timing.simulate_us.count(), 14, "every job, both batches");
    }

    #[test]
    fn bypass_leaves_a_shared_cache_dir_untouched() {
        static RUNS: AtomicU64 = AtomicU64::new(0);
        let dir =
            std::env::temp_dir().join(format!("hetsim-runner-bypass-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let bench = Runner::new(2)
            .with_cache_dir(&dir)
            .expect("cache dir")
            .with_cache_bypass(true);
        bench.run(batch(&RUNS, 5));
        let leaked = std::fs::read_dir(&dir).expect("dir exists").count();
        assert_eq!(leaked, 0, "bench runs must not populate the cache");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn recorder_captures_a_structurally_valid_trace() {
        static RUNS: AtomicU64 = AtomicU64::new(0);
        let recorder = Arc::new(hetsim_obs::TraceRecorder::new(Arc::new(
            hetsim_obs::MonotonicClock::new(),
        )));
        let sink = Arc::new(crate::TraceEventSink::new(recorder.clone()));
        let runner = Runner::new(4)
            .with_recorder(recorder.clone())
            .with_sink(sink);
        runner.run(batch(&RUNS, 8)); // cold
        runner.run(batch(&RUNS, 8)); // warm
        let events = recorder.events();
        let spans_named = |name: &str| {
            events
                .iter()
                .filter(|e| e.name == name && matches!(e.kind, hetsim_obs::EventKind::Span { .. }))
                .count()
        };
        assert_eq!(spans_named("cache-lookup"), 16, "one per probe");
        assert_eq!(spans_named("simulate"), 8, "cold misses only");
        assert_eq!(spans_named("cache-write"), 8);
        assert_eq!(spans_named("batch"), 2);
        assert_eq!(
            hetsim_obs::validate_events(&events),
            Vec::<String>::new(),
            "runner traces must self-validate"
        );
    }
}
