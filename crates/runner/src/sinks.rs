//! Composing progress sinks: fan-out and trace-event capture.
//!
//! Progress consumers compose: a campaign may want human-readable
//! stderr lines *and* a machine-readable trace *and* a live dashboard
//! at once. [`MultiSink`] fans every event out to a list of sinks;
//! [`TraceEventSink`] bridges the progress stream into a
//! [`TraceRecorder`] as instant events, so a trace file carries the
//! same per-job narrative as the terminal.

use std::sync::Arc;

use hetsim_obs::TraceRecorder;

use crate::progress::{ProgressEvent, ProgressSink};

/// Fans each event out to every wrapped sink, in order.
pub struct MultiSink {
    sinks: Vec<Arc<dyn ProgressSink>>,
}

impl MultiSink {
    /// A fan-out over `sinks` (an empty list behaves like
    /// [`NullSink`](crate::NullSink)).
    pub fn new(sinks: Vec<Arc<dyn ProgressSink>>) -> Self {
        MultiSink { sinks }
    }
}

impl ProgressSink for MultiSink {
    fn event(&self, event: &ProgressEvent) {
        for sink in &self.sinks {
            sink.event(event);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

/// Records progress events into a [`TraceRecorder`] as instants.
///
/// Job phases (cache lookup, simulate, cache write) are recorded as
/// spans by the [`Runner`](crate::Runner) itself via
/// [`Runner::with_recorder`](crate::Runner::with_recorder); this sink
/// adds the event-level narrative — batch boundaries and per-job
/// completion with provenance — to the same recorder, stamped on
/// whichever thread delivered the event.
pub struct TraceEventSink {
    recorder: Arc<TraceRecorder>,
}

impl TraceEventSink {
    /// A sink recording into `recorder`.
    pub fn new(recorder: Arc<TraceRecorder>) -> Self {
        TraceEventSink { recorder }
    }
}

impl ProgressSink for TraceEventSink {
    fn event(&self, event: &ProgressEvent) {
        match event {
            ProgressEvent::BatchStarted { total, workers, .. } => {
                self.recorder.instant(
                    "batch-started",
                    "runner",
                    vec![
                        ("total".into(), (*total).into()),
                        ("workers".into(), (*workers).into()),
                    ],
                );
            }
            ProgressEvent::JobStarted { .. } => {}
            ProgressEvent::JobFinished {
                index,
                label,
                provenance,
                done,
                total,
                ..
            } => {
                self.recorder.instant(
                    "job-finished",
                    "job",
                    vec![
                        ("index".into(), (*index).into()),
                        ("job".into(), label.clone().into()),
                        ("provenance".into(), provenance.tag().into()),
                        ("done".into(), (*done).into()),
                        ("total".into(), (*total).into()),
                    ],
                );
            }
            ProgressEvent::BatchFinished { stats } => {
                self.recorder.instant(
                    "batch-finished",
                    "runner",
                    vec![
                        ("jobs".into(), stats.jobs.into()),
                        ("executed".into(), stats.executed.into()),
                        ("cache_hits".into(), stats.cache_hits.into()),
                    ],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    use hetsim_obs::{EventKind, ManualClock};

    use crate::progress::{Provenance, RunnerStats};

    fn finished(index: usize) -> ProgressEvent {
        ProgressEvent::JobFinished {
            index,
            label: format!("cpu/lu/AdvHetx{index}"),
            provenance: Provenance::MemoryCache,
            done: index + 1,
            total: 2,
            counters: Vec::new(),
            sim_seconds: 0.0,
        }
    }

    #[test]
    fn multi_sink_delivers_to_every_child_in_order() {
        struct Counting(AtomicU64);
        impl ProgressSink for Counting {
            fn event(&self, _event: &ProgressEvent) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let a = Arc::new(Counting(AtomicU64::new(0)));
        let b = Arc::new(Counting(AtomicU64::new(0)));
        let multi = MultiSink::new(vec![a.clone(), b.clone()]);
        multi.event(&finished(0));
        multi.event(&finished(1));
        assert_eq!(a.0.load(Ordering::SeqCst), 2);
        assert_eq!(b.0.load(Ordering::SeqCst), 2);
        // Degenerate fan-out is a no-op, not a panic.
        MultiSink::new(Vec::new()).event(&finished(0));
    }

    #[test]
    fn trace_event_sink_records_instants_with_provenance() {
        let clock = Arc::new(ManualClock::new());
        let recorder = Arc::new(TraceRecorder::new(clock.clone()));
        let sink = TraceEventSink::new(recorder.clone());
        sink.event(&ProgressEvent::BatchStarted {
            total: 2,
            workers: 4,
            columns: Vec::new(),
        });
        clock.advance(10);
        sink.event(&finished(0));
        sink.event(&ProgressEvent::JobStarted {
            index: 1,
            label: "ignored".into(),
        });
        sink.event(&ProgressEvent::BatchFinished {
            stats: RunnerStats::default(),
        });
        let events = recorder.events();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["batch-started", "job-finished", "batch-finished"]);
        let job = &events[1];
        assert_eq!(job.kind, EventKind::Instant { at_us: 10 });
        let arg = |k: &str| {
            job.args
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.render())
        };
        assert_eq!(arg("index").as_deref(), Some("0"), "typed, renders as 0");
        assert_eq!(arg("provenance").as_deref(), Some("mem"));
        assert_eq!(arg("job").as_deref(), Some("cpu/lu/AdvHetx0"));
    }
}
