//! # hetsim-runner: the campaign-execution engine
//!
//! Every paper artifact is produced by a *campaign* — a design ×
//! application sweep whose individual simulations are independent and
//! pure. This crate turns a campaign into a batch of [`Job`]s and runs
//! them on a work-stealing thread pool with a content-addressed result
//! cache, so:
//!
//! * sweeps use every core (`--jobs` / `available_parallelism`),
//! * re-running a figure is near-free (in-process memo store, plus an
//!   optional on-disk JSON cache shared across processes), and
//! * callers observe structured progress ([`ProgressSink`]) and
//!   throughput/cache metrics ([`RunnerStats`]).
//!
//! ## Determinism contract
//!
//! Parallel execution is **bit-identical** to serial execution:
//!
//! 1. every job is a pure function of its spec — each simulation seeds
//!    its own RNG from the job's config, and never reads shared mutable
//!    state;
//! 2. results are merged by submission index, not completion order;
//! 3. a cache hit returns the exact value a fresh simulation would
//!    produce, because the [`JobKey`] hashes the *full* canonical
//!    config (design, app profile content, instruction budget, seed,
//!    core count — see [`JobKey::of`]).
//!
//! Under that contract, `Runner::serial()` and a 64-worker runner
//! produce the same `Vec<T>` for the same batch, byte for byte.
//!
//! The crate is deliberately independent of the simulators: jobs carry
//! closures, outcomes are any `Serialize + Deserialize + Clone + Send`
//! type, and the sim-seconds metric comes from the [`SimMetrics`] trait
//! the outcome types implement. This is the layer future scaling work
//! (sharding, serving, larger sweeps) plugs into.

#![warn(missing_docs)]

mod cache;
mod dashboard;
mod job;
mod pool;
mod progress;
mod runner;
mod shard;
mod sinks;
mod timing;

pub use cache::{write_atomic, CacheLayer, CacheStats, ResultCache};
pub use dashboard::DashboardSink;
pub use job::{config_object, Job, JobKey};
pub use pool::{run_batch, Task};
pub use progress::{
    design_of, NullSink, ProgressEvent, ProgressSink, Provenance, RunnerStats, StderrSink,
};
pub use runner::Runner;
pub use shard::{
    fragment_path, manifest_path, partition, supervise, trace_path, ShardEventSink, ShardManifest,
    ShardPolicy, ShardRun, WorkerEvent, SHARD_SCHEMA,
};
pub use sinks::{MultiSink, TraceEventSink};
pub use timing::RunnerTiming;

/// Outcome types that can report how much simulated time they cover.
///
/// Used for the runner's throughput metric (simulated seconds per
/// wall-clock second). The default of `0.0` simply mutes the metric
/// for outcome types without a natural notion of simulated time.
pub trait SimMetrics {
    /// Simulated seconds this outcome represents.
    fn sim_seconds(&self) -> f64 {
        0.0
    }

    /// Flat `(name, value)` counter pairs summarizing this outcome,
    /// carried on every [`ProgressEvent::JobFinished`] so sinks can
    /// stream per-job telemetry without knowing the outcome type.
    /// Names should be stable, dotted paths (e.g. `"core.cycles"`).
    /// The default (empty) simply mutes per-job counters.
    fn counters(&self) -> Vec<(String, u64)> {
        Vec::new()
    }
}
