//! The work-stealing execution pool.
//!
//! A batch of indexed tasks runs on `workers` scoped `std::thread`s.
//! Tasks are dealt round-robin onto per-worker deques; a worker drains
//! its own deque from the front and, when empty, steals from the back
//! of the busiest sibling — the classic split that keeps the common
//! case contention-free while letting long-tailed batches (one slow
//! design × app point) rebalance.
//!
//! Results land in a slot vector by submission index, so the output
//! order is independent of scheduling — the cornerstone of the
//! runner's determinism contract.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A unit of pool work. The lifetime lets tasks borrow from the caller
/// (the runner's cache and sink) — the pool uses scoped threads.
pub type Task<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// A worker's deque of `(submission index, task)` pairs.
type TaskQueue<'a, T> = Mutex<VecDeque<(usize, Task<'a, T>)>>;

/// Runs `tasks` on `workers` threads, returning results in submission
/// order.
///
/// `workers == 1` (or a single task) runs inline on the calling thread
/// with no pool at all, so serial campaigns have zero threading
/// overhead and an obviously serial execution trace.
pub fn run_batch<'a, T: Send>(workers: usize, tasks: Vec<Task<'a, T>>) -> Vec<T> {
    let n = tasks.len();
    if workers <= 1 || n <= 1 {
        return tasks.into_iter().map(|t| t()).collect();
    }
    let workers = workers.min(n);

    // Deal tasks round-robin: worker w owns tasks w, w+workers, ...
    let mut queues: Vec<TaskQueue<'a, T>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, task) in tasks.into_iter().enumerate() {
        queues[i % workers]
            .get_mut()
            .expect("fresh mutex")
            .push_back((i, task));
    }
    let queues = &queues;

    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let slots = &slots;

    std::thread::scope(|scope| {
        for me in 0..workers {
            scope.spawn(move || loop {
                // Own queue first (front: preserves the dealt order).
                let mine = queues[me].lock().expect("queue lock").pop_front();
                let (idx, task) = match mine {
                    Some(item) => item,
                    None => {
                        // Steal from the back of the fullest sibling.
                        let victim = match (0..workers)
                            .filter(|&w| w != me)
                            .max_by_key(|&w| queues[w].lock().expect("queue lock").len())
                        {
                            Some(w) => w,
                            None => return,
                        };
                        match queues[victim].lock().expect("queue lock").pop_back() {
                            Some(item) => item,
                            // Every queue empty: remaining work is
                            // in-flight on other workers. Done here.
                            None => return,
                        }
                    }
                };
                let result = task();
                *slots[idx].lock().expect("slot lock") = Some(result);
            });
        }
    });

    slots
        .iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.lock()
                .expect("slot lock")
                .take()
                .unwrap_or_else(|| panic!("task {i} produced no result (worker panicked?)"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn boxed_tasks(n: usize) -> Vec<Task<'static, usize>> {
        (0..n)
            .map(|i| Box::new(move || i * i) as Task<usize>)
            .collect()
    }

    #[test]
    fn serial_and_parallel_agree_in_order() {
        let serial = run_batch(1, boxed_tasks(97));
        let parallel = run_batch(8, boxed_tasks(97));
        assert_eq!(serial, parallel);
        assert_eq!(serial[13], 169);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        static COUNT: AtomicUsize = AtomicUsize::new(0);
        let tasks: Vec<Task<()>> = (0..64)
            .map(|_| {
                Box::new(|| {
                    COUNT.fetch_add(1, Ordering::SeqCst);
                }) as Task<()>
            })
            .collect();
        run_batch(4, tasks);
        assert_eq!(COUNT.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        assert_eq!(run_batch(32, boxed_tasks(3)), vec![0, 1, 4]);
    }

    #[test]
    fn empty_batch_returns_empty() {
        assert!(run_batch(4, boxed_tasks(0)).is_empty());
    }

    #[test]
    fn stealing_rebalances_a_skewed_batch() {
        // One long task dealt to worker 0 alongside many short ones:
        // with stealing, total wall time must be far below the serial
        // sum. We can't time-assert robustly in CI, so assert the
        // weaker structural property: results are correct even when
        // one queue holds a task that outlives every other queue.
        let tasks: Vec<Task<u64>> = (0u64..33)
            .map(|i| {
                Box::new(move || {
                    if i == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(30));
                    }
                    i
                }) as Task<u64>
            })
            .collect();
        let got = run_batch(4, tasks);
        assert_eq!(got, (0u64..33).collect::<Vec<_>>());
    }
}
