//! Structured progress and throughput events.
//!
//! The runner narrates a campaign through a [`ProgressSink`]: batch
//! start, per-job completion (with cache provenance), and a final
//! [`RunnerStats`] summary carrying the cache hit rate and the
//! simulated-seconds-per-wall-second throughput metric. Sinks must be
//! `Send + Sync` — completion events arrive from worker threads.

use std::sync::Mutex;
use std::time::Duration;

use serde::value::Value;
use serde::Serialize;

use crate::cache::CacheStats;

/// How a job's outcome was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Freshly simulated on a worker.
    Executed,
    /// Answered from the in-process store.
    MemoryCache,
    /// Answered from the on-disk cache.
    DiskCache,
}

/// One progress event.
#[derive(Debug, Clone)]
pub enum ProgressEvent {
    /// A batch was submitted: `total` jobs, `workers` threads.
    BatchStarted {
        /// Jobs in the batch.
        total: usize,
        /// Worker threads executing it.
        workers: usize,
    },
    /// A job started executing on a worker (cache misses only).
    JobStarted {
        /// Index of the job in the batch.
        index: usize,
        /// The job's label.
        label: String,
    },
    /// A job finished (by execution or cache hit).
    JobFinished {
        /// Index of the job in the batch.
        index: usize,
        /// The job's label.
        label: String,
        /// How the outcome was obtained.
        provenance: Provenance,
        /// Jobs finished so far, including this one.
        done: usize,
        /// Jobs in the batch.
        total: usize,
        /// The outcome's counter summary (`(name, value)` pairs from
        /// [`crate::SimMetrics::counters`]); empty for outcome types
        /// that do not expose counters. Cache hits carry the cached
        /// outcome's counters, so the telemetry stream is identical
        /// whether a campaign ran cold or warm.
        counters: Vec<(String, u64)>,
    },
    /// The batch completed.
    BatchFinished {
        /// Summary counters for the batch.
        stats: RunnerStats,
    },
}

/// Summary counters for one batch (or a whole campaign).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunnerStats {
    /// Jobs submitted.
    pub jobs: u64,
    /// Jobs actually simulated (cache misses).
    pub executed: u64,
    /// Jobs answered by either cache layer.
    pub cache_hits: u64,
    /// Cache-layer detail.
    pub cache: CacheStats,
    /// Simulated seconds covered by the batch's outcomes.
    pub sim_seconds: f64,
    /// Wall-clock time the batch took.
    pub wall: Duration,
}

impl RunnerStats {
    /// Whether these counters are a pure function of the simulated
    /// configuration. They are **not**: wall time varies with machine
    /// load, and the cache-hit split varies with disk state, so two
    /// byte-identical campaigns legitimately report different
    /// [`RunnerStats`]. Cross-run regression gates consult this
    /// declaration to exempt runner telemetry from comparison, instead
    /// of hand-listing section names at every call site.
    pub const DETERMINISTIC: bool = false;

    /// Cache hit rate over the batch in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.jobs as f64
        }
    }

    /// Simulated seconds per wall-clock second (the runner's
    /// throughput metric); `0` for an instantaneous batch.
    pub fn sim_seconds_per_wall_second(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            self.sim_seconds / wall
        } else {
            0.0
        }
    }

    /// Folds another batch's counters into this one.
    pub fn merge(&mut self, other: &RunnerStats) {
        self.jobs += other.jobs;
        self.executed += other.executed;
        self.cache_hits += other.cache_hits;
        self.cache.merge(&other.cache);
        self.sim_seconds += other.sim_seconds;
        self.wall += other.wall;
    }
}

impl Serialize for RunnerStats {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("jobs".into(), self.jobs.to_value()),
            ("executed".into(), self.executed.to_value()),
            ("cache_hits".into(), self.cache_hits.to_value()),
            ("cache".into(), self.cache.to_value()),
            ("sim_seconds".into(), self.sim_seconds.to_value()),
            ("wall_seconds".into(), self.wall.as_secs_f64().to_value()),
        ])
    }
}

/// A consumer of progress events.
pub trait ProgressSink: Send + Sync {
    /// Receives one event. Called from worker threads; implementations
    /// should be quick and must not panic.
    fn event(&self, event: &ProgressEvent);
}

/// Discards every event (the default sink).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl ProgressSink for NullSink {
    fn event(&self, _event: &ProgressEvent) {}
}

/// Renders events as single-line updates on stderr (the `repro
/// --progress` sink). Uses a mutex so concurrent completions never
/// interleave half-lines.
#[derive(Debug, Default)]
pub struct StderrSink {
    lock: Mutex<()>,
}

impl ProgressSink for StderrSink {
    fn event(&self, event: &ProgressEvent) {
        let _guard = self.lock.lock().expect("stderr sink lock");
        match event {
            ProgressEvent::BatchStarted { total, workers } => {
                eprintln!("[runner] {total} jobs on {workers} worker(s)");
            }
            ProgressEvent::JobStarted { .. } => {}
            ProgressEvent::JobFinished {
                label,
                provenance,
                done,
                total,
                ..
            } => {
                let tag = match provenance {
                    Provenance::Executed => "ran",
                    Provenance::MemoryCache => "mem",
                    Provenance::DiskCache => "disk",
                };
                eprintln!("[runner] {done}/{total} {label} ({tag})");
            }
            ProgressEvent::BatchFinished { stats } => {
                eprintln!(
                    "[runner] done: {} jobs, {} executed, {} cached ({:.0}% hit rate), \
                     {:.2} sim-ms in {:.2} s wall ({:.1} sim-ms/s)",
                    stats.jobs,
                    stats.executed,
                    stats.cache_hits,
                    stats.hit_rate() * 100.0,
                    stats.sim_seconds * 1e3,
                    stats.wall.as_secs_f64(),
                    stats.sim_seconds_per_wall_second() * 1e3,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_and_throughput_handle_zero_denominators() {
        let stats = RunnerStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        assert_eq!(stats.sim_seconds_per_wall_second(), 0.0);
    }

    #[test]
    fn merge_accumulates_all_counters() {
        let mut a = RunnerStats {
            jobs: 2,
            executed: 1,
            cache_hits: 1,
            cache: CacheStats {
                memory_hits: 1,
                disk_hits: 0,
                misses: 1,
                corrupt_files: 0,
            },
            sim_seconds: 0.5,
            wall: Duration::from_secs(1),
        };
        let b = RunnerStats {
            jobs: 3,
            executed: 3,
            cache_hits: 0,
            cache: CacheStats {
                memory_hits: 0,
                disk_hits: 0,
                misses: 3,
                corrupt_files: 1,
            },
            sim_seconds: 1.5,
            wall: Duration::from_secs(2),
        };
        a.merge(&b);
        assert_eq!(a.jobs, 5);
        assert_eq!(a.executed, 4);
        assert_eq!(a.cache.misses, 4);
        assert_eq!(a.cache.corrupt_files, 1);
        assert!((a.sim_seconds - 2.0).abs() < 1e-12);
        assert_eq!(a.wall, Duration::from_secs(3));
    }

    #[test]
    fn runner_stats_serialize_for_telemetry() {
        let stats = RunnerStats {
            jobs: 4,
            executed: 3,
            cache_hits: 1,
            cache: CacheStats {
                memory_hits: 1,
                disk_hits: 0,
                misses: 3,
                corrupt_files: 0,
            },
            sim_seconds: 0.25,
            wall: Duration::from_millis(1500),
        };
        let Value::Object(fields) = stats.to_value() else {
            panic!("RunnerStats must serialize to an object");
        };
        let names: Vec<&str> = fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "jobs",
                "executed",
                "cache_hits",
                "cache",
                "sim_seconds",
                "wall_seconds"
            ]
        );
        let wall = fields.iter().find(|(n, _)| n == "wall_seconds").unwrap();
        assert_eq!(wall.1, 1.5f64.to_value());
    }

    #[test]
    fn stderr_sink_formats_without_panicking() {
        let sink = StderrSink::default();
        sink.event(&ProgressEvent::BatchStarted {
            total: 2,
            workers: 2,
        });
        sink.event(&ProgressEvent::JobFinished {
            index: 0,
            label: "lu/AdvHet".into(),
            provenance: Provenance::DiskCache,
            done: 1,
            total: 2,
            counters: vec![("core.cycles".into(), 42)],
        });
        sink.event(&ProgressEvent::BatchFinished {
            stats: RunnerStats::default(),
        });
    }
}
