//! Structured progress and throughput events.
//!
//! The runner narrates a campaign through a [`ProgressSink`]: batch
//! start, per-job completion (with cache provenance), and a final
//! [`RunnerStats`] summary carrying the cache hit rate and the
//! simulated-seconds-per-wall-second throughput metric. Sinks must be
//! `Send + Sync` — completion events arrive from worker threads.

use std::io::Write;
use std::sync::Mutex;
use std::time::Duration;

use serde::value::Value;
use serde::Serialize;

use crate::cache::CacheStats;

/// How a job's outcome was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Freshly simulated on a worker.
    Executed,
    /// Answered from the in-process store.
    MemoryCache,
    /// Answered from the on-disk cache.
    DiskCache,
}

impl Provenance {
    /// A short, stable tag (`ran`/`mem`/`disk`) used in progress lines
    /// and trace-event args.
    pub fn tag(self) -> &'static str {
        match self {
            Provenance::Executed => "ran",
            Provenance::MemoryCache => "mem",
            Provenance::DiskCache => "disk",
        }
    }

    /// Parses a [`Provenance::tag`] rendering back (the shard wire
    /// protocol ships provenance as its tag).
    pub fn from_tag(tag: &str) -> Option<Provenance> {
        match tag {
            "ran" => Some(Provenance::Executed),
            "mem" => Some(Provenance::MemoryCache),
            "disk" => Some(Provenance::DiskCache),
            _ => None,
        }
    }
}

/// The design name encoded in a job label.
///
/// Campaign labels are `cpu/{app}/{design}x{cores}` or
/// `gpu/{kernel}/{design}`; anything unrecognized groups under its
/// last path segment.
pub fn design_of(label: &str) -> &str {
    let last = label.rsplit('/').next().unwrap_or(label);
    match last.rsplit_once('x') {
        Some((design, cores))
            if !design.is_empty()
                && !cores.is_empty()
                && cores.bytes().all(|b| b.is_ascii_digit()) =>
        {
            design
        }
        _ => last,
    }
}

/// One progress event.
#[derive(Debug, Clone)]
pub enum ProgressEvent {
    /// A batch was submitted: `total` jobs, `workers` threads.
    BatchStarted {
        /// Jobs in the batch.
        total: usize,
        /// Worker threads executing it.
        workers: usize,
        /// Per-design job counts (`(design, jobs)` parsed from labels
        /// with [`design_of`], in first-submission order — the first
        /// entry is the campaign's baseline column). Sinks that render
        /// per-design completion (the dashboard's figure rows) read
        /// the expected column sizes from here.
        columns: Vec<(String, usize)>,
    },
    /// A job started executing on a worker (cache misses only).
    JobStarted {
        /// Index of the job in the batch.
        index: usize,
        /// The job's label.
        label: String,
    },
    /// A job finished (by execution or cache hit).
    JobFinished {
        /// Index of the job in the batch.
        index: usize,
        /// The job's label.
        label: String,
        /// How the outcome was obtained.
        provenance: Provenance,
        /// Jobs finished so far, including this one.
        done: usize,
        /// Jobs in the batch.
        total: usize,
        /// The outcome's counter summary (`(name, value)` pairs from
        /// [`crate::SimMetrics::counters`]); empty for outcome types
        /// that do not expose counters. Cache hits carry the cached
        /// outcome's counters, so the telemetry stream is identical
        /// whether a campaign ran cold or warm.
        counters: Vec<(String, u64)>,
        /// Simulated seconds covered by the outcome
        /// ([`crate::SimMetrics::sim_seconds`]); like `counters`,
        /// identical whether the job ran or was answered from cache.
        sim_seconds: f64,
    },
    /// The batch completed.
    BatchFinished {
        /// Summary counters for the batch.
        stats: RunnerStats,
    },
}

/// Summary counters for one batch (or a whole campaign).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunnerStats {
    /// Jobs submitted.
    pub jobs: u64,
    /// Jobs actually simulated (cache misses).
    pub executed: u64,
    /// Jobs answered by either cache layer.
    pub cache_hits: u64,
    /// Cache-layer detail.
    pub cache: CacheStats,
    /// Simulated seconds covered by the batch's outcomes.
    pub sim_seconds: f64,
    /// Wall-clock time the batch took.
    pub wall: Duration,
}

impl RunnerStats {
    /// Whether these counters are a pure function of the simulated
    /// configuration. They are **not**: wall time varies with machine
    /// load, and the cache-hit split varies with disk state, so two
    /// byte-identical campaigns legitimately report different
    /// [`RunnerStats`]. Cross-run regression gates consult this
    /// declaration to exempt runner telemetry from comparison, instead
    /// of hand-listing section names at every call site.
    pub const DETERMINISTIC: bool = false;

    /// Cache hit rate over the batch in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.jobs as f64
        }
    }

    /// Simulated seconds per wall-clock second (the runner's
    /// throughput metric); `0` for an instantaneous batch.
    pub fn sim_seconds_per_wall_second(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            self.sim_seconds / wall
        } else {
            0.0
        }
    }

    /// Folds another batch's counters into this one.
    pub fn merge(&mut self, other: &RunnerStats) {
        self.jobs += other.jobs;
        self.executed += other.executed;
        self.cache_hits += other.cache_hits;
        self.cache.merge(&other.cache);
        self.sim_seconds += other.sim_seconds;
        self.wall += other.wall;
    }
}

impl Serialize for RunnerStats {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("jobs".into(), self.jobs.to_value()),
            ("executed".into(), self.executed.to_value()),
            ("cache_hits".into(), self.cache_hits.to_value()),
            ("cache".into(), self.cache.to_value()),
            ("sim_seconds".into(), self.sim_seconds.to_value()),
            ("wall_seconds".into(), self.wall.as_secs_f64().to_value()),
        ])
    }
}

impl RunnerStats {
    /// Parses the [`Serialize`] rendering back — the shard supervisor
    /// reads worker `StatsDump` fragments this way before merging them.
    pub fn from_dump_value(v: &Value) -> Option<RunnerStats> {
        use serde::Deserialize;
        Some(RunnerStats {
            jobs: v.get("jobs")?.as_u64()?,
            executed: v.get("executed")?.as_u64()?,
            cache_hits: v.get("cache_hits")?.as_u64()?,
            cache: CacheStats::from_value(v.get("cache")?).ok()?,
            sim_seconds: v.get("sim_seconds")?.as_f64()?,
            wall: Duration::from_secs_f64(v.get("wall_seconds")?.as_f64()?),
        })
    }
}

/// A consumer of progress events.
pub trait ProgressSink: Send + Sync {
    /// Receives one event. Called from worker threads; implementations
    /// should be quick and must not panic.
    fn event(&self, event: &ProgressEvent);

    /// Forces any buffered or rate-limited output out *now*. The
    /// campaign driver calls this once on completion so sinks that
    /// throttle redraws (the dashboard) never leave a stale mid-run
    /// frame on screen. The default is a no-op — line-oriented sinks
    /// already emit eagerly.
    fn flush(&self) {}
}

/// Discards every event (the default sink).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl ProgressSink for NullSink {
    fn event(&self, _event: &ProgressEvent) {}
}

/// Renders events as single-line updates on stderr (the `repro
/// --progress` sink).
///
/// Each event is formatted into one complete line *before* the writer
/// lock is taken, and emitted with a single `write_all` under that
/// lock — so completion lines arriving concurrently from worker
/// threads can interleave whole lines, but never tear mid-line (the
/// per-handle locking `eprintln!` relies on only covers one `write`
/// call, not a formatted sequence of them).
pub struct StderrSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl Default for StderrSink {
    fn default() -> Self {
        StderrSink::new()
    }
}

impl StderrSink {
    /// A sink writing to the process's stderr.
    pub fn new() -> Self {
        StderrSink::with_writer(Box::new(std::io::stderr()))
    }

    /// A sink writing to an arbitrary writer (tests inject a shared
    /// buffer to assert on the emitted lines).
    pub fn with_writer(out: Box<dyn Write + Send>) -> Self {
        StderrSink {
            out: Mutex::new(out),
        }
    }

    /// The one-line rendering of `event`, newline-terminated; `None`
    /// for events this sink does not narrate.
    fn format(event: &ProgressEvent) -> Option<String> {
        match event {
            ProgressEvent::BatchStarted { total, workers, .. } => {
                Some(format!("[runner] {total} jobs on {workers} worker(s)\n"))
            }
            ProgressEvent::JobStarted { .. } => None,
            ProgressEvent::JobFinished {
                label,
                provenance,
                done,
                total,
                ..
            } => Some(format!(
                "[runner] {done}/{total} {label} ({})\n",
                provenance.tag()
            )),
            ProgressEvent::BatchFinished { stats } => Some(format!(
                "[runner] done: {} jobs, {} executed, {} cached ({:.0}% hit rate), \
                 {:.2} sim-ms in {:.2} s wall ({:.1} sim-ms/s)\n",
                stats.jobs,
                stats.executed,
                stats.cache_hits,
                stats.hit_rate() * 100.0,
                stats.sim_seconds * 1e3,
                stats.wall.as_secs_f64(),
                stats.sim_seconds_per_wall_second() * 1e3,
            )),
        }
    }
}

impl ProgressSink for StderrSink {
    fn event(&self, event: &ProgressEvent) {
        let Some(line) = StderrSink::format(event) else {
            return;
        };
        let mut out = self.out.lock().expect("stderr sink lock");
        // Progress is best-effort: a closed stderr must not kill a job.
        let _ = out.write_all(line.as_bytes());
        let _ = out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_and_throughput_handle_zero_denominators() {
        let stats = RunnerStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        assert_eq!(stats.sim_seconds_per_wall_second(), 0.0);
    }

    #[test]
    fn merge_accumulates_all_counters() {
        let mut a = RunnerStats {
            jobs: 2,
            executed: 1,
            cache_hits: 1,
            cache: CacheStats {
                memory_hits: 1,
                disk_hits: 0,
                misses: 1,
                corrupt_files: 0,
            },
            sim_seconds: 0.5,
            wall: Duration::from_secs(1),
        };
        let b = RunnerStats {
            jobs: 3,
            executed: 3,
            cache_hits: 0,
            cache: CacheStats {
                memory_hits: 0,
                disk_hits: 0,
                misses: 3,
                corrupt_files: 1,
            },
            sim_seconds: 1.5,
            wall: Duration::from_secs(2),
        };
        a.merge(&b);
        assert_eq!(a.jobs, 5);
        assert_eq!(a.executed, 4);
        assert_eq!(a.cache.misses, 4);
        assert_eq!(a.cache.corrupt_files, 1);
        assert!((a.sim_seconds - 2.0).abs() < 1e-12);
        assert_eq!(a.wall, Duration::from_secs(3));
    }

    #[test]
    fn runner_stats_serialize_for_telemetry() {
        let stats = RunnerStats {
            jobs: 4,
            executed: 3,
            cache_hits: 1,
            cache: CacheStats {
                memory_hits: 1,
                disk_hits: 0,
                misses: 3,
                corrupt_files: 0,
            },
            sim_seconds: 0.25,
            wall: Duration::from_millis(1500),
        };
        let Value::Object(fields) = stats.to_value() else {
            panic!("RunnerStats must serialize to an object");
        };
        let names: Vec<&str> = fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "jobs",
                "executed",
                "cache_hits",
                "cache",
                "sim_seconds",
                "wall_seconds"
            ]
        );
        let wall = fields.iter().find(|(n, _)| n == "wall_seconds").unwrap();
        assert_eq!(wall.1, 1.5f64.to_value());
    }

    #[test]
    fn design_names_parse_from_both_label_shapes() {
        assert_eq!(design_of("cpu/lu/AdvHetx4"), "AdvHet");
        assert_eq!(design_of("cpu/lu/AdvHetx16"), "AdvHet");
        assert_eq!(design_of("gpu/matmul/HetGPU"), "HetGPU");
        assert_eq!(design_of("HetGPU"), "HetGPU");
        // An `x` not followed by a pure core count is part of the name.
        assert_eq!(design_of("cpu/lu/Extreme"), "Extreme");
    }

    #[test]
    fn stderr_sink_formats_without_panicking() {
        let sink = StderrSink::default();
        sink.event(&ProgressEvent::BatchStarted {
            total: 2,
            workers: 2,
            columns: vec![("AdvHet".into(), 2)],
        });
        sink.event(&ProgressEvent::JobFinished {
            index: 0,
            label: "lu/AdvHet".into(),
            provenance: Provenance::DiskCache,
            done: 1,
            total: 2,
            counters: vec![("core.cycles".into(), 42)],
            sim_seconds: 0.25,
        });
        sink.event(&ProgressEvent::BatchFinished {
            stats: RunnerStats::default(),
        });
    }

    /// A writer that shares its buffer, so the test can hammer one
    /// sink from many threads and then inspect what came out.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("buf lock").extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn concurrent_job_finished_lines_never_tear() {
        let buf = SharedBuf::default();
        let sink = std::sync::Arc::new(StderrSink::with_writer(Box::new(buf.clone())));
        const THREADS: usize = 8;
        const EVENTS: usize = 50;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let sink = sink.clone();
                scope.spawn(move || {
                    for i in 0..EVENTS {
                        sink.event(&ProgressEvent::JobFinished {
                            index: t * EVENTS + i,
                            label: format!("cpu/lu/AdvHetx{t}"),
                            provenance: Provenance::Executed,
                            done: i + 1,
                            total: THREADS * EVENTS,
                            counters: Vec::new(),
                            sim_seconds: 0.0,
                        });
                    }
                });
            }
        });
        let bytes = buf.0.lock().expect("buf lock").clone();
        let text = String::from_utf8(bytes).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), THREADS * EVENTS);
        for line in lines {
            // A torn write would splice one line into another; every
            // line must independently be a complete progress line.
            assert!(
                line.starts_with("[runner] ") && line.ends_with("(ran)"),
                "torn line: {line:?}"
            );
            assert_eq!(line.matches("[runner]").count(), 1, "torn line: {line:?}");
        }
    }
}
