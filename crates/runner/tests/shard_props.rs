//! Property tests of the shard partitioner.
//!
//! The shard protocol's correctness rests on the partition being an
//! exact cover that every process can recompute independently. These
//! properties pin that down for arbitrary job counts, shard counts and
//! key material — the unit tests in `shard.rs` cover the hand-picked
//! edges, this file covers the space between them.

use hetsim_runner::{partition, JobKey};
use proptest::prelude::*;

/// Arbitrary key material: keys derive from hashed byte strings, the
/// same way real jobs derive them from canonical configs.
fn keys_from(seeds: &[Vec<u8>]) -> Vec<JobKey> {
    seeds.iter().map(|s| JobKey::from_bytes(s)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every index appears in exactly one shard (no loss, no
    /// duplication), and each shard preserves submission order — so
    /// re-concatenating shards is a permutation-free exact cover.
    #[test]
    fn partition_is_an_exact_cover(
        seeds in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 0..80),
        shards in 1usize..12,
    ) {
        let keys = keys_from(&seeds);
        let parts = partition(&keys, shards);
        prop_assert_eq!(parts.len(), shards);
        for part in &parts {
            prop_assert!(part.windows(2).all(|w| w[0] < w[1]));
        }
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..keys.len()).collect();
        prop_assert_eq!(all, expect);
    }

    /// The partition is a pure function: computing it twice — as the
    /// supervisor and each worker do in separate processes — gives the
    /// identical assignment.
    #[test]
    fn partition_is_deterministic_across_calls(
        seeds in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 0..80),
        shards in 1usize..12,
    ) {
        let keys = keys_from(&seeds);
        prop_assert_eq!(partition(&keys, shards), partition(&keys, shards));
        for key in &keys {
            prop_assert_eq!(key.shard_of(shards), key.shard_of(shards));
        }
    }

    /// One shard degenerates to the whole batch in submission order —
    /// `--shards 1` must behave exactly like a single-process run.
    #[test]
    fn single_shard_is_the_identity(
        seeds in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 0..80),
    ) {
        let keys = keys_from(&seeds);
        let parts = partition(&keys, 1);
        prop_assert_eq!(parts.len(), 1);
        let expect: Vec<usize> = (0..keys.len()).collect();
        prop_assert_eq!(parts[0].clone(), expect);
    }

    /// Shard membership depends only on the key: dropping an arbitrary
    /// subset of the batch never moves a surviving job to a different
    /// shard. (This is what keeps warm caches valid when a campaign
    /// grows or shrinks between runs.)
    #[test]
    fn membership_is_stable_under_batch_changes(
        seeds in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 1..80),
        shards in 1usize..12,
        keep_mask in proptest::collection::vec(any::<bool>(), 80),
    ) {
        let keys = keys_from(&seeds);
        let survivors: Vec<JobKey> = keys
            .iter()
            .zip(&keep_mask)
            .filter(|(_, keep)| **keep)
            .map(|(k, _)| *k)
            .collect();
        for key in &survivors {
            prop_assert_eq!(key.shard_of(shards), key.shard_of(shards));
        }
        // Assignment of a surviving key is identical whether computed
        // against the full batch or the shrunken one.
        let full = partition(&keys, shards);
        let half = partition(&survivors, shards);
        for (shard, part) in half.iter().enumerate() {
            for &idx in part {
                let key = survivors[idx];
                prop_assert_eq!(key.shard_of(shards), shard);
                let pos = keys.iter().position(|k| *k == key).unwrap();
                prop_assert!(full[shard].contains(&pos));
            }
        }
    }

    /// Keys survive the manifest round trip: hex → from_hex is the
    /// identity, so the supervisor can audit a worker's claimed cover.
    #[test]
    fn keys_round_trip_through_hex(
        seeds in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 0..40),
    ) {
        for key in keys_from(&seeds) {
            prop_assert_eq!(JobKey::from_hex(&key.hex()), Some(key));
        }
    }
}
