//! The pinned scenario menu behind `repro bench`.
//!
//! `hetsim_bench` holds the generic measurement machinery (warmup +
//! repeat loop, `BENCH_*.json` schema, noise-aware compare); this
//! module holds the HetCore-specific part: *what* gets measured. The
//! menu is pinned — fixed scenarios on fixed seeds and fixed
//! instruction budgets — so two dumps from different builds measure
//! the same work and their insts/sec ratios mean something.
//!
//! The menu spans both end-to-end campaigns and per-subsystem
//! microbenches:
//!
//! * `fig7-cpu-campaign` — the full CPU design x application sweep
//!   (the figure 7/8/9/13 workload), on a cache-bypassing runner;
//! * `fig7-sharded` — the same sweep split into two shards by the
//!   shard protocol's partitioner and merged back by submission index,
//!   pinning the partition-and-merge overhead;
//! * `fig10-gpu-campaign` — the full GPU design x kernel sweep
//!   (figures 10/11/12), same runner mode;
//! * `fig14-dvfs` — the DVFS / process-variation evaluation loop;
//! * `explore-frontier` — the `repro explore` adaptive search over the
//!   fig7 design space at the golden's pinned budget, pinning the
//!   wave-loop + Pareto machinery on top of the multicore simulations;
//! * `micro-cpu-step` — one single-core CPU simulation;
//! * `micro-gpu-step` — one GPU kernel simulation;
//! * `micro-mem-hierarchy` — raw cache-hierarchy accesses, no core;
//! * `micro-power-dvfs` — energy-model + DVFS operating-point
//!   evaluations, no simulation;
//! * `micro-event-queue` — a memory-bound run on the slowest core,
//!   stressing the timing wheel and the dead-cycle skip machinery.
//!
//! Campaign scenarios run on `Runner::with_cache_bypass(true)`: a perf
//! measurement must time simulation, never a warm-cache lookup, and
//! must be immune to whatever `--cache-dir` state a machine has.

use hetsim_bench::{measure, BenchDump, HostInfo, Measurement, ScenarioResult};
use hetsim_device::dvfs::DvfsController;
use hetsim_mem::hierarchy::Hierarchy;
use hetsim_obs::{Clock, MonotonicClock};
use hetsim_power::assignment::VoltageFactors;
use hetsim_runner::Runner;
use hetsim_trace::apps;

use crate::config::{CpuDesign, GpuDesign};
use crate::experiment::{run_cpu, run_gpu};
use crate::suite::Suite;

/// Default per-scenario instruction budget of a full `repro bench`.
pub const FULL_INSTS: u64 = 300_000;
/// Budget of the `--quick` profile (CI smoke runs).
pub const QUICK_INSTS: u64 = 60_000;
/// Default discarded warmup iterations per scenario.
pub const DEFAULT_WARMUP: u32 = 1;
/// Default timed repeats per scenario.
pub const DEFAULT_REPEATS: u32 = 3;

/// The pinned scenario names, menu order. Compare joins dumps on these
/// names, so renaming one orphans its perf trajectory — add, don't
/// rename.
pub const SCENARIOS: [&str; 10] = [
    "fig7-cpu-campaign",
    "fig7-sharded",
    "fig10-gpu-campaign",
    "fig14-dvfs",
    "explore-frontier",
    "micro-cpu-step",
    "micro-gpu-step",
    "micro-mem-hierarchy",
    "micro-power-dvfs",
    "micro-event-queue",
];

/// One `repro bench` run's configuration.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Per-application instruction budget of the CPU-driven scenarios
    /// (the GPU campaign's work is fixed by its kernel profiles).
    pub insts: u64,
    /// Trace-generator seed every scenario runs on.
    pub seed: u64,
    /// Discarded warmup iterations per scenario.
    pub warmup: u32,
    /// Timed repeats per scenario.
    pub repeats: u32,
    /// Worker threads for the campaign scenarios.
    pub jobs: usize,
    /// Whether this is the `--quick` profile (recorded in the dump:
    /// quick and full dumps are not comparable).
    pub quick: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            insts: FULL_INSTS,
            seed: 42,
            warmup: DEFAULT_WARMUP,
            repeats: DEFAULT_REPEATS,
            jobs: 1,
            quick: false,
        }
    }
}

impl BenchConfig {
    /// The `--quick` profile: reduced budget, same menu.
    pub fn quick() -> Self {
        BenchConfig {
            insts: QUICK_INSTS,
            quick: true,
            ..BenchConfig::default()
        }
    }

    fn suite(&self) -> Suite {
        Suite {
            insts_per_app: self.insts,
            seed: self.seed,
        }
    }
}

/// A fresh campaign runner in benchmark mode: no cache directory and
/// cache bypass on, so every repeat simulates from cold on the
/// identical timing path.
fn bench_runner<T>(jobs: usize) -> Runner<T>
where
    T: Clone + Send + serde::Serialize + serde::Deserialize + hetsim_runner::SimMetrics,
{
    Runner::new(jobs.max(1)).with_cache_bypass(true)
}

/// The full CPU campaign; returns total committed instructions.
fn run_fig7(cfg: &BenchConfig) -> u64 {
    let campaign = cfg.suite().cpu_campaign_with(&bench_runner(cfg.jobs));
    campaign
        .outcomes
        .iter()
        .flatten()
        .map(|o| o.committed)
        .sum()
}

/// The CPU campaign executed through the shard protocol's partitioner:
/// the job list splits into two shards by key (the exact partition
/// `--shards 2` uses), each shard runs on its own bypass runner in a
/// separate thread, and outcomes merge back into submission order.
/// Same simulated work as `fig7-cpu-campaign`, so the insts/sec gap
/// between the two is the partition-and-merge overhead (without the
/// process-spawn and cache-transport costs of real `--shards`, which
/// a wall-clock benchmark of subprocesses would smear with exec and
/// I/O noise). Returns total committed instructions.
fn run_fig7_sharded(cfg: &BenchConfig) -> u64 {
    const SHARDS: usize = 2;
    let jobs = cfg.suite().cpu_campaign_jobs();
    let total = jobs.len();
    let mut per_shard: Vec<Vec<(usize, hetsim_runner::Job<crate::experiment::CpuOutcome>)>> =
        (0..SHARDS).map(|_| Vec::new()).collect();
    for (index, job) in jobs.into_iter().enumerate() {
        per_shard[job.key.shard_of(SHARDS)].push((index, job));
    }
    let mut slots: Vec<Option<crate::experiment::CpuOutcome>> = (0..total).map(|_| None).collect();
    let shard_results: Vec<(Vec<usize>, Vec<crate::experiment::CpuOutcome>)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = per_shard
                .into_iter()
                .map(|shard_jobs| {
                    let jobs_per_worker = cfg.jobs;
                    scope.spawn(move || {
                        let (indices, batch): (Vec<usize>, Vec<_>) = shard_jobs.into_iter().unzip();
                        let outcomes = bench_runner(jobs_per_worker).run(batch);
                        (indices, outcomes)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard bench thread panicked"))
                .collect()
        });
    for (indices, outcomes) in shard_results {
        for (index, outcome) in indices.into_iter().zip(outcomes) {
            slots[index] = Some(outcome);
        }
    }
    slots
        .into_iter()
        .map(|o| o.expect("partition is an exact cover").committed)
        .sum()
}

/// The full GPU campaign; returns total wavefront instructions.
fn run_fig10(cfg: &BenchConfig) -> u64 {
    let campaign = cfg.suite().gpu_campaign_with(&bench_runner(cfg.jobs));
    campaign
        .outcomes
        .iter()
        .flatten()
        .map(|o| o.stats.wavefront_insts)
        .sum()
}

/// The Figure 14 DVFS / process-variation evaluation; returns its
/// nominal instruction count (4 operating points x 2 designs x 6 apps
/// at a quarter of the per-app budget — see `Suite::fig14`).
fn run_fig14(cfg: &BenchConfig) -> u64 {
    let report = cfg.suite().fig14();
    let points = report.rows.len() as u64;
    points * 2 * 6 * (cfg.insts / 4)
}

/// The `repro explore` adaptive search at the golden's pinned budget,
/// on cache-bypassing runners (an exploration benchmark must time the
/// search + simulation, never warm-cache lookups). The instruction
/// budget is a quarter of the per-app budget: the search evaluates 12
/// candidates x 4 apps = 48 multicore jobs, so the quarter keeps this
/// scenario within the same wall-clock band as the campaign scenarios.
/// Returns total committed instructions across all evaluations.
fn run_explore_frontier(cfg: &BenchConfig) -> u64 {
    let space = crate::explore::DesignSpace::fig7();
    let ecfg = crate::explore::ExploreConfig {
        budget: 12,
        seed: cfg.seed,
        insts: (cfg.insts / 4).max(1),
        jobs: cfg.jobs.max(1),
        cache_bypass: true,
        ..crate::explore::ExploreConfig::default()
    };
    let result = crate::explore::explore(&space, &ecfg).expect("pinned space is valid");
    result.total_committed()
}

/// One single-core AdvHet simulation; returns committed instructions.
fn run_micro_cpu(cfg: &BenchConfig) -> u64 {
    let app = apps::profile("fft").expect("pinned app exists");
    run_cpu(CpuDesign::AdvHet, &app, cfg.seed, cfg.insts).committed
}

/// One GPU kernel simulation; returns wavefront instructions.
fn run_micro_gpu(cfg: &BenchConfig) -> u64 {
    let kernel = hetsim_gpu::kernels::profile("matmul").expect("pinned kernel exists");
    run_gpu(GpuDesign::AdvHet, &kernel, cfg.seed)
        .stats
        .wavefront_insts
}

/// Raw hierarchy traffic: `insts` accesses cycling fetch/load/store
/// over a working set larger than the L1s, no core model in the way.
/// The latency sum is routed through `black_box` so the loop cannot be
/// optimized away. Returns the access count.
fn run_micro_mem(cfg: &BenchConfig) -> u64 {
    let core_cfg = CpuDesign::BaseCmos.core_config();
    let mut h = Hierarchy::new(core_cfg.memory.to_hierarchy(core_cfg.clock_hz));
    h.prewarm(0, 1 << 20);
    let mut latency: u64 = 0;
    // A seed-dependent odd stride walks 1 MiB: hits and misses at
    // every level, deterministic per seed.
    let stride = 64 + (cfg.seed | 1);
    for i in 0..cfg.insts {
        let addr = i.wrapping_mul(stride) & 0xF_FFFF;
        latency += match i % 3 {
            0 => h.fetch(addr) as u64,
            1 => h.load(addr).latency as u64,
            _ => h.store(addr).latency as u64,
        };
    }
    std::hint::black_box(latency);
    cfg.insts
}

/// Pure accounting throughput: energy-model evaluations over a real
/// run's counters at alternating DVFS operating points. Returns the
/// evaluation count.
fn run_micro_power(cfg: &BenchConfig) -> u64 {
    let app = apps::profile("lu").expect("pinned app exists");
    let sample = run_cpu(CpuDesign::AdvHet, &app, cfg.seed, cfg.insts.min(20_000));
    let dvfs = DvfsController::new();
    let nominal = dvfs.nominal();
    let points = [1.5e9, 2.0e9, 2.5e9];
    let evals = (cfg.insts / 64).max(1);
    let mut total_j = 0.0;
    for i in 0..evals {
        let hz = points[(i % points.len() as u64) as usize];
        let volts = match dvfs.operating_point(hz) {
            Some(p) => {
                VoltageFactors::from_voltages(p.v_cmos, nominal.v_cmos, p.v_tfet, nominal.v_tfet)
            }
            None => VoltageFactors::default(),
        };
        let model = CpuDesign::AdvHet.energy_model().with_voltages(volts);
        total_j += model
            .energy(&sample.stats, &sample.mem, sample.seconds)
            .total_j();
    }
    std::hint::black_box(total_j);
    evals
}

/// Event-queue stress: the paper's most memory-bound application on the
/// all-TFET core (the slowest clock and deepest relative miss
/// latencies), so the pipeline spends most cycles stalled and
/// throughput is dominated by the timing wheel and the dead-cycle skip
/// machinery rather than by dispatch/commit work. Returns committed
/// instructions.
fn run_micro_event_queue(cfg: &BenchConfig) -> u64 {
    let app = apps::profile("canneal").expect("pinned app exists");
    run_cpu(CpuDesign::BaseTfet, &app, cfg.seed, cfg.insts).committed
}

/// Runs one scenario's body once; returns the instructions it
/// simulated. Panics on an unknown name (the menu is [`SCENARIOS`]).
fn run_scenario(name: &str, cfg: &BenchConfig) -> u64 {
    match name {
        "fig7-cpu-campaign" => run_fig7(cfg),
        "fig7-sharded" => run_fig7_sharded(cfg),
        "fig10-gpu-campaign" => run_fig10(cfg),
        "fig14-dvfs" => run_fig14(cfg),
        "explore-frontier" => run_explore_frontier(cfg),
        "micro-cpu-step" => run_micro_cpu(cfg),
        "micro-gpu-step" => run_micro_gpu(cfg),
        "micro-mem-hierarchy" => run_micro_mem(cfg),
        "micro-power-dvfs" => run_micro_power(cfg),
        "micro-event-queue" => run_micro_event_queue(cfg),
        other => panic!("unknown bench scenario `{other}`"),
    }
}

/// Measures every pinned scenario under `cfg` against `clock` and
/// assembles the dump. Scenario order is [`SCENARIOS`] order; progress
/// is narrated on stderr (one line per scenario), keeping stdout free
/// for the dump/report the CLI prints.
pub fn run_bench_with_clock(clock: &dyn Clock, cfg: &BenchConfig) -> BenchDump {
    let mut scenarios = Vec::with_capacity(SCENARIOS.len());
    for name in SCENARIOS {
        eprintln!(
            "[bench] {name} ({} warmup + {} repeat(s))...",
            cfg.warmup,
            cfg.repeats.max(1)
        );
        let m: Measurement = measure(clock, cfg.warmup, cfg.repeats, || run_scenario(name, cfg));
        let r = ScenarioResult::new(name, &m);
        eprintln!(
            "[bench] {name}: {} insts, median {} us, {:.0} insts/s{}",
            r.insts,
            r.wall_us,
            r.insts_per_sec,
            if r.timing.noisy { " (noisy)" } else { "" }
        );
        scenarios.push(r);
    }
    BenchDump {
        schema: hetsim_bench::BENCH_SCHEMA.to_string(),
        quick: cfg.quick,
        insts: cfg.insts,
        seed: cfg.seed,
        warmup: cfg.warmup,
        repeats: cfg.repeats.max(1),
        host: HostInfo::detect(),
        scenarios,
    }
}

/// [`run_bench_with_clock`] on the real monotonic clock — the entry
/// point `repro bench` uses.
pub fn run_bench(cfg: &BenchConfig) -> BenchDump {
    run_bench_with_clock(&MonotonicClock::new(), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The smallest config that still drives every scenario through
    /// real work: unit tests must stay fast.
    fn tiny() -> BenchConfig {
        BenchConfig {
            insts: 1_000,
            seed: 7,
            warmup: 0,
            repeats: 1,
            jobs: 1,
            quick: true,
        }
    }

    #[test]
    fn menu_names_are_unique_and_nonempty() {
        let mut seen: Vec<&str> = Vec::new();
        for name in SCENARIOS {
            assert!(!name.is_empty());
            assert!(!seen.contains(&name), "duplicate scenario `{name}`");
            seen.push(name);
        }
    }

    #[test]
    fn every_scenario_simulates_work_and_the_dump_validates() {
        let dump = run_bench(&tiny());
        dump.validate().expect("dump is structurally valid");
        assert_eq!(
            dump.scenarios
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>(),
            SCENARIOS.to_vec(),
            "dump preserves menu order"
        );
        for s in &dump.scenarios {
            assert!(s.insts > 0, "{}: zero instructions simulated", s.name);
        }
        assert!(dump.quick);
        assert_eq!((dump.insts, dump.seed), (1_000, 7));
    }

    #[test]
    fn scenario_insts_are_deterministic_across_runs() {
        let cfg = tiny();
        let a = run_bench(&cfg);
        let b = run_bench(&cfg);
        for (x, y) in a.scenarios.iter().zip(&b.scenarios) {
            assert_eq!(x.insts, y.insts, "{}: insts must be pinned", x.name);
        }
    }

    #[test]
    fn sharded_scenario_simulates_exactly_the_campaign_work() {
        // The sharded variant measures coordination overhead, not
        // different work: its committed-instruction total must equal
        // the plain campaign's, or the two trajectories stop being
        // comparable.
        let cfg = tiny();
        assert_eq!(
            run_scenario("fig7-sharded", &cfg),
            run_scenario("fig7-cpu-campaign", &cfg)
        );
    }

    #[test]
    fn quick_profile_uses_the_reduced_budget() {
        let cfg = BenchConfig::quick();
        assert!(cfg.quick);
        assert_eq!(cfg.insts, QUICK_INSTS);
        const { assert!(QUICK_INSTS < FULL_INSTS) };
    }
}
