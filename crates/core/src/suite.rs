//! The full experiment suite: one entry point per paper table/figure.
//!
//! [`Suite`] holds the run parameters (instruction budget per application,
//! seed); each `table*`/`fig*` method regenerates the corresponding
//! artifact as a [`Report`]. CPU figures 7/8/9/13 share one *campaign* (the
//! full design x application sweep) so the expensive simulations run once;
//! GPU figures 10/11/12 share another.

use hetsim_device::activity::figure2_series;
use hetsim_device::dvfs::DvfsController;
use hetsim_device::iv::IvCurve;
use hetsim_device::tech::Technology;
use hetsim_device::variation::{CMOS_GUARDBAND_V, TFET_GUARDBAND_V};
use hetsim_device::vf::VfCurve;
use hetsim_power::assignment::VoltageFactors;
use hetsim_runner::{Job, Runner};
use hetsim_trace::apps;

use crate::campaign::{cpu_job, gpu_job};
use crate::config::{CpuDesign, GpuDesign};
use crate::experiment::{CpuOutcome, GpuOutcome};
use crate::report::{normalize, Report};

/// A labeled metric extractor over a value type.
type MetricRow<T> = (&'static str, fn(&T) -> f64);

/// The paper's baseline chip: 4 CPU cores (Section VI).
pub const BASELINE_CORES: u32 = 4;
/// The AdvHet-2X chip: 8 cores at the BaseCMOS power budget.
pub const TWOX_CORES: u32 = 8;

/// Extension experiments beyond the paper's own tables/figures: the
/// Section VIII comparisons and the future-work techniques, implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Extension {
    /// Iso-area comparison vs. the barrier-aware thread-migration CMP.
    Migration,
    /// Partitioned vector RF vs. the RF cache on the GPU.
    PartitionedRf,
    /// Compiler latency-hiding scheduling on the GPU.
    Scheduling,
}

impl Extension {
    /// Every extension.
    pub const ALL: [Extension; 3] = [
        Extension::Migration,
        Extension::PartitionedRf,
        Extension::Scheduling,
    ];

    /// CLI name.
    pub fn cli_name(self) -> &'static str {
        match self {
            Extension::Migration => "ext-migration",
            Extension::PartitionedRf => "ext-partrf",
            Extension::Scheduling => "ext-sched",
        }
    }

    /// Parses a CLI name.
    pub fn from_cli_name(s: &str) -> Option<Extension> {
        Extension::ALL.into_iter().find(|e| e.cli_name() == s)
    }
}

/// Experiment identifiers, one per paper table/figure reproduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Experiment {
    /// Table I: device characteristics at 15 nm.
    Table1,
    /// Figure 1: Id-Vg of N-HetJTFET vs. N-MOSFET.
    Fig1,
    /// Figure 2: ALU power vs. activity factor.
    Fig2,
    /// Figure 3: V_dd-frequency curves.
    Fig3,
    /// Figure 7: CPU execution time, normalized to BaseCMOS.
    Fig7,
    /// Figure 8: CPU energy, normalized to BaseCMOS.
    Fig8,
    /// Figure 9: CPU ED^2, normalized to BaseCMOS.
    Fig9,
    /// Figure 10: GPU execution time, normalized to BaseCMOS.
    Fig10,
    /// Figure 11: GPU energy, normalized to BaseCMOS.
    Fig11,
    /// Figure 12: GPU ED^2, normalized to BaseCMOS.
    Fig12,
    /// Figure 13: sensitivity analysis across the alternative CPU designs.
    Fig13,
    /// Figure 14: DVFS and process-variation impact on energy.
    Fig14,
}

impl Experiment {
    /// Every experiment, in paper order.
    pub const ALL: [Experiment; 12] = [
        Experiment::Table1,
        Experiment::Fig1,
        Experiment::Fig2,
        Experiment::Fig3,
        Experiment::Fig7,
        Experiment::Fig8,
        Experiment::Fig9,
        Experiment::Fig10,
        Experiment::Fig11,
        Experiment::Fig12,
        Experiment::Fig13,
        Experiment::Fig14,
    ];

    /// CLI name (`table1`, `fig7`, ...).
    pub fn cli_name(self) -> &'static str {
        match self {
            Experiment::Table1 => "table1",
            Experiment::Fig1 => "fig1",
            Experiment::Fig2 => "fig2",
            Experiment::Fig3 => "fig3",
            Experiment::Fig7 => "fig7",
            Experiment::Fig8 => "fig8",
            Experiment::Fig9 => "fig9",
            Experiment::Fig10 => "fig10",
            Experiment::Fig11 => "fig11",
            Experiment::Fig12 => "fig12",
            Experiment::Fig13 => "fig13",
            Experiment::Fig14 => "fig14",
        }
    }

    /// Parses a CLI name.
    pub fn from_cli_name(s: &str) -> Option<Experiment> {
        Experiment::ALL.into_iter().find(|e| e.cli_name() == s)
    }
}

/// Run parameters for the suite.
#[derive(Debug, Clone, Copy)]
pub struct Suite {
    /// Dynamic instructions per CPU application (split across the chip's
    /// cores).
    pub insts_per_app: u64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Suite {
    fn default() -> Self {
        Suite {
            insts_per_app: 300_000,
            seed: 42,
        }
    }
}

/// All CPU outcomes of the design x application sweep.
#[derive(Debug, Clone)]
pub struct CpuCampaign {
    /// `outcomes[app_idx][design_idx]`, designs in [`CpuDesign::ALL`]
    /// order, then the AdvHet-2X chip last.
    pub outcomes: Vec<Vec<CpuOutcome>>,
    /// Application names, row order.
    pub app_names: Vec<&'static str>,
}

/// Column labels of the CPU campaign: the ten designs plus AdvHet-2X.
pub fn cpu_campaign_columns() -> Vec<String> {
    CpuDesign::ALL
        .iter()
        .map(|d| d.name().to_string())
        .chain(std::iter::once("AdvHet-2X".to_string()))
        .collect()
}

/// All GPU outcomes of the design x kernel sweep.
#[derive(Debug, Clone)]
pub struct GpuCampaign {
    /// `outcomes[kernel_idx][design_idx]` in [`GpuDesign::ALL`] order.
    pub outcomes: Vec<Vec<GpuOutcome>>,
    /// Kernel names, row order.
    pub kernel_names: Vec<&'static str>,
}

impl Suite {
    // ---------------------------------------------------------------
    // Device-level artifacts (Tables/Figures from Sections II-III).
    // ---------------------------------------------------------------

    /// Table I: characteristics of the four technologies at 15 nm.
    pub fn table1(&self) -> Report {
        let mut r = Report::new(
            "Table I: CMOS and TFET technologies at 15nm",
            Technology::ALL.iter().map(|t| t.to_string()).collect(),
        );
        let rows: [MetricRow<hetsim_device::DeviceParams>; 9] = [
            ("Supply voltage (V)", |p| p.supply_voltage_v),
            ("Switching delay (ps)", |p| p.switching_delay_ps),
            ("Interconnect delay (ps)", |p| p.interconnect_delay_ps),
            ("32b ALU delay (ps)", |p| p.alu32_delay_ps),
            ("Switching energy (aJ)", |p| p.switching_energy_aj),
            ("Interconnect energy (aJ)", |p| p.interconnect_energy_aj),
            ("32b ALU dyn energy (fJ)", |p| p.alu32_dynamic_energy_fj),
            ("32b ALU leakage (uW)", |p| p.alu32_leakage_uw),
            ("ALU power density (W/cm2)", |p| p.alu_power_density_w_cm2),
        ];
        for (label, f) in rows {
            r.push_row(
                label,
                Technology::ALL.iter().map(|t| f(&t.params())).collect(),
            );
        }
        r
    }

    /// Figure 1: Id-Vg curves of N-HetJTFET vs. N-MOSFET.
    pub fn fig1(&self) -> Report {
        let mut r = Report::new(
            "Figure 1: Id-Vg (uA/um) of N-HetJTFET vs N-MOSFET",
            vec!["HetJTFET".into(), "MOSFET".into()],
        );
        let tfet = IvCurve::n_hetjtfet();
        let mos = IvCurve::n_mosfet();
        for i in 0..=16 {
            let vg = 0.05 * i as f64;
            r.push_row(
                format!("Vg={vg:.2}V"),
                vec![tfet.drain_current(vg), mos.drain_current(vg)],
            );
        }
        r
    }

    /// Figure 2: total ALU power vs. activity factor.
    pub fn fig2(&self) -> Report {
        let mut r = Report::new(
            "Figure 2: ALU power (uW) vs activity factor",
            vec!["Si-CMOS".into(), "HetJTFET".into(), "ratio".into()],
        );
        for p in figure2_series(1e-4, 13) {
            r.push_row(
                format!("af={:.4}", p.af),
                vec![p.cmos_w * 1e6, p.tfet_w * 1e6, p.ratio],
            );
        }
        r
    }

    /// Figure 3: V_dd-frequency curves.
    pub fn fig3(&self) -> Report {
        let mut r = Report::new(
            "Figure 3: Vdd-frequency curves (GHz)",
            vec!["Si-CMOS".into(), "HetJTFET".into()],
        );
        let cmos = VfCurve::for_technology(Technology::SiCmos);
        let tfet = VfCurve::for_technology(Technology::HetJTfet);
        for i in 0..=13 {
            let v = 0.20 + 0.05 * i as f64;
            r.push_row(
                format!("Vdd={v:.2}V"),
                vec![cmos.frequency_at(v) / 1e9, tfet.frequency_at(v) / 1e9],
            );
        }
        r
    }

    // ---------------------------------------------------------------
    // CPU evaluation (Figures 7-9, 13).
    // ---------------------------------------------------------------

    /// Runs the full CPU campaign serially (see [`Suite::cpu_campaign_with`]).
    pub fn cpu_campaign(&self) -> CpuCampaign {
        self.cpu_campaign_with(&Runner::serial())
    }

    /// The CPU campaign's job batch in canonical submission order —
    /// every Table IV design on every application as a 4-core chip,
    /// plus the 8-core AdvHet-2X chip, row-major (app, then design).
    ///
    /// Exposed separately from [`Suite::cpu_campaign_with`] so shard
    /// workers can enumerate the identical batch in their own process
    /// and filter it by [`hetsim_runner::JobKey::shard_of`].
    pub fn cpu_campaign_jobs(&self) -> Vec<Job<CpuOutcome>> {
        let mut jobs: Vec<Job<CpuOutcome>> = Vec::new();
        for app in &apps::all() {
            for design in CpuDesign::ALL {
                jobs.push(cpu_job(
                    design,
                    BASELINE_CORES,
                    app,
                    self.seed,
                    self.insts_per_app,
                ));
            }
            jobs.push(cpu_job(
                CpuDesign::AdvHet,
                TWOX_CORES,
                app,
                self.seed,
                self.insts_per_app,
            ));
        }
        jobs
    }

    /// Runs the full CPU campaign — every Table IV design on every
    /// application as a 4-core chip, plus the 8-core AdvHet-2X chip —
    /// as one job batch on `runner`.
    ///
    /// Jobs are submitted in row-major (app, then design) order and the
    /// runner merges results by submission index, so the campaign is
    /// identical for any worker count.
    pub fn cpu_campaign_with(&self, runner: &Runner<CpuOutcome>) -> CpuCampaign {
        let all_apps = apps::all();
        let mut results = runner.run(self.cpu_campaign_jobs()).into_iter();
        let per_app = CpuDesign::ALL.len() + 1;
        let outcomes = all_apps
            .iter()
            .map(|_| results.by_ref().take(per_app).collect())
            .collect();
        CpuCampaign {
            outcomes,
            app_names: all_apps.iter().map(|a| a.name).collect(),
        }
    }

    /// The Figure 7/8/9 design columns (subset of the campaign).
    fn fig789_designs() -> Vec<(usize, String)> {
        // Campaign indices of: BaseCMOS, BaseCMOS-Enh, BaseTFET, BaseHet,
        // AdvHet, AdvHet-2X.
        let order = [
            CpuDesign::BaseCmos,
            CpuDesign::BaseCmosEnh,
            CpuDesign::BaseTfet,
            CpuDesign::BaseHet,
            CpuDesign::AdvHet,
        ];
        let mut cols: Vec<(usize, String)> = order
            .iter()
            .map(|d| {
                let idx = CpuDesign::ALL
                    .iter()
                    .position(|x| x == d)
                    .expect("design in ALL");
                (idx, d.name().to_string())
            })
            .collect();
        cols.push((CpuDesign::ALL.len(), "AdvHet-2X".to_string()));
        cols
    }

    fn cpu_metric_report(
        &self,
        campaign: &CpuCampaign,
        title: &str,
        metric: impl Fn(&CpuOutcome) -> f64,
    ) -> Report {
        let cols = Self::fig789_designs();
        let mut r = Report::new(
            title,
            cols.iter()
                .map(|(_, name)| name.clone())
                .collect::<Vec<_>>(),
        );
        let base_idx = 0; // BaseCMOS is the first column
        for (app, row) in campaign.app_names.iter().zip(&campaign.outcomes) {
            let values: Vec<f64> = cols.iter().map(|(i, _)| metric(&row[*i])).collect();
            r.push_row(*app, normalize(&values, base_idx));
        }
        r.push_mean();
        r
    }

    /// Figure 7: execution time, normalized to BaseCMOS.
    pub fn fig7(&self, campaign: &CpuCampaign) -> Report {
        self.cpu_metric_report(
            campaign,
            "Figure 7: CPU execution time (normalized to BaseCMOS)",
            |o| o.seconds,
        )
    }

    /// Figure 8: energy, normalized to BaseCMOS.
    pub fn fig8(&self, campaign: &CpuCampaign) -> Report {
        self.cpu_metric_report(
            campaign,
            "Figure 8: CPU energy (normalized to BaseCMOS)",
            |o| o.energy.total_j(),
        )
    }

    /// Figure 8's breakdown detail: mean dynamic/leakage shares per bucket
    /// for each design (the stacking inside the paper's bars).
    pub fn fig8_breakdown(&self, campaign: &CpuCampaign) -> Report {
        let cols = Self::fig789_designs();
        let mut r = Report::new(
            "Figure 8 (breakdown): mean energy by component, normalized to BaseCMOS total",
            cols.iter().map(|(_, n)| n.clone()).collect::<Vec<_>>(),
        );
        let parts: [MetricRow<hetsim_power::EnergyBreakdown>; 6] = [
            ("core dynamic", |e| e.core_dynamic_j),
            ("core leakage", |e| e.core_leakage_j),
            ("L2 dynamic", |e| e.l2_dynamic_j),
            ("L2 leakage", |e| e.l2_leakage_j),
            ("L3 dynamic", |e| e.l3_dynamic_j),
            ("L3 leakage", |e| e.l3_leakage_j),
        ];
        for (label, f) in parts {
            let mut values = vec![0.0; cols.len()];
            for row in &campaign.outcomes {
                let base_total = row[0].energy.total_j();
                for (k, (i, _)) in cols.iter().enumerate() {
                    values[k] += f(&row[*i].energy) / base_total;
                }
            }
            for v in &mut values {
                *v /= campaign.outcomes.len() as f64;
            }
            r.push_row(label, values);
        }
        r
    }

    /// Figure 9: ED^2, normalized to BaseCMOS.
    pub fn fig9(&self, campaign: &CpuCampaign) -> Report {
        self.cpu_metric_report(
            campaign,
            "Figure 9: CPU ED^2 (normalized to BaseCMOS)",
            CpuOutcome::ed2,
        )
    }

    /// Figure 13: mean time/energy/ED/ED^2 of the alternative designs.
    pub fn fig13(&self, campaign: &CpuCampaign) -> Report {
        let designs = [
            CpuDesign::BaseCmos,
            CpuDesign::BaseL3,
            CpuDesign::BaseHighVt,
            CpuDesign::BaseHetFastAlu,
            CpuDesign::BaseHet,
            CpuDesign::BaseHetEnh,
            CpuDesign::BaseHetSplit,
            CpuDesign::AdvHet,
        ];
        let mut r = Report::new(
            "Figure 13: sensitivity analysis (means, normalized to BaseCMOS)",
            designs
                .iter()
                .map(|d| d.name().to_string())
                .collect::<Vec<_>>(),
        );
        let metrics: [MetricRow<CpuOutcome>; 4] = [
            ("time", |o| o.seconds),
            ("energy", |o| o.energy.total_j()),
            ("ED", |o| o.ed()),
            ("ED^2", |o| o.ed2()),
        ];
        for (label, metric) in metrics {
            let mut values = vec![0.0; designs.len()];
            for row in &campaign.outcomes {
                let base = metric(&row[0]);
                for (k, d) in designs.iter().enumerate() {
                    let idx = CpuDesign::ALL.iter().position(|x| x == d).expect("in ALL");
                    values[k] += metric(&row[idx]) / base;
                }
            }
            for v in &mut values {
                *v /= campaign.outcomes.len() as f64;
            }
            r.push_row(label, values);
        }
        r
    }

    /// The Section VII-A1 premise check: chip power of the 8-core
    /// AdvHet-2X vs. the 4-core BaseCMOS (the "fixed power budget").
    pub fn power_budget(&self, campaign: &CpuCampaign) -> Report {
        let mut r = Report::new(
            "Power budget (Section VII-A1): chip power, normalized to 4-core BaseCMOS",
            vec![
                "BaseCMOS x4".into(),
                "AdvHet x4".into(),
                "AdvHet-2X x8".into(),
            ],
        );
        let advhet_idx = CpuDesign::ALL
            .iter()
            .position(|d| *d == CpuDesign::AdvHet)
            .expect("AdvHet in ALL");
        for (app, row) in campaign.app_names.iter().zip(&campaign.outcomes) {
            let base = row[0].power_w();
            r.push_row(
                *app,
                vec![
                    1.0,
                    row[advhet_idx].power_w() / base,
                    row[CpuDesign::ALL.len()].power_w() / base,
                ],
            );
        }
        r.push_mean();
        r
    }

    // ---------------------------------------------------------------
    // GPU evaluation (Figures 10-12).
    // ---------------------------------------------------------------

    /// Runs the full GPU campaign serially (see [`Suite::gpu_campaign_with`]).
    pub fn gpu_campaign(&self) -> GpuCampaign {
        self.gpu_campaign_with(&Runner::serial())
    }

    /// The GPU campaign's job batch in canonical submission order
    /// (kernel-major) — the shard-worker counterpart of
    /// [`Suite::cpu_campaign_jobs`].
    pub fn gpu_campaign_jobs(&self) -> Vec<Job<GpuOutcome>> {
        hetsim_gpu::kernels::all()
            .iter()
            .flat_map(|kernel| {
                GpuDesign::ALL
                    .iter()
                    .map(|&d| gpu_job(d, kernel, self.seed))
            })
            .collect()
    }

    /// Runs the full GPU campaign — every design on every kernel — as
    /// one job batch on `runner` (submission order: kernel-major).
    pub fn gpu_campaign_with(&self, runner: &Runner<GpuOutcome>) -> GpuCampaign {
        let kernels = hetsim_gpu::kernels::all();
        let mut results = runner.run(self.gpu_campaign_jobs()).into_iter();
        let outcomes = kernels
            .iter()
            .map(|_| results.by_ref().take(GpuDesign::ALL.len()).collect())
            .collect();
        GpuCampaign {
            outcomes,
            kernel_names: kernels.iter().map(|k| k.name).collect(),
        }
    }

    fn gpu_metric_report(
        &self,
        campaign: &GpuCampaign,
        title: &str,
        metric: impl Fn(&GpuOutcome) -> f64,
    ) -> Report {
        let mut r = Report::new(
            title,
            GpuDesign::ALL
                .iter()
                .map(|d| d.name().to_string())
                .collect::<Vec<_>>(),
        );
        for (kernel, row) in campaign.kernel_names.iter().zip(&campaign.outcomes) {
            let values: Vec<f64> = row.iter().map(&metric).collect();
            r.push_row(*kernel, normalize(&values, 0));
        }
        r.push_mean();
        r
    }

    /// Figure 10: GPU execution time, normalized to BaseCMOS.
    pub fn fig10(&self, campaign: &GpuCampaign) -> Report {
        self.gpu_metric_report(
            campaign,
            "Figure 10: GPU execution time (normalized to BaseCMOS)",
            |o| o.seconds,
        )
    }

    /// Figure 11: GPU energy, normalized to BaseCMOS.
    pub fn fig11(&self, campaign: &GpuCampaign) -> Report {
        self.gpu_metric_report(
            campaign,
            "Figure 11: GPU energy (normalized to BaseCMOS)",
            |o| o.energy.total_j(),
        )
    }

    /// Figure 12: GPU ED^2, normalized to BaseCMOS.
    pub fn fig12(&self, campaign: &GpuCampaign) -> Report {
        self.gpu_metric_report(
            campaign,
            "Figure 12: GPU ED^2 (normalized to BaseCMOS)",
            GpuOutcome::ed2,
        )
    }

    // ---------------------------------------------------------------
    // DVFS and process variation (Figure 14).
    // ---------------------------------------------------------------

    /// Figure 14: energy of BaseCMOS and AdvHet at 1.5/2/2.5 GHz and under
    /// process-variation guardbands, normalized to BaseCMOS at 2 GHz.
    pub fn fig14(&self) -> Report {
        let dvfs = DvfsController::new();
        let nominal = dvfs.nominal();
        let points: Vec<(String, f64, VoltageFactors)> = vec![
            ("BaseFreq-2GHz".into(), 2.0e9, VoltageFactors::default()),
            (
                "BoostFreq-2.5GHz".into(),
                2.5e9,
                factors_for(&dvfs, 2.5e9, nominal.v_cmos, nominal.v_tfet),
            ),
            (
                "SlowFreq-1.5GHz".into(),
                1.5e9,
                factors_for(&dvfs, 1.5e9, nominal.v_cmos, nominal.v_tfet),
            ),
            (
                "ProcessVar-2GHz".into(),
                2.0e9,
                VoltageFactors::from_voltages(
                    nominal.v_cmos + CMOS_GUARDBAND_V,
                    nominal.v_cmos,
                    nominal.v_tfet + TFET_GUARDBAND_V,
                    nominal.v_tfet,
                ),
            ),
        ];

        let mut r = Report::new(
            "Figure 14: DVFS & process variation — energy normalized to BaseCMOS@2GHz",
            vec!["BaseCMOS".into(), "AdvHet".into()],
        );
        // Use a representative subset of apps to bound runtime. The
        // profiles and per-(point, design) energy models are hoisted out
        // of the inner loop, and the instruction streams come from the
        // trace memo: every sweep point re-runs the same (app, seed)
        // streams, so generation is paid once, not once per point and
        // design.
        let selected = ["fft", "lu", "radix", "canneal", "blackscholes", "water-nsq"];
        let insts = self.insts_per_app / 4;
        let profiles: Vec<_> = selected
            .iter()
            .map(|name| apps::profile(name).expect("known app"))
            .collect();
        let mut baseline = Vec::new();
        for (label, hz, volts) in points {
            let mut totals = [0.0f64; 2];
            for (d, design) in [CpuDesign::BaseCmos, CpuDesign::AdvHet]
                .into_iter()
                .enumerate()
            {
                let mut cfg = design.core_config();
                cfg.clock_hz = hz * (cfg.clock_hz / 2.0e9); // keep relative clocks
                let pull_bound = insts + cfg.steering.lookahead_window() + 1;
                let model = design.energy_model().with_voltages(volts);
                for app in &profiles {
                    let mut core = hetsim_cpu::core::Core::new(cfg.clone(), 0);
                    let trace = hetsim_trace::cache::replay(app, self.seed, 0, pull_bound);
                    let result = core.run(trace, insts);
                    let e = model.energy(&result.stats, &result.mem, result.seconds());
                    totals[d] += e.total_j();
                }
            }
            if baseline.is_empty() {
                baseline = vec![totals[0]];
            }
            r.push_row(
                label,
                vec![totals[0] / baseline[0], totals[1] / baseline[0]],
            );
        }
        r
    }
}

impl Suite {
    /// Extension: the Section VIII iso-area comparison against the
    /// thread-migration CMP, per application.
    pub fn ext_migration(&self) -> Report {
        let mut r = Report::new(
            "Extension (Section VIII): 4-core AdvHet vs 2 CMOS + 2 TFET migration CMP (normalized to AdvHet)",
            vec!["AdvHet time".into(), "migration time".into(), "AdvHet E".into(), "migration E".into()],
        );
        for app in apps::all() {
            let (adv, mig) =
                crate::migration::iso_area_comparison(&app, self.seed, self.insts_per_app);
            r.push_row(
                app.name,
                vec![
                    1.0,
                    mig.seconds / adv.seconds,
                    1.0,
                    mig.energy.total_j() / adv.energy.total_j(),
                ],
            );
        }
        r.push_mean();
        r
    }

    /// Extension: partitioned RF vs. RF cache on the GPU, per kernel,
    /// normalized to BaseCMOS.
    pub fn ext_partitioned_rf(&self) -> Report {
        let mut r = Report::new(
            "Extension (Section VIII): GPU RF organizations (time, normalized to BaseCMOS)",
            vec![
                "BaseHet".into(),
                "AdvHet (RF cache)".into(),
                "AdvHet (part. RF)".into(),
            ],
        );
        for kernel in hetsim_gpu::kernels::all() {
            let base = crate::experiment::run_gpu(GpuDesign::BaseCmos, &kernel, self.seed);
            let values = [
                crate::experiment::run_gpu(GpuDesign::BaseHet, &kernel, self.seed),
                crate::experiment::run_gpu(GpuDesign::AdvHet, &kernel, self.seed),
                crate::experiment::run_gpu(GpuDesign::AdvHetPartitionedRf, &kernel, self.seed),
            ]
            .iter()
            .map(|o| o.seconds / base.seconds)
            .collect();
            r.push_row(kernel.name, values);
        }
        r.push_mean();
        r
    }

    /// Extension: the future-work compiler scheduling pass — BaseHet's
    /// slowdown vs. BaseCMOS with and without scheduling applied to both.
    pub fn ext_scheduling(&self) -> Report {
        let mut r = Report::new(
            "Extension (future work, IV-C4): BaseHet slowdown with compiler scheduling",
            vec!["raw slowdown".into(), "scheduled slowdown".into()],
        );
        for kernel in hetsim_gpu::kernels::all() {
            let base_raw = crate::experiment::run_gpu(GpuDesign::BaseCmos, &kernel, self.seed);
            let het_raw = crate::experiment::run_gpu(GpuDesign::BaseHet, &kernel, self.seed);
            let base_s =
                crate::experiment::run_gpu_scheduled(GpuDesign::BaseCmos, &kernel, self.seed, 6);
            let het_s =
                crate::experiment::run_gpu_scheduled(GpuDesign::BaseHet, &kernel, self.seed, 6);
            r.push_row(
                kernel.name,
                vec![
                    het_raw.seconds / base_raw.seconds,
                    het_s.seconds / base_s.seconds,
                ],
            );
        }
        r.push_mean();
        r
    }
}

/// Voltage factors for a DVFS target frequency, relative to the nominal
/// rails.
fn factors_for(dvfs: &DvfsController, hz: f64, v_cmos0: f64, v_tfet0: f64) -> VoltageFactors {
    let p = dvfs.operating_point(hz).expect("reachable DVFS point");
    VoltageFactors::from_voltages(p.v_cmos, v_cmos0, p.v_tfet, v_tfet0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Suite {
        Suite {
            insts_per_app: 20_000,
            seed: 7,
        }
    }

    #[test]
    fn table1_has_nine_rows_and_four_columns() {
        let t = quick().table1();
        assert_eq!(t.rows.len(), 9);
        assert_eq!(t.columns.len(), 4);
        // Spot-check a Table I value: HetJTFET supply voltage.
        assert_eq!(t.rows[0].1[1], 0.40);
    }

    #[test]
    fn fig1_tfet_wins_low_mosfet_wins_high() {
        let f = quick().fig1();
        let low = &f.rows[8].1; // Vg = 0.40
        assert!(low[0] > low[1], "TFET leads at 0.4 V");
        let high = &f.rows[16].1; // Vg = 0.80
        assert!(high[1] > high[0], "MOSFET leads at 0.8 V");
    }

    #[test]
    fn fig3_reproduces_anchor_points() {
        let f = quick().fig3();
        // Row for 0.40 V: TFET = 1 GHz.
        let row = f
            .rows
            .iter()
            .find(|(l, _)| l == "Vdd=0.40V")
            .expect("row exists");
        assert!((row.1[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fig14_shapes() {
        let f = quick().fig14();
        // AdvHet saves energy at every operating point.
        for (label, vals) in &f.rows {
            assert!(
                vals[1] < vals[0],
                "{label}: AdvHet {} vs BaseCMOS {}",
                vals[1],
                vals[0]
            );
        }
        // Guardbands raise energy for both designs.
        let nominal = &f.rows[0].1;
        let guard = &f.rows[3].1;
        assert!(guard[0] > nominal[0]);
        assert!(guard[1] > nominal[1]);
    }

    #[test]
    fn experiment_cli_names_roundtrip() {
        for e in Experiment::ALL {
            assert_eq!(Experiment::from_cli_name(e.cli_name()), Some(e));
        }
        assert_eq!(Experiment::from_cli_name("fig99"), None);
    }
}
