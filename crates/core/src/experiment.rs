//! Running a design point on a workload: time + energy.
//!
//! CPU experiments run the paper's 4-core chip (the baseline) or the
//! 8-core AdvHet-2X chip: the workload's instructions split across cores
//! Amdahl-style (see `hetsim_cpu::multicore`), idle cores leak during the
//! serial phase, and all cores leak for the full duration of the parallel
//! phase. GPU experiments launch one synthetic kernel over the configured
//! compute units.

use hetsim_cpu::core::Core;
use hetsim_cpu::multicore::{run_multicore, MulticoreResult};
use hetsim_cpu::stats::CoreStats;
use hetsim_gpu::gpu::Gpu;
use hetsim_gpu::stats::GpuStats;
use hetsim_mem::stats::MemStats;
use hetsim_obs::profile::collector;
use hetsim_obs::ProfileRow;
use hetsim_power::account::{EnergyBreakdown, GpuActivity, GpuEnergy, GpuEnergyModel};
use hetsim_runner::SimMetrics;
use hetsim_stats::attribution;
use hetsim_trace::WorkloadProfile;
use serde::{Deserialize, Serialize};

use crate::config::{CpuDesign, GpuDesign};

/// Outcome of one CPU experiment (single- or multi-core).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuOutcome {
    /// The design that ran.
    pub design: CpuDesign,
    /// Application name.
    pub app: String,
    /// End-to-end execution time (s).
    pub seconds: f64,
    /// Chip energy breakdown.
    pub energy: EnergyBreakdown,
    /// Number of cores on the chip.
    pub cores: u32,
    /// Instructions committed across all cores/phases.
    pub committed: u64,
    /// Chip-level pipeline counters: all phases and cores merged
    /// (`cycles` is the end-to-end cycle count, serial + parallel).
    pub stats: CoreStats,
    /// Chip-level memory-system counters, merged across cores/phases.
    pub mem: MemStats,
}

impl CpuOutcome {
    /// Energy-delay product (J.s).
    pub fn ed(&self) -> f64 {
        self.energy.ed(self.seconds)
    }

    /// Energy-delay-squared product (J.s^2).
    pub fn ed2(&self) -> f64 {
        self.energy.ed2(self.seconds)
    }

    /// Average chip power (W).
    pub fn power_w(&self) -> f64 {
        self.energy.total_j() / self.seconds
    }
}

impl SimMetrics for CpuOutcome {
    fn sim_seconds(&self) -> f64 {
        self.seconds
    }

    fn counters(&self) -> Vec<(String, u64)> {
        let mut pairs = Vec::new();
        self.stats
            .visit("core.", &mut |name, value| pairs.push((name.into(), value)));
        self.mem
            .visit("mem.", &mut |name, value| pairs.push((name.into(), value)));
        pairs
    }
}

impl SimMetrics for GpuOutcome {
    fn sim_seconds(&self) -> f64 {
        self.seconds
    }

    fn counters(&self) -> Vec<(String, u64)> {
        let mut pairs = Vec::new();
        self.stats
            .visit("gpu.", &mut |name, value| pairs.push((name.into(), value)));
        pairs
    }
}

/// Runs `design` on a single core (used by unit tests and the quickstart;
/// the paper's figures use [`run_cpu_multicore`] with 4 cores).
pub fn run_cpu(design: CpuDesign, app: &WorkloadProfile, seed: u64, insts: u64) -> CpuOutcome {
    let cfg = design.core_config();
    let window = cfg.steering.lookahead_window();
    let mut core = Core::new(cfg, 0);
    core.prewarm(0, app.memory.working_set_bytes);
    let warmup = (insts / 4).min(25_000);
    // Same-stream sweeps (one app across every design) replay the
    // memoized trace instead of regenerating it per design.
    let trace = hetsim_trace::cache::replay(app, seed, 0, warmup + insts + window + 1);
    let result = core.run_warmed(trace, warmup, insts);
    if attribution::enabled() {
        publish_core_profile(design, "core0", &result.profile);
    }
    let seconds = result.seconds();
    let energy = design
        .energy_model()
        .energy(&result.stats, &result.mem, seconds);
    CpuOutcome {
        design,
        app: app.name.to_string(),
        seconds,
        energy,
        cores: 1,
        committed: result.stats.committed,
        stats: result.stats,
        mem: result.mem,
    }
}

/// Runs `design` as a `cores`-core chip on `app` (the paper's chip-level
/// experiment). `total_insts` is split across cores per the profile's
/// parallel fraction.
pub fn run_cpu_multicore(
    design: CpuDesign,
    cores: u32,
    app: &WorkloadProfile,
    seed: u64,
    total_insts: u64,
) -> CpuOutcome {
    let cfg = design.core_config();
    let model = design.energy_model();
    run_cpu_multicore_configured(design, &cfg, &model, cores, app, seed, total_insts)
}

/// [`run_cpu_multicore`] with the timing configuration and energy model
/// supplied explicitly instead of derived from the design's Table IV
/// defaults. The design-space exploration engine uses this to evaluate
/// off-nominal candidates — a design at a scaled clock and V_dd
/// operating point — without minting a new [`CpuDesign`] variant per
/// grid cell; `design` still labels the outcome.
pub fn run_cpu_multicore_configured(
    design: CpuDesign,
    cfg: &hetsim_cpu::config::CoreConfig,
    model: &hetsim_power::account::CpuEnergyModel,
    cores: u32,
    app: &WorkloadProfile,
    seed: u64,
    total_insts: u64,
) -> CpuOutcome {
    let mc: MulticoreResult = run_multicore(cfg, cores, app, seed, total_insts);
    if attribution::enabled() {
        // The serial phase runs on core 0, so its attribution folds
        // into the same unit row as core 0's parallel phase.
        if let Some(serial) = &mc.serial {
            publish_core_profile(design, "core0", &serial.profile);
        }
        for (t, r) in mc.parallel.iter().enumerate() {
            publish_core_profile(design, &format!("core{t}"), &r.profile);
        }
    }

    let mut energy = EnergyBreakdown::default();
    // Serial phase: core 0 active, the rest leaking.
    let t_serial = mc.serial_seconds();
    if let Some(serial) = &mc.serial {
        energy.merge(&model.energy(&serial.stats, &serial.mem, t_serial));
        for _ in 1..cores {
            energy.merge(&model.idle_energy(t_serial));
        }
    }
    // Parallel phase: every core is powered until the slowest finishes.
    let t_parallel = mc.parallel_seconds();
    for r in &mc.parallel {
        energy.merge(&model.energy(&r.stats, &r.mem, t_parallel));
    }

    // Chip-level counters: merge every phase's cores, then fix up the
    // cycle count — phases run back-to-back, so the chip's cycles are
    // the serial phase plus the slowest parallel core (merge alone
    // would take the max across phases, losing the serial span).
    let mut stats = CoreStats::default();
    let mut mem = MemStats::default();
    let mut serial_cycles = 0;
    if let Some(serial) = &mc.serial {
        stats.merge(&serial.stats);
        mem.merge(&serial.mem);
        serial_cycles = serial.stats.cycles;
    }
    let mut parallel_cycles = 0;
    for r in &mc.parallel {
        stats.merge(&r.stats);
        mem.merge(&r.mem);
        parallel_cycles = parallel_cycles.max(r.stats.cycles);
    }
    stats.cycles = serial_cycles + parallel_cycles;

    CpuOutcome {
        design,
        app: app.name.to_string(),
        seconds: mc.total_seconds(),
        energy,
        cores,
        committed: mc.total_committed(),
        stats,
        mem,
    }
}

/// Outcome of one GPU experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuOutcome {
    /// The design that ran.
    pub design: GpuDesign,
    /// Kernel name.
    pub kernel: String,
    /// Execution time (s).
    pub seconds: f64,
    /// Energy result.
    pub energy: GpuEnergy,
    /// Compute units powered.
    pub compute_units: u32,
    /// GPU event counters for the run.
    pub stats: GpuStats,
}

impl GpuOutcome {
    /// Energy-delay-squared product (J.s^2).
    pub fn ed2(&self) -> f64 {
        self.energy.ed2(self.seconds)
    }

    /// Average power (W).
    pub fn power_w(&self) -> f64 {
        self.energy.total_j() / self.seconds
    }
}

/// Runs a GPU design on one kernel.
pub fn run_gpu(design: GpuDesign, kernel: &hetsim_gpu::KernelProfile, seed: u64) -> GpuOutcome {
    let gpu = Gpu::new(design.gpu_config());
    let result = gpu.run(kernel, seed);
    price_gpu_run(design, kernel, result)
}

/// Runs a GPU design on one kernel *after* the latency-hiding compiler
/// pass (the paper's future-work optimization; `window` is the scheduler
/// lookahead).
pub fn run_gpu_scheduled(
    design: GpuDesign,
    kernel: &hetsim_gpu::KernelProfile,
    seed: u64,
    window: usize,
) -> GpuOutcome {
    let gpu = Gpu::new(design.gpu_config());
    let result = gpu.run_scheduled(kernel, seed, window);
    price_gpu_run(design, kernel, result)
}

fn price_gpu_run(
    design: GpuDesign,
    kernel: &hetsim_gpu::KernelProfile,
    result: hetsim_gpu::GpuRunResult,
) -> GpuOutcome {
    let seconds = result.seconds();
    let s = &result.stats;
    let activity = GpuActivity {
        wavefront_insts: s.wavefront_insts,
        thread_fma_ops: s.thread_fma_ops,
        vector_rf_accesses: s.vector_rf_accesses,
        rf_cache_accesses: s.rf_cache_accesses,
        rf_fast_accesses: s.rf_fast_accesses,
        lds_accesses: s.lds_accesses,
        mem_insts: s.mem_insts,
        dram_accesses: s.dram_accesses,
        compute_units: result.compute_units,
        seconds,
    };
    let energy = GpuEnergyModel::new(design.assignment()).energy(&activity);
    if attribution::enabled() {
        for (cu, p) in result.profiles.iter().enumerate() {
            let mut row = ProfileRow::new(design.name(), format!("cu{cu}"));
            row.classes = p.classes;
            row.cycles = p.cycles;
            row.add_histogram("residency", &p.residency);
            collector::record(row);
        }
    }
    GpuOutcome {
        design,
        kernel: kernel.name.to_string(),
        seconds,
        energy,
        compute_units: result.compute_units,
        stats: result.stats,
    }
}

/// Publishes one core run's attribution into the process-wide profile
/// collector. Only called while profiling is enabled, so plain runs
/// never touch the collector lock.
fn publish_core_profile(design: CpuDesign, unit: &str, p: &hetsim_cpu::CoreProfile) {
    let mut row = ProfileRow::new(design.name(), unit);
    row.classes = p.classes;
    row.cycles = p.cycles;
    row.add_histogram("rob", &p.occupancy.rob);
    row.add_histogram("iq", &p.occupancy.iq);
    row.add_histogram("lsq", &p.occupancy.lsq);
    row.add_histogram("mem_hit_latency", &p.mem_hit_latency);
    row.add_histogram("mem_miss_latency", &p.mem_miss_latency);
    collector::record(row);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_gpu::kernels;
    use hetsim_trace::apps;

    const N: u64 = 20_000;

    #[test]
    fn cpu_design_time_ordering_holds() {
        // Paper Figure 7 ordering: BaseCMOS < AdvHet < BaseHet < BaseTFET.
        let app = apps::profile("lu").expect("known");
        let t = |d| run_cpu(d, &app, 3, N).seconds;
        let base = t(CpuDesign::BaseCmos);
        let adv = t(CpuDesign::AdvHet);
        let het = t(CpuDesign::BaseHet);
        let tfet = t(CpuDesign::BaseTfet);
        assert!(base < adv, "BaseCMOS {base} < AdvHet {adv}");
        assert!(adv < het, "AdvHet {adv} < BaseHet {het}");
        assert!(het < tfet, "BaseHet {het} < BaseTFET {tfet}");
    }

    #[test]
    fn cpu_design_energy_ordering_holds() {
        // Paper Figure 8 ordering: BaseTFET < AdvHet < BaseHet < BaseCMOS.
        let app = apps::profile("fft").expect("known");
        let e = |d| run_cpu(d, &app, 3, N).energy.total_j();
        let base = e(CpuDesign::BaseCmos);
        let adv = e(CpuDesign::AdvHet);
        let het = e(CpuDesign::BaseHet);
        let tfet = e(CpuDesign::BaseTfet);
        assert!(tfet < adv, "BaseTFET {tfet} < AdvHet {adv}");
        assert!(adv < het, "AdvHet {adv} < BaseHet {het}");
        assert!(het < base, "BaseHet {het} < BaseCMOS {base}");
    }

    #[test]
    fn advhet_2x_beats_basecmos_on_parallel_work() {
        let app = apps::profile("fft").expect("known");
        let base = run_cpu_multicore(CpuDesign::BaseCmos, 4, &app, 5, 4 * N);
        let twox = run_cpu_multicore(CpuDesign::AdvHet, 8, &app, 5, 4 * N);
        assert!(
            twox.seconds < base.seconds,
            "8 AdvHet cores {} should beat 4 BaseCMOS cores {}",
            twox.seconds,
            base.seconds
        );
        assert!(twox.energy.total_j() < base.energy.total_j());
    }

    #[test]
    fn advhet_power_is_about_half_of_basecmos() {
        // The premise of the 2X experiment (Section VII-A1).
        let app = apps::profile("water-nsq").expect("known");
        let base = run_cpu_multicore(CpuDesign::BaseCmos, 4, &app, 7, 4 * N);
        let adv = run_cpu_multicore(CpuDesign::AdvHet, 4, &app, 7, 4 * N);
        let ratio = adv.power_w() / base.power_w();
        assert!(
            (0.35..0.75).contains(&ratio),
            "AdvHet/BaseCMOS power ratio {ratio}"
        );
    }

    #[test]
    fn gpu_orderings_hold() {
        let kernel = kernels::profile("matmul").expect("known");
        let base = run_gpu(GpuDesign::BaseCmos, &kernel, 3);
        let het = run_gpu(GpuDesign::BaseHet, &kernel, 3);
        let adv = run_gpu(GpuDesign::AdvHet, &kernel, 3);
        let tfet = run_gpu(GpuDesign::BaseTfet, &kernel, 3);
        // Figure 10: BaseCMOS < AdvHet <= BaseHet < BaseTFET.
        assert!(base.seconds < adv.seconds);
        assert!(adv.seconds <= het.seconds);
        assert!(het.seconds < tfet.seconds);
        // Figure 11: BaseTFET < AdvHet/BaseHet < BaseCMOS.
        assert!(tfet.energy.total_j() < adv.energy.total_j());
        assert!(adv.energy.total_j() < base.energy.total_j());
    }

    #[test]
    fn gpu_2x_wins_under_power_budget() {
        let kernel = kernels::profile("floydwarshall").expect("known");
        let base = run_gpu(GpuDesign::BaseCmos, &kernel, 4);
        let twox = run_gpu(GpuDesign::AdvHet2x, &kernel, 4);
        assert!(
            twox.seconds < base.seconds,
            "{} vs {}",
            twox.seconds,
            base.seconds
        );
        assert!(twox.ed2() < base.ed2());
    }

    #[test]
    fn partitioned_rf_is_competitive_with_the_rf_cache() {
        // The Section VIII note: the partitioned RF "can readily be
        // adapted to AdvHet". It should land in the same band as the RF
        // cache — much better than bare BaseHet on time.
        let kernel = kernels::profile("binomialoption").expect("known");
        let het = run_gpu(GpuDesign::BaseHet, &kernel, 3);
        let adv = run_gpu(GpuDesign::AdvHet, &kernel, 3);
        let part = run_gpu(GpuDesign::AdvHetPartitionedRf, &kernel, 3);
        assert!(
            part.seconds < het.seconds,
            "partitioned RF must recover time"
        );
        assert!(
            part.seconds < adv.seconds * 1.10,
            "and stay within ~10% of the RF cache: {} vs {}",
            part.seconds,
            adv.seconds
        );
        assert!(part.energy.total_j() < het.energy.total_j() * 1.05);
    }

    #[test]
    fn compiler_scheduling_recovers_gpu_time() {
        // The future-work claim of Section IV-C4.
        let kernel = kernels::profile("binomialoption").expect("known");
        let raw = run_gpu(GpuDesign::BaseHet, &kernel, 3);
        let tuned = run_gpu_scheduled(GpuDesign::BaseHet, &kernel, 3, 6);
        assert!(
            tuned.seconds < raw.seconds,
            "scheduling should help: {} vs {}",
            tuned.seconds,
            raw.seconds
        );
    }

    #[test]
    fn multicore_energy_includes_idle_leakage() {
        let mut app = apps::profile("lu").expect("known");
        app.parallel_fraction = 0.5; // long serial phase
        let one = run_cpu_multicore(CpuDesign::BaseCmos, 1, &app, 9, N);
        let four = run_cpu_multicore(CpuDesign::BaseCmos, 4, &app, 9, N);
        // Four cores burn more energy than one on the same work (idle
        // leakage during the serial phase + parallel-phase overheads).
        assert!(four.energy.total_j() > one.energy.total_j());
    }
}
