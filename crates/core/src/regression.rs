//! Cross-run regression diffing over `--stats-out` dumps.
//!
//! A [`StatsDump`](crate::telemetry::StatsDump) written by one run can
//! be compared against the dump of another run of the same
//! configuration: the simulators are deterministic, so *any* drift in a
//! counter or a derived figure value is a behavior change that must be
//! either intentional (regenerate the baseline) or a regression (fail
//! the build). This module implements that comparison:
//!
//! * [`DumpDoc::load`] parses a dump into three *lanes* of dotted-path
//!   leaves — integer **counters** (`cpu.designs.AdvHet.core.committed`),
//!   float **metrics** (`report.Figure 7….lu.AdvHet` cells), and string
//!   **tags** (`schema.cpu`) — so alignment is total: every leaf of
//!   either document is classified, none can escape the gate;
//! * [`DiffPolicy`] declares the tolerance per lane: counters and tags
//!   must match **exactly** (event counts have no legitimate noise),
//!   metrics may drift within a configurable relative tolerance
//!   (absorbing float-formatting round-trips), added/removed leaves
//!   fail unless explicitly allowlisted (schema growth is deliberate),
//!   and schema-tag changes fail unless explicitly waived;
//! * [`diff_dumps`] aligns the lanes (counters through
//!   [`hetsim_stats::diff::diff_counters`], the very helper the counter
//!   structs' own tests verify) and returns a [`DiffReport`] that
//!   renders as `table`/`json`/`csv` and drives the process exit code.
//!
//! Runner telemetry (`runner.*`) is excluded **by policy, not by
//! hand**: [`RunnerStats`] declares its counters nondeterministic
//! ([`RunnerStats::DETERMINISTIC`] is `false` — wall time and cache
//! temperature vary run to run), and [`DiffPolicy::default`] derives
//! its ignore list from that declaration.

use std::collections::HashSet;
use std::path::Path;

use hetsim_runner::RunnerStats;
use hetsim_stats::diff::diff_counters;
use serde::value::Value;
use serde::Serialize;

/// The run configuration a dump was recorded under (its `run` section).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSpec {
    /// Dynamic instructions per CPU application.
    pub insts: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Experiment CLI words (`fig7`, `ext`, …) the run executed.
    pub experiments: Vec<String>,
}

/// A parsed `--stats-out` document, flattened into diffable lanes.
#[derive(Debug, Clone, Default)]
pub struct DumpDoc {
    /// Integer counters by dotted path (exact-match lane).
    pub counters: Vec<(String, u64)>,
    /// Derived float metrics by dotted path (relative-tolerance lane).
    pub metrics: Vec<(String, f64)>,
    /// String tags by dotted path (identity lane; `schema.*` lives here).
    pub tags: Vec<(String, String)>,
    /// The `run` section, when the dump recorded one.
    pub run: Option<RunSpec>,
}

impl DumpDoc {
    /// Parses a dump from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed JSON (truncated
    /// or corrupted files) and for documents that are not stats dumps.
    pub fn parse(text: &str) -> Result<DumpDoc, String> {
        let value: Value =
            serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
        let top = value
            .as_object()
            .ok_or_else(|| "not a stats dump: top level is not an object".to_string())?;
        if value.get("schema").and_then(Value::as_object).is_none() {
            return Err(
                "not a stats dump: missing `schema` section (was this file written by \
                 `repro --stats-out` or `repro baseline`?)"
                    .to_string(),
            );
        }
        let mut doc = DumpDoc::default();
        for (key, section) in top {
            if key == "reports" {
                flatten_reports(section, &mut doc)?;
            } else {
                flatten(section, key, &mut doc);
            }
        }
        doc.run = parse_run(&value)?;
        Ok(doc)
    }

    /// Reads and parses a dump file.
    ///
    /// # Errors
    ///
    /// Returns a message naming the path for unreadable files and for
    /// any [`DumpDoc::parse`] failure.
    pub fn load(path: &Path) -> Result<DumpDoc, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        DumpDoc::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Flattens a value subtree into the document's lanes. Objects and
/// arrays recurse (`a.b` / `a[0]`); `null` leaves (empty sections,
/// non-finite floats) are skipped.
fn flatten(v: &Value, path: &str, doc: &mut DumpDoc) {
    match v {
        Value::Object(entries) => {
            for (key, child) in entries {
                flatten(child, &format!("{path}.{key}"), doc);
            }
        }
        Value::Array(items) => {
            for (i, child) in items.iter().enumerate() {
                flatten(child, &format!("{path}[{i}]"), doc);
            }
        }
        Value::UInt(n) => doc.counters.push((path.to_string(), *n)),
        Value::Int(n) => doc.metrics.push((path.to_string(), *n as f64)),
        Value::Float(x) => doc.metrics.push((path.to_string(), *x)),
        Value::Str(s) => doc.tags.push((path.to_string(), s.clone())),
        Value::Bool(b) => doc.tags.push((path.to_string(), b.to_string())),
        Value::Null => {}
    }
}

/// Flattens the `reports` section with figure-shaped paths:
/// `report.<title>.<row label>.<column>` per cell, so a violation names
/// the exact figure, application and design that drifted.
fn flatten_reports(v: &Value, doc: &mut DumpDoc) -> Result<(), String> {
    let reports = v
        .as_array()
        .ok_or_else(|| "`reports` section is not an array".to_string())?;
    for (i, report) in reports.iter().enumerate() {
        let title = report
            .get("title")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("reports[{i}] has no title"))?;
        let columns: Vec<&str> = report
            .get("columns")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("reports[{i}] has no columns"))?
            .iter()
            .map(|c| c.as_str().unwrap_or("?"))
            .collect();
        let rows = report
            .get("rows")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("reports[{i}] has no rows"))?;
        for row in rows {
            let cells = row
                .as_array()
                .filter(|r| r.len() == 2)
                .ok_or_else(|| format!("malformed row in report '{title}'"))?;
            let label = cells[0].as_str().unwrap_or("?");
            let values = cells[1]
                .as_array()
                .ok_or_else(|| format!("malformed row values in report '{title}'"))?;
            for (column, value) in columns.iter().zip(values) {
                if let Some(x) = value.as_f64() {
                    doc.metrics
                        .push((format!("report.{title}.{label}.{column}"), x));
                }
            }
        }
    }
    Ok(())
}

fn parse_run(value: &Value) -> Result<Option<RunSpec>, String> {
    let Some(run) = value.get("run") else {
        return Ok(None);
    };
    let insts = run
        .get("insts")
        .and_then(Value::as_u64)
        .ok_or_else(|| "`run` section has no integer `insts`".to_string())?;
    let seed = run
        .get("seed")
        .and_then(Value::as_u64)
        .ok_or_else(|| "`run` section has no integer `seed`".to_string())?;
    let experiments = run
        .get("experiments")
        .and_then(Value::as_array)
        .ok_or_else(|| "`run` section has no `experiments` array".to_string())?
        .iter()
        .map(|e| {
            e.as_str()
                .map(str::to_string)
                .ok_or_else(|| "non-string entry in `run.experiments`".to_string())
        })
        .collect::<Result<Vec<String>, String>>()?;
    Ok(Some(RunSpec {
        insts,
        seed,
        experiments,
    }))
}

/// The tolerance policy a diff is classified against.
#[derive(Debug, Clone)]
pub struct DiffPolicy {
    /// Relative tolerance for the float-metric lane (report cells).
    /// Counters are always exact-match: simulated event counts have no
    /// legitimate noise.
    pub rel_tol: f64,
    /// Dotted-path prefixes excluded from gating entirely. The default
    /// is derived from type declarations (see [`DiffPolicy::default`]),
    /// not hand-kept lists.
    pub ignored_prefixes: Vec<String>,
    /// Dotted-path prefixes under which added/removed leaves are
    /// waived — the explicit allowlist that makes schema growth a
    /// deliberate act.
    pub allowed_counter_changes: Vec<String>,
    /// Waives `schema.*` tag mismatches (for intentional cache-schema
    /// bumps whose baselines are being regenerated).
    pub allow_schema_change: bool,
}

impl Default for DiffPolicy {
    fn default() -> Self {
        let mut ignored = Vec::new();
        // RunnerStats declares its counters nondeterministic (wall
        // clock, cache temperature), so every runner section is exempt
        // by the owning type's declaration rather than by a list
        // somebody has to remember to maintain here.
        if !RunnerStats::DETERMINISTIC {
            ignored.push("runner.".to_string());
        }
        // The cycle-attribution profile is opt-in telemetry: which jobs
        // simulate fresh (vs. replay from the warm job cache) varies
        // between runs, so its totals carry the same run-to-run
        // variability as the runner section.
        ignored.push("profile.".to_string());
        DiffPolicy {
            // Deterministic simulators: the tolerance only absorbs
            // float shortest-round-trip formatting noise.
            rel_tol: 1e-9,
            ignored_prefixes: ignored,
            allowed_counter_changes: Vec::new(),
            allow_schema_change: false,
        }
    }
}

impl DiffPolicy {
    fn ignores(&self, path: &str) -> bool {
        self.ignored_prefixes
            .iter()
            .any(|p| path.starts_with(p.as_str()))
    }

    fn waives_membership_change(&self, path: &str) -> bool {
        self.allowed_counter_changes
            .iter()
            .any(|p| path.starts_with(p.as_str()))
    }
}

/// What rule a regression violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegressionKind {
    /// A `schema.*` tag differs (cache-schema bump without baseline
    /// regeneration).
    SchemaMismatch,
    /// An exact-lane value (integer counter or string tag) differs.
    CounterMismatch,
    /// A float metric drifted beyond the relative tolerance.
    MetricOutOfTolerance,
    /// The candidate has a leaf the baseline lacks.
    CounterAdded,
    /// The baseline has a leaf the candidate lacks.
    CounterRemoved,
}

impl RegressionKind {
    /// Short machine-stable label (used in JSON/CSV output).
    pub fn label(self) -> &'static str {
        match self {
            RegressionKind::SchemaMismatch => "schema-mismatch",
            RegressionKind::CounterMismatch => "counter-mismatch",
            RegressionKind::MetricOutOfTolerance => "metric-out-of-tolerance",
            RegressionKind::CounterAdded => "counter-added",
            RegressionKind::CounterRemoved => "counter-removed",
        }
    }
}

/// One gating failure: a named leaf, both sides, the delta, and the
/// tolerance rule it violated.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Dotted path, e.g. `cpu.designs.AdvHet.core.committed`.
    pub path: String,
    /// The violated rule.
    pub kind: RegressionKind,
    /// Baseline rendering (`None` for added leaves).
    pub baseline: Option<String>,
    /// Candidate rendering (`None` for removed leaves).
    pub candidate: Option<String>,
    /// Signed delta rendering, when both sides are numeric.
    pub delta: Option<String>,
    /// Human description of the violated tolerance, e.g. `exact` or
    /// `rel 3.1e-4 > tol 1e-9`.
    pub tolerance: String,
}

/// The outcome of diffing two dumps against a policy.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Every violation, in lane order (counters, metrics, tags).
    pub regressions: Vec<Regression>,
    /// Leaves aligned on both sides and found within tolerance.
    pub compared: usize,
    /// Leaves excluded from gating by policy (e.g. `runner.*`).
    pub ignored: usize,
    /// Added/removed leaves waived by the allowlist (and schema
    /// mismatches waived by `--allow-schema-change`).
    pub waived: usize,
}

impl DiffReport {
    /// `true` when no regression was found (the gate passes).
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Human-readable table rendering.
    pub fn to_table(&self) -> String {
        let mut out = if self.is_clean() {
            format!(
                "regression diff: clean — {} value(s) compared, {} ignored by policy, {} waived\n",
                self.compared, self.ignored, self.waived
            )
        } else {
            format!(
                "regression diff: {} regression(s) — {} value(s) compared, {} ignored by policy, \
                 {} waived\n",
                self.regressions.len(),
                self.compared,
                self.ignored,
                self.waived
            )
        };
        for r in &self.regressions {
            out.push_str(&format!("  [{}] {}:", r.kind.label(), r.path));
            if let Some(b) = &r.baseline {
                out.push_str(&format!(" baseline {b}"));
            }
            if let Some(c) = &r.candidate {
                out.push_str(&format!(
                    "{}candidate {c}",
                    if r.baseline.is_some() { ", " } else { " " }
                ));
            }
            if let Some(d) = &r.delta {
                out.push_str(&format!(", delta {d}"));
            }
            out.push_str(&format!(" (tolerance: {})\n", r.tolerance));
        }
        out
    }

    /// CSV rendering: one line per regression, full precision.
    pub fn to_csv(&self) -> String {
        fn escape(field: &str) -> String {
            if field.contains(',') || field.contains('"') || field.contains('\n') {
                format!("\"{}\"", field.replace('"', "\"\""))
            } else {
                field.to_string()
            }
        }
        let mut out = String::from("path,kind,baseline,candidate,delta,tolerance\n");
        for r in &self.regressions {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                escape(&r.path),
                r.kind.label(),
                escape(r.baseline.as_deref().unwrap_or("")),
                escape(r.candidate.as_deref().unwrap_or("")),
                escape(r.delta.as_deref().unwrap_or("")),
                escape(&r.tolerance),
            ));
        }
        out
    }
}

impl Serialize for DiffReport {
    fn to_value(&self) -> Value {
        fn opt(s: &Option<String>) -> Value {
            match s {
                Some(s) => Value::Str(s.clone()),
                None => Value::Null,
            }
        }
        Value::Object(vec![
            ("clean".into(), Value::Bool(self.is_clean())),
            ("compared".into(), self.compared.to_value()),
            ("ignored".into(), self.ignored.to_value()),
            ("waived".into(), self.waived.to_value()),
            (
                "regressions".into(),
                Value::Array(
                    self.regressions
                        .iter()
                        .map(|r| {
                            Value::Object(vec![
                                ("path".into(), Value::Str(r.path.clone())),
                                ("kind".into(), Value::Str(r.kind.label().into())),
                                ("baseline".into(), opt(&r.baseline)),
                                ("candidate".into(), opt(&r.candidate)),
                                ("delta".into(), opt(&r.delta)),
                                ("tolerance".into(), Value::Str(r.tolerance.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Diffs `candidate` against `baseline` under `policy`.
///
/// Alignment is total per lane: every non-ignored leaf of either dump
/// is either compared, reported as a regression, or waived by the
/// allowlist — and the counts in the returned [`DiffReport`] account
/// for all of them.
pub fn diff_dumps(baseline: &DumpDoc, candidate: &DumpDoc, policy: &DiffPolicy) -> DiffReport {
    let mut report = DiffReport::default();
    let mut ignored_paths: HashSet<&str> = HashSet::new();

    // ---- counter lane: exact match, via the stats crate's aligner ----
    let keep_counters = |doc: &DumpDoc| -> Vec<(String, u64)> {
        doc.counters
            .iter()
            .filter(|(p, _)| !policy.ignores(p))
            .cloned()
            .collect()
    };
    for (p, _) in baseline.counters.iter().chain(&candidate.counters) {
        if policy.ignores(p) {
            ignored_paths.insert(p.as_str());
        }
    }
    let d = diff_counters(keep_counters(baseline), keep_counters(candidate));
    report.compared += d.unchanged.len();
    for c in d.changed {
        report.compared += 1;
        report.regressions.push(Regression {
            path: c.name.clone(),
            kind: RegressionKind::CounterMismatch,
            baseline: Some(c.baseline.to_string()),
            candidate: Some(c.candidate.to_string()),
            delta: Some(format!("{:+}", c.delta())),
            tolerance: "exact".to_string(),
        });
    }
    for (name, value) in d.only_in_baseline {
        membership_change(
            &mut report,
            policy,
            name,
            RegressionKind::CounterRemoved,
            Some(value.to_string()),
            None,
        );
    }
    for (name, value) in d.only_in_candidate {
        membership_change(
            &mut report,
            policy,
            name,
            RegressionKind::CounterAdded,
            None,
            Some(value.to_string()),
        );
    }

    // ---- metric lane: relative tolerance ----
    {
        let cand: Vec<&(String, f64)> = candidate
            .metrics
            .iter()
            .filter(|(p, _)| !policy.ignores(p))
            .collect();
        let mut cand_by_name: std::collections::HashMap<&str, f64> =
            std::collections::HashMap::with_capacity(cand.len());
        for (p, x) in &cand {
            cand_by_name.entry(p.as_str()).or_insert(*x);
        }
        let mut seen: HashSet<&str> = HashSet::new();
        for (p, b) in &baseline.metrics {
            if policy.ignores(p) {
                ignored_paths.insert(p.as_str());
                continue;
            }
            seen.insert(p.as_str());
            match cand_by_name.get(p.as_str()) {
                Some(&c) => {
                    report.compared += 1;
                    let scale = b.abs().max(c.abs());
                    let drift = (c - b).abs();
                    // Negated so a NaN drift (e.g. Inf vs Inf of the
                    // same sign still drifts NaN) counts as a
                    // violation rather than passing silently.
                    let within = drift <= policy.rel_tol * scale;
                    if !within {
                        let rel = if scale > 0.0 { drift / scale } else { f64::NAN };
                        report.regressions.push(Regression {
                            path: p.clone(),
                            kind: RegressionKind::MetricOutOfTolerance,
                            baseline: Some(format!("{b}")),
                            candidate: Some(format!("{c}")),
                            delta: Some(format!("{:+e}", c - b)),
                            tolerance: format!("rel {rel:.3e} > tol {:e}", policy.rel_tol),
                        });
                    }
                }
                None => membership_change(
                    &mut report,
                    policy,
                    p.clone(),
                    RegressionKind::CounterRemoved,
                    Some(format!("{b}")),
                    None,
                ),
            }
        }
        for (p, c) in &candidate.metrics {
            if policy.ignores(p) {
                ignored_paths.insert(p.as_str());
                continue;
            }
            if !seen.contains(p.as_str()) {
                membership_change(
                    &mut report,
                    policy,
                    p.clone(),
                    RegressionKind::CounterAdded,
                    None,
                    Some(format!("{c}")),
                );
            }
        }
    }

    // ---- tag lane: identity (schema tags get their own kind) ----
    {
        let mut cand_by_name: std::collections::HashMap<&str, &str> =
            std::collections::HashMap::with_capacity(candidate.tags.len());
        for (p, s) in &candidate.tags {
            cand_by_name.entry(p.as_str()).or_insert(s.as_str());
        }
        let mut seen: HashSet<&str> = HashSet::new();
        for (p, b) in &baseline.tags {
            if policy.ignores(p) {
                ignored_paths.insert(p.as_str());
                continue;
            }
            seen.insert(p.as_str());
            match cand_by_name.get(p.as_str()) {
                Some(&c) if c == b => report.compared += 1,
                Some(&c) => {
                    report.compared += 1;
                    let is_schema = p.starts_with("schema.");
                    if is_schema && policy.allow_schema_change {
                        report.waived += 1;
                    } else {
                        report.regressions.push(Regression {
                            path: p.clone(),
                            kind: if is_schema {
                                RegressionKind::SchemaMismatch
                            } else {
                                RegressionKind::CounterMismatch
                            },
                            baseline: Some(format!("\"{b}\"")),
                            candidate: Some(format!("\"{c}\"")),
                            delta: None,
                            tolerance: if is_schema {
                                "identical schema tags (pass --allow-schema-change for an \
                                 intentional bump)"
                                    .to_string()
                            } else {
                                "exact".to_string()
                            },
                        });
                    }
                }
                None => membership_change(
                    &mut report,
                    policy,
                    p.clone(),
                    RegressionKind::CounterRemoved,
                    Some(format!("\"{b}\"")),
                    None,
                ),
            }
        }
        for (p, c) in &candidate.tags {
            if policy.ignores(p) {
                ignored_paths.insert(p.as_str());
                continue;
            }
            if !seen.contains(p.as_str()) {
                membership_change(
                    &mut report,
                    policy,
                    p.clone(),
                    RegressionKind::CounterAdded,
                    None,
                    Some(format!("\"{c}\"")),
                );
            }
        }
    }

    report.ignored = ignored_paths.len();
    report
}

/// Classifies one added/removed leaf: waived when allowlisted,
/// otherwise a regression with instructions in the tolerance field.
fn membership_change(
    report: &mut DiffReport,
    policy: &DiffPolicy,
    path: String,
    kind: RegressionKind,
    baseline: Option<String>,
    candidate: Option<String>,
) {
    if policy.waives_membership_change(&path) {
        report.waived += 1;
        return;
    }
    let tolerance =
        format!("same counter set (pass --allow {path} if this schema change is deliberate)");
    report.regressions.push(Regression {
        path,
        kind,
        baseline,
        candidate,
        delta: None,
        tolerance,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
        "schema": { "cpu": "cpu-v2", "gpu": "gpu-v2" },
        "run": { "insts": 3000, "seed": 42, "experiments": ["fig7"] },
        "cpu": { "designs": { "AdvHet": { "core": { "committed": 12345, "cycles": 999 } } } },
        "gpu": null,
        "runner": { "cpu": { "jobs": 154, "wall_seconds": 1.25 } },
        "reports": [ {
            "title": "Figure 7: CPU execution time",
            "columns": ["BaseCMOS", "AdvHet"],
            "rows": [ ["lu", [1.0, 1.08]], ["mean", [1.0, 1.1]] ]
        } ]
    }"#;

    fn doc(text: &str) -> DumpDoc {
        DumpDoc::parse(text).expect("valid dump")
    }

    #[test]
    fn parse_flattens_all_three_lanes_and_the_run_section() {
        let d = doc(BASE);
        assert!(d
            .counters
            .iter()
            .any(|(p, v)| p == "cpu.designs.AdvHet.core.committed" && *v == 12345));
        assert!(d
            .metrics
            .iter()
            .any(|(p, v)| p == "report.Figure 7: CPU execution time.lu.AdvHet" && *v == 1.08));
        assert!(d
            .tags
            .iter()
            .any(|(p, s)| p == "schema.cpu" && s == "cpu-v2"));
        let run = d.run.expect("run section");
        assert_eq!(run.insts, 3000);
        assert_eq!(run.experiments, ["fig7"]);
    }

    #[test]
    fn identical_dumps_diff_clean() {
        let report = diff_dumps(&doc(BASE), &doc(BASE), &DiffPolicy::default());
        assert!(report.is_clean(), "{}", report.to_table());
        assert!(report.compared > 0);
        assert!(report.ignored > 0, "runner leaves are ignored by policy");
    }

    #[test]
    fn perturbed_counter_names_design_counter_delta_and_tolerance() {
        let perturbed = BASE.replace("12345", "12346");
        let report = diff_dumps(&doc(BASE), &doc(&perturbed), &DiffPolicy::default());
        assert_eq!(report.regressions.len(), 1);
        let r = &report.regressions[0];
        assert_eq!(r.path, "cpu.designs.AdvHet.core.committed");
        assert_eq!(r.kind, RegressionKind::CounterMismatch);
        assert_eq!(r.delta.as_deref(), Some("+1"));
        assert_eq!(r.tolerance, "exact");
        let table = report.to_table();
        assert!(table.contains("AdvHet"), "{table}");
        assert!(table.contains("committed"), "{table}");
        assert!(table.contains("+1"), "{table}");
        assert!(table.contains("exact"), "{table}");
    }

    #[test]
    fn runner_drift_is_exempt_by_the_runner_types_own_declaration() {
        let perturbed = BASE
            .replace("1.25", "9.75")
            .replace("\"jobs\": 154", "\"jobs\": 2");
        let report = diff_dumps(&doc(BASE), &doc(&perturbed), &DiffPolicy::default());
        assert!(report.is_clean(), "{}", report.to_table());
    }

    #[test]
    fn metric_drift_respects_relative_tolerance() {
        let drifted = BASE.replace("1.08", "1.0800001");
        let tight = diff_dumps(&doc(BASE), &doc(&drifted), &DiffPolicy::default());
        assert_eq!(tight.regressions.len(), 1);
        assert_eq!(
            tight.regressions[0].kind,
            RegressionKind::MetricOutOfTolerance
        );
        assert!(tight.regressions[0].tolerance.contains("tol"));
        let loose = diff_dumps(
            &doc(BASE),
            &doc(&drifted),
            &DiffPolicy {
                rel_tol: 1e-3,
                ..DiffPolicy::default()
            },
        );
        assert!(loose.is_clean());
    }

    #[test]
    fn added_and_removed_counters_fail_unless_allowlisted() {
        let grown = BASE.replace(
            "\"committed\": 12345, \"cycles\": 999",
            "\"committed\": 12345, \"cycles\": 999, \"spills\": 7",
        );
        let strict = diff_dumps(&doc(BASE), &doc(&grown), &DiffPolicy::default());
        assert_eq!(strict.regressions.len(), 1);
        assert_eq!(strict.regressions[0].kind, RegressionKind::CounterAdded);
        assert!(strict.regressions[0].candidate.is_some());
        let waived = diff_dumps(
            &doc(BASE),
            &doc(&grown),
            &DiffPolicy {
                allowed_counter_changes: vec!["cpu.designs.AdvHet.core.spills".to_string()],
                ..DiffPolicy::default()
            },
        );
        assert!(waived.is_clean());
        assert_eq!(waived.waived, 1);
        // The reverse direction is a removal.
        let shrunk = diff_dumps(&doc(&grown), &doc(BASE), &DiffPolicy::default());
        assert_eq!(shrunk.regressions[0].kind, RegressionKind::CounterRemoved);
    }

    #[test]
    fn schema_bump_fails_unless_explicitly_waived() {
        let bumped = BASE.replace("cpu-v2", "cpu-v3");
        let strict = diff_dumps(&doc(BASE), &doc(&bumped), &DiffPolicy::default());
        assert_eq!(strict.regressions.len(), 1);
        assert_eq!(strict.regressions[0].kind, RegressionKind::SchemaMismatch);
        let waived = diff_dumps(
            &doc(BASE),
            &doc(&bumped),
            &DiffPolicy {
                allow_schema_change: true,
                ..DiffPolicy::default()
            },
        );
        assert!(waived.is_clean());
    }

    #[test]
    fn truncated_and_non_dump_documents_parse_to_clear_errors() {
        let err = DumpDoc::parse("{\"schema\": {").expect_err("truncated");
        assert!(err.contains("JSON"), "{err}");
        let err = DumpDoc::parse("[1, 2, 3]").expect_err("not an object");
        assert!(err.contains("not a stats dump"), "{err}");
        let err = DumpDoc::parse("{\"x\": 1}").expect_err("no schema");
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn renders_in_all_three_formats() {
        let perturbed = BASE.replace("12345", "12346");
        let report = diff_dumps(&doc(BASE), &doc(&perturbed), &DiffPolicy::default());
        assert!(report.to_table().contains("regression diff: 1 regression"));
        let csv = report.to_csv();
        assert!(csv.starts_with("path,kind,baseline,candidate,delta,tolerance\n"));
        assert!(csv.contains("counter-mismatch"));
        let json = serde_json::to_string_pretty(&report).expect("serializes");
        let v: Value = serde_json::from_str(&json).expect("round trips");
        assert_eq!(v.get("clean").and_then(Value::as_bool), Some(false));
    }
}
