//! # HetCore: TFET-CMOS hetero-device CPUs and GPUs
//!
//! A reproduction of *HetCore: TFET-CMOS Hetero-Device Architecture for
//! CPUs and GPUs* (Gopireddy, Skarlatos, Zhu, Torrellas — ISCA 2018).
//!
//! HetCore integrates Tunneling-FET (TFET) units and CMOS units inside a
//! single core: TFET devices switch ~2x slower but consume ~4-8x less
//! power at their optimal voltage, so HetCore builds the high-power,
//! pipelinable, latency-tolerant units (FPUs, ALUs, DL1/L2/L3 caches; on a
//! GPU the SIMD FMAs and the vector register file) in TFET, keeps the rest
//! in CMOS, powers the two groups from separate rails, and clocks
//! everything at one frequency by pipelining TFET units twice as deep.
//! *AdvHet* then recovers most of the lost performance with an asymmetric
//! DL1 (one CMOS way in front of the TFET ways), a dual-speed ALU cluster
//! with consumer-aware steering, a larger ROB/FP-RF, and (GPU) a register
//! file cache.
//!
//! This crate is the top of the reproduction stack: it defines every
//! configuration of the paper's Table IV, runs them on the synthetic
//! SPLASH-2/PARSEC and AMD-APP-SDK workloads, applies the McPAT/GPUWattch-
//! like energy model, and regenerates every table and figure of the
//! paper's evaluation (Tables I-IV, Figures 1-3 and 7-14).
//!
//! * [`config`] — named CPU/GPU design points (Table IV).
//! * [`experiment`] — running a design on a workload; time + energy.
//! * [`campaign`] — content-addressed jobs for the design × app sweeps.
//! * [`report`] — tables (text/CSV/JSON) in the shape of the paper's figures.
//! * [`suite`] — one entry point per paper table/figure.
//! * [`telemetry`] — the machine-readable `--stats-out` counter dump.
//! * [`regression`] — cross-run diffing of those dumps against pinned
//!   baselines (`repro diff` / `repro baseline` / `repro ci-gate`).
//!
//! Campaigns execute on the `hetsim-runner` engine: a work-stealing
//! thread pool plus a content-addressed result cache, with parallel
//! runs bit-identical to serial ones (see `hetsim_runner`'s crate
//! docs for the determinism contract).
//!
//! # Quickstart
//!
//! ```
//! use hetcore::config::CpuDesign;
//! use hetcore::experiment::run_cpu;
//! use hetsim_trace::apps;
//!
//! let app = apps::profile("lu").expect("known app");
//! let base = run_cpu(CpuDesign::BaseCmos, &app, 42, 20_000);
//! let adv = run_cpu(CpuDesign::AdvHet, &app, 42, 20_000);
//! // AdvHet trades a little time for a lot of energy.
//! assert!(adv.seconds >= base.seconds);
//! assert!(adv.energy.total_j() < base.energy.total_j());
//! ```

#![warn(missing_docs)]

pub mod bench;
pub mod campaign;
pub mod check;
pub mod config;
pub mod experiment;
pub mod explore;
pub mod migration;
pub mod regression;
pub mod report;
pub mod suite;
pub mod telemetry;

pub use campaign::{cpu_job, cpu_job_key, gpu_job, gpu_job_key, CPU_SCHEMA, GPU_SCHEMA};
pub use config::{CpuDesign, GpuDesign};
pub use experiment::{
    run_cpu, run_cpu_multicore, run_cpu_multicore_configured, run_gpu, run_gpu_scheduled,
    CpuOutcome, GpuOutcome,
};
pub use explore::{explore, DesignSpace, ExploreConfig, ExploreResult, EXPLORE_SCHEMA};
pub use migration::{iso_area_comparison, run_migration_cmp, MigrationConfig};
pub use regression::{diff_dumps, DiffPolicy, DiffReport, DumpDoc};
pub use report::Report;
pub use suite::Experiment;
pub use telemetry::StatsDump;
