//! Plain-text reports in the shape of the paper's figures.

use std::fmt;

use serde::Serialize;

/// A table: one row per application/kernel (plus a mean row), one column
/// per design/series.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Title, e.g. `"Figure 7: CPU execution time (normalized to BaseCMOS)"`.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// `(row label, values)` — `values.len() == columns.len()`.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Report {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.into(), values));
    }

    /// Appends a `mean` row: the arithmetic mean of every existing row
    /// (the paper reports averages of normalized values).
    pub fn push_mean(&mut self) {
        let n = self.rows.len();
        if n == 0 {
            return;
        }
        let cols = self.columns.len();
        let mut mean = vec![0.0; cols];
        for (_, vals) in &self.rows {
            for (m, v) in mean.iter_mut().zip(vals) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        self.rows.push(("mean".to_string(), mean));
    }

    /// The values of the mean row, if present.
    pub fn mean_row(&self) -> Option<&[f64]> {
        self.rows
            .iter()
            .find(|(l, _)| l == "mean")
            .map(|(_, v)| v.as_slice())
    }

    /// The mean value of a named column, if both exist.
    pub fn mean_of(&self, column: &str) -> Option<f64> {
        let idx = self.columns.iter().position(|c| c == column)?;
        self.mean_row().map(|r| r[idx])
    }

    /// CSV rendering: a `# title` comment line, a header row
    /// (`label,<columns>`), then one line per row. Values keep full
    /// precision (unlike the 3-decimal [`fmt::Display`] table); labels
    /// and headers containing commas or quotes are quoted per RFC 4180.
    pub fn to_csv(&self) -> String {
        fn escape(field: &str) -> String {
            if field.contains(',') || field.contains('"') || field.contains('\n') {
                format!("\"{}\"", field.replace('"', "\"\""))
            } else {
                field.to_string()
            }
        }
        let mut out = format!("# {}\n", self.title);
        out.push_str("label");
        for c in &self.columns {
            out.push(',');
            out.push_str(&escape(c));
        }
        out.push('\n');
        for (label, vals) in &self.rows {
            out.push_str(&escape(label));
            for v in vals {
                out.push(',');
                out.push_str(&format!("{v}"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(4))
            .max()
            .unwrap_or(4)
            .max(4);
        let col_w = self
            .columns
            .iter()
            .map(|c| c.len().max(7))
            .collect::<Vec<_>>();
        write!(f, "{:<label_w$}", "")?;
        for (c, w) in self.columns.iter().zip(&col_w) {
            write!(f, "  {c:>w$}")?;
        }
        writeln!(f)?;
        for (label, vals) in &self.rows {
            write!(f, "{label:<label_w$}")?;
            for (v, w) in vals.iter().zip(&col_w) {
                write!(f, "  {v:>w$.3}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Normalizes `values` to the entry at `baseline_idx`.
///
/// # Panics
///
/// Panics if the baseline value is zero.
pub fn normalize(values: &[f64], baseline_idx: usize) -> Vec<f64> {
    let base = values[baseline_idx];
    assert!(base != 0.0, "baseline value must be non-zero");
    values.iter().map(|v| v / base).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_row_is_arithmetic_mean() {
        let mut r = Report::new("t", vec!["a".into(), "b".into()]);
        r.push_row("x", vec![1.0, 2.0]);
        r.push_row("y", vec![3.0, 4.0]);
        r.push_mean();
        assert_eq!(r.mean_row().expect("mean exists"), &[2.0, 3.0]);
        assert_eq!(r.mean_of("b"), Some(3.0));
    }

    #[test]
    fn normalize_divides_by_baseline() {
        assert_eq!(normalize(&[2.0, 4.0, 1.0], 0), vec![1.0, 2.0, 0.5]);
    }

    #[test]
    fn display_renders_all_rows() {
        let mut r = Report::new("Title", vec!["c1".into()]);
        r.push_row("row1", vec![1.5]);
        let s = r.to_string();
        assert!(s.contains("Title"));
        assert!(s.contains("row1"));
        assert!(s.contains("1.500"));
    }

    #[test]
    fn csv_keeps_full_precision_and_quotes_commas() {
        let mut r = Report::new("T", vec!["plain".into(), "with, comma".into()]);
        r.push_row("row1", vec![0.123456789, 2.0]);
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "# T");
        assert_eq!(lines[1], "label,plain,\"with, comma\"");
        assert_eq!(lines[2], "row1,0.123456789,2");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_checked() {
        let mut r = Report::new("t", vec!["a".into()]);
        r.push_row("x", vec![1.0, 2.0]);
    }
}
