//! Machine-readable run telemetry: the `repro --stats-out` dump.
//!
//! A [`StatsDump`] aggregates the full counter set of a run — every
//! `(name, value)` pair the counter structs enumerate through their
//! generated `iter()` — into one JSON document:
//!
//! ```json
//! {
//!   "schema": { "cpu": "cpu-v2", "gpu": "gpu-v2" },
//!   "run": { "insts": 3000, "seed": 42, "experiments": ["fig7"] },
//!   "cpu": { "designs": { "BaseCMOS": { "core": {...}, "mem": {...} }, ... } },
//!   "gpu": { "designs": { "BaseCMOS": { "gpu": {...} }, ... } },
//!   "runner": { "cpu": { "jobs": ..., "wall_seconds": ... }, ... },
//!   "reports": [ { "title": ..., "columns": [...], "rows": [...] }, ... ]
//! }
//! ```
//!
//! The optional `run` section makes a dump self-describing (so
//! `repro ci-gate` can replay the exact configuration a baseline was
//! recorded under), and `reports` carries the run's rendered figures so
//! derived metrics diff alongside raw counters — see
//! [`crate::regression`].
//!
//! Counter maps are keyed *exactly* by the names `iter()` yields
//! (dotted for nested groups, e.g. `"il1.accesses"`), so consumers can
//! discover every counter without a schema, and the set is guaranteed
//! to match what the simulators actually count. Per-design entries
//! merge all applications/kernels of the campaign with the structs'
//! own `merge` policies (`cycles` maxes, events sum).

use std::path::Path;

use hetsim_cpu::stats::CoreStats;
use hetsim_gpu::stats::GpuStats;
use hetsim_mem::stats::MemStats;
use hetsim_runner::{RunnerStats, RunnerTiming};
use serde::value::Value;
use serde::Serialize;

use crate::campaign::{CPU_SCHEMA, GPU_SCHEMA};
use crate::report::Report;
use crate::suite::{cpu_campaign_columns, CpuCampaign, GpuCampaign};

/// Builder for the `--stats-out` document. Sections are optional: a
/// run that only produced device-level tables still emits a valid
/// (mostly empty) dump.
#[derive(Debug, Clone, Default)]
pub struct StatsDump {
    run: Option<(u64, u64, Vec<String>)>,
    cpu: Option<Value>,
    gpu: Option<Value>,
    runner: Vec<(String, RunnerStats)>,
    timing: Vec<(String, RunnerTiming)>,
    profile: Option<Value>,
    reports: Vec<Report>,
}

/// A flat counter map as a JSON object, keyed by `iter()` names.
fn counter_object(pairs: Vec<(String, u64)>) -> Value {
    Value::Object(
        pairs
            .into_iter()
            .map(|(name, value)| (name, Value::UInt(value)))
            .collect(),
    )
}

/// Per-design aggregates of a CPU campaign, in campaign column order.
pub fn cpu_design_counters(campaign: &CpuCampaign) -> Vec<(String, CoreStats, MemStats)> {
    cpu_campaign_columns()
        .into_iter()
        .enumerate()
        .map(|(design_idx, name)| {
            let mut stats = CoreStats::default();
            let mut mem = MemStats::default();
            for row in &campaign.outcomes {
                let outcome = &row[design_idx];
                stats.merge(&outcome.stats);
                mem.merge(&outcome.mem);
            }
            (name, stats, mem)
        })
        .collect()
}

/// Per-design aggregates of a GPU campaign, in campaign column order.
pub fn gpu_design_counters(campaign: &GpuCampaign) -> Vec<(String, GpuStats)> {
    crate::config::GpuDesign::ALL
        .iter()
        .enumerate()
        .map(|(design_idx, design)| {
            let mut stats = GpuStats::default();
            for row in &campaign.outcomes {
                stats.merge(&row[design_idx].stats);
            }
            (design.name().to_string(), stats)
        })
        .collect()
}

impl StatsDump {
    /// An empty dump (schema tags only).
    pub fn new() -> Self {
        StatsDump::default()
    }

    /// Adds the CPU campaign's per-design counter sets.
    pub fn with_cpu_campaign(mut self, campaign: &CpuCampaign) -> Self {
        let designs = cpu_design_counters(campaign)
            .into_iter()
            .map(|(name, stats, mem)| {
                (
                    name,
                    Value::Object(vec![
                        ("core".into(), counter_object(stats.iter().collect())),
                        ("mem".into(), counter_object(mem.iter().collect())),
                    ]),
                )
            })
            .collect();
        self.cpu = Some(Value::Object(vec![(
            "designs".into(),
            Value::Object(designs),
        )]));
        self
    }

    /// Adds the GPU campaign's per-design counter sets.
    pub fn with_gpu_campaign(mut self, campaign: &GpuCampaign) -> Self {
        let designs = gpu_design_counters(campaign)
            .into_iter()
            .map(|(name, stats)| {
                (
                    name,
                    Value::Object(vec![("gpu".into(), counter_object(stats.iter().collect()))]),
                )
            })
            .collect();
        self.gpu = Some(Value::Object(vec![(
            "designs".into(),
            Value::Object(designs),
        )]));
        self
    }

    /// Adds one runner's cumulative execution counters under `label`
    /// (e.g. `"cpu"` / `"gpu"`).
    pub fn with_runner(mut self, label: &str, stats: RunnerStats) -> Self {
        self.runner.push((label.to_string(), stats));
        self
    }

    /// Adds one runner's per-phase wall-time histograms, surfaced as
    /// `runner.timing.<label>.*`. Like the rest of the `runner` section
    /// this telemetry is wall-clock-derived and non-deterministic, so
    /// the regression gate's `runner.` exemption (see
    /// [`RunnerStats::DETERMINISTIC`]) covers it automatically.
    pub fn with_runner_timing(mut self, label: &str, timing: RunnerTiming) -> Self {
        self.timing.push((label.to_string(), timing));
        self
    }

    /// Records the run configuration (`insts`, `seed`, experiment CLI
    /// words), making the dump self-describing: `repro ci-gate` replays
    /// exactly this configuration when re-validating a baseline.
    pub fn with_run(mut self, insts: u64, seed: u64, experiments: &[String]) -> Self {
        self.run = Some((insts, seed, experiments.to_vec()));
        self
    }

    /// Adds the run's rendered reports, so derived metrics (normalized
    /// time/energy figures) are diffable alongside the raw counters.
    pub fn with_reports(mut self, reports: &[Report]) -> Self {
        self.reports.extend(reports.iter().cloned());
        self
    }

    /// Adds the cycle-attribution profile document (the
    /// `hetsim-profile-v1` value from `hetsim_obs::profile`). Like the
    /// `runner` section, `profile.*` counters are exempt from the
    /// regression diff: which runs simulate fresh (vs. replay from the
    /// job cache) varies run to run, so attribution totals are not
    /// byte-stable even though each individual simulation is.
    pub fn with_profile(mut self, profile: Value) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("value trees always serialize")
    }

    /// Writes the dump to `path` through the runner's atomic
    /// temp-file+rename path, creating missing parent directories: a
    /// crashed run never leaves a torn telemetry file for a later
    /// `repro diff` to stumble over.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be
    /// created or either write step fails.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        hetsim_runner::write_atomic(path, &self.to_json())
    }
}

impl Serialize for StatsDump {
    fn to_value(&self) -> Value {
        let mut fields = vec![(
            "schema".to_string(),
            Value::Object(vec![
                ("cpu".into(), Value::Str(CPU_SCHEMA.into())),
                ("gpu".into(), Value::Str(GPU_SCHEMA.into())),
            ]),
        )];
        if let Some((insts, seed, experiments)) = &self.run {
            fields.push((
                "run".into(),
                Value::Object(vec![
                    ("insts".into(), insts.to_value()),
                    ("seed".into(), seed.to_value()),
                    ("experiments".into(), experiments.to_value()),
                ]),
            ));
        }
        fields.push(("cpu".into(), self.cpu.clone().unwrap_or(Value::Null)));
        fields.push(("gpu".into(), self.gpu.clone().unwrap_or(Value::Null)));
        let mut runner: Vec<(String, Value)> = self
            .runner
            .iter()
            .map(|(label, stats)| (label.clone(), stats.to_value()))
            .collect();
        if !self.timing.is_empty() {
            runner.push((
                "timing".into(),
                Value::Object(
                    self.timing
                        .iter()
                        .map(|(label, timing)| (label.clone(), timing.to_value()))
                        .collect(),
                ),
            ));
        }
        fields.push(("runner".into(), Value::Object(runner)));
        if let Some(profile) = &self.profile {
            fields.push(("profile".into(), profile.clone()));
        }
        if !self.reports.is_empty() {
            fields.push(("reports".into(), self.reports.to_value()));
        }
        Value::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::Suite;

    fn tiny() -> Suite {
        Suite {
            insts_per_app: 4_000,
            seed: 7,
        }
    }

    #[test]
    fn empty_dump_still_carries_the_schema() {
        let v = StatsDump::new().to_value();
        assert_eq!(
            v.get("schema")
                .and_then(|s| s.get("cpu"))
                .and_then(Value::as_str),
            Some(CPU_SCHEMA)
        );
        assert_eq!(v.get("cpu"), Some(&Value::Null));
    }

    #[test]
    fn cpu_dump_contains_every_counter_name() {
        let campaign = tiny().cpu_campaign();
        let v = StatsDump::new().with_cpu_campaign(&campaign).to_value();
        let designs = v
            .get("cpu")
            .and_then(|c| c.get("designs"))
            .and_then(Value::as_object)
            .expect("designs object");
        assert_eq!(designs.len(), cpu_campaign_columns().len());
        let (_, first) = &designs[0];
        let core = first.get("core").and_then(Value::as_object).expect("core");
        for (name, _) in CoreStats::default().iter() {
            assert!(
                core.iter().any(|(k, _)| *k == name),
                "missing core counter {name}"
            );
        }
        let mem = first.get("mem").and_then(Value::as_object).expect("mem");
        for (name, _) in MemStats::default().iter() {
            assert!(
                mem.iter().any(|(k, _)| *k == name),
                "missing mem counter {name}"
            );
        }
        // The aggregates carry real activity, not zeroed defaults.
        assert!(
            first
                .get("core")
                .and_then(|c| c.get("committed"))
                .and_then(Value::as_u64)
                .expect("committed")
                > 0
        );
    }

    #[test]
    fn run_and_reports_sections_appear_only_when_set() {
        let bare = StatsDump::new().to_value();
        assert!(bare.get("run").is_none());
        assert!(bare.get("reports").is_none());

        let mut report = crate::report::Report::new("T", vec!["c".into()]);
        report.push_row("r", vec![1.5]);
        let v = StatsDump::new()
            .with_run(3000, 42, &["fig7".to_string()])
            .with_reports(&[report])
            .to_value();
        assert_eq!(
            v.get("run")
                .and_then(|r| r.get("insts"))
                .and_then(Value::as_u64),
            Some(3000)
        );
        assert_eq!(
            v.get("run")
                .and_then(|r| r.get("experiments"))
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(1)
        );
        let reports = v.get("reports").and_then(Value::as_array).expect("reports");
        assert_eq!(reports[0].get("title").and_then(Value::as_str), Some("T"));
    }

    #[test]
    fn write_to_creates_parents_and_lands_atomically() {
        let dir =
            std::env::temp_dir().join(format!("hetcore-telemetry-write-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep/nested/stats.json");
        StatsDump::new()
            .with_run(100, 1, &[])
            .write_to(&path)
            .expect("write with missing parents");
        let text = std::fs::read_to_string(&path).expect("readable");
        let v: Value = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(
            v.get("run")
                .and_then(|r| r.get("insts"))
                .and_then(Value::as_u64),
            Some(100)
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn dump_json_round_trips_through_the_parser() {
        let campaign = tiny().cpu_campaign();
        let json = StatsDump::new()
            .with_cpu_campaign(&campaign)
            .with_runner("cpu", RunnerStats::default())
            .to_json();
        let v: Value = serde_json::from_str(&json).expect("valid JSON");
        assert!(v.get("runner").and_then(|r| r.get("cpu")).is_some());
    }

    #[test]
    fn runner_timing_lands_under_runner_timing_label() {
        let without = StatsDump::new()
            .with_runner("cpu", RunnerStats::default())
            .to_value();
        assert!(
            without
                .get("runner")
                .and_then(|r| r.get("timing"))
                .is_none(),
            "no timing section unless timing was recorded"
        );

        let mut timing = RunnerTiming::default();
        timing.simulate_us.record(250);
        let v = StatsDump::new()
            .with_runner("cpu", RunnerStats::default())
            .with_runner_timing("cpu", timing)
            .to_value();
        let sim = v
            .get("runner")
            .and_then(|r| r.get("timing"))
            .and_then(|t| t.get("cpu"))
            .and_then(|c| c.get("simulate_us"))
            .expect("runner.timing.cpu.simulate_us");
        assert_eq!(sim.get("count").and_then(Value::as_u64), Some(1));
        assert_eq!(sim.get("sum").and_then(Value::as_u64), Some(250));
    }
}
