//! The related-work baseline: a heterogeneous CMP of *whole* CMOS cores
//! and *whole* TFET cores with barrier-aware thread migration
//! (paper Section VIII, citing Swaminathan et al., ISLPED'11).
//!
//! Prior work places device heterogeneity *between* cores: some cores are
//! all-CMOS (fast, hungry), some all-TFET (slow, frugal), and threads
//! migrate between them. In barrier-synchronized programs the scheduler
//! rotates threads across the fast and slow cores within each barrier
//! interval so that all threads arrive at the barrier together — no core
//! idles, and every thread gets the same fast/slow time share.
//!
//! The paper states: "We performed an iso-area comparison with such
//! barrier-aware thread migration scheme. It can be shown that AdvHet
//! provides, on average, higher performance while consuming lower energy.
//! This is because the threads on the TFET cores slow down the program,
//! while the threads on the CMOS cores consume more power than in AdvHet."
//! This module reproduces that comparison.
//!
//! # Model
//!
//! Per-core behaviour comes from real simulations: a representative chunk
//! of the application runs on a BaseCMOS core and on a BaseTFET core,
//! yielding each core type's rate (instructions/second) and active power.
//! The barrier-aware rotation is then work-conserving: with `n_f` fast
//! cores of rate `r_f` and `n_s` slow cores of rate `r_s`, aggregate
//! throughput is `n_f*r_f + n_s*r_s` and every thread finishes each
//! interval simultaneously. Each rotation charges a migration penalty
//! (context transfer + cold-cache refill).

use hetsim_cpu::core::Core;
use hetsim_power::account::EnergyBreakdown;
use hetsim_trace::stream::TraceGenerator;
use hetsim_trace::WorkloadProfile;

use crate::config::CpuDesign;
use crate::experiment::{run_cpu_multicore, CpuOutcome};

/// Configuration of the migration CMP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationConfig {
    /// All-CMOS cores (2 GHz).
    pub cmos_cores: u32,
    /// All-TFET cores (1 GHz).
    pub tfet_cores: u32,
    /// Instructions between barriers (one migration opportunity each).
    pub interval_insts: u64,
    /// Cycles (at the CMOS clock) lost per thread per migration: context
    /// transfer plus cold-cache refill on the destination core.
    pub migration_penalty_cycles: u64,
}

impl Default for MigrationConfig {
    /// The iso-area counterpart of a 4-core AdvHet chip: TFET and CMOS
    /// cores have essentially equal area (Section III-F), so 2 + 2 cores
    /// match 4 AdvHet cores. AdvHet additionally pays its ~5% dual-rail
    /// area, so the migration CMP gets the slight area benefit — the
    /// conservative direction for a comparison AdvHet then wins.
    fn default() -> Self {
        MigrationConfig {
            cmos_cores: 2,
            tfet_cores: 2,
            interval_insts: 20_000,
            migration_penalty_cycles: 3_000,
        }
    }
}

/// Outcome of running an application on the migration CMP.
#[derive(Debug, Clone)]
pub struct MigrationOutcome {
    /// End-to-end execution time (s).
    pub seconds: f64,
    /// Chip energy.
    pub energy: EnergyBreakdown,
    /// Number of barrier intervals (and hence migrations per thread).
    pub intervals: u64,
}

impl MigrationOutcome {
    /// Energy-delay-squared product (J.s^2).
    pub fn ed2(&self) -> f64 {
        self.energy.ed2(self.seconds)
    }
}

/// Per-core-type characterization from a real chunk simulation.
struct CoreRate {
    /// Instructions per second.
    rate: f64,
    /// Active power (W).
    power_w: f64,
    /// Idle (leakage) power (W).
    idle_w: f64,
    /// Energy model scaled per second of activity (for the breakdown).
    energy_per_s: EnergyBreakdown,
}

fn characterize(design: CpuDesign, profile: &WorkloadProfile, seed: u64, chunk: u64) -> CoreRate {
    let mut core = Core::new(design.core_config(), 0);
    core.prewarm(0, profile.memory.working_set_bytes);
    let warmup = (chunk / 4).min(25_000);
    let r = core.run_warmed(TraceGenerator::new(profile, seed), warmup, chunk);
    let seconds = r.seconds();
    let model = design.energy_model();
    let energy = model.energy(&r.stats, &r.mem, seconds);
    let idle = model.idle_energy(1.0);
    let mut energy_per_s = energy;
    let scale = 1.0 / seconds;
    energy_per_s.core_dynamic_j *= scale;
    energy_per_s.core_leakage_j *= scale;
    energy_per_s.l2_dynamic_j *= scale;
    energy_per_s.l2_leakage_j *= scale;
    energy_per_s.l3_dynamic_j *= scale;
    energy_per_s.l3_leakage_j *= scale;
    energy_per_s.dram_j *= scale;
    CoreRate {
        rate: chunk as f64 / seconds,
        power_w: energy.total_j() / seconds,
        idle_w: idle.total_j(),
        energy_per_s,
    }
}

/// Runs `total_insts` of `profile` on the migration CMP.
///
/// # Example
///
/// ```
/// use hetcore::migration::{run_migration_cmp, MigrationConfig};
/// use hetsim_trace::apps;
///
/// let app = apps::profile("lu").expect("known app");
/// let out = run_migration_cmp(&MigrationConfig::default(), &app, 7, 60_000);
/// assert!(out.seconds > 0.0);
/// assert!(out.intervals > 0);
/// ```
///
/// # Panics
///
/// Panics if the configuration has no cores or the profile is invalid.
pub fn run_migration_cmp(
    cfg: &MigrationConfig,
    profile: &WorkloadProfile,
    seed: u64,
    total_insts: u64,
) -> MigrationOutcome {
    assert!(
        cfg.cmos_cores + cfg.tfet_cores > 0,
        "need at least one core"
    );
    profile.validate().expect("valid profile");

    let chunk = cfg.interval_insts.max(20_000);
    let fast = characterize(CpuDesign::BaseCmos, profile, seed, chunk);
    let slow = characterize(CpuDesign::BaseTfet, profile, seed, chunk);

    let n_f = f64::from(cfg.cmos_cores);
    let n_s = f64::from(cfg.tfet_cores);
    let threads = n_f + n_s;

    // Serial phase: runs on one CMOS core, everything else idles.
    let serial_insts = (total_insts as f64 * (1.0 - profile.parallel_fraction)).round();
    let parallel_insts = total_insts as f64 - serial_insts;
    let t_serial = serial_insts / fast.rate;

    // Parallel phase: barrier-aware rotation is work-conserving, so the
    // aggregate throughput is the sum of the cores' rates and all threads
    // finish together.
    let throughput = n_f * fast.rate + n_s * slow.rate;
    let mut t_parallel = parallel_insts / throughput;

    // Migration penalties: each thread migrates once per interval; the
    // penalty is paid in wall-clock at the CMOS clock.
    let per_thread = parallel_insts / threads;
    let intervals = (per_thread / cfg.interval_insts as f64).ceil().max(0.0) as u64;
    let penalty_s = intervals as f64 * cfg.migration_penalty_cycles as f64 / 2.0e9;
    t_parallel += penalty_s;

    // Energy: all cores are busy for the whole parallel phase (that is the
    // point of the rotation); during the serial phase the fast core is
    // active and the rest leak.
    let scale_bd = |bd: &EnergyBreakdown, s: f64| {
        let mut e = *bd;
        e.core_dynamic_j *= s;
        e.core_leakage_j *= s;
        e.l2_dynamic_j *= s;
        e.l2_leakage_j *= s;
        e.l3_dynamic_j *= s;
        e.l3_leakage_j *= s;
        e.dram_j *= s;
        e
    };
    let mut energy = EnergyBreakdown::default();
    // Serial: one fast core active; (n_f - 1) fast + n_s slow cores idle.
    energy.merge(&scale_bd(&fast.energy_per_s, t_serial));
    let idle_w = (n_f - 1.0) * fast.idle_w + n_s * slow.idle_w;
    energy.core_leakage_j += idle_w * t_serial;
    // Parallel: every core active at its characterized power.
    energy.merge(&scale_bd(&fast.energy_per_s, n_f * t_parallel));
    energy.merge(&scale_bd(&slow.energy_per_s, n_s * t_parallel));
    // Migration energy: charge the transferred state as extra L2 traffic —
    // folded, conservatively small, into core dynamic.
    energy.core_dynamic_j += intervals as f64 * threads * 0.5e-9 * fast.power_w;

    MigrationOutcome {
        seconds: t_serial + t_parallel,
        energy,
        intervals,
    }
}

/// The Section VIII iso-area comparison: a 4-core AdvHet chip vs. the
/// 2 CMOS + 2 TFET migration CMP on the same application.
pub fn iso_area_comparison(
    profile: &WorkloadProfile,
    seed: u64,
    total_insts: u64,
) -> (CpuOutcome, MigrationOutcome) {
    let advhet = run_cpu_multicore(CpuDesign::AdvHet, 4, profile, seed, total_insts);
    let migration = run_migration_cmp(&MigrationConfig::default(), profile, seed, total_insts);
    (advhet, migration)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_trace::apps;

    const N: u64 = 160_000;

    #[test]
    fn advhet_beats_migration_on_both_axes() {
        // The paper's Section VIII claim, on average across apps: AdvHet is
        // faster AND consumes less energy than the iso-area migration CMP.
        let mut adv_t = 0.0;
        let mut mig_t = 0.0;
        let mut adv_e = 0.0;
        let mut mig_e = 0.0;
        for app_name in ["lu", "fft", "barnes", "streamcluster"] {
            let app = apps::profile(app_name).expect("known app");
            let (adv, mig) = iso_area_comparison(&app, 11, N);
            adv_t += adv.seconds;
            mig_t += mig.seconds;
            adv_e += adv.energy.total_j();
            mig_e += mig.energy.total_j();
        }
        assert!(adv_t < mig_t, "AdvHet time {adv_t} vs migration {mig_t}");
        assert!(adv_e < mig_e, "AdvHet energy {adv_e} vs migration {mig_e}");
    }

    #[test]
    fn migration_cmp_sits_between_all_cmos_and_all_tfet_chips() {
        let app = apps::profile("fmm").expect("known app");
        let base = run_cpu_multicore(CpuDesign::BaseCmos, 4, &app, 5, N);
        let tfet = run_cpu_multicore(CpuDesign::BaseTfet, 4, &app, 5, N);
        let mig = run_migration_cmp(&MigrationConfig::default(), &app, 5, N);
        assert!(mig.seconds > base.seconds, "slower than an all-CMOS chip");
        assert!(mig.seconds < tfet.seconds, "faster than an all-TFET chip");
        assert!(
            mig.energy.total_j() < base.energy.total_j(),
            "cheaper than all-CMOS"
        );
        assert!(
            mig.energy.total_j() > tfet.energy.total_j(),
            "dearer than all-TFET"
        );
    }

    #[test]
    fn migration_penalty_costs_time() {
        let app = apps::profile("lu").expect("known app");
        let cheap = MigrationConfig {
            migration_penalty_cycles: 0,
            ..MigrationConfig::default()
        };
        let dear = MigrationConfig {
            migration_penalty_cycles: 50_000,
            ..MigrationConfig::default()
        };
        let a = run_migration_cmp(&cheap, &app, 5, N);
        let b = run_migration_cmp(&dear, &app, 5, N);
        assert!(b.seconds > a.seconds);
        assert_eq!(a.intervals, b.intervals);
    }

    #[test]
    fn more_fast_cores_shift_the_tradeoff() {
        let app = apps::profile("radix").expect("known app");
        let frugal = MigrationConfig {
            cmos_cores: 1,
            tfet_cores: 3,
            ..Default::default()
        };
        let hungry = MigrationConfig {
            cmos_cores: 3,
            tfet_cores: 1,
            ..Default::default()
        };
        let f = run_migration_cmp(&frugal, &app, 5, N);
        let h = run_migration_cmp(&hungry, &app, 5, N);
        assert!(h.seconds < f.seconds, "more CMOS cores run faster");
        assert!(
            h.energy.total_j() > f.energy.total_j(),
            "and burn more energy"
        );
    }
}
