//! Regenerates every table and figure of the paper's evaluation, and
//! gates reruns against pinned baselines.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] [--insts N] [--format table|json|csv] [--stats-out PATH]
//!       [--trace-out PATH] [--profile-out PATH] [--jobs N] [--cache-dir PATH]
//!       [--progress[=stderr|dashboard]]
//!       [table1|fig1..fig14|all|ext|ext-migration|ext-partrf|ext-sched]...
//! repro baseline DIR [--insts N] [--jobs N] [--cache-dir PATH] [TARGET]...
//! repro diff BASELINE.json CANDIDATE.json [--format F] [--rel-tol X]
//!       [--allow PREFIX]... [--allow-schema-change]
//! repro ci-gate --baseline DIR [--jobs N] [--cache-dir PATH] [--rel-tol X]
//! repro check [--fuzz N] [--seed S] [--insts N] [--format table|json]
//!       [--jobs N] [--cache-dir PATH] [--progress] [--trace-in PATH]
//! repro bench [--quick] [--insts N] [--seed S] [--warmup N] [--repeats N]
//!       [--jobs N] [--out BENCH.json] [--format table|json] [--trend]
//!       [--compare BASELINE.json [CANDIDATE.json]] [--rel-tol X | --ratchet]
//! repro profile [--quick] [--insts N] [--seed S] [--jobs N] [--shards N]
//!       [--format table|json|folded] [--out PATH] [--counters-out PATH]
//!       [EXPERIMENT]...
//! repro trace-export IN.jsonl OUT.json
//! ```
//!
//! With no experiment arguments, runs `all`. `--quick` shrinks the
//! instruction budget for fast smoke runs (CI); `--insts N` sets it
//! exactly (and wins over `--quick`); full runs use the default budget
//! of `Suite::default()`.
//!
//! `--format` picks the report rendering: `table` (default) prints the
//! paper-shaped text tables, `json` emits one JSON array of report
//! objects, `csv` emits one CSV block per report (full precision).
//! `--json` is a shorthand for `--format json`. Independently,
//! `--stats-out PATH` writes the run's complete counter telemetry —
//! every per-design pipeline/memory/GPU counter plus the runner's
//! execution stats — as JSON to `PATH` (see `hetcore::telemetry`),
//! atomically and creating missing parent directories.
//!
//! The three subcommands close the regression loop
//! (see `hetcore::regression`):
//!
//! * `baseline DIR` reruns the pinned targets (default: fig7 fig8
//!   fig14 ext) and writes one self-describing stats dump per target
//!   into `DIR`;
//! * `diff` compares two dumps and exits non-zero on any regression,
//!   naming the design, counter, delta and violated tolerance;
//! * `ci-gate` replays every baseline in a directory at its recorded
//!   configuration and diffs the fresh run against it — the CI job.
//!
//! `bench` is the pinned perf-measurement subsystem (see
//! `hetcore::bench` and `hetsim_bench`): it times a fixed menu of
//! campaign and microbench scenarios — fixed seeds, fixed budgets,
//! cache bypassed — and writes a schema-versioned `BENCH_*.json` dump
//! recording simulated-insts/sec per scenario with full repeat
//! statistics. `--compare` diffs two dumps with noise-aware relative
//! thresholds and exits non-zero on regression; `--ratchet` applies
//! the wide cross-machine CI tolerance the `bench-smoke` job gates on.
//!
//! `check` is the runtime-invariant and metamorphic-fuzz harness (see
//! `hetcore::check`): it reruns the fig7 + fig10 campaigns validating
//! every outcome and the serialized telemetry against the accounting
//! invariants, then runs `--fuzz N` seeded rounds of random workloads
//! asserting oracle-free metamorphic relations (work monotonicity,
//! runner split/merge invariance, DVFS directionality, GPU clock
//! invariance). Any violation is reported by name and fails the run.
//!
//! The campaigns run on the `hetsim-runner` engine: `--jobs N` sets the
//! worker-thread count (default: all available cores; output is
//! bit-identical for any `N`), `--cache-dir PATH` persists simulation
//! outcomes as content-addressed JSON so reruns are near-free, and
//! `--progress` narrates per-job completion and cache hits on stderr
//! (`--progress=dashboard` draws a live in-place dashboard on a TTY).
//!
//! Observability (see `hetsim_obs`): `--trace-out PATH` records every
//! job's phases (cache lookup, queue wait, simulate, cache write) plus
//! campaign/batch scopes as a JSONL span log; `trace-export` converts
//! that log to Chrome trace-event JSON for Perfetto; `check --trace-in`
//! re-validates a trace file's structure. Tracing only adds output —
//! reports on stdout are byte-identical with and without it.
//!
//! Cycle attribution (see `hetsim_obs::profile`): `profile` runs the
//! campaign experiments with top-down cycle attribution enabled —
//! every simulated cycle of every core/CU charged to one class
//! (retire, frontend, branch-redirect, rob-full, issue-bound,
//! mem-latency, idle-skipped) — and renders the per-design roll-up as
//! a table, the raw `hetsim-profile-v1` document (`--format json`), or
//! folded stacks for flamegraph tools (`--format folded`);
//! `--counters-out` additionally writes Perfetto counter tracks.
//! `--profile-out PATH` on a plain run opts the same attribution into
//! any campaign and writes the document to `PATH` (on `--shards` runs
//! the per-worker fragments are merged, like traces are stitched).
//! Like tracing it is strictly additive: headline stdout stays
//! byte-identical, and with profiling off the simulators skip all
//! histogram work.
//!
//! Arguments are validated up front: any unknown argument (or any flag
//! missing its value) fails the run before any experiment starts, no
//! matter where it appears on the command line.

use std::io::IsTerminal;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use hetcore::bench::{run_bench, BenchConfig};
use hetcore::campaign::traced_campaign;
use hetcore::check::{
    fuzz_round, perturbation_from_env, validate_cpu_outcome, validate_dump, validate_gpu_outcome,
};
use hetcore::explore::{explore, DesignSpace, ExploreConfig, DEFAULT_EXPLORE_INSTS};
use hetcore::regression::{diff_dumps, DiffPolicy, DumpDoc};
use hetcore::report::Report;
use hetcore::suite::{CpuCampaign, Experiment, Extension, GpuCampaign, Suite};
use hetcore::telemetry::StatsDump;
use hetsim_check::Checker;
use hetsim_obs::profile::collector;
use hetsim_obs::{
    chrome_trace, parse_jsonl, stitch_traces, validate_events, CycleProfile, MonotonicClock,
    TraceRecorder,
};
use hetsim_runner::{
    design_of, fragment_path, manifest_path, supervise, trace_path, write_atomic, DashboardSink,
    MultiSink, NullSink, ProgressEvent, ProgressSink, Runner, RunnerStats, ShardEventSink,
    ShardManifest, ShardPolicy, StderrSink, TraceEventSink, WorkerEvent, SHARD_SCHEMA,
};
use hetsim_stats::attribution::{self, CycleClass};
use serde::{Deserialize as _, Serialize as _};

/// How reports are rendered on stdout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    /// Paper-shaped text tables (the default).
    Table,
    /// One JSON array of report objects.
    Json,
    /// One CSV block per report.
    Csv,
}

fn parse_format(v: &str) -> Result<Format, String> {
    match v {
        "table" => Ok(Format::Table),
        "json" => Ok(Format::Json),
        "csv" => Ok(Format::Csv),
        other => Err(format!(
            "--format expects table, json or csv, got '{other}'"
        )),
    }
}

/// How a run narrates progress on stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Progress {
    /// No narration (the default).
    #[default]
    Quiet,
    /// One line per job (`--progress` / `--progress=stderr`).
    Stderr,
    /// The in-place live dashboard (`--progress=dashboard`); degrades
    /// to the line sink when stderr is not a terminal, so piped logs
    /// never contain ANSI control sequences.
    Dashboard,
}

/// Parses `--progress[=MODE]`: a bare `--progress` means `stderr`, and
/// the flag never consumes the next argument (so `--progress fig7`
/// keeps meaning "line progress, run fig7").
fn parse_progress(inline: Option<&str>) -> Result<Progress, String> {
    match inline {
        None | Some("stderr") => Ok(Progress::Stderr),
        Some("dashboard") => Ok(Progress::Dashboard),
        Some(other) => Err(format!(
            "--progress expects stderr or dashboard, got '{other}'"
        )),
    }
}

/// The progress sink for `mode` (+ a trace-event bridge when tracing),
/// honoring the dashboard's TTY degrade.
fn progress_sink(mode: Progress, recorder: Option<&Arc<TraceRecorder>>) -> Arc<dyn ProgressSink> {
    let mut sinks: Vec<Arc<dyn ProgressSink>> = Vec::new();
    match mode {
        Progress::Quiet => {}
        Progress::Stderr => sinks.push(Arc::new(StderrSink::new())),
        Progress::Dashboard => {
            if std::io::stderr().is_terminal() {
                let clock = match recorder {
                    Some(r) => r.clock(),
                    None => Arc::new(MonotonicClock::new()),
                };
                sinks.push(Arc::new(DashboardSink::new(clock)));
            } else {
                sinks.push(Arc::new(StderrSink::new()));
            }
        }
    }
    if let Some(recorder) = recorder {
        sinks.push(Arc::new(TraceEventSink::new(recorder.clone())));
    }
    match sinks.len() {
        0 => Arc::new(NullSink),
        1 => sinks.pop().expect("one sink"),
        _ => Arc::new(MultiSink::new(sinks)),
    }
}

fn usage() -> String {
    format!(
        "usage: repro [--quick] [--insts N] [--format table|json|csv] [--stats-out PATH] \
         [--trace-out PATH] [--profile-out PATH] [--jobs N] [--shards N] [--cache-dir PATH] \
         [--progress[=stderr|dashboard]] [EXPERIMENT]...\n\
         \x20      repro baseline DIR [--insts N] [--jobs N] [--cache-dir PATH] [TARGET]...\n\
         \x20      repro diff BASELINE.json CANDIDATE.json [--format F] [--rel-tol X] \
         [--allow PREFIX]... [--allow-schema-change]\n\
         \x20      repro ci-gate --baseline DIR [--jobs N] [--cache-dir PATH] [--rel-tol X]\n\
         \x20      repro check [--fuzz N] [--seed S] [--insts N] [--format table|json] \
         [--jobs N] [--cache-dir PATH] [--progress] [--trace-in PATH]\n\
         \x20      repro bench [--quick] [--insts N] [--seed S] [--warmup N] [--repeats N] \
         [--jobs N] [--out BENCH.json] [--format table|json] [--trend] \
         [--compare BASELINE.json [CANDIDATE.json]] [--rel-tol X | --ratchet]\n\
         \x20      repro profile [--quick] [--insts N] [--seed S] [--jobs N] [--shards N] \
         [--format table|json|folded] [--out PATH] [--counters-out PATH] [EXPERIMENT]...\n\
         \x20      repro explore [--space fig7] [--budget N] [--seed S] [--insts N] \
         [--jobs N] [--shards N] [--cache-dir PATH] [--sweep AXIS=V1,V2...]... \
         [--format table|json|csv] [--frontier-out PATH]\n\
         \x20      repro trace-export IN.jsonl [IN2.jsonl]... OUT.json\n\
         experiments: all, ext, {}\n\
         extensions:  {}",
        Experiment::ALL
            .iter()
            .map(|e| e.cli_name())
            .collect::<Vec<_>>()
            .join(", "),
        Extension::ALL
            .iter()
            .map(|e| e.cli_name())
            .collect::<Vec<_>>()
            .join(", "),
    )
}

/// Everything the default (run) command needs, parsed and validated as
/// a whole.
struct Options {
    suite: Suite,
    requested: Vec<Experiment>,
    extensions: Vec<Extension>,
    format: Format,
    stats_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    profile_out: Option<PathBuf>,
    jobs: usize,
    shards: Option<usize>,
    cache_dir: Option<PathBuf>,
    progress: Progress,
}

/// Parses the full argument list before running anything, collecting
/// *every* problem instead of stopping at the first: a typo'd
/// experiment name combined with valid flags is rejected identically
/// wherever it appears.
fn parse(args: &[String]) -> Result<Options, Vec<String>> {
    let mut suite = Suite::default();
    let mut requested = Vec::new();
    let mut extensions = Vec::new();
    let mut run_all = false;
    let mut format = Format::Table;
    let mut insts = None;
    let mut stats_out = None;
    let mut trace_out = None;
    let mut profile_out = None;
    let mut jobs = None;
    let mut shards = None;
    let mut cache_dir = None;
    let mut progress = Progress::Quiet;
    let mut errors = Vec::new();

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        // Flags taking a value accept both `--flag VALUE` and
        // `--flag=VALUE`.
        let (name, inline) = match arg.split_once('=') {
            Some((n, v)) if n.starts_with("--") => (n, Some(v.to_string())),
            _ => (arg, None),
        };
        let mut value = |errors: &mut Vec<String>| -> Option<String> {
            if let Some(v) = inline.clone() {
                return Some(v);
            }
            i += 1;
            match args.get(i) {
                Some(v) => Some(v.clone()),
                None => {
                    errors.push(format!("{name} requires a value"));
                    None
                }
            }
        };
        match name {
            "--quick" => suite.insts_per_app = 60_000,
            "--json" => format = Format::Json,
            "--format" => {
                if let Some(v) = value(&mut errors) {
                    match parse_format(&v) {
                        Ok(f) => format = f,
                        Err(e) => errors.push(e),
                    }
                }
            }
            "--insts" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<u64>() {
                        Ok(n) if n >= 1 => insts = Some(n),
                        _ => errors.push(format!("--insts expects an integer >= 1, got '{v}'")),
                    }
                }
            }
            "--stats-out" => {
                if let Some(v) = value(&mut errors) {
                    stats_out = Some(PathBuf::from(v));
                }
            }
            "--trace-out" => {
                if let Some(v) = value(&mut errors) {
                    trace_out = Some(PathBuf::from(v));
                }
            }
            "--profile-out" => {
                if let Some(v) = value(&mut errors) {
                    profile_out = Some(PathBuf::from(v));
                }
            }
            "--progress" => match parse_progress(inline.as_deref()) {
                Ok(p) => progress = p,
                Err(e) => errors.push(e),
            },
            "--jobs" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<usize>() {
                        Ok(n) if n >= 1 => jobs = Some(n),
                        _ => errors.push(format!("--jobs expects an integer >= 1, got '{v}'")),
                    }
                }
            }
            "--shards" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<usize>() {
                        Ok(n) if n >= 1 => shards = Some(n),
                        _ => errors.push(format!("--shards expects an integer >= 1, got '{v}'")),
                    }
                }
            }
            "--cache-dir" => {
                if let Some(v) = value(&mut errors) {
                    cache_dir = Some(PathBuf::from(v));
                }
            }
            "all" => run_all = true,
            "ext" => extensions.extend(Extension::ALL),
            other => match Experiment::from_cli_name(other) {
                Some(e) => requested.push(e),
                None => match Extension::from_cli_name(other) {
                    Some(e) => extensions.push(e),
                    None => errors.push(format!("unknown experiment '{other}'")),
                },
            },
        }
        i += 1;
    }

    if !errors.is_empty() {
        return Err(errors);
    }
    if (requested.is_empty() && extensions.is_empty()) || run_all {
        requested = Experiment::ALL.to_vec();
    }
    if let Some(n) = insts {
        // An explicit budget wins over --quick wherever it appears.
        suite.insts_per_app = n;
    }
    let jobs = jobs.unwrap_or_else(default_jobs);
    Ok(Options {
        suite,
        requested,
        extensions,
        format,
        stats_out,
        trace_out,
        profile_out,
        jobs,
        shards,
        cache_dir,
        progress,
    })
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Everything one run produces: the rendered reports plus the complete
/// telemetry dump (campaign counters, runner stats, reports, run
/// config), ready to print, persist or diff.
struct Execution {
    reports: Vec<Report>,
    dump: StatsDump,
    /// The raw campaigns behind the reports, kept so `repro check` can
    /// validate every individual outcome (unused by the other commands).
    cpu: Option<CpuCampaign>,
    gpu: Option<GpuCampaign>,
}

/// Runs `requested` + `extensions` on `suite` and collects the output.
/// This is the one execution path shared by the default command, the
/// baseline writer and the CI gate, so a replayed baseline is produced
/// by *exactly* the code a normal run uses.
fn execute(
    suite: &Suite,
    requested: &[Experiment],
    extensions: &[Extension],
    jobs: usize,
    cache_dir: &Option<PathBuf>,
    progress: Progress,
    recorder: Option<&Arc<TraceRecorder>>,
) -> Result<Execution, String> {
    let sink = progress_sink(progress, recorder);

    // Share campaigns across the figures that need them.
    let needs_cpu = requested.iter().any(|e| {
        matches!(
            e,
            Experiment::Fig7 | Experiment::Fig8 | Experiment::Fig9 | Experiment::Fig13
        )
    });
    let needs_gpu = requested
        .iter()
        .any(|e| matches!(e, Experiment::Fig10 | Experiment::Fig11 | Experiment::Fig12));

    // CPU and GPU campaigns share one cache directory: their key spaces
    // are separated by schema tags (see `hetcore::campaign`).
    fn with_cache<T>(dir: &Option<PathBuf>, runner: Runner<T>) -> std::io::Result<Runner<T>>
    where
        T: Clone + Send + serde::Serialize + serde::Deserialize + hetsim_runner::SimMetrics,
    {
        match dir {
            Some(d) => runner.with_cache_dir(d),
            None => Ok(runner),
        }
    }
    // Runners outlive their campaigns: their cumulative stats feed the
    // telemetry dump after the reports are rendered.
    fn traced<T>(recorder: Option<&Arc<TraceRecorder>>, runner: Runner<T>) -> Runner<T>
    where
        T: Clone + Send + serde::Serialize + serde::Deserialize + hetsim_runner::SimMetrics,
    {
        match recorder {
            Some(rec) => runner.with_recorder(rec.clone()),
            None => runner,
        }
    }
    let cpu_runner = needs_cpu
        .then(|| {
            with_cache(cache_dir, Runner::new(jobs))
                .map(|r| traced(recorder, r).with_sink(sink.clone()))
        })
        .transpose()
        .map_err(|e| format!("cannot open cache directory: {e}"))?;
    let gpu_runner = needs_gpu
        .then(|| {
            with_cache(cache_dir, Runner::new(jobs))
                .map(|r| traced(recorder, r).with_sink(sink.clone()))
        })
        .transpose()
        .map_err(|e| format!("cannot open cache directory: {e}"))?;
    // Zero the event-driven-step telemetry so the skip counters in this
    // dump cover exactly this execution (the atomics are process-global
    // and otherwise accumulate across runs in one process).
    hetsim_cpu::telemetry::reset();
    hetsim_gpu::telemetry::reset();
    let recorder_ref = recorder.map(Arc::as_ref);
    let cpu = cpu_runner.as_ref().map(|r| {
        eprintln!("running CPU campaign (11 chips x 14 applications, {jobs} worker(s))...");
        traced_campaign(recorder_ref, "cpu-campaign", || suite.cpu_campaign_with(r))
    });
    let gpu = gpu_runner.as_ref().map(|r| {
        eprintln!("running GPU campaign (5 designs x 20 kernels, {jobs} worker(s))...");
        traced_campaign(recorder_ref, "gpu-campaign", || suite.gpu_campaign_with(r))
    });

    let mut reports = Vec::new();
    for e in requested {
        let report = match e {
            Experiment::Table1 => suite.table1(),
            Experiment::Fig1 => suite.fig1(),
            Experiment::Fig2 => suite.fig2(),
            Experiment::Fig3 => suite.fig3(),
            Experiment::Fig7 => suite.fig7(cpu.as_ref().expect("campaign ran")),
            Experiment::Fig8 => suite.fig8(cpu.as_ref().expect("campaign ran")),
            Experiment::Fig9 => suite.fig9(cpu.as_ref().expect("campaign ran")),
            Experiment::Fig10 => suite.fig10(gpu.as_ref().expect("campaign ran")),
            Experiment::Fig11 => suite.fig11(gpu.as_ref().expect("campaign ran")),
            Experiment::Fig12 => suite.fig12(gpu.as_ref().expect("campaign ran")),
            Experiment::Fig13 => suite.fig13(cpu.as_ref().expect("campaign ran")),
            Experiment::Fig14 => suite.fig14(),
        };
        reports.push(report);
        if *e == Experiment::Fig8 {
            // The stacked-bar detail of Figure 8.
            reports.push(suite.fig8_breakdown(cpu.as_ref().expect("campaign ran")));
        }
    }
    for e in extensions {
        let report = match e {
            Extension::Migration => suite.ext_migration(),
            Extension::PartitionedRf => suite.ext_partitioned_rf(),
            Extension::Scheduling => suite.ext_scheduling(),
        };
        reports.push(report);
    }

    // The canonical experiment words: what `run.experiments` records
    // and what `ci-gate` replays. Derived the same way on record and
    // replay, so the words themselves always diff clean.
    let words: Vec<String> = requested
        .iter()
        .map(|e| e.cli_name().to_string())
        .chain(extensions.iter().map(|e| e.cli_name().to_string()))
        .collect();
    let mut dump = StatsDump::new().with_run(suite.insts_per_app, suite.seed, &words);
    if let Some(c) = &cpu {
        dump = dump.with_cpu_campaign(c);
    }
    if let Some(c) = &gpu {
        dump = dump.with_gpu_campaign(c);
    }
    if let Some(r) = &cpu_runner {
        // Fold the event-driven core's skip totals into the (already
        // regression-exempt) timing section.
        let mut timing = r.total_timing();
        timing.skipped_cycles = hetsim_cpu::telemetry::skipped_cycles();
        timing.wakeup_jumps = hetsim_cpu::telemetry::wakeup_jumps();
        dump = dump
            .with_runner("cpu", r.total_stats())
            .with_runner_timing("cpu", timing);
    }
    if let Some(r) = &gpu_runner {
        let mut timing = r.total_timing();
        timing.skipped_cycles = hetsim_gpu::telemetry::skipped_cycles();
        timing.wakeup_jumps = hetsim_gpu::telemetry::wakeup_jumps();
        dump = dump
            .with_runner("gpu", r.total_stats())
            .with_runner_timing("gpu", timing);
    }
    dump = dump.with_reports(&reports);
    let execution = Execution {
        reports,
        dump,
        cpu,
        gpu,
    };
    // With HETSIM_CHECK set, every command that executes experiments
    // (run, baseline, ci-gate) also validates the outcomes and the
    // serialized telemetry against the accounting invariants — a run
    // that is internally inconsistent fails even if no baseline exists
    // to diff it against. Pure counter arithmetic: no simulation cost.
    if hetsim_check::CheckConfig::from_env().enabled() {
        let mut checker = Checker::new();
        validate_execution(&execution, &mut checker);
        if !checker.is_clean() {
            for v in checker.violations() {
                eprintln!("{v}");
            }
            return Err(format!(
                "{} invariant violation(s) (HETSIM_CHECK)",
                checker.violations().len()
            ));
        }
    }
    Ok(execution)
}

/// Validates every campaign outcome and the serialized telemetry of one
/// execution (shared by the HETSIM_CHECK hook above and `repro check`,
/// which also counts the checks and injects perturbations).
fn validate_execution(execution: &Execution, checker: &mut Checker) {
    let mut max_cores = 1;
    let mut apps = 1;
    if let Some(campaign) = &execution.cpu {
        apps = campaign.outcomes.len() as u64;
        checker.scoped("campaign", |c| {
            for outcome in campaign.outcomes.iter().flatten() {
                max_cores = max_cores.max(outcome.cores);
                validate_cpu_outcome(outcome, c);
            }
        });
    }
    if let Some(campaign) = &execution.gpu {
        checker.scoped("campaign", |c| {
            for outcome in campaign.outcomes.iter().flatten() {
                validate_gpu_outcome(outcome, c);
            }
        });
    }
    validate_dump(
        &execution.dump.to_value(),
        apps,
        max_cores,
        perturbation_from_env().as_deref(),
        checker,
    );
}

fn print_reports(reports: &[Report], format: Format) -> Result<(), String> {
    match format {
        Format::Table => {
            for report in reports {
                println!("{report}");
            }
        }
        Format::Json => {
            let s = serde_json::to_string_pretty(&reports.to_vec())
                .map_err(|e| format!("failed to serialize reports: {e}"))?;
            println!("{s}");
        }
        Format::Csv => {
            for report in reports {
                println!("{}", report.to_csv());
            }
        }
    }
    Ok(())
}

fn fail(errors: &[String]) -> ExitCode {
    for e in errors {
        eprintln!("error: {e}");
    }
    eprintln!("{}", usage());
    ExitCode::FAILURE
}

/// The default command: run experiments, print reports, optionally
/// persist telemetry.
fn cmd_run(args: &[String]) -> ExitCode {
    let opts = match parse(args) {
        Ok(opts) => opts,
        Err(errors) => return fail(&errors),
    };
    if let Some(shards) = opts.shards {
        return cmd_run_sharded(opts, shards);
    }
    // The recorder exists only when a trace was requested; without it
    // the run takes exactly the untraced code path, so headline output
    // stays byte-identical. Attribution is the same shape of opt-in:
    // the process-global flag stays off (and the simulators skip all
    // histogram work) unless --profile-out asked for it.
    if opts.profile_out.is_some() {
        attribution::set_enabled(true);
    }
    let recorder = opts
        .trace_out
        .is_some()
        .then(|| Arc::new(TraceRecorder::new(Arc::new(MonotonicClock::new()))));
    let execution = match execute(
        &opts.suite,
        &opts.requested,
        &opts.extensions,
        opts.jobs,
        &opts.cache_dir,
        opts.progress,
        recorder.as_ref(),
    ) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Drained exactly once per run; with profiling off the collector
    // was never touched and stays empty.
    let profile = opts.profile_out.is_some().then(collector::take);
    let mut dump = execution.dump;
    if let Some(p) = &profile {
        dump = dump.with_profile(p.to_value());
    }
    if let Err(e) = print_reports(&execution.reports, opts.format) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    if let Some(path) = opts.stats_out {
        if let Err(e) = dump.write_to(&path) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote counter telemetry to {}", path.display());
    }
    if let (Some(path), Some(recorder)) = (&opts.trace_out, &recorder) {
        if let Err(e) = write_atomic(path, &recorder.to_jsonl()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wrote {} trace event(s) to {}",
            recorder.events().len(),
            path.display()
        );
    }
    if let (Some(path), Some(profile)) = (&opts.profile_out, &profile) {
        if let Err(e) = write_profile(path, profile) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Writes a `hetsim-profile-v1` document to `path`, narrating on
/// stderr. A warm-cache run legitimately yields an empty document
/// (cache replay skips simulation), so emptiness is reported, not
/// failed.
fn write_profile(path: &std::path::Path, profile: &CycleProfile) -> Result<(), String> {
    let json =
        serde_json::to_string_pretty(&profile.to_value()).expect("value trees always serialize");
    write_atomic(path, &json).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    eprintln!(
        "wrote cycle profile ({} unit(s)) to {}{}",
        profile.rows().len(),
        path.display(),
        if profile.is_empty() {
            " (empty: all jobs replayed from cache)"
        } else {
            ""
        }
    );
    Ok(())
}

// ---------------------------------------------------------------------
// Sharded execution (`--shards N`): the shard protocol's supervisor and
// worker sides. See `hetsim_runner::shard` for the process-independent
// pieces (partition, manifests, wire events, retry loop).
//
// The supervisor never moves outcome values through pipes. Workers
// execute their shard of the campaign against the *shared*
// content-addressed cache, commit a manifest, and exit; the supervisor
// then replays the whole campaign through the ordinary `execute()`
// path, where every job is answered from the warm cache. Because a
// cache hit is bit-identical to a fresh simulation and results merge by
// submission index, the headline stdout and stats dump are the ones a
// single-process run produces.
// ---------------------------------------------------------------------

/// Removes an ephemeral shard cache directory on scope exit (kept when
/// the user named the directory themselves).
struct EphemeralDir(Option<PathBuf>);

impl Drop for EphemeralDir {
    fn drop(&mut self) {
        if let Some(dir) = &self.0 {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// Whether this worker should crash mid-shard: `HETSIM_SHARD_FAIL=<I>`
/// kills shard `I` on its first attempt (retry heals it),
/// `HETSIM_SHARD_FAIL=<I>:always` kills every attempt (retries
/// exhaust). Fault injection for the chaos tests, same pattern as
/// `HETSIM_CHECK_PERTURB`.
fn shard_fail_requested(shard: usize, attempt: u64) -> bool {
    let Ok(spec) = std::env::var("HETSIM_SHARD_FAIL") else {
        return false;
    };
    let (target, always) = match spec.strip_suffix(":always") {
        Some(t) => (t, true),
        None => (spec.as_str(), false),
    };
    target.parse::<usize>() == Ok(shard) && (always || attempt == 0)
}

/// The experiments that drive job batches (the rest compute inline and
/// need no sharding).
fn campaign_needs(requested: &[Experiment]) -> (bool, bool) {
    let cpu = requested.iter().any(|e| {
        matches!(
            e,
            Experiment::Fig7 | Experiment::Fig8 | Experiment::Fig9 | Experiment::Fig13
        )
    });
    let gpu = requested
        .iter()
        .any(|e| matches!(e, Experiment::Fig10 | Experiment::Fig11 | Experiment::Fig12));
    (cpu, gpu)
}

/// The `--shards N` run command: warm the shared cache through N worker
/// processes, then produce the report through the ordinary path.
fn cmd_run_sharded(opts: Options, shards: usize) -> ExitCode {
    // Workers and supervisor communicate through one cache directory.
    // Without --cache-dir an ephemeral one lives for exactly this run.
    let (cache_dir, cleanup) = match &opts.cache_dir {
        Some(dir) => (dir.clone(), EphemeralDir(None)),
        None => {
            let dir = std::env::temp_dir().join(format!("hetsim-shard-run-{}", std::process::id()));
            (dir.clone(), EphemeralDir(Some(dir)))
        }
    };
    let out_dir = cache_dir.join("shards");
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("error: cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    if let Err(e) = run_sharded(
        &opts,
        shards,
        &cache_dir,
        &out_dir,
        opts.profile_out.is_some(),
    ) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }

    // The merge pass: the unchanged single-process path, answered
    // entirely from the warm cache, so stdout and the stats dump are
    // byte-for-byte what `--jobs` alone produces. Progress stays quiet
    // here — the shard phase already narrated the batch. Attribution
    // stays on here too: campaign jobs replay from cache (publishing
    // nothing), but the inline extension studies simulate in this
    // process and their rows merge with the worker fragments below.
    if opts.profile_out.is_some() {
        attribution::set_enabled(true);
    }
    let recorder = opts
        .trace_out
        .is_some()
        .then(|| Arc::new(TraceRecorder::new(Arc::new(MonotonicClock::new()))));
    let shared_cache = Some(cache_dir.clone());
    let execution = match execute(
        &opts.suite,
        &opts.requested,
        &opts.extensions,
        opts.jobs,
        &shared_cache,
        Progress::Quiet,
        recorder.as_ref(),
    ) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let profile = match opts.profile_out.is_some() {
        true => match merge_profile_fragments(&out_dir, shards) {
            Ok(mut merged) => {
                merged.merge(&collector::take());
                Some(merged)
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        false => None,
    };
    let mut dump = execution.dump;
    if let Some(p) = &profile {
        dump = dump.with_profile(p.to_value());
    }
    if let Err(e) = print_reports(&execution.reports, opts.format) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    if let Some(path) = &opts.stats_out {
        if let Err(e) = dump.write_to(path) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote counter telemetry to {}", path.display());
    }
    if let (Some(path), Some(recorder)) = (&opts.trace_out, &recorder) {
        // Per-worker trace logs plus the merge pass, stitched onto
        // disjoint track lanes.
        let mut inputs = Vec::new();
        for shard in 0..shards {
            let shard_trace = trace_path(&out_dir, shard);
            let text = match std::fs::read_to_string(&shard_trace) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", shard_trace.display());
                    return ExitCode::FAILURE;
                }
            };
            match parse_jsonl(&text) {
                Ok(events) => inputs.push(events),
                Err(e) => {
                    eprintln!("error: {}: {e}", shard_trace.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        inputs.push(recorder.events());
        let stitched = stitch_traces(inputs);
        let mut jsonl = String::new();
        for event in &stitched {
            jsonl.push_str(&serde_json::to_string(event).expect("value trees always serialize"));
            jsonl.push('\n');
        }
        if let Err(e) = write_atomic(path, &jsonl) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wrote {} trace event(s) to {} (stitched from {shards} worker(s) + merge pass)",
            stitched.len(),
            path.display()
        );
    }
    if let (Some(path), Some(profile)) = (&opts.profile_out, &profile) {
        if let Err(e) = write_profile(path, profile) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    drop(cleanup);
    ExitCode::SUCCESS
}

/// The per-shard cycle-profile fragment, next to the shard's manifest
/// and trace log.
fn profile_fragment_path(dir: &std::path::Path, shard: usize) -> PathBuf {
    dir.join(format!("profile-{shard}.json"))
}

/// Reads and merges every worker's profile fragment — the profile
/// analogue of stitching the per-worker trace logs.
fn merge_profile_fragments(
    out_dir: &std::path::Path,
    shards: usize,
) -> Result<CycleProfile, String> {
    let mut merged = CycleProfile::new();
    for shard in 0..shards {
        let path = profile_fragment_path(out_dir, shard);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let value: serde::value::Value =
            serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let fragment =
            CycleProfile::from_value(&value).map_err(|e| format!("{}: {e}", path.display()))?;
        merged.merge(&fragment);
    }
    Ok(merged)
}

/// The supervisor phase: spawn `shards` workers over the shared cache,
/// fan their progress into this process's sink, retry crashed shards,
/// and audit the merged manifests against the canonical job cover.
fn run_sharded(
    opts: &Options,
    shards: usize,
    cache_dir: &std::path::Path,
    out_dir: &std::path::Path,
    profile: bool,
) -> Result<(), String> {
    use serde::value::Value;
    use std::sync::atomic::{AtomicUsize, Ordering};

    let exe =
        std::env::current_exe().map_err(|e| format!("cannot locate the repro binary: {e}"))?;
    let (needs_cpu, needs_gpu) = campaign_needs(&opts.requested);

    // The canonical batch, enumerated exactly as workers enumerate it
    // (CPU campaign then GPU campaign, submission order), giving the
    // progress fan-in its label→index map and the audit its expected
    // key cover.
    let mut labels: Vec<String> = Vec::new();
    let mut expected: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    if needs_cpu {
        for job in opts.suite.cpu_campaign_jobs() {
            expected.insert(job.key.hex());
            labels.push(job.label);
        }
    }
    if needs_gpu {
        for job in opts.suite.gpu_campaign_jobs() {
            expected.insert(job.key.hex());
            labels.push(job.label);
        }
    }
    let total = labels.len();
    let words: Vec<String> = opts
        .requested
        .iter()
        .map(|e| e.cli_name().to_string())
        .collect();
    eprintln!("running sharded campaign ({total} job(s) across {shards} worker process(es))...");

    // One aggregate batch over all workers: columns in first-submission
    // design order, like the in-process runner announces them.
    let sink = progress_sink(opts.progress, None);
    let mut columns: Vec<(String, usize)> = Vec::new();
    for label in &labels {
        let design = design_of(label);
        match columns.iter_mut().find(|(name, _)| name == design) {
            Some((_, count)) => *count += 1,
            None => columns.push((design.to_string(), 1)),
        }
    }
    sink.event(&ProgressEvent::BatchStarted {
        total,
        workers: shards,
        columns,
    });
    let label_index: std::collections::HashMap<&str, usize> = labels
        .iter()
        .enumerate()
        .map(|(i, l)| (l.as_str(), i))
        .collect();
    let done = AtomicUsize::new(0);

    // Split the worker-thread budget across the worker processes so
    // `--shards N` does not oversubscribe the machine N-fold.
    let worker_jobs = opts.jobs.div_ceil(shards).max(1);
    let runs = supervise(
        shards,
        out_dir,
        &ShardPolicy::default(),
        &|shard, attempt| {
            let mut cmd = std::process::Command::new(&exe);
            cmd.arg("shard-worker")
                .arg("--shard")
                .arg(shard.to_string())
                .arg("--shards")
                .arg(shards.to_string())
                .arg("--attempt")
                .arg(attempt.to_string())
                .arg("--cache-dir")
                .arg(cache_dir)
                .arg("--out-dir")
                .arg(out_dir)
                .arg("--insts")
                .arg(opts.suite.insts_per_app.to_string())
                .arg("--seed")
                .arg(opts.suite.seed.to_string())
                .arg("--jobs")
                .arg(worker_jobs.to_string());
            if opts.trace_out.is_some() {
                cmd.arg("--trace");
            }
            if profile {
                cmd.arg("--profile");
            }
            cmd.args(&words);
            cmd
        },
        &|_shard, line| {
            let Some(event) = WorkerEvent::from_line(line) else {
                return;
            };
            let Some(&index) = label_index.get(event.label.as_str()) else {
                return;
            };
            let done_now = done.fetch_add(1, Ordering::SeqCst) + 1;
            sink.event(&ProgressEvent::JobFinished {
                index,
                label: event.label,
                provenance: event.provenance,
                done: done_now,
                total,
                counters: Vec::new(),
                sim_seconds: event.sim_seconds,
            });
        },
    )?;

    // Audit the cover: every canonical key claimed by exactly one
    // manifest. A mismatch means a worker and the supervisor disagree
    // about the partition — refusing to merge beats silently reporting
    // a half-run campaign.
    let mut claimed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for run in &runs {
        for key in &run.manifest.keys {
            if !claimed.insert(key.clone()) {
                return Err(format!(
                    "shard cover violation: key {key} claimed by more than one shard"
                ));
            }
        }
    }
    if claimed != expected {
        return Err(format!(
            "shard cover mismatch: workers claimed {} job(s), supervisor expected {}",
            claimed.len(),
            expected.len()
        ));
    }

    // Merge the per-shard StatsDump fragments' runner sections — value
    // trees folded leaf-wise, then parsed back into `RunnerStats` so
    // the batch summary goes through the same merge machinery an
    // in-process campaign uses.
    let fragments: Vec<Value> = runs
        .iter()
        .map(|run| {
            let path = fragment_path(out_dir, run.shard);
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))
        })
        .collect::<Result<_, String>>()?;
    let mut merged = RunnerStats::default();
    for section in ["cpu", "gpu"] {
        let parts: Vec<Value> = fragments
            .iter()
            .filter_map(|f| f.get("runner").and_then(|r| r.get(section)).cloned())
            .collect();
        if parts.is_empty() {
            continue;
        }
        let folded = hetsim_stats::merge_counter_fragments(&parts)?;
        let stats = RunnerStats::from_dump_value(&folded)
            .ok_or_else(|| format!("malformed runner.{section} section in shard fragments"))?;
        merged.merge(&stats);
    }
    sink.event(&ProgressEvent::BatchFinished { stats: merged });
    // The supervisor fans worker events into rate-limited sinks by
    // hand (no Runner in this process), so it settles them by hand too.
    sink.flush();
    Ok(())
}

/// The hidden worker subcommand the supervisor spawns: run this shard's
/// slice of the campaign into the shared cache, narrate wire events on
/// stdout, then commit fragment + manifest (manifest last — it is the
/// shard's commit record).
fn cmd_shard_worker(args: &[String]) -> ExitCode {
    // Invocations are machine-generated by the supervisor; parsing is
    // strict and failures are fatal without usage chatter.
    let mut shard = None;
    let mut shards = None;
    let mut attempt = 0u64;
    let mut cache_dir: Option<PathBuf> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut insts: Option<u64> = None;
    let mut seed: Option<u64> = None;
    let mut jobs = 1usize;
    let mut trace = false;
    let mut profile = false;
    let mut words: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let mut value = || -> Result<String, String> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| format!("{arg} requires a value"))
        };
        let step = (|| -> Result<(), String> {
            match arg {
                "--shard" => shard = Some(value()?.parse::<usize>().map_err(|e| e.to_string())?),
                "--shards" => shards = Some(value()?.parse::<usize>().map_err(|e| e.to_string())?),
                "--attempt" => attempt = value()?.parse::<u64>().map_err(|e| e.to_string())?,
                "--cache-dir" => cache_dir = Some(PathBuf::from(value()?)),
                "--out-dir" => out_dir = Some(PathBuf::from(value()?)),
                "--insts" => insts = Some(value()?.parse::<u64>().map_err(|e| e.to_string())?),
                "--seed" => seed = Some(value()?.parse::<u64>().map_err(|e| e.to_string())?),
                "--jobs" => jobs = value()?.parse::<usize>().map_err(|e| e.to_string())?,
                "--trace" => trace = true,
                "--profile" => profile = true,
                word if !word.starts_with("--") => words.push(word.to_string()),
                other => return Err(format!("unknown shard-worker flag '{other}'")),
            }
            Ok(())
        })();
        if let Err(e) = step {
            eprintln!("error: shard-worker: {e}");
            return ExitCode::FAILURE;
        }
        i += 1;
    }
    let (Some(shard), Some(shards), Some(cache_dir), Some(out_dir)) =
        (shard, shards, cache_dir, out_dir)
    else {
        eprintln!("error: shard-worker requires --shard, --shards, --cache-dir and --out-dir");
        return ExitCode::FAILURE;
    };
    let mut suite = Suite::default();
    if let Some(n) = insts {
        suite.insts_per_app = n;
    }
    if let Some(s) = seed {
        suite.seed = s;
    }
    let mut requested = Vec::new();
    for word in &words {
        match Experiment::from_cli_name(word) {
            Some(e) => requested.push(e),
            None => {
                eprintln!("error: shard-worker: unknown experiment '{word}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let (needs_cpu, needs_gpu) = campaign_needs(&requested);

    let sink: Arc<dyn ProgressSink> = Arc::new(ShardEventSink::stdout());
    let recorder = trace.then(|| Arc::new(TraceRecorder::new(Arc::new(MonotonicClock::new()))));
    if profile {
        attribution::set_enabled(true);
    }

    // This shard's slice of the canonical batch, by key — every worker
    // and the supervisor compute the same partition independently.
    let cpu_mine: Vec<_> = if needs_cpu {
        suite
            .cpu_campaign_jobs()
            .into_iter()
            .filter(|j| j.key.shard_of(shards) == shard)
            .collect()
    } else {
        Vec::new()
    };
    let gpu_mine: Vec<_> = if needs_gpu {
        suite
            .gpu_campaign_jobs()
            .into_iter()
            .filter(|j| j.key.shard_of(shards) == shard)
            .collect()
    } else {
        Vec::new()
    };
    let keys: Vec<String> = cpu_mine
        .iter()
        .map(|j| j.key.hex())
        .chain(gpu_mine.iter().map(|j| j.key.hex()))
        .collect();
    let total = keys.len();

    // Fault injection: crash after roughly half the shard's work, with
    // results of the completed half already committed to the shared
    // cache — exactly the mid-shard death the supervisor must survive.
    let fail_now = shard_fail_requested(shard, attempt);
    let mut budget = if fail_now { Some(total / 2) } else { None };

    let mut dump = StatsDump::new().with_run(suite.insts_per_app, suite.seed, &words);
    let mut executed = 0u64;
    if needs_cpu {
        let mut batch = cpu_mine;
        if let Some(b) = &mut budget {
            let take = (*b).min(batch.len());
            batch.truncate(take);
            *b -= take;
        }
        let runner = match Runner::new(jobs).with_cache_dir(&cache_dir) {
            Ok(r) => r.with_sink(sink.clone()),
            Err(e) => {
                eprintln!("error: shard {shard}: cannot open cache directory: {e}");
                return ExitCode::FAILURE;
            }
        };
        let runner = match &recorder {
            Some(rec) => runner.with_recorder(rec.clone()),
            None => runner,
        };
        runner.run(batch);
        executed += runner.total_stats().executed;
        dump = dump
            .with_runner("cpu", runner.total_stats())
            .with_runner_timing("cpu", runner.total_timing());
    }
    if needs_gpu {
        let mut batch = gpu_mine;
        if let Some(b) = &mut budget {
            let take = (*b).min(batch.len());
            batch.truncate(take);
            *b -= take;
        }
        let runner = match Runner::new(jobs).with_cache_dir(&cache_dir) {
            Ok(r) => r.with_sink(sink.clone()),
            Err(e) => {
                eprintln!("error: shard {shard}: cannot open cache directory: {e}");
                return ExitCode::FAILURE;
            }
        };
        let runner = match &recorder {
            Some(rec) => runner.with_recorder(rec.clone()),
            None => runner,
        };
        runner.run(batch);
        executed += runner.total_stats().executed;
        dump = dump
            .with_runner("gpu", runner.total_stats())
            .with_runner_timing("gpu", runner.total_timing());
    }
    if fail_now {
        // Die without a manifest: the half-done work stays in the
        // cache, the commit record does not exist, and the supervisor
        // must retry this shard.
        eprintln!("[shard {shard}] HETSIM_SHARD_FAIL: crashing mid-shard (attempt {attempt})");
        std::process::exit(3);
    }

    if let Some(rec) = &recorder {
        if let Err(e) = write_atomic(&trace_path(&out_dir, shard), &rec.to_jsonl()) {
            eprintln!("error: shard {shard}: cannot write trace: {e}");
            return ExitCode::FAILURE;
        }
    }
    if profile {
        // Only the simulated slice publishes rows; cache replays (a
        // healed retry re-covering a crashed attempt's work) publish
        // nothing, so the merged document undercounts exactly what was
        // never re-simulated. Best-effort by design — the supervisor's
        // diff policy exempts profile.* for the same reason.
        let doc = collector::take();
        let json =
            serde_json::to_string_pretty(&doc.to_value()).expect("value trees always serialize");
        if let Err(e) = write_atomic(&profile_fragment_path(&out_dir, shard), &json) {
            eprintln!("error: shard {shard}: cannot write profile fragment: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = dump.write_to(&fragment_path(&out_dir, shard)) {
        eprintln!("error: shard {shard}: cannot write stats fragment: {e}");
        return ExitCode::FAILURE;
    }
    let manifest = ShardManifest {
        schema: SHARD_SCHEMA.into(),
        shard: shard as u64,
        shards: shards as u64,
        attempt,
        jobs: total as u64,
        executed,
        keys,
    };
    if let Err(e) = manifest.write_to(&manifest_path(&out_dir, shard)) {
        eprintln!("error: shard {shard}: cannot write manifest: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// A baseline target: one CLI word, resolved to the experiments and
/// extensions it runs.
fn resolve_target(word: &str) -> Result<(Vec<Experiment>, Vec<Extension>), String> {
    if word == "ext" {
        return Ok((Vec::new(), Extension::ALL.to_vec()));
    }
    if let Some(e) = Experiment::from_cli_name(word) {
        return Ok((vec![e], Vec::new()));
    }
    if let Some(e) = Extension::from_cli_name(word) {
        return Ok((Vec::new(), vec![e]));
    }
    Err(format!("unknown experiment '{word}'"))
}

/// The targets `repro baseline` pins by default (and the CI gate
/// replays): the paper's headline CPU figures, the device-level
/// Figure 14, and the extension studies.
const DEFAULT_BASELINE_TARGETS: [&str; 4] = ["fig7", "fig8", "fig14", "ext"];

/// Instruction budget baselines are recorded at: small enough for CI,
/// matching the golden-test snapshots.
const DEFAULT_BASELINE_INSTS: u64 = 3_000;

/// `repro baseline DIR [TARGET]...` — write one pinned dump per target.
fn cmd_baseline(args: &[String]) -> ExitCode {
    let mut dir: Option<PathBuf> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut insts = DEFAULT_BASELINE_INSTS;
    let mut jobs = None;
    let mut cache_dir = None;
    let mut progress = Progress::Quiet;
    let mut errors = Vec::new();

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let (name, inline) = match arg.split_once('=') {
            Some((n, v)) if n.starts_with("--") => (n, Some(v.to_string())),
            _ => (arg, None),
        };
        let mut value = |errors: &mut Vec<String>| -> Option<String> {
            if let Some(v) = inline.clone() {
                return Some(v);
            }
            i += 1;
            match args.get(i) {
                Some(v) => Some(v.clone()),
                None => {
                    errors.push(format!("{name} requires a value"));
                    None
                }
            }
        };
        match name {
            "--insts" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<u64>() {
                        Ok(n) if n >= 1 => insts = n,
                        _ => errors.push(format!("--insts expects an integer >= 1, got '{v}'")),
                    }
                }
            }
            "--jobs" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<usize>() {
                        Ok(n) if n >= 1 => jobs = Some(n),
                        _ => errors.push(format!("--jobs expects an integer >= 1, got '{v}'")),
                    }
                }
            }
            "--cache-dir" => {
                if let Some(v) = value(&mut errors) {
                    cache_dir = Some(PathBuf::from(v));
                }
            }
            "--progress" => match parse_progress(inline.as_deref()) {
                Ok(p) => progress = p,
                Err(e) => errors.push(e),
            },
            other if other.starts_with("--") => {
                errors.push(format!("unknown flag '{other}'"));
            }
            positional => {
                if dir.is_none() {
                    dir = Some(PathBuf::from(positional));
                } else {
                    if let Err(e) = resolve_target(positional) {
                        errors.push(e);
                    }
                    targets.push(positional.to_string());
                }
            }
        }
        i += 1;
    }
    let Some(dir) = dir else {
        errors.push("baseline requires an output directory".to_string());
        return fail(&errors);
    };
    if !errors.is_empty() {
        return fail(&errors);
    }
    if targets.is_empty() {
        targets = DEFAULT_BASELINE_TARGETS
            .iter()
            .map(|t| t.to_string())
            .collect();
    }
    let jobs = jobs.unwrap_or_else(default_jobs);
    let suite = Suite {
        insts_per_app: insts,
        ..Suite::default()
    };

    for target in &targets {
        let (requested, extensions) = resolve_target(target).expect("validated above");
        let execution = match execute(
            &suite,
            &requested,
            &extensions,
            jobs,
            &cache_dir,
            progress,
            None,
        ) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let path = dir.join(format!("{target}.json"));
        if let Err(e) = execution.dump.write_to(&path) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote baseline {}", path.display());
    }
    ExitCode::SUCCESS
}

/// `repro diff BASELINE.json CANDIDATE.json` — compare two dumps, exit
/// non-zero on regression.
fn cmd_diff(args: &[String]) -> ExitCode {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut format = Format::Table;
    let mut policy = DiffPolicy::default();
    let mut errors = Vec::new();

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let (name, inline) = match arg.split_once('=') {
            Some((n, v)) if n.starts_with("--") => (n, Some(v.to_string())),
            _ => (arg, None),
        };
        let mut value = |errors: &mut Vec<String>| -> Option<String> {
            if let Some(v) = inline.clone() {
                return Some(v);
            }
            i += 1;
            match args.get(i) {
                Some(v) => Some(v.clone()),
                None => {
                    errors.push(format!("{name} requires a value"));
                    None
                }
            }
        };
        match name {
            "--format" => {
                if let Some(v) = value(&mut errors) {
                    match parse_format(&v) {
                        Ok(f) => format = f,
                        Err(e) => errors.push(e),
                    }
                }
            }
            "--rel-tol" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<f64>() {
                        Ok(t) if t >= 0.0 && t.is_finite() => policy.rel_tol = t,
                        _ => errors.push(format!("--rel-tol expects a number >= 0, got '{v}'")),
                    }
                }
            }
            "--allow" => {
                if let Some(v) = value(&mut errors) {
                    policy.allowed_counter_changes.push(v);
                }
            }
            "--allow-schema-change" => policy.allow_schema_change = true,
            other if other.starts_with("--") => errors.push(format!("unknown flag '{other}'")),
            positional => paths.push(PathBuf::from(positional)),
        }
        i += 1;
    }
    if paths.len() != 2 {
        errors.push(format!(
            "diff expects exactly two dump files, got {}",
            paths.len()
        ));
    }
    if !errors.is_empty() {
        return fail(&errors);
    }

    let (baseline, candidate) = (&paths[0], &paths[1]);
    let base_doc = match DumpDoc::load(baseline) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cand_doc = match DumpDoc::load(candidate) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = diff_dumps(&base_doc, &cand_doc, &policy);
    match format {
        Format::Table => print!("{}", report.to_table()),
        Format::Json => match serde_json::to_string_pretty(&report) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("failed to serialize diff: {e}");
                return ExitCode::FAILURE;
            }
        },
        Format::Csv => print!("{}", report.to_csv()),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `repro ci-gate --baseline DIR` — replay every baseline at its
/// recorded configuration and diff the fresh run against it.
fn cmd_ci_gate(args: &[String]) -> ExitCode {
    let mut baseline_dir: Option<PathBuf> = None;
    let mut jobs = None;
    let mut cache_dir = None;
    let mut progress = Progress::Quiet;
    let mut policy = DiffPolicy::default();
    let mut errors = Vec::new();

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let (name, inline) = match arg.split_once('=') {
            Some((n, v)) if n.starts_with("--") => (n, Some(v.to_string())),
            _ => (arg, None),
        };
        let mut value = |errors: &mut Vec<String>| -> Option<String> {
            if let Some(v) = inline.clone() {
                return Some(v);
            }
            i += 1;
            match args.get(i) {
                Some(v) => Some(v.clone()),
                None => {
                    errors.push(format!("{name} requires a value"));
                    None
                }
            }
        };
        match name {
            "--baseline" => {
                if let Some(v) = value(&mut errors) {
                    baseline_dir = Some(PathBuf::from(v));
                }
            }
            "--jobs" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<usize>() {
                        Ok(n) if n >= 1 => jobs = Some(n),
                        _ => errors.push(format!("--jobs expects an integer >= 1, got '{v}'")),
                    }
                }
            }
            "--cache-dir" => {
                if let Some(v) = value(&mut errors) {
                    cache_dir = Some(PathBuf::from(v));
                }
            }
            "--rel-tol" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<f64>() {
                        Ok(t) if t >= 0.0 && t.is_finite() => policy.rel_tol = t,
                        _ => errors.push(format!("--rel-tol expects a number >= 0, got '{v}'")),
                    }
                }
            }
            "--progress" => match parse_progress(inline.as_deref()) {
                Ok(p) => progress = p,
                Err(e) => errors.push(e),
            },
            other => errors.push(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    let Some(dir) = baseline_dir else {
        errors.push("ci-gate requires --baseline DIR".to_string());
        return fail(&errors);
    };
    if !errors.is_empty() {
        return fail(&errors);
    }
    let jobs = jobs.unwrap_or_else(default_jobs);

    let mut files: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
        Err(e) => {
            eprintln!(
                "error: cannot read baseline directory {}: {e}",
                dir.display()
            );
            return ExitCode::FAILURE;
        }
    };
    files.sort();
    if files.is_empty() {
        eprintln!(
            "error: no *.json baselines in {} (generate them with `repro baseline {}`)",
            dir.display(),
            dir.display()
        );
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    for file in &files {
        let name = file
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| file.display().to_string());
        let base_doc = match DumpDoc::load(file) {
            Ok(d) => d,
            Err(e) => {
                // The bench ratchet lives in the same directory but is
                // gated by `repro bench --ratchet`, not by replay.
                if load_bench_dump(file).is_ok() {
                    eprintln!("[ci-gate] {name}: bench dump, skipped (gated by `repro bench`)");
                    continue;
                }
                eprintln!("error: {e}");
                failed = true;
                continue;
            }
        };
        // Frontier dumps carry their own schema tag and replay through
        // the exploration engine instead of the campaign path.
        if base_doc.tags.iter().any(|(p, _)| p == "schema.explore") {
            match replay_frontier(file, &base_doc, jobs, &cache_dir, &policy) {
                Ok(report) => {
                    print!("[{name}] {}", report.to_table());
                    if !report.is_clean() {
                        failed = true;
                    }
                }
                Err(e) => {
                    eprintln!("error: {}: {e}", file.display());
                    failed = true;
                }
            }
            continue;
        }
        let Some(run) = &base_doc.run else {
            eprintln!(
                "error: {} has no `run` section; regenerate it with `repro baseline`",
                file.display()
            );
            failed = true;
            continue;
        };
        let mut requested = Vec::new();
        let mut extensions = Vec::new();
        let mut unknown = false;
        for word in &run.experiments {
            match resolve_target(word) {
                Ok((r, x)) => {
                    requested.extend(r);
                    extensions.extend(x);
                }
                Err(e) => {
                    eprintln!("error: {}: {e}", file.display());
                    unknown = true;
                }
            }
        }
        if unknown {
            failed = true;
            continue;
        }
        let suite = Suite {
            insts_per_app: run.insts,
            seed: run.seed,
        };
        eprintln!(
            "[ci-gate] {name}: replaying {} at --insts {}",
            run.experiments.join(" "),
            run.insts
        );
        let execution = match execute(
            &suite,
            &requested,
            &extensions,
            jobs,
            &cache_dir,
            progress,
            None,
        ) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
                continue;
            }
        };
        let cand_doc = match DumpDoc::parse(&execution.dump.to_json()) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: fresh run produced an unparsable dump: {e}");
                failed = true;
                continue;
            }
        };
        let report = diff_dumps(&base_doc, &cand_doc, &policy);
        print!("[{name}] {}", report.to_table());
        if !report.is_clean() {
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Replays the exploration a frontier baseline records (its `explore`
/// section names the space, budget, seed and insts) and diffs the fresh
/// dump against it under `policy`. The replay always runs the built-in
/// space — a baseline recorded under `--sweep` overrides diffs against
/// different `explore.axes.*` tags, which is exactly the "regenerate
/// the baseline" signal the gate exists to raise.
fn replay_frontier(
    file: &std::path::Path,
    base_doc: &DumpDoc,
    jobs: usize,
    cache_dir: &Option<PathBuf>,
    policy: &DiffPolicy,
) -> Result<hetcore::regression::DiffReport, String> {
    use serde::value::Value;
    let text =
        std::fs::read_to_string(file).map_err(|e| format!("cannot read the baseline: {e}"))?;
    let value: Value = serde_json::from_str(&text).map_err(|e| format!("not valid JSON: {e}"))?;
    let section = value
        .get("explore")
        .ok_or("frontier dump has no `explore` section; regenerate it with `repro explore`")?;
    let space_name = section
        .get("space")
        .and_then(Value::as_str)
        .ok_or("`explore` section has no `space` name")?;
    if space_name != "fig7" {
        return Err(format!("unknown design space '{space_name}'"));
    }
    let field = |name: &str| -> Result<u64, String> {
        section
            .get(name)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("`explore` section has no integer `{name}`"))
    };
    let cfg = ExploreConfig {
        budget: field("budget")? as usize,
        seed: field("seed")?,
        insts: field("insts")?,
        jobs,
        shards: 1,
        cache_dir: cache_dir.clone(),
        cache_bypass: false,
    };
    eprintln!(
        "[ci-gate] {}: replaying explore --budget {} --seed {} --insts {}",
        file.file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| file.display().to_string()),
        cfg.budget,
        cfg.seed,
        cfg.insts
    );
    let result = explore(&DesignSpace::fig7(), &cfg)?;
    let cand_doc = DumpDoc::parse(&result.to_json())
        .map_err(|e| format!("fresh exploration produced an unparsable dump: {e}"))?;
    Ok(diff_dumps(base_doc, &cand_doc, policy))
}

/// The experiments `repro check` sweeps in its invariant phase: the two
/// targets that exercise both campaign engines (CPU and GPU).
const CHECK_TARGETS: [Experiment; 2] = [Experiment::Fig7, Experiment::Fig10];

/// Instruction budget of each metamorphic fuzz round (each round runs
/// the sampled workload several times, so this stays small).
const FUZZ_ROUND_INSTS: u64 = 3_000;

/// `repro check --trace-in PATH` — validate a recorded trace file's
/// structure; exit non-zero on any malformed line or violated property.
fn check_trace(path: &PathBuf, format: Format) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let (events_seen, violations) = match parse_jsonl(&text) {
        Ok(events) => (events.len(), validate_events(&events)),
        // An unparsable file is itself the (single) finding.
        Err(e) => (0, vec![e]),
    };
    match format {
        Format::Table => {
            for v in &violations {
                println!("{v}");
            }
            println!(
                "repro check: trace {}: {events_seen} event(s), {} violation(s)",
                path.display(),
                violations.len()
            );
        }
        Format::Json | Format::Csv => {
            use serde::value::Value;
            let value = Value::Object(vec![
                ("trace".into(), Value::Str(path.display().to_string())),
                ("events".into(), Value::UInt(events_seen as u64)),
                (
                    "violations".into(),
                    Value::Array(violations.iter().map(|v| Value::Str(v.clone())).collect()),
                ),
            ]);
            match serde_json::to_string_pretty(&value) {
                Ok(s) => println!("{s}"),
                Err(e) => {
                    eprintln!("failed to serialize trace report: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `repro check [--fuzz N] [--seed S]` — run the invariant sweep over a
/// real campaign pass, then N metamorphic fuzz rounds; exit non-zero on
/// any violation. With `--trace-in PATH` it instead validates a trace
/// file recorded by `repro --trace-out` (span structure and
/// job-finished/span matching; see `hetsim_obs::validate_events`).
fn cmd_check(args: &[String]) -> ExitCode {
    let mut fuzz: Option<u64> = None;
    let mut seed: Option<u64> = None;
    let mut insts: Option<u64> = None;
    let mut trace_in: Option<PathBuf> = None;
    let mut format = Format::Table;
    let mut jobs = None;
    let mut cache_dir = None;
    let mut progress = Progress::Quiet;
    let mut errors = Vec::new();

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let (name, inline) = match arg.split_once('=') {
            Some((n, v)) if n.starts_with("--") => (n, Some(v.to_string())),
            _ => (arg, None),
        };
        let mut value = |errors: &mut Vec<String>| -> Option<String> {
            if let Some(v) = inline.clone() {
                return Some(v);
            }
            i += 1;
            match args.get(i) {
                Some(v) => Some(v.clone()),
                None => {
                    errors.push(format!("{name} requires a value"));
                    None
                }
            }
        };
        match name {
            "--fuzz" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<u64>() {
                        Ok(n) if n >= 1 => fuzz = Some(n),
                        _ => errors.push(format!("--fuzz expects an integer >= 1, got '{v}'")),
                    }
                }
            }
            "--seed" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<u64>() {
                        Ok(n) => seed = Some(n),
                        _ => errors.push(format!("--seed expects an integer, got '{v}'")),
                    }
                }
            }
            "--insts" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<u64>() {
                        Ok(n) if n >= 1 => insts = Some(n),
                        _ => errors.push(format!("--insts expects an integer >= 1, got '{v}'")),
                    }
                }
            }
            "--trace-in" => {
                if let Some(v) = value(&mut errors) {
                    trace_in = Some(PathBuf::from(v));
                }
            }
            "--format" => {
                if let Some(v) = value(&mut errors) {
                    match parse_format(&v) {
                        Ok(f) if f != Format::Csv => format = f,
                        Ok(_) => errors.push("check supports --format table or json".to_string()),
                        Err(e) => errors.push(e),
                    }
                }
            }
            "--jobs" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<usize>() {
                        Ok(n) if n >= 1 => jobs = Some(n),
                        _ => errors.push(format!("--jobs expects an integer >= 1, got '{v}'")),
                    }
                }
            }
            "--cache-dir" => {
                if let Some(v) = value(&mut errors) {
                    cache_dir = Some(PathBuf::from(v));
                }
            }
            "--progress" => match parse_progress(inline.as_deref()) {
                Ok(p) => progress = p,
                Err(e) => errors.push(e),
            },
            other => errors.push(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if let Some(path) = &trace_in {
        // Trace validation is a pure file check: the flags that shape
        // the campaign/fuzz phases have nothing to act on.
        if fuzz.is_some() || seed.is_some() || insts.is_some() {
            errors.push(
                "--trace-in validates an existing trace; it cannot be combined with \
                 --fuzz, --seed or --insts"
                    .to_string(),
            );
        }
        if !errors.is_empty() {
            return fail(&errors);
        }
        return check_trace(path, format);
    }
    if !errors.is_empty() {
        return fail(&errors);
    }
    let fuzz = fuzz.unwrap_or(8);
    let seed = seed.unwrap_or(42);
    let insts = insts.unwrap_or(DEFAULT_BASELINE_INSTS);
    let jobs = jobs.unwrap_or_else(default_jobs);
    let suite = Suite {
        insts_per_app: insts,
        ..Suite::default()
    };

    // Phase 1: run the real campaigns once and validate every outcome
    // plus the serialized telemetry (where HETSIM_CHECK_PERTURB can
    // inject a fault to prove the layer fires).
    eprintln!("[check] invariant sweep: fig7 + fig10 at --insts {insts}");
    let execution = match execute(
        &suite,
        &CHECK_TARGETS,
        &[],
        jobs,
        &cache_dir,
        progress,
        None,
    ) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut checker = Checker::new();
    validate_execution(&execution, &mut checker);

    // Phase 2: metamorphic fuzz rounds over random-but-legal workloads.
    eprintln!("[check] fuzzing {fuzz} round(s) from seed {seed}");
    for round in 0..fuzz {
        fuzz_round(seed.wrapping_add(round), FUZZ_ROUND_INSTS, &mut checker);
    }

    let checks = checker.checks_run();
    let violations = checker.into_violations();
    match format {
        Format::Table => {
            for v in &violations {
                println!("{v}");
            }
            println!(
                "repro check: {checks} checks, {} violation(s) ({fuzz} fuzz round(s), seed {seed})",
                violations.len()
            );
        }
        Format::Json | Format::Csv => {
            use serde::value::Value;
            let value = Value::Object(vec![
                ("checks_run".into(), Value::UInt(checks)),
                ("fuzz_rounds".into(), Value::UInt(fuzz)),
                ("seed".into(), Value::UInt(seed)),
                (
                    "violations".into(),
                    Value::Array(
                        violations
                            .iter()
                            .map(|v| {
                                Value::Object(vec![
                                    ("invariant".into(), Value::Str(v.invariant.to_string())),
                                    ("path".into(), Value::Str(v.path.clone())),
                                    ("expected".into(), Value::Str(v.expected.clone())),
                                    ("actual".into(), Value::Str(v.actual.clone())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]);
            match serde_json::to_string_pretty(&value) {
                Ok(s) => println!("{s}"),
                Err(e) => {
                    eprintln!("failed to serialize check report: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Renders a fresh bench run as a short stdout table (stderr already
/// narrated the per-scenario progress).
fn print_bench_table(dump: &hetsim_bench::BenchDump) {
    println!(
        "bench: {} scenario(s), --insts {}, seed {}, {} warmup + {} repeat(s){}",
        dump.scenarios.len(),
        dump.insts,
        dump.seed,
        dump.warmup,
        dump.repeats,
        if dump.quick { " (quick)" } else { "" }
    );
    println!(
        "{:<22} {:>12} {:>12} {:>14}  spread",
        "scenario", "insts", "median_us", "insts/sec"
    );
    for s in &dump.scenarios {
        println!(
            "{:<22} {:>12} {:>12} {:>14.0}  {:.3}{}",
            s.name,
            s.insts,
            s.wall_us,
            s.insts_per_sec,
            s.timing.rel_spread,
            if s.timing.noisy { " (noisy)" } else { "" }
        );
    }
}

/// Two dumps are ratchet-comparable only when they measured the same
/// pinned work: same profile, same budget, same seed. Host differences
/// are fine (that is what the tolerances absorb); workload differences
/// make the insts/sec ratio meaningless.
fn bench_comparable(
    base: &hetsim_bench::BenchDump,
    cand: &hetsim_bench::BenchDump,
) -> Result<(), String> {
    if base.quick != cand.quick || base.insts != cand.insts || base.seed != cand.seed {
        return Err(format!(
            "dumps measured different work (baseline: insts {} seed {} quick {}; \
             candidate: insts {} seed {} quick {}) — rerun with matching \
             --insts/--seed/--quick",
            base.insts, base.seed, base.quick, cand.insts, cand.seed, cand.quick
        ));
    }
    Ok(())
}

/// `repro bench --trend` — the perf trajectory across every pinned
/// `BENCH_*.json` dump in the current directory, ordered by the
/// numeric suffix (the PR sequence that pinned them). One row per
/// scenario, one column per dump, insts/sec throughout, and a final
/// latest/first ratio column.
fn cmd_bench_trend(format: Format) -> ExitCode {
    use serde::value::Value;

    let entries = match std::fs::read_dir(".") {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: cannot read the current directory: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut files: Vec<(u64, PathBuf)> = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(n) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            files.push((n, PathBuf::from(name)));
        }
    }
    files.sort();
    if files.is_empty() {
        eprintln!("error: no BENCH_*.json dumps in the current directory");
        return ExitCode::FAILURE;
    }
    let mut dumps: Vec<(String, hetsim_bench::BenchDump)> = Vec::new();
    for (_, path) in &files {
        match load_bench_dump(path) {
            Ok(d) => dumps.push((path.display().to_string(), d)),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Dumps pin the same workload across the sequence; if one diverged
    // (a budget change), the ratios still render but mean less.
    let uniform = dumps
        .windows(2)
        .all(|w| w[0].1.insts == w[1].1.insts && w[0].1.seed == w[1].1.seed);
    if !uniform {
        eprintln!(
            "warning: dumps measured different work (--insts/--seed differ); \
             ratios are indicative only"
        );
    }
    // Scenario rows in order of first appearance across the sequence.
    let mut scenarios: Vec<String> = Vec::new();
    for (_, dump) in &dumps {
        for s in &dump.scenarios {
            if !scenarios.contains(&s.name) {
                scenarios.push(s.name.clone());
            }
        }
    }
    let rate = |dump: &hetsim_bench::BenchDump, name: &str| {
        dump.scenarios
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.insts_per_sec)
    };

    if format == Format::Json {
        let doc = Value::Object(vec![
            ("schema".into(), Value::Str("hetsim-bench-trend-v1".into())),
            (
                "dumps".into(),
                Value::Array(
                    dumps
                        .iter()
                        .map(|(file, d)| {
                            Value::Object(vec![
                                ("file".into(), Value::Str(file.clone())),
                                ("insts".into(), Value::UInt(d.insts)),
                                ("seed".into(), Value::UInt(d.seed)),
                                (
                                    "scenarios".into(),
                                    Value::Object(
                                        d.scenarios
                                            .iter()
                                            .map(|s| {
                                                (s.name.clone(), Value::Float(s.insts_per_sec))
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        println!(
            "{}",
            serde_json::to_string_pretty(&doc).expect("value trees always serialize")
        );
        return ExitCode::SUCCESS;
    }

    println!(
        "bench trend: {} pinned dump(s) ({} .. {}), insts/sec",
        dumps.len(),
        dumps.first().expect("nonempty").0,
        dumps.last().expect("nonempty").0
    );
    print!("{:<22}", "scenario");
    for (file, _) in &dumps {
        print!(" {file:>14}");
    }
    println!(" {:>14}", "latest/first");
    for name in &scenarios {
        print!("{name:<22}");
        let mut first = None;
        let mut last = None;
        for (_, dump) in &dumps {
            match rate(dump, name) {
                Some(r) => {
                    first.get_or_insert(r);
                    last = Some(r);
                    print!(" {r:>14.0}");
                }
                None => print!(" {:>14}", "-"),
            }
        }
        match (first, last) {
            (Some(f), Some(l)) if f > 0.0 => println!(" {:>13.2}x", l / f),
            _ => println!(" {:>14}", "-"),
        }
    }
    ExitCode::SUCCESS
}

fn load_bench_dump(path: &PathBuf) -> Result<hetsim_bench::BenchDump, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    hetsim_bench::BenchDump::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// `repro bench` — measure the pinned scenario menu and write/compare
/// `BENCH_*.json` perf dumps (see `hetcore::bench`). Without
/// `--compare`, runs fresh and prints the per-scenario table (or the
/// dump itself with `--format json`). `--compare BASE.json` runs fresh
/// and diffs against the baseline; with a positional `CANDIDATE.json`
/// it diffs the two files without running anything. Exits non-zero
/// when any scenario regressed past the noise-aware tolerance.
fn cmd_bench(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut insts: Option<u64> = None;
    let mut seed: Option<u64> = None;
    let mut warmup: Option<u32> = None;
    let mut repeats: Option<u32> = None;
    let mut jobs: Option<usize> = None;
    let mut out: Option<PathBuf> = None;
    let mut compare_base: Option<PathBuf> = None;
    let mut candidate: Option<PathBuf> = None;
    let mut rel_tol: Option<f64> = None;
    let mut ratchet = false;
    let mut trend = false;
    let mut format = Format::Table;
    let mut errors = Vec::new();

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let (name, inline) = match arg.split_once('=') {
            Some((n, v)) if n.starts_with("--") => (n, Some(v.to_string())),
            _ => (arg, None),
        };
        let mut value = |errors: &mut Vec<String>| -> Option<String> {
            if let Some(v) = inline.clone() {
                return Some(v);
            }
            i += 1;
            match args.get(i) {
                Some(v) => Some(v.clone()),
                None => {
                    errors.push(format!("{name} requires a value"));
                    None
                }
            }
        };
        match name {
            "--quick" => quick = true,
            "--insts" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<u64>() {
                        Ok(n) if n >= 1 => insts = Some(n),
                        _ => errors.push(format!("--insts expects an integer >= 1, got '{v}'")),
                    }
                }
            }
            "--seed" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<u64>() {
                        Ok(n) => seed = Some(n),
                        _ => errors.push(format!("--seed expects an integer, got '{v}'")),
                    }
                }
            }
            "--warmup" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<u32>() {
                        Ok(n) => warmup = Some(n),
                        _ => errors.push(format!("--warmup expects an integer >= 0, got '{v}'")),
                    }
                }
            }
            "--repeats" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<u32>() {
                        Ok(n) if n >= 1 => repeats = Some(n),
                        _ => errors.push(format!("--repeats expects an integer >= 1, got '{v}'")),
                    }
                }
            }
            "--jobs" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<usize>() {
                        Ok(n) if n >= 1 => jobs = Some(n),
                        _ => errors.push(format!("--jobs expects an integer >= 1, got '{v}'")),
                    }
                }
            }
            "--out" => {
                if let Some(v) = value(&mut errors) {
                    out = Some(PathBuf::from(v));
                }
            }
            "--compare" => {
                if let Some(v) = value(&mut errors) {
                    compare_base = Some(PathBuf::from(v));
                }
            }
            "--rel-tol" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<f64>() {
                        Ok(t) if t >= 0.0 && t.is_finite() => rel_tol = Some(t),
                        _ => errors.push(format!("--rel-tol expects a number >= 0, got '{v}'")),
                    }
                }
            }
            "--ratchet" => ratchet = true,
            "--trend" => trend = true,
            "--format" => {
                if let Some(v) = value(&mut errors) {
                    match parse_format(&v) {
                        Ok(f) if f != Format::Csv => format = f,
                        Ok(_) => errors.push("bench supports --format table or json".to_string()),
                        Err(e) => errors.push(e),
                    }
                }
            }
            other if other.starts_with("--") => errors.push(format!("unknown flag '{other}'")),
            positional => {
                if candidate.is_none() {
                    candidate = Some(PathBuf::from(positional));
                } else {
                    errors.push(format!("unexpected argument '{positional}'"));
                }
            }
        }
        i += 1;
    }
    if candidate.is_some() && compare_base.is_none() {
        errors.push("a positional CANDIDATE.json requires --compare BASELINE.json".to_string());
    }
    if candidate.is_some() && (out.is_some() || insts.is_some() || quick) {
        errors.push(
            "comparing two existing dumps runs nothing; it cannot be combined with \
             --out, --insts or --quick"
                .to_string(),
        );
    }
    if ratchet && rel_tol.is_some() {
        errors.push(
            "--ratchet pins the CI tolerance; it cannot be combined with --rel-tol".to_string(),
        );
    }
    if trend
        && (quick
            || insts.is_some()
            || seed.is_some()
            || warmup.is_some()
            || repeats.is_some()
            || jobs.is_some()
            || out.is_some()
            || compare_base.is_some()
            || candidate.is_some()
            || rel_tol.is_some()
            || ratchet)
    {
        errors.push(
            "--trend reads the existing BENCH_*.json dumps and runs nothing; it cannot \
             be combined with measurement or comparison flags"
                .to_string(),
        );
    }
    if !errors.is_empty() {
        return fail(&errors);
    }
    if trend {
        return cmd_bench_trend(format);
    }

    let mut policy = hetsim_bench::ComparePolicy::default();
    if ratchet {
        policy = hetsim_bench::ComparePolicy::CI_RATCHET;
    }
    if let Some(t) = rel_tol {
        policy.rel_tol = t;
    }

    // Pure file diff: both dumps already exist.
    if let (Some(base_path), Some(cand_path)) = (&compare_base, &candidate) {
        let (base, cand) = match (load_bench_dump(base_path), load_bench_dump(cand_path)) {
            (Ok(b), Ok(c)) => (b, c),
            (b, c) => {
                for e in [b.err(), c.err()].into_iter().flatten() {
                    eprintln!("error: {e}");
                }
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = bench_comparable(&base, &cand) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        let report = hetsim_bench::compare(&base, &cand, &policy);
        print!("{}", report.render());
        return if report.passed() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    // Measure fresh.
    let mut cfg = if quick {
        BenchConfig::quick()
    } else {
        BenchConfig::default()
    };
    if let Some(n) = insts {
        // An explicit budget wins over --quick wherever it appears.
        cfg.insts = n;
    }
    if let Some(s) = seed {
        cfg.seed = s;
    }
    if let Some(w) = warmup {
        cfg.warmup = w;
    }
    if let Some(r) = repeats {
        cfg.repeats = r;
    }
    cfg.jobs = jobs.unwrap_or_else(default_jobs);
    let dump = run_bench(&cfg);

    if let Some(path) = &out {
        if let Err(e) = write_atomic(path, &dump.to_json()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote bench dump to {}", path.display());
    }

    if let Some(base_path) = &compare_base {
        let base = match load_bench_dump(base_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = bench_comparable(&base, &dump) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        let report = hetsim_bench::compare(&base, &dump, &policy);
        print!("{}", report.render());
        return if report.passed() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    match format {
        Format::Table => print_bench_table(&dump),
        Format::Json | Format::Csv => print!("{}", dump.to_json()),
    }
    ExitCode::SUCCESS
}

/// `repro explore` — design-space exploration over the fig7 grid: a
/// budget-capped Pareto-frontier search (see `hetcore::explore`).
/// Prints the frontier in the requested format; `--frontier-out PATH`
/// additionally writes the full frontier dump (unless `--format json`,
/// which already prints that dump on stdout).
fn cmd_explore(args: &[String]) -> ExitCode {
    let mut space = DesignSpace::fig7();
    let mut budget: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut insts: Option<u64> = None;
    let mut jobs: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut format = Format::Table;
    let mut format_set = false;
    let mut frontier_out: Option<PathBuf> = None;
    let mut errors = Vec::new();

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let (name, inline) = match arg.split_once('=') {
            Some((n, v)) if n.starts_with("--") => (n, Some(v.to_string())),
            _ => (arg, None),
        };
        let mut value = |errors: &mut Vec<String>| -> Option<String> {
            if let Some(v) = inline.clone() {
                return Some(v);
            }
            i += 1;
            match args.get(i) {
                Some(v) => Some(v.clone()),
                None => {
                    errors.push(format!("{name} requires a value"));
                    None
                }
            }
        };
        match name {
            "--space" => {
                if let Some(v) = value(&mut errors) {
                    if v != "fig7" {
                        errors.push(format!("--space expects fig7, got '{v}'"));
                    }
                }
            }
            "--budget" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<usize>() {
                        Ok(n) if n >= 1 => budget = Some(n),
                        _ => errors.push(format!("--budget expects an integer >= 1, got '{v}'")),
                    }
                }
            }
            "--seed" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<u64>() {
                        Ok(n) => seed = Some(n),
                        _ => errors.push(format!("--seed expects an integer, got '{v}'")),
                    }
                }
            }
            "--insts" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<u64>() {
                        Ok(n) if n >= 1 => insts = Some(n),
                        _ => errors.push(format!("--insts expects an integer >= 1, got '{v}'")),
                    }
                }
            }
            "--jobs" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<usize>() {
                        Ok(n) if n >= 1 => jobs = Some(n),
                        _ => errors.push(format!("--jobs expects an integer >= 1, got '{v}'")),
                    }
                }
            }
            "--shards" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<usize>() {
                        Ok(n) if n >= 1 => shards = Some(n),
                        _ => errors.push(format!("--shards expects an integer >= 1, got '{v}'")),
                    }
                }
            }
            "--cache-dir" => {
                if let Some(v) = value(&mut errors) {
                    cache_dir = Some(PathBuf::from(v));
                }
            }
            "--sweep" => {
                if let Some(v) = value(&mut errors) {
                    if let Err(e) = space.apply_sweep(&v) {
                        errors.push(e);
                    }
                }
            }
            "--format" => {
                if let Some(v) = value(&mut errors) {
                    match parse_format(&v) {
                        Ok(f) => {
                            format = f;
                            format_set = true;
                        }
                        Err(e) => errors.push(e),
                    }
                }
            }
            "--frontier-out" => {
                if let Some(v) = value(&mut errors) {
                    frontier_out = Some(PathBuf::from(v));
                }
            }
            other => errors.push(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if format_set && format == Format::Json && frontier_out.is_some() {
        errors.push(
            "--format json writes the frontier dump to stdout; it cannot be combined with \
             --frontier-out (pick one destination)"
                .to_string(),
        );
    }
    // Cross-axis constraints (DVFS reachability, ROB vs. issue width)
    // are validated with the sweeps applied, before anything runs.
    if let Err(e) = space.validate() {
        errors.push(e);
    }
    if !errors.is_empty() {
        return fail(&errors);
    }

    let cfg = ExploreConfig {
        budget: budget.unwrap_or(hetcore::explore::DEFAULT_BUDGET),
        seed: seed.unwrap_or(42),
        insts: insts.unwrap_or(DEFAULT_EXPLORE_INSTS),
        jobs: jobs.unwrap_or_else(default_jobs),
        shards: shards.unwrap_or(1),
        cache_dir,
        cache_bypass: false,
    };
    let result = match explore(&space, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &frontier_out {
        if let Err(e) = result.write_to(path) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote frontier dump to {}", path.display());
    }
    match format {
        Format::Table => print!("{}", result.frontier_report()),
        Format::Csv => print!("{}", result.frontier_report().to_csv()),
        Format::Json => println!("{}", result.to_json()),
    }
    ExitCode::SUCCESS
}

/// How `repro profile` renders the attribution document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum ProfileFormat {
    /// The per-design roll-up table (the default).
    #[default]
    Table,
    /// The raw `hetsim-profile-v1` document.
    Json,
    /// Folded stacks (`design;unit;class count`) for flamegraph tools.
    Folded,
}

/// The per-design roll-up: units merged per `(design, unit kind)` —
/// `core` and `cu` stay separate rows because CPU chips and GPU
/// designs share names — with total attributed cycles and each
/// top-down class as a percentage of them.
fn render_profile_table(profile: &CycleProfile, insts: u64, seed: u64) -> String {
    use std::fmt::Write as _;
    let kind_of = |unit: &str| {
        unit.trim_end_matches(|c: char| c.is_ascii_digit())
            .to_string()
    };
    let mut groups: Vec<(
        String,
        String,
        u64,
        u64,
        hetsim_stats::attribution::ClassCounts,
    )> = Vec::new();
    for row in profile.rows() {
        let kind = kind_of(&row.unit);
        match groups
            .iter_mut()
            .find(|(d, k, ..)| d == &row.design && k == &kind)
        {
            Some((_, _, units, cycles, classes)) => {
                *units += 1;
                *cycles += row.cycles;
                classes.merge(&row.classes);
            }
            None => groups.push((row.design.clone(), kind, 1, row.cycles, row.classes)),
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile: {} unit(s) across {} design row(s), --insts {insts}, seed {seed}",
        profile.rows().len(),
        groups.len()
    );
    let _ = write!(
        out,
        "{:<12} {:<5} {:>5} {:>14}",
        "design", "unit", "n", "cycles"
    );
    for class in CycleClass::ALL {
        let _ = write!(out, " {:>15}", class.name());
    }
    out.push('\n');
    for (design, kind, units, cycles, classes) in &groups {
        let _ = write!(out, "{design:<12} {kind:<5} {units:>5} {cycles:>14}");
        for class in CycleClass::ALL {
            let pct = if *cycles > 0 {
                100.0 * classes.get(class) as f64 / *cycles as f64
            } else {
                0.0
            };
            let _ = write!(out, " {:>14.1}%", pct);
        }
        out.push('\n');
    }
    out
}

/// `repro profile` — run campaign experiments (default: fig7 + fig10,
/// the CPU and GPU campaigns) with top-down cycle attribution enabled
/// and render the per-design roll-up, the raw document, or folded
/// stacks. The cache is never consulted, so every job simulates and
/// the document covers the whole campaign; with `--shards N` the
/// workers simulate and their fragments merge, exactly like sharded
/// trace logs stitch.
fn cmd_profile(args: &[String]) -> ExitCode {
    let mut suite = Suite::default();
    let mut quick = false;
    let mut insts: Option<u64> = None;
    let mut seed: Option<u64> = None;
    let mut jobs: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut format = ProfileFormat::default();
    let mut out: Option<PathBuf> = None;
    let mut counters_out: Option<PathBuf> = None;
    let mut requested: Vec<Experiment> = Vec::new();
    let mut errors = Vec::new();

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let (name, inline) = match arg.split_once('=') {
            Some((n, v)) if n.starts_with("--") => (n, Some(v.to_string())),
            _ => (arg, None),
        };
        let mut value = |errors: &mut Vec<String>| -> Option<String> {
            if let Some(v) = inline.clone() {
                return Some(v);
            }
            i += 1;
            match args.get(i) {
                Some(v) => Some(v.clone()),
                None => {
                    errors.push(format!("{name} requires a value"));
                    None
                }
            }
        };
        match name {
            "--quick" => quick = true,
            "--insts" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<u64>() {
                        Ok(n) if n >= 1 => insts = Some(n),
                        _ => errors.push(format!("--insts expects an integer >= 1, got '{v}'")),
                    }
                }
            }
            "--seed" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<u64>() {
                        Ok(n) => seed = Some(n),
                        _ => errors.push(format!("--seed expects an integer, got '{v}'")),
                    }
                }
            }
            "--jobs" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<usize>() {
                        Ok(n) if n >= 1 => jobs = Some(n),
                        _ => errors.push(format!("--jobs expects an integer >= 1, got '{v}'")),
                    }
                }
            }
            "--shards" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<usize>() {
                        Ok(n) if n >= 1 => shards = Some(n),
                        _ => errors.push(format!("--shards expects an integer >= 1, got '{v}'")),
                    }
                }
            }
            "--format" => {
                if let Some(v) = value(&mut errors) {
                    match v.as_str() {
                        "table" => format = ProfileFormat::Table,
                        "json" => format = ProfileFormat::Json,
                        "folded" => format = ProfileFormat::Folded,
                        other => errors.push(format!(
                            "--format expects table, json or folded, got '{other}'"
                        )),
                    }
                }
            }
            "--out" => {
                if let Some(v) = value(&mut errors) {
                    out = Some(PathBuf::from(v));
                }
            }
            "--counters-out" => {
                if let Some(v) = value(&mut errors) {
                    counters_out = Some(PathBuf::from(v));
                }
            }
            other if other.starts_with("--") => errors.push(format!("unknown flag '{other}'")),
            word => match Experiment::from_cli_name(word) {
                Some(e) => requested.push(e),
                None => errors.push(format!("unknown experiment '{word}'")),
            },
        }
        i += 1;
    }
    if !errors.is_empty() {
        return fail(&errors);
    }
    if quick {
        suite.insts_per_app = 60_000;
    }
    if let Some(n) = insts {
        // An explicit budget wins over --quick wherever it appears.
        suite.insts_per_app = n;
    }
    if let Some(s) = seed {
        suite.seed = s;
    }
    if requested.is_empty() {
        requested = vec![Experiment::Fig7, Experiment::Fig10];
    }
    let jobs = jobs.unwrap_or_else(default_jobs);
    let (table_insts, table_seed) = (suite.insts_per_app, suite.seed);

    attribution::set_enabled(true);
    let profile = match shards {
        Some(n) => {
            // The sharded path: workers simulate the cold shared cache
            // and write per-shard fragments; no merge pass is needed —
            // the fragments *are* the result.
            let opts = Options {
                suite,
                requested,
                extensions: Vec::new(),
                format: Format::Table,
                stats_out: None,
                trace_out: None,
                profile_out: None,
                jobs,
                shards: Some(n),
                cache_dir: None,
                progress: Progress::Quiet,
            };
            let cache_dir =
                std::env::temp_dir().join(format!("hetsim-profile-run-{}", std::process::id()));
            let cleanup = EphemeralDir(Some(cache_dir.clone()));
            let out_dir = cache_dir.join("shards");
            if let Err(e) = std::fs::create_dir_all(&out_dir) {
                eprintln!("error: cannot create {}: {e}", out_dir.display());
                return ExitCode::FAILURE;
            }
            let result = run_sharded(&opts, n, &cache_dir, &out_dir, true)
                .and_then(|()| merge_profile_fragments(&out_dir, n));
            drop(cleanup);
            match result {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => {
            // No cache directory: every job simulates, so the document
            // covers the whole campaign (a warm cache would replay
            // jobs without attributing anything).
            if let Err(e) = execute(&suite, &requested, &[], jobs, &None, Progress::Quiet, None) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
            collector::take()
        }
    };

    if let Some(path) = &counters_out {
        let json = serde_json::to_string_pretty(&profile.counter_track_doc())
            .expect("value trees always serialize");
        if let Err(e) = write_atomic(path, &json) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wrote Perfetto counter tracks to {} — load in Perfetto or chrome://tracing",
            path.display()
        );
    }
    let rendered = match format {
        ProfileFormat::Table => render_profile_table(&profile, table_insts, table_seed),
        ProfileFormat::Json => {
            let mut s = serde_json::to_string_pretty(&profile.to_value())
                .expect("value trees always serialize");
            s.push('\n');
            s
        }
        ProfileFormat::Folded => profile.folded(),
    };
    match &out {
        Some(path) => {
            if let Err(e) = write_atomic(path, &rendered) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote cycle profile ({} unit(s)) to {}",
                profile.rows().len(),
                path.display()
            );
        }
        None => print!("{rendered}"),
    }
    ExitCode::SUCCESS
}

/// `repro trace-export IN.jsonl OUT.json` — convert a recorded JSONL
/// trace into Chrome trace-event JSON, loadable in Perfetto
/// (<https://ui.perfetto.dev>) or `chrome://tracing`.
fn cmd_trace_export(args: &[String]) -> ExitCode {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut errors = Vec::new();
    for arg in args {
        if arg.starts_with("--") {
            errors.push(format!("unknown flag '{arg}'"));
        } else {
            paths.push(PathBuf::from(arg));
        }
    }
    if paths.len() < 2 {
        errors.push(format!(
            "trace-export expects IN.jsonl [IN2.jsonl]... and OUT.json, got {} path(s)",
            paths.len()
        ));
    }
    if !errors.is_empty() {
        return fail(&errors);
    }
    let output = paths.last().expect("length checked").clone();
    // Multiple inputs (per-worker traces of a sharded run) stitch onto
    // disjoint track lanes before export; one input passes through
    // untouched.
    let mut inputs = Vec::new();
    for input in &paths[..paths.len() - 1] {
        let text = match std::fs::read_to_string(input) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", input.display());
                return ExitCode::FAILURE;
            }
        };
        match parse_jsonl(&text) {
            Ok(events) => inputs.push(events),
            Err(e) => {
                eprintln!("error: {}: {e}", input.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let events = stitch_traces(inputs);
    let chrome = chrome_trace(&events);
    let json = match serde_json::to_string_pretty(&chrome) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: failed to serialize Chrome trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = write_atomic(&output, &json) {
        eprintln!("error: cannot write {}: {e}", output.display());
        return ExitCode::FAILURE;
    }
    eprintln!(
        "wrote Chrome trace ({} event(s)) to {} — load it in Perfetto or chrome://tracing",
        events.len(),
        output.display()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("diff") => cmd_diff(&args[1..]),
        Some("baseline") => cmd_baseline(&args[1..]),
        Some("ci-gate") => cmd_ci_gate(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("explore") => cmd_explore(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("trace-export") => cmd_trace_export(&args[1..]),
        // Hidden: the worker half of `--shards` (see `cmd_shard_worker`).
        Some("shard-worker") => cmd_shard_worker(&args[1..]),
        _ => cmd_run(&args),
    }
}
