//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] [--json] [table1|fig1..fig14|all|ext|ext-migration|ext-partrf|ext-sched]...
//! ```
//!
//! With no experiment arguments, runs `all`. `--quick` shrinks the
//! instruction budget for fast smoke runs (CI); full runs use the default
//! budget of `Suite::default()`. `--json` emits machine-readable reports
//! (one JSON array of report objects) instead of text tables.

use std::process::ExitCode;

use hetcore::suite::{Experiment, Extension, Suite};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut suite = Suite::default();
    let mut requested: Vec<Experiment> = Vec::new();
    let mut extensions: Vec<Extension> = Vec::new();
    let mut run_all = false;
    let mut json = false;

    for arg in &args {
        match arg.as_str() {
            "--quick" => suite.insts_per_app = 60_000,
            "--json" => json = true,
            "all" => run_all = true,
            "ext" => extensions.extend(Extension::ALL),
            other => match Experiment::from_cli_name(other) {
                Some(e) => requested.push(e),
                None if Extension::from_cli_name(other).is_some() => {
                    extensions.push(Extension::from_cli_name(other).expect("checked"));
                }
                None => {
                    eprintln!("unknown experiment '{other}'");
                    eprintln!(
                        "expected: --quick, all, or one of {}",
                        Experiment::ALL
                            .iter()
                            .map(|e| e.cli_name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    if (requested.is_empty() && extensions.is_empty()) || run_all {
        requested = Experiment::ALL.to_vec();
    }

    // Share campaigns across the figures that need them.
    let needs_cpu = requested.iter().any(|e| {
        matches!(e, Experiment::Fig7 | Experiment::Fig8 | Experiment::Fig9 | Experiment::Fig13)
    });
    let needs_gpu = requested
        .iter()
        .any(|e| matches!(e, Experiment::Fig10 | Experiment::Fig11 | Experiment::Fig12));

    let cpu = needs_cpu.then(|| {
        eprintln!("running CPU campaign (11 chips x 14 applications)...");
        suite.cpu_campaign()
    });
    let gpu = needs_gpu.then(|| {
        eprintln!("running GPU campaign (5 designs x 20 kernels)...");
        suite.gpu_campaign()
    });

    let mut reports = Vec::new();
    for e in requested {
        let report = match e {
            Experiment::Table1 => suite.table1(),
            Experiment::Fig1 => suite.fig1(),
            Experiment::Fig2 => suite.fig2(),
            Experiment::Fig3 => suite.fig3(),
            Experiment::Fig7 => suite.fig7(cpu.as_ref().expect("campaign ran")),
            Experiment::Fig8 => suite.fig8(cpu.as_ref().expect("campaign ran")),
            Experiment::Fig9 => suite.fig9(cpu.as_ref().expect("campaign ran")),
            Experiment::Fig10 => suite.fig10(gpu.as_ref().expect("campaign ran")),
            Experiment::Fig11 => suite.fig11(gpu.as_ref().expect("campaign ran")),
            Experiment::Fig12 => suite.fig12(gpu.as_ref().expect("campaign ran")),
            Experiment::Fig13 => suite.fig13(cpu.as_ref().expect("campaign ran")),
            Experiment::Fig14 => suite.fig14(),
        };
        if !json {
            println!("{report}");
        }
        reports.push(report);
        if e == Experiment::Fig8 {
            // The stacked-bar detail of Figure 8.
            let detail = suite.fig8_breakdown(cpu.as_ref().expect("campaign ran"));
            if !json {
                println!("{detail}");
            }
            reports.push(detail);
        }
    }
    for e in extensions {
        let report = match e {
            Extension::Migration => suite.ext_migration(),
            Extension::PartitionedRf => suite.ext_partitioned_rf(),
            Extension::Scheduling => suite.ext_scheduling(),
        };
        if !json {
            println!("{report}");
        }
        reports.push(report);
    }
    if json {
        match serde_json::to_string_pretty(&reports) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("failed to serialize reports: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
