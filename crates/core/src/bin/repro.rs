//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] [--insts N] [--format table|json|csv] [--stats-out PATH]
//!       [--jobs N] [--cache-dir PATH] [--progress]
//!       [table1|fig1..fig14|all|ext|ext-migration|ext-partrf|ext-sched]...
//! ```
//!
//! With no experiment arguments, runs `all`. `--quick` shrinks the
//! instruction budget for fast smoke runs (CI); `--insts N` sets it
//! exactly (and wins over `--quick`); full runs use the default budget
//! of `Suite::default()`.
//!
//! `--format` picks the report rendering: `table` (default) prints the
//! paper-shaped text tables, `json` emits one JSON array of report
//! objects, `csv` emits one CSV block per report (full precision).
//! `--json` is a shorthand for `--format json`. Independently,
//! `--stats-out PATH` writes the run's complete counter telemetry —
//! every per-design pipeline/memory/GPU counter plus the runner's
//! execution stats — as JSON to `PATH` (see `hetcore::telemetry`).
//!
//! The campaigns run on the `hetsim-runner` engine: `--jobs N` sets the
//! worker-thread count (default: all available cores; output is
//! bit-identical for any `N`), `--cache-dir PATH` persists simulation
//! outcomes as content-addressed JSON so reruns are near-free, and
//! `--progress` narrates per-job completion and cache hits on stderr.
//!
//! Arguments are validated up front: any unknown argument (or any flag
//! missing its value) fails the run before any experiment starts, no
//! matter where it appears on the command line.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use hetcore::suite::{Experiment, Extension, Suite};
use hetcore::telemetry::StatsDump;
use hetsim_runner::{NullSink, ProgressSink, Runner, StderrSink};

/// How reports are rendered on stdout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    /// Paper-shaped text tables (the default).
    Table,
    /// One JSON array of report objects.
    Json,
    /// One CSV block per report.
    Csv,
}

fn usage() -> String {
    format!(
        "usage: repro [--quick] [--insts N] [--format table|json|csv] [--stats-out PATH] \
         [--jobs N] [--cache-dir PATH] [--progress] [EXPERIMENT]...\n\
         experiments: all, ext, {}\n\
         extensions:  {}",
        Experiment::ALL
            .iter()
            .map(|e| e.cli_name())
            .collect::<Vec<_>>()
            .join(", "),
        Extension::ALL
            .iter()
            .map(|e| e.cli_name())
            .collect::<Vec<_>>()
            .join(", "),
    )
}

/// Everything `main` needs, parsed and validated as a whole.
struct Options {
    suite: Suite,
    requested: Vec<Experiment>,
    extensions: Vec<Extension>,
    format: Format,
    stats_out: Option<PathBuf>,
    jobs: usize,
    cache_dir: Option<PathBuf>,
    progress: bool,
}

/// Parses the full argument list before running anything, collecting
/// *every* problem instead of stopping at the first: a typo'd
/// experiment name combined with valid flags is rejected identically
/// wherever it appears.
fn parse(args: &[String]) -> Result<Options, Vec<String>> {
    let mut suite = Suite::default();
    let mut requested = Vec::new();
    let mut extensions = Vec::new();
    let mut run_all = false;
    let mut format = Format::Table;
    let mut insts = None;
    let mut stats_out = None;
    let mut jobs = None;
    let mut cache_dir = None;
    let mut progress = false;
    let mut errors = Vec::new();

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        // Flags taking a value accept both `--flag VALUE` and
        // `--flag=VALUE`.
        let (name, inline) = match arg.split_once('=') {
            Some((n, v)) if n.starts_with("--") => (n, Some(v.to_string())),
            _ => (arg, None),
        };
        let mut value = |errors: &mut Vec<String>| -> Option<String> {
            if let Some(v) = inline.clone() {
                return Some(v);
            }
            i += 1;
            match args.get(i) {
                Some(v) => Some(v.clone()),
                None => {
                    errors.push(format!("{name} requires a value"));
                    None
                }
            }
        };
        match name {
            "--quick" => suite.insts_per_app = 60_000,
            "--json" => format = Format::Json,
            "--format" => {
                if let Some(v) = value(&mut errors) {
                    match v.as_str() {
                        "table" => format = Format::Table,
                        "json" => format = Format::Json,
                        "csv" => format = Format::Csv,
                        other => {
                            errors.push(format!(
                                "--format expects table, json or csv, got '{other}'"
                            ));
                        }
                    }
                }
            }
            "--insts" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<u64>() {
                        Ok(n) if n >= 1 => insts = Some(n),
                        _ => errors.push(format!("--insts expects an integer >= 1, got '{v}'")),
                    }
                }
            }
            "--stats-out" => {
                if let Some(v) = value(&mut errors) {
                    stats_out = Some(PathBuf::from(v));
                }
            }
            "--progress" => progress = true,
            "--jobs" => {
                if let Some(v) = value(&mut errors) {
                    match v.parse::<usize>() {
                        Ok(n) if n >= 1 => jobs = Some(n),
                        _ => errors.push(format!("--jobs expects an integer >= 1, got '{v}'")),
                    }
                }
            }
            "--cache-dir" => {
                if let Some(v) = value(&mut errors) {
                    cache_dir = Some(PathBuf::from(v));
                }
            }
            "all" => run_all = true,
            "ext" => extensions.extend(Extension::ALL),
            other => match Experiment::from_cli_name(other) {
                Some(e) => requested.push(e),
                None => match Extension::from_cli_name(other) {
                    Some(e) => extensions.push(e),
                    None => errors.push(format!("unknown experiment '{other}'")),
                },
            },
        }
        i += 1;
    }

    if !errors.is_empty() {
        return Err(errors);
    }
    if (requested.is_empty() && extensions.is_empty()) || run_all {
        requested = Experiment::ALL.to_vec();
    }
    if let Some(n) = insts {
        // An explicit budget wins over --quick wherever it appears.
        suite.insts_per_app = n;
    }
    let jobs = jobs.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    Ok(Options {
        suite,
        requested,
        extensions,
        format,
        stats_out,
        jobs,
        cache_dir,
        progress,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(opts) => opts,
        Err(errors) => {
            for e in &errors {
                eprintln!("error: {e}");
            }
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let Options {
        suite,
        requested,
        extensions,
        format,
        stats_out,
        jobs,
        cache_dir,
        progress,
    } = opts;

    let sink: Arc<dyn ProgressSink> = if progress {
        Arc::new(StderrSink::default())
    } else {
        Arc::new(NullSink)
    };

    // Share campaigns across the figures that need them.
    let needs_cpu = requested.iter().any(|e| {
        matches!(
            e,
            Experiment::Fig7 | Experiment::Fig8 | Experiment::Fig9 | Experiment::Fig13
        )
    });
    let needs_gpu = requested
        .iter()
        .any(|e| matches!(e, Experiment::Fig10 | Experiment::Fig11 | Experiment::Fig12));

    // CPU and GPU campaigns share one cache directory: their key spaces
    // are separated by schema tags (see `hetcore::campaign`).
    fn with_cache<T>(dir: &Option<PathBuf>, runner: Runner<T>) -> std::io::Result<Runner<T>>
    where
        T: Clone + Send + serde::Serialize + serde::Deserialize + hetsim_runner::SimMetrics,
    {
        match dir {
            Some(d) => runner.with_cache_dir(d),
            None => Ok(runner),
        }
    }
    // Runners outlive their campaigns: their cumulative stats feed the
    // --stats-out telemetry dump after the reports are rendered.
    let cpu_runner = match needs_cpu
        .then(|| with_cache(&cache_dir, Runner::new(jobs)).map(|r| r.with_sink(sink.clone())))
        .transpose()
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot open cache directory: {e}");
            return ExitCode::FAILURE;
        }
    };
    let gpu_runner = match needs_gpu
        .then(|| with_cache(&cache_dir, Runner::new(jobs)).map(|r| r.with_sink(sink.clone())))
        .transpose()
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot open cache directory: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cpu = cpu_runner.as_ref().map(|r| {
        eprintln!("running CPU campaign (11 chips x 14 applications, {jobs} worker(s))...");
        suite.cpu_campaign_with(r)
    });
    let gpu = gpu_runner.as_ref().map(|r| {
        eprintln!("running GPU campaign (5 designs x 20 kernels, {jobs} worker(s))...");
        suite.gpu_campaign_with(r)
    });

    let mut reports = Vec::new();
    for e in requested {
        let report = match e {
            Experiment::Table1 => suite.table1(),
            Experiment::Fig1 => suite.fig1(),
            Experiment::Fig2 => suite.fig2(),
            Experiment::Fig3 => suite.fig3(),
            Experiment::Fig7 => suite.fig7(cpu.as_ref().expect("campaign ran")),
            Experiment::Fig8 => suite.fig8(cpu.as_ref().expect("campaign ran")),
            Experiment::Fig9 => suite.fig9(cpu.as_ref().expect("campaign ran")),
            Experiment::Fig10 => suite.fig10(gpu.as_ref().expect("campaign ran")),
            Experiment::Fig11 => suite.fig11(gpu.as_ref().expect("campaign ran")),
            Experiment::Fig12 => suite.fig12(gpu.as_ref().expect("campaign ran")),
            Experiment::Fig13 => suite.fig13(cpu.as_ref().expect("campaign ran")),
            Experiment::Fig14 => suite.fig14(),
        };
        if format == Format::Table {
            println!("{report}");
        }
        reports.push(report);
        if e == Experiment::Fig8 {
            // The stacked-bar detail of Figure 8.
            let detail = suite.fig8_breakdown(cpu.as_ref().expect("campaign ran"));
            if format == Format::Table {
                println!("{detail}");
            }
            reports.push(detail);
        }
    }
    for e in extensions {
        let report = match e {
            Extension::Migration => suite.ext_migration(),
            Extension::PartitionedRf => suite.ext_partitioned_rf(),
            Extension::Scheduling => suite.ext_scheduling(),
        };
        if format == Format::Table {
            println!("{report}");
        }
        reports.push(report);
    }
    match format {
        Format::Table => {}
        Format::Json => match serde_json::to_string_pretty(&reports) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("failed to serialize reports: {e}");
                return ExitCode::FAILURE;
            }
        },
        Format::Csv => {
            for report in &reports {
                println!("{}", report.to_csv());
            }
        }
    }
    if let Some(path) = stats_out {
        let mut dump = StatsDump::new();
        if let Some(c) = &cpu {
            dump = dump.with_cpu_campaign(c);
        }
        if let Some(c) = &gpu {
            dump = dump.with_gpu_campaign(c);
        }
        if let Some(r) = &cpu_runner {
            dump = dump.with_runner("cpu", r.total_stats());
        }
        if let Some(r) = &gpu_runner {
            dump = dump.with_runner("gpu", r.total_stats());
        }
        if let Err(e) = std::fs::write(&path, dump.to_json()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote counter telemetry to {}", path.display());
    }
    ExitCode::SUCCESS
}
