//! Chip-level invariant validation and the metamorphic fuzz rounds behind
//! `repro check`.
//!
//! Three layers, from cheapest to deepest:
//!
//! 1. [`validate_cpu_outcome`] / [`validate_gpu_outcome`] — re-run the
//!    per-run accounting invariants (`hetsim_cpu::core::validate_run`,
//!    `hetsim_gpu::stats::validate_gpu_stats`, the power validators)
//!    against a finished experiment outcome.
//! 2. [`validate_dump`] — reconstruct counter structs from a telemetry
//!    [`StatsDump`] value tree and validate the *serialized* numbers, so
//!    a bug anywhere between the simulator and the JSON (merge, telemetry
//!    keys, campaign aggregation) is caught at the artifact boundary.
//!    The [`PERTURB_ENV`] hook injects an off-by-one into one named
//!    counter here, proving end-to-end that a corrupted artifact yields a
//!    named violation and a non-zero exit.
//! 3. [`fuzz_round`] — sample a random-but-legal workload/kernel from a
//!    seed ([`hetsim_trace::fuzz`]) and assert *metamorphic* relations
//!    that need no oracle: more requested instructions never commit
//!    fewer; splitting a job batch across runner calls (and worker
//!    counts) never changes any outcome; halving the clock never shrinks
//!    wall-clock time and never adds cycles; GPU counters are
//!    clock-invariant; doubling a launch doubles its work.

use hetsim_check::{CheckConfig, Checker};
use hetsim_cpu::core::{validate_run, RunResult};
use hetsim_cpu::multicore::{run_multicore, run_multicore_checked, MulticoreResult};
use hetsim_cpu::stats::CoreStats;
use hetsim_cpu::CoreConfig;
use hetsim_gpu::gpu::Gpu;
use hetsim_gpu::stats::{validate_gpu_stats, GpuStats};
use hetsim_gpu::KernelProfile;
use hetsim_mem::stats::MemStats;
use hetsim_power::account::{validate_energy_breakdown, validate_gpu_energy};
use hetsim_runner::Runner;
use hetsim_trace::fuzz;
use serde::value::Value;

use crate::campaign::cpu_job;
use crate::config::{CpuDesign, GpuDesign};
use crate::experiment::{CpuOutcome, GpuOutcome};

/// Environment variable holding a counter-perturbation spec for
/// [`validate_dump`]: a dotted counter name rooted at `core.`, `mem.` or
/// `gpu.` (e.g. `core.issues`, `mem.l2.hits`, `gpu.valu_insts`). When
/// set, the named counter is bumped by one in every reconstructed design
/// column before validation — a test-only fault injector proving the
/// check layer actually fires on corrupted telemetry.
pub const PERTURB_ENV: &str = "HETSIM_CHECK_PERTURB";

/// Reads the perturbation spec from the environment (tests and the CI
/// fault-injection job set it; normal runs leave it unset).
pub fn perturbation_from_env() -> Option<String> {
    std::env::var(PERTURB_ENV).ok().filter(|s| !s.is_empty())
}

/// Per-run slack multiplier for window-tolerant bounds: an outcome merges
/// the serial phase plus one parallel phase per core, so at most
/// `cores + 1` measurement windows contribute in-flight slack.
fn outcome_slack_runs(cores: u32) -> u64 {
    u64::from(cores) + 1
}

/// Validates one finished CPU experiment outcome: committed-count
/// consistency, the full `validate_run` accounting relations over the
/// merged chip counters, and the energy-breakdown invariants.
pub fn validate_cpu_outcome(outcome: &CpuOutcome, checker: &mut Checker) {
    let cfg = outcome.design.core_config();
    checker.scoped(format!("{}/{}", outcome.design.name(), outcome.app), |c| {
        c.eq_u64(
            "chip.outcome_committed_consistent",
            ("outcome.committed", outcome.committed),
            ("stats.committed", outcome.stats.committed),
        );
        c.ge_f64("chip.seconds_positive", ("seconds", outcome.seconds), 0.0);
        if outcome.committed > 0 {
            c.check(
                "chip.time_advances",
                "seconds > 0 when work committed",
                outcome.seconds > 0.0,
                format!("seconds={}", outcome.seconds),
            );
        }
        let result = RunResult {
            stats: outcome.stats,
            mem: outcome.mem,
            clock_hz: cfg.clock_hz,
            profile: Default::default(),
        };
        validate_run(&cfg, &result, outcome_slack_runs(outcome.cores), c);
        validate_energy_breakdown(&outcome.energy, c);
    });
}

/// Validates one finished GPU experiment outcome: the wavefront
/// accounting identities plus the GPU energy invariants.
pub fn validate_gpu_outcome(outcome: &GpuOutcome, checker: &mut Checker) {
    checker.scoped(
        format!("{}/{}", outcome.design.name(), outcome.kernel),
        |c| {
            validate_gpu_stats(&outcome.stats, c);
            validate_gpu_energy(&outcome.energy, c);
            c.ge_f64("chip.seconds_positive", ("seconds", outcome.seconds), 0.0);
        },
    );
}

/// Looks up the design whose telemetry column is `name`. The synthetic
/// `AdvHet-2X` column reuses the `AdvHet` configuration on more cores.
fn design_for_column(name: &str) -> Option<CpuDesign> {
    if name == "AdvHet-2X" {
        return Some(CpuDesign::AdvHet);
    }
    CpuDesign::ALL.iter().copied().find(|d| d.name() == name)
}

/// Rebuilds a counter struct from a flat `{dotted-name: count}` telemetry
/// object via the struct's `set`. Unknown keys and non-integer values are
/// reported as violations — they mean the dump schema and the simulator's
/// counter declarations have drifted apart.
fn rebuild(object: &Value, set: &mut dyn FnMut(&str, u64) -> bool, checker: &mut Checker) {
    let Some(entries) = object.as_object() else {
        checker.check(
            "dump.counter_object",
            "a JSON object of counters",
            false,
            format!("{object:?}"),
        );
        return;
    };
    for (name, value) in entries {
        match value.as_u64() {
            Some(v) => checker.check(
                "dump.known_counter",
                format!("declared counter {name}"),
                set(name, v),
                "no such counter in the simulator",
            ),
            None => checker.check(
                "dump.integer_counter",
                format!("non-negative integer for {name}"),
                false,
                format!("{value:?}"),
            ),
        }
    }
}

/// Applies the [`PERTURB_ENV`] spec to one design column's reconstructed
/// counters, returning whether the spec named a real counter.
fn apply_perturbation(
    spec: &str,
    core: Option<&mut CoreStats>,
    mem: Option<&mut MemStats>,
    gpu: Option<&mut GpuStats>,
) -> bool {
    if let (Some(name), Some(s)) = (spec.strip_prefix("core."), core) {
        let bumped = s.get(name).map_or(0, |v| v + 1);
        return s.set(name, bumped);
    }
    if let (Some(name), Some(s)) = (spec.strip_prefix("mem."), mem) {
        let bumped = s.get(name).map_or(0, |v| v + 1);
        return s.set(name, bumped);
    }
    if let (Some(name), Some(s)) = (spec.strip_prefix("gpu."), gpu) {
        let bumped = s.get(name).map_or(0, |v| v + 1);
        return s.set(name, bumped);
    }
    false
}

/// Validates a telemetry dump value tree (the `repro --stats-out` /
/// baseline artifact): every CPU design column's merged pipeline + memory
/// counters must satisfy the run-accounting relations, and every GPU
/// column the wavefront identities.
///
/// `apps` is the number of per-app outcomes merged into each column (used
/// to scale the in-flight-slack bounds); `cores` the largest core count
/// in the campaign. `perturb` optionally injects an off-by-one first
/// (see [`PERTURB_ENV`]).
pub fn validate_dump(
    dump: &Value,
    apps: u64,
    cores: u32,
    perturb: Option<&str>,
    checker: &mut Checker,
) {
    let mut perturb_applied = false;
    checker.scoped("dump", |c| {
        if let Some(designs) = dump
            .get("cpu")
            .and_then(|cpu| cpu.get("designs"))
            .and_then(Value::as_object)
        {
            for (name, column) in designs {
                c.scoped(format!("cpu/{name}"), |c| {
                    let Some(design) = design_for_column(name) else {
                        c.check(
                            "dump.known_design",
                            "a known CPU design column",
                            false,
                            name.clone(),
                        );
                        return;
                    };
                    let mut stats = CoreStats::default();
                    let mut mem = MemStats::default();
                    if let Some(core) = column.get("core") {
                        rebuild(core, &mut |n, v| stats.set(n, v), c);
                    }
                    if let Some(m) = column.get("mem") {
                        rebuild(m, &mut |n, v| mem.set(n, v), c);
                    }
                    if let Some(spec) = perturb {
                        perturb_applied |=
                            apply_perturbation(spec, Some(&mut stats), Some(&mut mem), None);
                    }
                    let cfg = design.core_config();
                    let result = RunResult {
                        stats,
                        mem,
                        clock_hz: cfg.clock_hz,
                        profile: Default::default(),
                    };
                    // A column merges `apps` outcomes, each of which
                    // merges up to `cores + 1` measurement windows.
                    let slack = apps.max(1) * outcome_slack_runs(cores);
                    validate_run(&cfg, &result, slack, c);
                });
            }
        }
        if let Some(designs) = dump
            .get("gpu")
            .and_then(|gpu| gpu.get("designs"))
            .and_then(Value::as_object)
        {
            for (name, column) in designs {
                c.scoped(format!("gpu/{name}"), |c| {
                    let mut stats = GpuStats::default();
                    if let Some(g) = column.get("gpu") {
                        rebuild(g, &mut |n, v| stats.set(n, v), c);
                    }
                    if let Some(spec) = perturb {
                        perturb_applied |= apply_perturbation(spec, None, None, Some(&mut stats));
                    }
                    validate_gpu_stats(&stats, c);
                });
            }
        }
        if let Some(spec) = perturb {
            c.check(
                "check.perturbation_applied",
                format!("perturbation spec {spec} names a real counter"),
                perturb_applied,
                "matched nothing in the dump",
            );
        }
    });
}

/// End-to-end chip cycles of a multicore result, computed the same way
/// `run_cpu_multicore` fixes up the merged counter: serial phase plus the
/// slowest parallel core.
fn chip_cycles(mc: &MulticoreResult) -> u64 {
    let serial = mc.serial.as_ref().map_or(0, |r| r.stats.cycles);
    let parallel = mc.parallel.iter().map(|r| r.stats.cycles).fold(0, u64::max);
    serial + parallel
}

/// A `CoreConfig` at a different clock; memory latencies that are pinned
/// in seconds (DRAM) re-derive their cycle counts from the new clock.
fn at_clock(cfg: &CoreConfig, clock_hz: f64) -> CoreConfig {
    let mut scaled = cfg.clone();
    scaled.clock_hz = clock_hz;
    scaled
}

/// One metamorphic fuzz round: a seeded random CPU workload and GPU
/// kernel, run through a design rotated by the seed, asserting the
/// oracle-free relations listed in the module docs. All violations land
/// in `checker` under a `fuzz[seed]` scope; `insts` bounds the CPU run
/// length (the GPU side is bounded by the sampled launch).
pub fn fuzz_round(seed: u64, insts: u64, checker: &mut Checker) {
    checker.scoped(format!("fuzz[{seed}]"), |c| {
        fuzz_cpu_round(seed, insts, c);
        fuzz_gpu_round(seed, c);
    });
}

fn fuzz_cpu_round(seed: u64, insts: u64, c: &mut Checker) {
    let design = CpuDesign::ALL[(seed as usize) % CpuDesign::ALL.len()];
    let app = fuzz::workload(seed);
    let cfg = design.core_config();
    c.scoped(format!("cpu/{}", design.name()), |c| {
        // Invariant-checked run: every accounting relation must hold on
        // a workload far outside the calibrated application set.
        let (base, violations) = run_multicore_checked(&cfg, 2, &app, seed, insts, CheckConfig::ON);
        c.absorb(violations);

        // Work monotonicity: requesting more instructions never commits
        // fewer, and never fabricates more than requested.
        let doubled = run_multicore(&cfg, 2, &app, seed, insts * 2);
        c.ge_u64(
            "fuzz.insts_monotone",
            ("committed(2N)", doubled.total_committed()),
            ("committed(N)", base.total_committed()),
        );
        c.le_u64(
            "fuzz.no_fabricated_work",
            ("committed(N)", base.total_committed()),
            ("requested N", insts),
        );

        // Split/merge + worker-count invariance: the same two jobs run
        // as one parallel batch or as two serial single-job batches must
        // produce identical outcomes (the runner merges results in
        // submission order, independent of workers or batching).
        let second = fuzz::workload(seed ^ 0x5EED_CAFE);
        let jobs = || {
            vec![
                cpu_job(design, 2, &app, seed, insts),
                cpu_job(design, 2, &second, seed, insts),
            ]
        };
        let batched: Vec<CpuOutcome> = Runner::new(4).run(jobs());
        let split: Vec<CpuOutcome> = jobs()
            .into_iter()
            .flat_map(|job| Runner::serial().run(vec![job]))
            .collect();
        c.check(
            "fuzz.split_merge_invariance",
            "parallel batch == serially split batches",
            batched == split,
            format!(
                "committed {:?} vs {:?}",
                batched.iter().map(|o| o.committed).collect::<Vec<_>>(),
                split.iter().map(|o| o.committed).collect::<Vec<_>>()
            ),
        );

        // DVFS relations: at half clock the same trace takes at least as
        // long in seconds (the clock only slows things down) and no more
        // cycles (seconds-pinned DRAM latency costs fewer cycles).
        let half = run_multicore(&at_clock(&cfg, cfg.clock_hz / 2.0), 2, &app, seed, insts);
        c.check(
            "fuzz.dvfs_seconds_monotone",
            "seconds(half clock) >= seconds(base)",
            half.total_seconds() >= base.total_seconds() * (1.0 - 1e-12),
            format!(
                "half={} base={}",
                half.total_seconds(),
                base.total_seconds()
            ),
        );
        c.le_u64(
            "fuzz.dvfs_cycles_monotone",
            ("cycles(half clock)", chip_cycles(&half)),
            ("cycles(base)", chip_cycles(&base)),
        );
    });
}

fn fuzz_gpu_round(seed: u64, c: &mut Checker) {
    let design = GpuDesign::ALL[(seed as usize) % GpuDesign::ALL.len()];
    let mix = fuzz::kernel_mix(seed);
    let kernel = KernelProfile {
        name: Box::leak(format!("fuzz-{seed:016x}").into_boxed_str()),
        insts_per_wavefront: mix.insts_per_wavefront,
        wavefronts: mix.wavefronts,
        valu_frac: mix.valu_frac,
        mem_frac: mix.mem_frac,
        lds_frac: mix.lds_frac,
        dep_prob: mix.dep_prob,
        reg_reuse: mix.reg_reuse,
        mem_miss_rate: mix.mem_miss_rate,
    };
    c.scoped(format!("gpu/{}", design.name()), |c| {
        c.check(
            "fuzz.kernel_legal",
            "fuzzed kernel passes KernelProfile::validate",
            kernel.validate().is_ok(),
            format!("{:?}", kernel.validate()),
        );
        let cfg = design.gpu_config();
        let gpu = Gpu::new(cfg.clone());
        let (base, violations) = gpu.run_checked(&kernel, seed, CheckConfig::ON);
        c.absorb(violations);
        gpu.validate_launch(&kernel, &base, c);

        // Clock invariance: the GPU clock prices time, never counters.
        let mut half_cfg = cfg.clone();
        half_cfg.clock_hz /= 2.0;
        let half = Gpu::new(half_cfg).run(&kernel, seed);
        c.check(
            "fuzz.gpu_clock_counter_invariance",
            "identical counters at half clock",
            half.stats == base.stats,
            format!("cycles {} vs {}", half.stats.cycles, base.stats.cycles),
        );
        c.close_f64(
            "fuzz.gpu_clock_seconds_scale",
            ("seconds(half clock)", half.seconds()),
            ("2 * seconds(base)", 2.0 * base.seconds()),
            1e-12,
        );

        // Launch scaling: doubling the wavefront count exactly doubles
        // the launch's work and never shrinks its cycle count.
        let mut doubled_kernel = kernel;
        doubled_kernel.wavefronts *= 2;
        let doubled = gpu.run(&doubled_kernel, seed);
        c.eq_u64(
            "fuzz.gpu_work_scales",
            (
                "wavefront_insts(2x wavefronts)",
                doubled.stats.wavefront_insts,
            ),
            ("2 * wavefront_insts", 2 * base.stats.wavefront_insts),
        );
        c.ge_u64(
            "fuzz.gpu_cycles_monotone",
            ("cycles(2x wavefronts)", doubled.stats.cycles),
            ("cycles", base.stats.cycles),
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_cpu_multicore, run_gpu};
    use hetsim_gpu::kernels;
    use hetsim_trace::apps;

    #[test]
    fn real_outcomes_validate_clean() {
        let app = apps::profile("fft").expect("known");
        let mut checker = Checker::new();
        for design in [CpuDesign::BaseCmos, CpuDesign::AdvHet] {
            let outcome = run_cpu_multicore(design, 4, &app, 7, 8_000);
            validate_cpu_outcome(&outcome, &mut checker);
        }
        let kernel = kernels::profile("matmul").expect("known");
        for design in [GpuDesign::BaseCmos, GpuDesign::AdvHet] {
            validate_gpu_outcome(&run_gpu(design, &kernel, 7), &mut checker);
        }
        assert!(checker.is_clean(), "{:?}", checker.violations());
        assert!(checker.checks_run() > 50);
    }

    #[test]
    fn corrupted_outcome_is_flagged() {
        let app = apps::profile("lu").expect("known");
        let mut outcome = run_cpu_multicore(CpuDesign::BaseCmos, 4, &app, 7, 8_000);
        outcome.committed += 1;
        let mut checker = Checker::new();
        validate_cpu_outcome(&outcome, &mut checker);
        assert!(checker
            .violations()
            .iter()
            .any(|v| v.invariant == "chip.outcome_committed_consistent"));
    }

    #[test]
    fn fuzz_rounds_are_clean_across_seeds() {
        let mut checker = Checker::new();
        for seed in 0..4 {
            fuzz_round(seed, 2_000, &mut checker);
        }
        assert!(checker.is_clean(), "{:?}", checker.violations());
    }

    #[test]
    fn perturbed_dump_yields_named_violation() {
        let app = apps::profile("fft").expect("known");
        let outcome = run_cpu_multicore(CpuDesign::BaseCmos, 4, &app, 7, 8_000);
        let dump = Value::Object(vec![(
            "cpu".into(),
            Value::Object(vec![(
                "designs".into(),
                Value::Object(vec![(
                    "BaseCMOS".into(),
                    Value::Object(vec![
                        (
                            "core".into(),
                            Value::Object(
                                outcome
                                    .stats
                                    .iter()
                                    .map(|(n, v)| (n, Value::UInt(v)))
                                    .collect(),
                            ),
                        ),
                        (
                            "mem".into(),
                            Value::Object(
                                outcome
                                    .mem
                                    .iter()
                                    .map(|(n, v)| (n, Value::UInt(v)))
                                    .collect(),
                            ),
                        ),
                    ]),
                )]),
            )]),
        )]);
        let mut clean = Checker::new();
        validate_dump(&dump, 1, 4, None, &mut clean);
        assert!(clean.is_clean(), "{:?}", clean.violations());

        let mut checker = Checker::new();
        validate_dump(&dump, 1, 4, Some("core.issues"), &mut checker);
        assert!(
            checker
                .violations()
                .iter()
                .any(|v| v.invariant == "cpu.issue_class_conservation"),
            "perturbing core.issues must break an accounting identity: {:?}",
            checker.violations()
        );
        assert!(!checker.is_clean());
    }

    #[test]
    fn unknown_dump_counter_is_flagged() {
        let dump = Value::Object(vec![(
            "cpu".into(),
            Value::Object(vec![(
                "designs".into(),
                Value::Object(vec![(
                    "BaseCMOS".into(),
                    Value::Object(vec![(
                        "core".into(),
                        Value::Object(vec![("no_such_counter".into(), Value::UInt(1))]),
                    )]),
                )]),
            )]),
        )]);
        let mut checker = Checker::new();
        validate_dump(&dump, 1, 4, None, &mut checker);
        assert!(checker
            .violations()
            .iter()
            .any(|v| v.invariant == "dump.known_counter"));
    }
}
