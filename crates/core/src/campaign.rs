//! Campaign jobs: content-addressed units of CPU/GPU simulation.
//!
//! Each design-point × application simulation becomes a
//! [`Job`] whose [`JobKey`] hashes the *full* configuration:
//!
//! * a **schema tag** ([`CPU_SCHEMA`] / [`GPU_SCHEMA`]) separating the
//!   CPU and GPU key spaces — bump it whenever the simulators or the
//!   outcome layout change incompatibly, and stale on-disk caches
//!   retire themselves;
//! * the **design** name (Table IV row);
//! * the **workload profile content** — every field of the profile via
//!   its canonical `Debug` rendering, so editing an app's instruction
//!   mix or miss rates invalidates its cache entries even though the
//!   app name stays the same;
//! * the **instruction budget**, **seed** and **core count**.
//!
//! Anything that can change an outcome must feed the key; nothing else
//! should (wall-clock, worker count and progress options do not).

use hetsim_obs::TraceRecorder;
use hetsim_runner::{config_object, Job, JobKey};
use hetsim_trace::WorkloadProfile;
use serde::value::Value;
use serde::Serialize;

use crate::config::{CpuDesign, GpuDesign};
use crate::experiment::{run_cpu_multicore, run_gpu, CpuOutcome, GpuOutcome};

/// Cache-key schema tag for CPU jobs. Bump on incompatible changes to
/// the CPU simulator, energy model or [`CpuOutcome`] layout.
/// (`v2`: outcomes gained chip-level `stats`/`mem` counter sets.)
pub const CPU_SCHEMA: &str = "cpu-v2";
/// Cache-key schema tag for GPU jobs. Bump on incompatible changes to
/// the GPU simulator, energy model or [`GpuOutcome`] layout.
/// (`v2`: outcomes gained the run's `stats` counter set.)
pub const GPU_SCHEMA: &str = "gpu-v2";

/// The canonical key config of a multicore CPU experiment.
pub fn cpu_job_key(
    design: CpuDesign,
    cores: u32,
    app: &WorkloadProfile,
    seed: u64,
    insts: u64,
) -> JobKey {
    JobKey::of(&config_object(vec![
        ("schema", Value::Str(CPU_SCHEMA.into())),
        ("design", design.to_value()),
        ("cores", cores.to_value()),
        ("profile", Value::Str(format!("{app:?}"))),
        ("seed", seed.to_value()),
        ("insts", insts.to_value()),
    ]))
}

/// A runnable, cacheable CPU experiment ([`run_cpu_multicore`]).
pub fn cpu_job(
    design: CpuDesign,
    cores: u32,
    app: &WorkloadProfile,
    seed: u64,
    insts: u64,
) -> Job<CpuOutcome> {
    let key = cpu_job_key(design, cores, app, seed, insts);
    let label = format!("cpu/{}/{}x{}", app.name, design.name(), cores);
    let app = app.clone();
    Job::new(key, label, move || {
        run_cpu_multicore(design, cores, &app, seed, insts)
    })
}

/// The canonical key config of a GPU experiment.
pub fn gpu_job_key(design: GpuDesign, kernel: &hetsim_gpu::KernelProfile, seed: u64) -> JobKey {
    JobKey::of(&config_object(vec![
        ("schema", Value::Str(GPU_SCHEMA.into())),
        ("design", design.to_value()),
        ("profile", Value::Str(format!("{kernel:?}"))),
        ("seed", seed.to_value()),
    ]))
}

/// A runnable, cacheable GPU experiment ([`run_gpu`]).
pub fn gpu_job(
    design: GpuDesign,
    kernel: &hetsim_gpu::KernelProfile,
    seed: u64,
) -> Job<GpuOutcome> {
    let key = gpu_job_key(design, kernel, seed);
    let label = format!("gpu/{}/{}", kernel.name, design.name());
    let kernel = kernel.clone();
    Job::new(key, label, move || run_gpu(design, &kernel, seed))
}

/// Runs `f` inside a campaign-level span (`cat: "campaign"`) on
/// `recorder`; with no recorder it is exactly `f()`. This is the
/// outermost scope of a run trace — it contains every batch the
/// campaign submits to its runner, so a trace viewer shows
/// `cpu-campaign`/`gpu-campaign` as the top-level lanes.
pub fn traced_campaign<T>(
    recorder: Option<&TraceRecorder>,
    name: &str,
    f: impl FnOnce() -> T,
) -> T {
    match recorder {
        Some(recorder) => {
            let _span = recorder.span(name, "campaign");
            f()
        }
        None => f(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_trace::apps;

    #[test]
    fn cpu_keys_cover_every_config_axis() {
        let app = apps::profile("lu").expect("known");
        let base = cpu_job_key(CpuDesign::AdvHet, 4, &app, 42, 300_000);
        assert_ne!(
            base,
            cpu_job_key(CpuDesign::BaseHet, 4, &app, 42, 300_000),
            "design"
        );
        assert_ne!(
            base,
            cpu_job_key(CpuDesign::AdvHet, 8, &app, 42, 300_000),
            "cores"
        );
        assert_ne!(
            base,
            cpu_job_key(CpuDesign::AdvHet, 4, &app, 43, 300_000),
            "seed"
        );
        assert_ne!(
            base,
            cpu_job_key(CpuDesign::AdvHet, 4, &app, 42, 300_001),
            "insts"
        );
        let other = apps::profile("fft").expect("known");
        assert_ne!(
            base,
            cpu_job_key(CpuDesign::AdvHet, 4, &other, 42, 300_000),
            "app"
        );
    }

    #[test]
    fn profile_content_feeds_the_cpu_key() {
        let app = apps::profile("lu").expect("known");
        let mut edited = app.clone();
        edited.parallel_fraction *= 0.5;
        assert_ne!(
            cpu_job_key(CpuDesign::AdvHet, 4, &app, 42, 300_000),
            cpu_job_key(CpuDesign::AdvHet, 4, &edited, 42, 300_000),
            "editing a profile must invalidate its cache entries"
        );
    }

    #[test]
    fn gpu_keys_cover_every_config_axis() {
        let kernel = hetsim_gpu::kernels::profile("matmul").expect("known");
        let base = gpu_job_key(GpuDesign::AdvHet, &kernel, 42);
        assert_ne!(base, gpu_job_key(GpuDesign::BaseHet, &kernel, 42), "design");
        assert_ne!(base, gpu_job_key(GpuDesign::AdvHet, &kernel, 43), "seed");
        let mut edited = kernel.clone();
        edited.mem_miss_rate += 0.01;
        assert_ne!(
            base,
            gpu_job_key(GpuDesign::AdvHet, &edited, 42),
            "kernel content"
        );
    }

    #[test]
    fn cpu_and_gpu_key_spaces_are_disjoint_by_schema() {
        // Not a collision proof, just the schema-tag convention check:
        // the two kinds of key config always differ in their first field.
        assert_ne!(CPU_SCHEMA, GPU_SCHEMA);
    }

    #[test]
    fn jobs_run_the_real_experiment() {
        let app = apps::profile("lu").expect("known");
        let job = cpu_job(CpuDesign::BaseCmos, 1, &app, 3, 5_000);
        let direct = run_cpu_multicore(CpuDesign::BaseCmos, 1, &app, 3, 5_000);
        assert_eq!((job.run)(), direct);
    }

    #[test]
    fn traced_campaign_wraps_the_scope_in_one_span() {
        assert_eq!(traced_campaign(None, "cpu-campaign", || 7), 7);

        let clock = std::sync::Arc::new(hetsim_obs::ManualClock::new());
        let recorder = TraceRecorder::new(clock.clone());
        let out = traced_campaign(Some(&recorder), "cpu-campaign", || {
            clock.advance(40);
            "done"
        });
        assert_eq!(out, "done");
        let events = recorder.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "cpu-campaign");
        assert_eq!(events[0].cat, "campaign");
        assert_eq!(
            events[0].kind,
            hetsim_obs::EventKind::Span {
                start_us: 0,
                end_us: 40
            }
        );
    }
}
