//! The named design points of the paper's Table IV.
//!
//! Each design bundles a timing configuration (for the cycle-level
//! simulators) with a device assignment (for the energy model). The
//! mapping follows Table IV row by row; see each variant's documentation.

use hetsim_cpu::config::{CoreConfig, Dl1Config, MemoryConfig, SteeringPolicy};
use hetsim_cpu::fu::FuPoolConfig;
use hetsim_gpu::config::{GpuConfig, PartitionedRfConfig, RfCacheConfig};
use hetsim_power::account::CpuEnergyModel;
use hetsim_power::assignment::DeviceAssignment;
use serde::{Deserialize, Serialize};

/// The larger ROB of the Enh designs (160 -> 192).
pub const ENH_ROB: u32 = 192;
/// The larger FP register file of the Enh designs (80 -> 128).
pub const ENH_FP_REGS: u32 = 128;

/// CPU design points (Table IV, upper half).
///
/// # Example
///
/// ```
/// use hetcore::config::CpuDesign;
///
/// // Every design lowers to a simulatable core and a priced energy model.
/// for design in CpuDesign::ALL {
///     let cfg = design.core_config();
///     cfg.validate().expect("Table IV designs are valid");
///     let _model = design.energy_model();
/// }
/// assert_eq!(CpuDesign::AdvHet.name(), "AdvHet");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CpuDesign {
    /// All-CMOS core: the baseline everything is normalized to.
    BaseCmos,
    /// BaseCMOS + larger ROB (192) & FP-RF (128) + all-CMOS asymmetric DL1
    /// (1 cycle for 1 way, 3 cycles for the rest).
    BaseCmosEnh,
    /// All-TFET core at half the clock (1 GHz).
    BaseTfet,
    /// BaseCMOS with FPUs, ALUs, DL1, L2 and L3 in TFET.
    BaseHet,
    /// BaseHet + larger ROB & FP-RF + dual-speed ALU (3 TFET + 1 CMOS) +
    /// asymmetric DL1 (1 CMOS way, rest TFET).
    AdvHet,
    /// BaseCMOS + larger ROB & FP-RF + only the L3 in TFET.
    BaseL3,
    /// BaseCMOS with FPUs & ALUs built from 100% high-V_t transistors
    /// (Int A/M/D 2/3/6 cycles, FP A/M/D 3/6/12 cycles).
    BaseHighVt,
    /// BaseHet but with all ALUs in CMOS.
    BaseHetFastAlu,
    /// BaseHet + larger ROB & FP-RF.
    BaseHetEnh,
    /// BaseHet-Enh + the dual-speed ALU cluster (no asymmetric DL1 yet).
    BaseHetSplit,
}

impl CpuDesign {
    /// All ten CPU designs, in Table IV order.
    pub const ALL: [CpuDesign; 10] = [
        CpuDesign::BaseCmos,
        CpuDesign::BaseCmosEnh,
        CpuDesign::BaseTfet,
        CpuDesign::BaseHet,
        CpuDesign::AdvHet,
        CpuDesign::BaseL3,
        CpuDesign::BaseHighVt,
        CpuDesign::BaseHetFastAlu,
        CpuDesign::BaseHetEnh,
        CpuDesign::BaseHetSplit,
    ];

    /// The paper's name for the design.
    pub fn name(self) -> &'static str {
        match self {
            CpuDesign::BaseCmos => "BaseCMOS",
            CpuDesign::BaseCmosEnh => "BaseCMOS-Enh",
            CpuDesign::BaseTfet => "BaseTFET",
            CpuDesign::BaseHet => "BaseHet",
            CpuDesign::AdvHet => "AdvHet",
            CpuDesign::BaseL3 => "BaseL3",
            CpuDesign::BaseHighVt => "BaseHighVt",
            CpuDesign::BaseHetFastAlu => "BaseHet-FastALU",
            CpuDesign::BaseHetEnh => "BaseHet-Enh",
            CpuDesign::BaseHetSplit => "BaseHet-Split",
        }
    }

    /// The timing configuration for the cycle-level core model.
    pub fn core_config(self) -> CoreConfig {
        let mut cfg = CoreConfig::default(); // BaseCMOS / Table III
        match self {
            CpuDesign::BaseCmos => {}
            CpuDesign::BaseCmosEnh => {
                cfg.rob_entries = ENH_ROB;
                cfg.fp_regs = ENH_FP_REGS;
                // All-CMOS asymmetric DL1: 1-cycle fast way, 3-cycle rest.
                cfg.memory.dl1 = Dl1Config::Asymmetric { slow_extra: 2 };
            }
            CpuDesign::BaseTfet => {
                // Same microarchitecture, half the clock. Per-unit cycle
                // counts stay at their CMOS values: an all-TFET pipeline
                // needs no deeper pipelining relative to its own clock.
                cfg.clock_hz = 1.0e9;
            }
            CpuDesign::BaseHet => {
                cfg.fus = FuPoolConfig::tfet();
                cfg.memory = MemoryConfig::tfet();
            }
            CpuDesign::AdvHet => {
                cfg.fus = FuPoolConfig::dual_speed();
                cfg.memory = MemoryConfig::advhet();
                cfg.rob_entries = ENH_ROB;
                cfg.fp_regs = ENH_FP_REGS;
                cfg.steering = SteeringPolicy::DualSpeed {
                    window: cfg.issue_width,
                };
            }
            CpuDesign::BaseL3 => {
                cfg.rob_entries = ENH_ROB;
                cfg.fp_regs = ENH_FP_REGS;
                cfg.memory.l3_latency = 40;
            }
            CpuDesign::BaseHighVt => {
                cfg.fus = FuPoolConfig::high_vt();
            }
            CpuDesign::BaseHetFastAlu => {
                cfg.fus = FuPoolConfig::tfet_fast_alu();
                cfg.memory = MemoryConfig::tfet();
            }
            CpuDesign::BaseHetEnh => {
                cfg.fus = FuPoolConfig::tfet();
                cfg.memory = MemoryConfig::tfet();
                cfg.rob_entries = ENH_ROB;
                cfg.fp_regs = ENH_FP_REGS;
            }
            CpuDesign::BaseHetSplit => {
                cfg.fus = FuPoolConfig::dual_speed();
                cfg.memory = MemoryConfig::tfet();
                cfg.rob_entries = ENH_ROB;
                cfg.fp_regs = ENH_FP_REGS;
                cfg.steering = SteeringPolicy::DualSpeed {
                    window: cfg.issue_width,
                };
            }
        }
        cfg
    }

    /// The energy model for this design.
    pub fn energy_model(self) -> CpuEnergyModel {
        match self {
            CpuDesign::BaseCmos => CpuEnergyModel::new(DeviceAssignment::all_cmos()),
            CpuDesign::BaseCmosEnh => CpuEnergyModel::new(DeviceAssignment::all_cmos())
                .with_structure(ENH_ROB, ENH_FP_REGS),
            CpuDesign::BaseTfet => CpuEnergyModel::new(DeviceAssignment::all_tfet()),
            CpuDesign::BaseHet => CpuEnergyModel::new(DeviceAssignment::hetcore_cpu(false)),
            CpuDesign::AdvHet => CpuEnergyModel::new(DeviceAssignment::hetcore_cpu(true))
                .with_dual_speed_alu()
                .with_structure(ENH_ROB, ENH_FP_REGS),
            CpuDesign::BaseL3 => CpuEnergyModel::new(DeviceAssignment::l3_only())
                .with_structure(ENH_ROB, ENH_FP_REGS),
            CpuDesign::BaseHighVt => CpuEnergyModel::new(DeviceAssignment::high_vt_fus()),
            CpuDesign::BaseHetFastAlu => CpuEnergyModel::new(DeviceAssignment::hetcore_fast_alu()),
            CpuDesign::BaseHetEnh => CpuEnergyModel::new(DeviceAssignment::hetcore_cpu(false))
                .with_structure(ENH_ROB, ENH_FP_REGS),
            CpuDesign::BaseHetSplit => CpuEnergyModel::new(DeviceAssignment::hetcore_cpu(false))
                .with_dual_speed_alu()
                .with_structure(ENH_ROB, ENH_FP_REGS),
        }
    }
}

/// GPU design points (Table IV, lower half). `AdvHet2x` is the
/// fixed-power-budget design of Section VII-B1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GpuDesign {
    /// All-CMOS GPU *with* the register-file cache (added for fairness).
    BaseCmos,
    /// All-TFET GPU at half the clock.
    BaseTfet,
    /// BaseCMOS with the SIMD FPUs and vector RF in TFET (no RF cache).
    BaseHet,
    /// BaseHet + the register-file cache.
    AdvHet,
    /// AdvHet with 16 compute units (same chip power as 8-CU BaseCMOS).
    AdvHet2x,
    /// The Section VIII alternative to the RF cache: a partitioned vector
    /// RF with a fast CMOS partition and a slow TFET partition (after
    /// Abdel-Majeed et al.'s Pilot Register File). Not part of the paper's
    /// Table IV sweep; provided as the extension the paper sketches.
    AdvHetPartitionedRf,
}

impl GpuDesign {
    /// The four Table IV designs plus the 2X point.
    pub const ALL: [GpuDesign; 5] = [
        GpuDesign::BaseCmos,
        GpuDesign::BaseTfet,
        GpuDesign::BaseHet,
        GpuDesign::AdvHet,
        GpuDesign::AdvHet2x,
    ];

    /// The paper's name for the design.
    pub fn name(self) -> &'static str {
        match self {
            GpuDesign::BaseCmos => "BaseCMOS",
            GpuDesign::BaseTfet => "BaseTFET",
            GpuDesign::BaseHet => "BaseHet",
            GpuDesign::AdvHet => "AdvHet",
            GpuDesign::AdvHet2x => "AdvHet-2X",
            GpuDesign::AdvHetPartitionedRf => "AdvHet-PartRF",
        }
    }

    /// The timing configuration for the GPU model.
    pub fn gpu_config(self) -> GpuConfig {
        let mut cfg = GpuConfig::default(); // BaseCMOS incl. RF cache
        match self {
            GpuDesign::BaseCmos => {}
            GpuDesign::BaseTfet => {
                cfg.clock_hz = 0.5e9;
                cfg.rf_cache = None;
                // DRAM nanoseconds are clock-independent: at half the
                // clock a miss costs half the cycles.
                cfg.mem_miss_latency = 125;
            }
            GpuDesign::BaseHet => {
                cfg.fma_latency = 6;
                cfg.rf_latency = 2;
                cfg.rf_cache = None;
            }
            GpuDesign::AdvHet => {
                cfg.fma_latency = 6;
                cfg.rf_latency = 2;
                cfg.rf_cache = Some(RfCacheConfig::default());
            }
            GpuDesign::AdvHet2x => {
                cfg.fma_latency = 6;
                cfg.rf_latency = 2;
                cfg.rf_cache = Some(RfCacheConfig::default());
                cfg.compute_units = 16;
            }
            GpuDesign::AdvHetPartitionedRf => {
                cfg.fma_latency = 6;
                cfg.rf_latency = 2;
                cfg.rf_cache = None;
                cfg.rf_partition = Some(PartitionedRfConfig::default());
            }
        }
        cfg
    }

    /// The device assignment for the energy model.
    pub fn assignment(self) -> DeviceAssignment {
        match self {
            GpuDesign::BaseCmos => DeviceAssignment::all_cmos(),
            GpuDesign::BaseTfet => DeviceAssignment::all_tfet(),
            GpuDesign::BaseHet
            | GpuDesign::AdvHet
            | GpuDesign::AdvHet2x
            | GpuDesign::AdvHetPartitionedRf => DeviceAssignment::hetcore_gpu(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_power::assignment::UnitImpl;
    use hetsim_power::units::CpuUnit;

    #[test]
    fn ten_cpu_designs_with_unique_names() {
        let mut names: Vec<_> = CpuDesign::ALL.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn all_cpu_configs_validate() {
        for d in CpuDesign::ALL {
            d.core_config()
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", d.name()));
        }
    }

    #[test]
    fn basetfet_runs_at_half_clock() {
        assert_eq!(CpuDesign::BaseTfet.core_config().clock_hz, 1.0e9);
        assert_eq!(CpuDesign::BaseCmos.core_config().clock_hz, 2.0e9);
    }

    #[test]
    fn advhet_has_all_four_optimizations() {
        let cfg = CpuDesign::AdvHet.core_config();
        assert_eq!(cfg.rob_entries, 192);
        assert_eq!(cfg.fp_regs, 128);
        assert!(cfg.fus.has_dual_speed_alus());
        assert!(matches!(
            cfg.memory.dl1,
            Dl1Config::Asymmetric { slow_extra: 4 }
        ));
        assert!(matches!(
            cfg.steering,
            SteeringPolicy::DualSpeed { window: 4 }
        ));
    }

    #[test]
    fn basecmos_enh_matches_table_iv() {
        let cfg = CpuDesign::BaseCmosEnh.core_config();
        assert_eq!(cfg.rob_entries, 192);
        // 1 cycle fast way + 2 extra = 3 cycles for the rest.
        assert!(matches!(
            cfg.memory.dl1,
            Dl1Config::Asymmetric { slow_extra: 2 }
        ));
        assert!(!cfg.fus.has_dual_speed_alus());
    }

    #[test]
    fn basel3_only_slows_l3() {
        let cfg = CpuDesign::BaseL3.core_config();
        assert_eq!(cfg.memory.l3_latency, 40);
        assert_eq!(cfg.memory.l2_latency, 8);
        assert!(matches!(cfg.memory.dl1, Dl1Config::Plain { latency: 2 }));
        let m = CpuDesign::BaseL3.energy_model();
        assert_eq!(m.assignment().cpu_impl(CpuUnit::L3), UnitImpl::Tfet);
        assert_eq!(m.assignment().cpu_impl(CpuUnit::L2), UnitImpl::Cmos);
    }

    #[test]
    fn gpu_designs_match_table_iv() {
        assert!(
            GpuDesign::BaseCmos.gpu_config().rf_cache.is_some(),
            "fairness RF cache"
        );
        assert!(GpuDesign::BaseHet.gpu_config().rf_cache.is_none());
        assert!(GpuDesign::AdvHet.gpu_config().rf_cache.is_some());
        assert_eq!(GpuDesign::BaseTfet.gpu_config().clock_hz, 0.5e9);
        assert_eq!(GpuDesign::AdvHet2x.gpu_config().compute_units, 16);
        assert_eq!(GpuDesign::BaseHet.gpu_config().fma_latency, 6);
    }
}
