//! Design-space exploration: budget-capped Pareto-frontier search.
//!
//! The paper evaluates ~10 hand-picked design points (Table IV). This
//! module searches the space those points were picked *from*: the
//! cartesian grid of device assignment (the Table IV designs), core
//! count, DVFS V_dd operating point, and ROB depth, evaluated over a
//! pinned application subset and ranked by the Pareto frontier of
//! (time, energy, ED²) — see [`hetsim_stats::pareto`] for the order.
//!
//! The engine is built from the pieces earlier PRs proved out, so the
//! expensive part (simulation) is entirely reused machinery:
//!
//! * every candidate evaluation is a batch of content-addressed
//!   [`Job`]s under its own cache schema ([`EXPLORE_SCHEMA`]), so
//!   repeated searches — a warm rerun, a widened budget, an overlapping
//!   sweep — only simulate designs never seen before;
//! * `--shards N` splits each batch across N runners by
//!   [`JobKey::shard_of`], the same coordination-free partitioner the
//!   campaign shard protocol uses; results merge by submission index,
//!   so the shard count is invisible in the output;
//! * the search itself is **structural**: wave 0 is a deterministic
//!   stride sample of the grid, every later wave evaluates the
//!   ±1-step axis neighbors of the current frontier (adaptive
//!   refinement near the frontier), in canonical grid order, and when
//!   refinement dries up with budget to spare the remainder sweeps the
//!   unseen cells in grid order, until the `--budget` evaluation cap
//!   is spent or the grid is exhausted. No randomness enters candidate
//!   selection — `--seed` only
//!   seeds the simulated workloads — so the same seed + budget produces
//!   a byte-identical frontier dump, which is what makes the engine
//!   testable and CI-gateable.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use hetsim_device::dvfs::DvfsController;
use hetsim_power::assignment::VoltageFactors;
use hetsim_runner::{config_object, Job, JobKey, Runner};
use hetsim_stats::pareto;
use hetsim_trace::apps;
use serde::value::Value;
use serde::Serialize;

use crate::config::CpuDesign;
use crate::experiment::{run_cpu_multicore_configured, CpuOutcome};
use crate::report::Report;

/// Cache schema tag for exploration jobs. Candidates sweep axes the
/// plain campaign keys don't carry (V_dd, ROB depth), so they get their
/// own namespace; bump it whenever an axis changes meaning, and stale
/// disk caches retire themselves.
pub const EXPLORE_SCHEMA: &str = "explore-cpu-v1";

/// Default evaluation budget (candidates, not jobs).
pub const DEFAULT_BUDGET: usize = 16;

/// Default dynamic instructions per application per candidate.
pub const DEFAULT_EXPLORE_INSTS: u64 = 20_000;

/// The axis names of every design space, in canonical order. Sweep
/// specs (`--sweep AXIS=V1,V2,...`) must name one of these.
pub const AXES: [&str; 4] = ["design", "cores", "vdd", "rob"];

/// One cell of the design grid, materialized from its axis coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Device assignment (Table IV design).
    pub design: CpuDesign,
    /// Chip core count.
    pub cores: u32,
    /// DVFS operating point, named by its core frequency in GHz.
    pub vdd_ghz: f64,
    /// Reorder-buffer depth override.
    pub rob: u32,
}

impl Candidate {
    /// Stable human label, e.g. `AdvHet/8c/2.5GHz/rob192`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}c/{}GHz/rob{}",
            self.design.name(),
            self.cores,
            self.vdd_ghz,
            self.rob
        )
    }
}

/// A searchable design space: one value list per axis plus the
/// application subset candidates are evaluated on.
///
/// Axis value lists are kept sorted and deduplicated (Table IV order
/// for designs, ascending for the numeric axes), so the grid — and
/// with it the whole search — is a canonical function of the value
/// *sets*, not of the order a sweep spec happened to list them in.
#[derive(Debug, Clone)]
pub struct DesignSpace {
    /// Space name (`fig7` is the only built-in space today).
    pub name: String,
    /// Device-assignment axis.
    pub designs: Vec<CpuDesign>,
    /// Core-count axis.
    pub cores: Vec<u32>,
    /// V_dd axis, as DVFS core frequencies in GHz.
    pub vdd_ghz: Vec<f64>,
    /// ROB-depth axis.
    pub robs: Vec<u32>,
    /// Applications each candidate is evaluated on (objectives sum
    /// across them).
    pub apps: Vec<String>,
}

impl DesignSpace {
    /// The built-in space around the paper's Figure 7 campaign: all ten
    /// Table IV designs × {2, 4, 8} cores × the Figure 14 DVFS points
    /// × baseline/Enh ROB depths, evaluated on a four-app subset (two
    /// FP SPLASH-2 kernels, the integer-only radix, one PARSEC app) —
    /// 180 grid cells, far more than any sane budget, which is the
    /// point: the frontier search has room to steer.
    pub fn fig7() -> DesignSpace {
        DesignSpace {
            name: "fig7".to_string(),
            designs: CpuDesign::ALL.to_vec(),
            cores: vec![2, 4, 8],
            vdd_ghz: vec![1.5, 2.0, 2.5],
            robs: vec![160, 192],
            apps: vec![
                "fft".to_string(),
                "lu".to_string(),
                "radix".to_string(),
                "canneal".to_string(),
            ],
        }
    }

    /// Applies one `--sweep AXIS=V1[,V2...]` spec, replacing that
    /// axis's value list.
    ///
    /// # Errors
    ///
    /// Returns an actionable message for a malformed spec, an unknown
    /// axis name, an empty value list, or an unparsable value. Range
    /// checks that need the whole space (DVFS reachability, ROB vs.
    /// issue width) live in [`DesignSpace::validate`].
    pub fn apply_sweep(&mut self, spec: &str) -> Result<(), String> {
        let Some((axis, values)) = spec.split_once('=') else {
            return Err(format!("--sweep expects AXIS=V1[,V2,...], got '{spec}'"));
        };
        if values.is_empty() {
            return Err(format!("--sweep {axis}= lists no values"));
        }
        let values: Vec<&str> = values.split(',').collect();
        match axis {
            "design" => {
                let mut designs = Vec::new();
                for v in &values {
                    match CpuDesign::ALL.iter().find(|d| d.name() == *v) {
                        Some(d) => designs.push(*d),
                        None => {
                            return Err(format!(
                                "--sweep design value '{v}' is not a Table IV design \
                                 (designs: {})",
                                CpuDesign::ALL
                                    .iter()
                                    .map(|d| d.name())
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            ))
                        }
                    }
                }
                designs.sort_unstable();
                designs.dedup();
                self.designs = designs;
            }
            "cores" => {
                let mut cores = Vec::new();
                for v in &values {
                    match v.parse::<u32>() {
                        Ok(n) if n >= 1 => cores.push(n),
                        _ => return Err(format!("--sweep cores expects integers >= 1, got '{v}'")),
                    }
                }
                cores.sort_unstable();
                cores.dedup();
                self.cores = cores;
            }
            "vdd" => {
                let mut ghz = Vec::new();
                for v in &values {
                    match v.parse::<f64>() {
                        Ok(g) if g > 0.0 && g.is_finite() => ghz.push(g),
                        _ => {
                            return Err(format!(
                                "--sweep vdd expects frequencies in GHz > 0, got '{v}'"
                            ))
                        }
                    }
                }
                ghz.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                ghz.dedup();
                self.vdd_ghz = ghz;
            }
            "rob" => {
                let mut robs = Vec::new();
                for v in &values {
                    match v.parse::<u32>() {
                        Ok(n) if n >= 1 => robs.push(n),
                        _ => return Err(format!("--sweep rob expects integers >= 1, got '{v}'")),
                    }
                }
                robs.sort_unstable();
                robs.dedup();
                self.robs = robs;
            }
            other => {
                return Err(format!(
                    "--sweep axis '{other}' is not in the {} design space (axes: {})",
                    self.name,
                    AXES.join(", ")
                ))
            }
        }
        Ok(())
    }

    /// Checks the cross-axis constraints a sweep spec cannot see on its
    /// own: every app must exist, every V_dd point must be reachable on
    /// both rails, and every (design, ROB) pair must still be a valid
    /// core configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as an actionable message.
    pub fn validate(&self) -> Result<(), String> {
        let dvfs = DvfsController::new();
        for app in &self.apps {
            if apps::profile(app).is_none() {
                return Err(format!(
                    "unknown application '{app}' in the {} space",
                    self.name
                ));
            }
        }
        for &ghz in &self.vdd_ghz {
            if dvfs.operating_point(ghz * 1e9).is_none() {
                return Err(format!(
                    "--sweep vdd {ghz} GHz is not a reachable DVFS operating point \
                     (max {:.2} GHz)",
                    dvfs.max_frequency() / 1e9
                ));
            }
        }
        for &design in &self.designs {
            for &rob in &self.robs {
                let mut cfg = design.core_config();
                cfg.rob_entries = rob;
                cfg.validate().map_err(|e| {
                    format!("--sweep rob {rob} is invalid for {}: {e}", design.name())
                })?;
            }
        }
        Ok(())
    }

    /// Axis sizes in canonical order (design, cores, vdd, rob).
    fn dims(&self) -> [usize; 4] {
        [
            self.designs.len(),
            self.cores.len(),
            self.vdd_ghz.len(),
            self.robs.len(),
        ]
    }

    /// Number of grid cells.
    pub fn grid_size(&self) -> usize {
        self.dims().iter().product()
    }

    /// The coordinates of flat grid index `i` (design slowest-varying).
    fn coords_of(&self, i: usize) -> [usize; 4] {
        let [_, c, v, r] = self.dims();
        [i / (c * v * r), (i / (v * r)) % c, (i / r) % v, i % r]
    }

    /// Materializes the candidate at `coords`.
    fn candidate(&self, coords: [usize; 4]) -> Candidate {
        Candidate {
            design: self.designs[coords[0]],
            cores: self.cores[coords[1]],
            vdd_ghz: self.vdd_ghz[coords[2]],
            rob: self.robs[coords[3]],
        }
    }
}

/// Everything one search run needs besides the space itself.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Evaluation cap: candidates (not jobs) the search may evaluate.
    pub budget: usize,
    /// Base RNG seed for the simulated workloads (candidate selection
    /// uses no randomness).
    pub seed: u64,
    /// Dynamic instructions per application per candidate.
    pub insts: u64,
    /// Worker threads per shard runner.
    pub jobs: usize,
    /// Shard runners each wave's batch is partitioned across.
    pub shards: usize,
    /// On-disk result cache shared by all shards (in-memory only when
    /// `None`).
    pub cache_dir: Option<PathBuf>,
    /// Benchmark mode: skip cache probe/put entirely.
    pub cache_bypass: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            budget: DEFAULT_BUDGET,
            seed: 42,
            insts: DEFAULT_EXPLORE_INSTS,
            jobs: 1,
            shards: 1,
            cache_dir: None,
            cache_bypass: false,
        }
    }
}

/// One evaluated grid cell with its aggregate objectives (sums over the
/// space's application subset; all minimized).
#[derive(Debug, Clone)]
pub struct EvaluatedPoint {
    /// The design evaluated.
    pub candidate: Candidate,
    /// Total execution time (s).
    pub time_s: f64,
    /// Total chip energy (J).
    pub energy_j: f64,
    /// Energy-delay-squared product of the aggregates (J·s²).
    pub ed2: f64,
    /// Instructions committed across all apps (exact-match anchor for
    /// the regression gate's counter lane).
    pub committed: u64,
}

impl EvaluatedPoint {
    /// The minimized objective vector, in dump order.
    pub fn objectives(&self) -> Vec<f64> {
        vec![self.time_s, self.energy_j, self.ed2]
    }
}

/// Deterministic runner counters summed across every shard and wave.
///
/// Unlike the full [`hetsim_runner::RunnerStats`] (which is declared
/// nondeterministic because it carries wall time and cache-layer
/// provenance), these three totals are pure functions of the search and
/// the disk-cache state, so they can live in a byte-compared dump: two
/// cold runs agree exactly, and a warm rerun differs only here — which
/// the regression gate's `runner.*` exemption already absorbs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreCounters {
    /// Jobs submitted (candidates × apps).
    pub jobs: u64,
    /// Jobs actually simulated (cache misses).
    pub executed: u64,
    /// Jobs answered from cache.
    pub cache_hits: u64,
}

/// The outcome of one search: every evaluated point (in evaluation
/// order), the frontier as indices into that list, and the provenance
/// needed to replay the search exactly.
#[derive(Debug, Clone)]
pub struct ExploreResult {
    /// The (possibly swept) space that was searched.
    pub space: DesignSpace,
    /// The evaluation cap the search ran under.
    pub budget: usize,
    /// Workload seed.
    pub seed: u64,
    /// Instructions per application per candidate.
    pub insts: u64,
    /// Grid cells in the space.
    pub grid: usize,
    /// Every evaluated point, in evaluation order.
    pub evaluated: Vec<EvaluatedPoint>,
    /// Frontier membership: indices into `evaluated`, sorted by
    /// ascending time (then energy, then ED²).
    pub frontier: Vec<usize>,
    /// Deterministic runner totals.
    pub runner: ExploreCounters,
}

/// Job key for one (candidate, app) evaluation. Everything that can
/// change the outcome feeds the key.
pub fn explore_job_key(c: &Candidate, app: &str, seed: u64, insts: u64) -> JobKey {
    JobKey::of(&config_object(vec![
        ("schema", Value::Str(EXPLORE_SCHEMA.into())),
        ("design", c.design.to_value()),
        ("cores", c.cores.to_value()),
        ("vdd_ghz", c.vdd_ghz.to_value()),
        ("rob", c.rob.to_value()),
        ("profile", Value::Str(app.into())),
        ("seed", seed.to_value()),
        ("insts", insts.to_value()),
    ]))
}

/// Builds the runnable job for one (candidate, app) pair: the design's
/// Table IV configuration with the candidate's ROB override, the clock
/// scaled to the operating point (preserving relative clocks, as the
/// Figure 14 sweep does), and the energy model repriced at the
/// operating point's rail voltages.
fn explore_job(c: Candidate, app_name: &str, seed: u64, insts: u64) -> Job<CpuOutcome> {
    let key = explore_job_key(&c, app_name, seed, insts);
    let label = format!("explore/{app_name}/{}", c.label());
    let app = apps::profile(app_name).expect("space validated before jobs are built");
    Job::new(key, label, move || {
        let dvfs = DvfsController::new();
        let nominal = dvfs.nominal();
        let hz = c.vdd_ghz * 1e9;
        let point = dvfs
            .operating_point(hz)
            .expect("space validated before jobs are built");
        let volts = VoltageFactors::from_voltages(
            point.v_cmos,
            nominal.v_cmos,
            point.v_tfet,
            nominal.v_tfet,
        );
        let mut cfg = c.design.core_config();
        cfg.rob_entries = c.rob;
        cfg.clock_hz = hz * (cfg.clock_hz / 2.0e9); // keep relative clocks
        let model = c.design.energy_model().with_voltages(volts);
        run_cpu_multicore_configured(c.design, &cfg, &model, c.cores, &app, seed, insts)
    })
}

/// Runs the search. See the module docs for the algorithm; in short:
/// stride-sample half the budget across the grid, repeatedly evaluate
/// the unevaluated ±1-step axis neighbors of the current frontier, and
/// spend any refinement-left-over budget sweeping unseen cells in grid
/// order, until the budget is spent or the grid is exhausted.
///
/// # Errors
///
/// Returns an actionable message for an invalid space or an unusable
/// cache directory. Shard/budget bounds are the caller's contract
/// (the CLI validates them): both must be ≥ 1.
pub fn explore(space: &DesignSpace, cfg: &ExploreConfig) -> Result<ExploreResult, String> {
    assert!(cfg.budget >= 1, "budget must be >= 1");
    assert!(cfg.shards >= 1, "shards must be >= 1");
    space.validate()?;

    // One persistent runner per shard: the key→shard mapping is stable,
    // so each runner's in-memory cache stays valid across waves, and
    // all runners share the one on-disk cache.
    let per_shard_jobs = (cfg.jobs / cfg.shards).max(1);
    let mut runners = Vec::with_capacity(cfg.shards);
    for _ in 0..cfg.shards {
        let mut runner = Runner::new(per_shard_jobs);
        if let Some(dir) = &cfg.cache_dir {
            runner = runner
                .with_cache_dir(dir)
                .map_err(|e| format!("cannot use cache dir {}: {e}", dir.display()))?;
        }
        runners.push(runner.with_cache_bypass(cfg.cache_bypass));
    }

    let grid = space.grid_size();
    let budget = cfg.budget.min(grid);
    let mut seen: HashSet<[usize; 4]> = HashSet::new();
    let mut coords_order: Vec<[usize; 4]> = Vec::new();
    let mut evaluated: Vec<EvaluatedPoint> = Vec::new();

    // Wave 0: a deterministic stride sample spreads roughly half the
    // budget across the whole grid so refinement has gradients to
    // follow; the remainder is spent walking toward the frontier.
    let sample = budget.div_ceil(2).min(grid);
    let mut wave: Vec<[usize; 4]> = (0..sample)
        .map(|i| space.coords_of(i * grid / sample))
        .collect();

    loop {
        wave.retain(|c| !seen.contains(c));
        wave.truncate(budget - evaluated.len());
        if wave.is_empty() {
            break;
        }
        let outcomes = evaluate_wave(space, cfg, &runners, &wave);
        for (coords, point) in wave.iter().zip(outcomes) {
            seen.insert(*coords);
            coords_order.push(*coords);
            evaluated.push(point);
        }
        if evaluated.len() >= budget {
            break;
        }
        // Adaptive refinement: enqueue the unevaluated ±1-step axis
        // neighbors of the current frontier, in canonical grid order.
        let objectives: Vec<Vec<f64>> = evaluated.iter().map(EvaluatedPoint::objectives).collect();
        let mut frontier_coords: Vec<[usize; 4]> = pareto::frontier_indices(&objectives)
            .into_iter()
            .map(|i| coords_order[i])
            .collect();
        frontier_coords.sort_unstable();
        let dims = space.dims();
        let mut queued: HashSet<[usize; 4]> = HashSet::new();
        wave = Vec::new();
        for fc in frontier_coords {
            for axis in 0..4 {
                for step in [-1isize, 1] {
                    let pos = fc[axis] as isize + step;
                    if pos < 0 || pos as usize >= dims[axis] {
                        continue;
                    }
                    let mut n = fc;
                    n[axis] = pos as usize;
                    if !seen.contains(&n) && queued.insert(n) {
                        wave.push(n);
                    }
                }
            }
        }
        // Refinement can dry up with budget to spare: every neighbor of
        // the frontier already seen, but unseen cells left in dominated
        // basins no frontier walk reaches. The budget is the cap the
        // search is entitled to spend, so fall back to the canonical
        // sweep over whatever is still unseen.
        if wave.is_empty() {
            wave = (0..grid)
                .map(|i| space.coords_of(i))
                .filter(|c| !seen.contains(c))
                .take(budget - evaluated.len())
                .collect();
        }
    }

    // Final frontier, sorted canonically by objectives (coords break
    // exact ties, though the simulators never produce any in practice).
    let objectives: Vec<Vec<f64>> = evaluated.iter().map(EvaluatedPoint::objectives).collect();
    let mut frontier = pareto::frontier_indices(&objectives);
    frontier.sort_by(|&a, &b| {
        let (pa, pb) = (&evaluated[a], &evaluated[b]);
        (pa.time_s, pa.energy_j, pa.ed2)
            .partial_cmp(&(pb.time_s, pb.energy_j, pb.ed2))
            .expect("NaN objectives are rejected by the frontier computation")
            .then_with(|| coords_order[a].cmp(&coords_order[b]))
    });

    let mut runner = ExploreCounters::default();
    for r in &runners {
        let totals = r.total_stats();
        runner.jobs += totals.jobs;
        runner.executed += totals.executed;
        runner.cache_hits += totals.cache_hits;
    }

    Ok(ExploreResult {
        space: space.clone(),
        budget: cfg.budget,
        seed: cfg.seed,
        insts: cfg.insts,
        grid,
        evaluated,
        frontier,
        runner,
    })
}

/// Evaluates one wave of candidates: builds the (candidate × app) job
/// batch, partitions it across the shard runners by [`JobKey::shard_of`]
/// (the same coordination-free split the campaign shard protocol uses),
/// runs the shards on scoped threads, merges outcomes back by
/// submission index, and folds each candidate's per-app outcomes into
/// its aggregate objectives.
fn evaluate_wave(
    space: &DesignSpace,
    cfg: &ExploreConfig,
    runners: &[Runner<CpuOutcome>],
    wave: &[[usize; 4]],
) -> Vec<EvaluatedPoint> {
    let apps_n = space.apps.len();
    let shards = runners.len();
    let mut per_shard: Vec<Vec<(usize, Job<CpuOutcome>)>> =
        (0..shards).map(|_| Vec::new()).collect();
    for (ci, &coords) in wave.iter().enumerate() {
        let candidate = space.candidate(coords);
        for (ai, app) in space.apps.iter().enumerate() {
            let job = explore_job(candidate, app, cfg.seed, cfg.insts);
            per_shard[job.key.shard_of(shards)].push((ci * apps_n + ai, job));
        }
    }

    let mut slots: Vec<Option<CpuOutcome>> = (0..wave.len() * apps_n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = per_shard
            .into_iter()
            .zip(runners)
            .map(|(shard_jobs, runner)| {
                s.spawn(move || {
                    let (indices, batch): (Vec<usize>, Vec<Job<CpuOutcome>>) =
                        shard_jobs.into_iter().unzip();
                    indices
                        .into_iter()
                        .zip(runner.run(batch))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (index, outcome) in handle.join().expect("shard thread") {
                slots[index] = Some(outcome);
            }
        }
    });

    wave.iter()
        .enumerate()
        .map(|(ci, &coords)| {
            let mut time_s = 0.0;
            let mut energy_j = 0.0;
            let mut committed = 0;
            for slot in &slots[ci * apps_n..(ci + 1) * apps_n] {
                let outcome = slot.as_ref().expect("every job merged back");
                time_s += outcome.seconds;
                energy_j += outcome.energy.total_j();
                committed += outcome.committed;
            }
            EvaluatedPoint {
                candidate: space.candidate(coords),
                time_s,
                energy_j,
                ed2: energy_j * time_s * time_s,
                committed,
            }
        })
        .collect()
}

impl ExploreResult {
    /// Instructions committed across every evaluated candidate (the
    /// bench scenario's throughput numerator).
    pub fn total_committed(&self) -> u64 {
        self.evaluated.iter().map(|p| p.committed).sum()
    }

    /// The frontier as a paper-shaped [`Report`]: one row per frontier
    /// point, columns in objective order. Rendered in µs/µJ/fJ·s² so
    /// the fixed-precision table stays legible at simulation-scale
    /// budgets (the dump keeps plain SI units).
    pub fn frontier_report(&self) -> Report {
        let mut report = Report::new(
            format!(
                "Pareto frontier: {} space, {} of {} candidates evaluated (budget {})",
                self.space.name,
                self.evaluated.len(),
                self.grid,
                self.budget
            ),
            vec!["time_us".into(), "energy_uJ".into(), "ed2_fJs2".into()],
        );
        for &i in &self.frontier {
            let p = &self.evaluated[i];
            report.push_row(
                p.candidate.label(),
                vec![p.time_s * 1e6, p.energy_j * 1e6, p.ed2 * 1e15],
            );
        }
        report
    }

    /// Serializes the frontier dump as pretty-printed JSON. The layout
    /// is fixed — `schema`, `explore` (search provenance), `frontier`,
    /// `evaluated`, `runner` — so two runs of the same search produce
    /// byte-identical text except, on a warm cache, the `runner`
    /// section the diff policy already exempts.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("value trees always serialize")
    }

    /// Writes the frontier dump to `path` through the runner's atomic
    /// temp-file+rename path, creating missing parent directories.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be
    /// created or either write step fails.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        hetsim_runner::write_atomic(path, &self.to_json())
    }
}

fn point_value(p: &EvaluatedPoint) -> Value {
    Value::Object(vec![
        (
            "design".into(),
            Value::Str(p.candidate.design.name().into()),
        ),
        ("cores".into(), p.candidate.cores.to_value()),
        ("vdd_ghz".into(), p.candidate.vdd_ghz.to_value()),
        ("rob".into(), p.candidate.rob.to_value()),
        ("committed".into(), p.committed.to_value()),
        ("time_s".into(), p.time_s.to_value()),
        ("energy_j".into(), p.energy_j.to_value()),
        ("ed2".into(), p.ed2.to_value()),
    ])
}

impl Serialize for ExploreResult {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "schema".into(),
                Value::Object(vec![("explore".into(), Value::Str(EXPLORE_SCHEMA.into()))]),
            ),
            (
                "explore".into(),
                Value::Object(vec![
                    ("space".into(), Value::Str(self.space.name.clone())),
                    ("budget".into(), (self.budget as u64).to_value()),
                    ("seed".into(), self.seed.to_value()),
                    ("insts".into(), self.insts.to_value()),
                    (
                        "apps".into(),
                        Value::Array(
                            self.space
                                .apps
                                .iter()
                                .map(|a| Value::Str(a.clone()))
                                .collect(),
                        ),
                    ),
                    (
                        "axes".into(),
                        Value::Object(vec![
                            (
                                "design".into(),
                                Value::Array(
                                    self.space
                                        .designs
                                        .iter()
                                        .map(|d| Value::Str(d.name().into()))
                                        .collect(),
                                ),
                            ),
                            (
                                "cores".into(),
                                Value::Array(
                                    self.space.cores.iter().map(|c| c.to_value()).collect(),
                                ),
                            ),
                            (
                                "vdd_ghz".into(),
                                Value::Array(
                                    self.space.vdd_ghz.iter().map(|g| g.to_value()).collect(),
                                ),
                            ),
                            (
                                "rob".into(),
                                Value::Array(
                                    self.space.robs.iter().map(|r| r.to_value()).collect(),
                                ),
                            ),
                        ]),
                    ),
                    ("grid".into(), (self.grid as u64).to_value()),
                    (
                        "evaluations".into(),
                        (self.evaluated.len() as u64).to_value(),
                    ),
                ]),
            ),
            (
                "frontier".into(),
                Value::Array(
                    self.frontier
                        .iter()
                        .map(|&i| point_value(&self.evaluated[i]))
                        .collect(),
                ),
            ),
            (
                "evaluated".into(),
                Value::Array(self.evaluated.iter().map(point_value).collect()),
            ),
            (
                "runner".into(),
                Value::Object(vec![
                    ("jobs".into(), self.runner.jobs.to_value()),
                    ("executed".into(), self.runner.executed.to_value()),
                    ("cache_hits".into(), self.runner.cache_hits.to_value()),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_space() -> DesignSpace {
        let mut space = DesignSpace::fig7();
        space.apps = vec!["radix".to_string()];
        space
            .apply_sweep("design=BaseCMOS,AdvHet")
            .expect("valid sweep");
        space.apply_sweep("cores=2").expect("valid sweep");
        space.apply_sweep("vdd=2.0").expect("valid sweep");
        space.apply_sweep("rob=160,192").expect("valid sweep");
        space
    }

    fn quick_cfg(budget: usize) -> ExploreConfig {
        ExploreConfig {
            budget,
            seed: 7,
            insts: 2_000,
            jobs: 2,
            ..ExploreConfig::default()
        }
    }

    #[test]
    fn fig7_space_shape_is_pinned() {
        let space = DesignSpace::fig7();
        assert_eq!(space.grid_size(), 10 * 3 * 3 * 2);
        assert_eq!(space.apps, ["fft", "lu", "radix", "canneal"]);
        space.validate().expect("built-in space is valid");
    }

    #[test]
    fn coords_round_trip_the_whole_grid() {
        let space = DesignSpace::fig7();
        let dims = space.dims();
        let mut seen = HashSet::new();
        for i in 0..space.grid_size() {
            let c = space.coords_of(i);
            for (axis, &pos) in c.iter().enumerate() {
                assert!(pos < dims[axis], "cell {i} axis {axis} in range");
            }
            assert!(seen.insert(c), "cell {i} is distinct");
        }
    }

    #[test]
    fn sweeps_canonicalize_and_reject_unknowns() {
        let mut space = DesignSpace::fig7();
        space.apply_sweep("cores=8,2,8").expect("valid");
        assert_eq!(space.cores, [2, 8], "sorted and deduplicated");
        space.apply_sweep("design=AdvHet,BaseCMOS").expect("valid");
        assert_eq!(space.designs, [CpuDesign::BaseCmos, CpuDesign::AdvHet]);
        let err = space.apply_sweep("depth=5").expect_err("unknown axis");
        assert!(err.contains("axes: design, cores, vdd, rob"), "{err}");
        let err = space.apply_sweep("cores=many").expect_err("bad value");
        assert!(err.contains("'many'"), "{err}");
        let err = space.apply_sweep("cores").expect_err("no values");
        assert!(err.contains("AXIS=V1"), "{err}");
    }

    #[test]
    fn validate_rejects_unreachable_vdd_and_absurd_rob() {
        let mut space = DesignSpace::fig7();
        space.apply_sweep("vdd=9.75").expect("parses");
        let err = space.validate().expect_err("unreachable point");
        assert!(err.contains("9.75"), "{err}");

        let mut space = DesignSpace::fig7();
        space.apply_sweep("rob=1").expect("parses");
        let err = space.validate().expect_err("ROB below issue width");
        assert!(err.contains("rob 1"), "{err}");
    }

    #[test]
    fn search_is_deterministic_and_respects_the_budget() {
        let space = tiny_space();
        let a = explore(&space, &quick_cfg(3)).expect("search runs");
        let b = explore(&space, &quick_cfg(3)).expect("search runs");
        assert!(a.evaluated.len() <= 3);
        assert!(!a.frontier.is_empty());
        assert_eq!(a.to_json(), b.to_json(), "same seed+budget, same bytes");
    }

    #[test]
    fn budget_larger_than_grid_evaluates_everything_once() {
        let space = tiny_space();
        let result = explore(&space, &quick_cfg(100)).expect("search runs");
        assert_eq!(result.evaluated.len(), space.grid_size());
        assert_eq!(result.runner.jobs, result.runner.executed);
    }

    #[test]
    fn frontier_points_are_mutually_non_dominating() {
        let space = tiny_space();
        let result = explore(&space, &quick_cfg(4)).expect("search runs");
        for &a in &result.frontier {
            for &b in &result.frontier {
                if a != b {
                    assert!(!pareto::dominates(
                        &result.evaluated[a].objectives(),
                        &result.evaluated[b].objectives()
                    ));
                }
            }
        }
    }

    #[test]
    fn shard_count_is_invisible_in_the_dump() {
        let space = tiny_space();
        let one = explore(&space, &quick_cfg(4)).expect("search runs");
        let two = explore(
            &space,
            &ExploreConfig {
                shards: 2,
                ..quick_cfg(4)
            },
        )
        .expect("search runs");
        assert_eq!(one.to_json(), two.to_json());
    }
}
