//! Guards the cache-schema contract: the on-disk result cache keys
//! every outcome under a schema tag (`cpu-v2` / `gpu-v2`), and the
//! contract (see `hetcore::campaign`) is that the tag is bumped
//! whenever the serialized outcome *layout* changes — otherwise stale
//! caches deserialize into garbage, or fail to deserialize at all,
//! silently.
//!
//! This test pins a fingerprint of the layout (the recursive shape of
//! a serialized [`hetcore::CpuOutcome`] / [`hetcore::GpuOutcome`]:
//! field names and value types, *not* values) next to the current
//! schema tags. Changing the layout without bumping the tag trips the
//! fingerprint assertion; bumping the tag without cause trips the tag
//! assertion. Either way the failure message says what to do.

use hetcore::{run_cpu_multicore, run_gpu, CpuDesign, GpuDesign, CPU_SCHEMA, GPU_SCHEMA};
use hetsim_runner::JobKey;
use serde::value::Value;
use serde::Serialize;

/// The schema tags these fingerprints were pinned under.
const PINNED_CPU_SCHEMA: &str = "cpu-v2";
const PINNED_GPU_SCHEMA: &str = "gpu-v2";

/// Fingerprints of the serialized outcome shapes under the pinned
/// tags. Regenerate by running this test and copying the values from
/// the failure message.
const PINNED_CPU_SHAPE: &str = "ecaf7dbdb3399fb60bfa077b988ef196";
const PINNED_GPU_SHAPE: &str = "32c88f82d76617abfaf6d90470487542";

/// The recursive *shape* of a serialized value: object keys and leaf
/// type tags, never values. Arrays contribute the shape of their first
/// element (outcome arrays are homogeneous).
fn shape(v: &Value) -> String {
    match v {
        Value::Null => "null".into(),
        Value::Bool(_) => "bool".into(),
        Value::Int(_) => "int".into(),
        Value::UInt(_) => "uint".into(),
        Value::Float(_) => "float".into(),
        Value::Str(_) => "str".into(),
        Value::Array(items) => match items.first() {
            Some(first) => format!("[{}]", shape(first)),
            None => "[]".into(),
        },
        Value::Object(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("{k}:{}", shape(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

fn fingerprint(v: &Value) -> String {
    JobKey::from_bytes(shape(v).as_bytes()).hex()
}

const BUMP_HELP: &str = "\n\
    The serialized outcome layout changed. You MUST:\n\
    1. bump the schema tag in crates/core/src/campaign.rs\n\
       (CPU_SCHEMA / GPU_SCHEMA, e.g. cpu-v2 -> cpu-v3) so stale\n\
       on-disk caches retire themselves,\n\
    2. update PINNED_*_SCHEMA and PINNED_*_SHAPE in this test to the\n\
       values printed above,\n\
    3. regenerate the goldens (UPDATE_GOLDEN=1 cargo test -p hetcore\n\
       --test golden_repro) and the baselines\n\
       (cargo run --bin repro -- baseline baselines).";

#[test]
fn cpu_outcome_layout_matches_the_pinned_schema_tag() {
    assert_eq!(
        CPU_SCHEMA, PINNED_CPU_SCHEMA,
        "CPU_SCHEMA was bumped: re-pin PINNED_CPU_SCHEMA and \
         PINNED_CPU_SHAPE here (run this test for the new fingerprint)"
    );
    let app = hetsim_trace::apps::profile("lu").expect("known app");
    let outcome = run_cpu_multicore(CpuDesign::AdvHet, 2, &app, 42, 2_000);
    let actual = fingerprint(&outcome.to_value());
    assert_eq!(
        actual,
        PINNED_CPU_SHAPE,
        "CpuOutcome shape fingerprint drifted (new fingerprint: {actual}, \
         shape: {}).{BUMP_HELP}",
        shape(&outcome.to_value())
    );
}

#[test]
fn gpu_outcome_layout_matches_the_pinned_schema_tag() {
    assert_eq!(
        GPU_SCHEMA, PINNED_GPU_SCHEMA,
        "GPU_SCHEMA was bumped: re-pin PINNED_GPU_SCHEMA and \
         PINNED_GPU_SHAPE here (run this test for the new fingerprint)"
    );
    let kernel = hetsim_gpu::kernels::profile("nbody").expect("known kernel");
    let outcome = run_gpu(GpuDesign::AdvHet, &kernel, 42);
    let actual = fingerprint(&outcome.to_value());
    assert_eq!(
        actual,
        PINNED_GPU_SHAPE,
        "GpuOutcome shape fingerprint drifted (new fingerprint: {actual}, \
         shape: {}).{BUMP_HELP}",
        shape(&outcome.to_value())
    );
}

#[test]
fn shape_ignores_values_but_not_structure() {
    let a = Value::Object(vec![
        ("x".into(), Value::UInt(1)),
        ("y".into(), Value::Float(0.5)),
    ]);
    let b = Value::Object(vec![
        ("x".into(), Value::UInt(999)),
        ("y".into(), Value::Float(2.25)),
    ]);
    assert_eq!(shape(&a), shape(&b), "values never affect the shape");
    let c = Value::Object(vec![
        ("x".into(), Value::UInt(1)),
        ("z".into(), Value::Float(0.5)),
    ]);
    assert_ne!(shape(&a), shape(&c), "renamed fields change the shape");
}
