//! Argument-validation tests for the `repro` subcommands: bad flags must
//! be rejected up front — before any simulation starts — with a named
//! error on stderr, the usage text, and a non-zero exit.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro runs")
}

/// Asserts the invocation is rejected with `expected` somewhere in the
/// error output (plus the usage text) — and fast, proving nothing ran.
fn assert_rejected(args: &[&str], expected: &str) {
    let out = repro(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "{args:?} must exit non-zero; stderr: {stderr}"
    );
    assert!(
        stderr.contains(expected),
        "{args:?}: expected error containing '{expected}', got: {stderr}"
    );
    assert!(stderr.contains("usage: repro"), "usage follows the error");
}

#[test]
fn check_rejects_zero_fuzz_rounds() {
    assert_rejected(
        &["check", "--fuzz", "0"],
        "--fuzz expects an integer >= 1, got '0'",
    );
}

#[test]
fn check_rejects_non_numeric_fuzz_and_seed() {
    assert_rejected(
        &["check", "--fuzz", "lots"],
        "--fuzz expects an integer >= 1, got 'lots'",
    );
    assert_rejected(
        &["check", "--seed", "0x2a"],
        "--seed expects an integer, got '0x2a'",
    );
}

#[test]
fn check_rejects_unknown_format_and_csv() {
    assert_rejected(
        &["check", "--format", "yaml"],
        "--format expects table, json or csv, got 'yaml'",
    );
    // csv is a valid repro format but check does not render it.
    assert_rejected(
        &["check", "--format", "csv"],
        "check supports --format table or json",
    );
}

#[test]
fn check_rejects_unknown_arguments_and_missing_values() {
    assert_rejected(&["check", "--verbose"], "unknown argument '--verbose'");
    assert_rejected(&["check", "fig7"], "unknown argument 'fig7'");
    assert_rejected(&["check", "--seed"], "--seed requires a value");
}

#[test]
fn check_collects_every_error_not_just_the_first() {
    let out = repro(&["check", "--fuzz", "0", "--format", "yaml", "--bogus"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success());
    for expected in [
        "--fuzz expects an integer >= 1",
        "--format expects table, json or csv",
        "unknown argument '--bogus'",
    ] {
        assert!(stderr.contains(expected), "missing '{expected}': {stderr}");
    }
}

#[test]
fn run_rejects_bad_progress_and_missing_trace_out_value() {
    assert_rejected(
        &["--progress=bogus", "fig7"],
        "--progress expects stderr or dashboard, got 'bogus'",
    );
    assert_rejected(&["fig7", "--trace-out"], "--trace-out requires a value");
}

#[test]
fn check_rejects_trace_in_combined_with_campaign_flags() {
    assert_rejected(
        &["check", "--trace-in", "t.jsonl", "--fuzz", "2"],
        "--trace-in validates an existing trace; it cannot be combined with",
    );
}

#[test]
fn check_fails_cleanly_on_missing_trace_file() {
    let out = repro(&["check", "--trace-in", "/nonexistent/t.jsonl"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success());
    assert!(
        stderr.contains("error:") && stderr.contains("/nonexistent/t.jsonl"),
        "names the unreadable file: {stderr}"
    );
}

#[test]
fn trace_export_rejects_wrong_path_count_and_unknown_flags() {
    // At least one input and the output are required; more inputs are
    // fine (per-worker traces of a sharded run stitch before export).
    assert_rejected(
        &["trace-export", "only-in.jsonl"],
        "trace-export expects IN.jsonl [IN2.jsonl]... and OUT.json, got 1 path(s)",
    );
    assert_rejected(
        &["trace-export"],
        "trace-export expects IN.jsonl [IN2.jsonl]... and OUT.json, got 0 path(s)",
    );
    assert_rejected(
        &["trace-export", "--wat", "a.jsonl", "b.json"],
        "unknown flag '--wat'",
    );
}

#[test]
fn explore_rejects_zero_budget_and_bad_counts() {
    assert_rejected(
        &["explore", "--budget", "0"],
        "--budget expects an integer >= 1, got '0'",
    );
    assert_rejected(
        &["explore", "--shards", "0"],
        "--shards expects an integer >= 1, got '0'",
    );
    assert_rejected(
        &["explore", "--insts", "many"],
        "--insts expects an integer >= 1, got 'many'",
    );
}

#[test]
fn explore_rejects_conflicting_output_destinations() {
    // --format json already streams the dump to stdout; adding a file
    // destination would silently pick one. Refuse instead.
    assert_rejected(
        &["explore", "--format", "json", "--frontier-out", "f.json"],
        "--format json writes the frontier dump to stdout; it cannot be combined with",
    );
}

#[test]
fn explore_rejects_unknown_sweep_axes_and_values() {
    assert_rejected(
        &["explore", "--sweep", "depth=5"],
        "--sweep axis 'depth' is not in the fig7 design space (axes: design, cores, vdd, rob)",
    );
    assert_rejected(
        &["explore", "--sweep", "design=Imaginary"],
        "--sweep design value 'Imaginary' is not a Table IV design",
    );
    assert_rejected(
        &["explore", "--sweep", "cores"],
        "--sweep expects AXIS=V1[,V2,...], got 'cores'",
    );
    assert_rejected(
        &["explore", "--sweep", "rob="],
        "--sweep rob= lists no values",
    );
}

#[test]
fn explore_rejects_unknown_arguments_and_spaces() {
    assert_rejected(
        &["explore", "--space", "fig13"],
        "--space expects fig7, got 'fig13'",
    );
    assert_rejected(&["explore", "fig7"], "unknown argument 'fig7'");
    assert_rejected(
        &["explore", "--frontier-out"],
        "--frontier-out requires a value",
    );
}

#[test]
fn explore_collects_every_error_not_just_the_first() {
    let out = repro(&["explore", "--budget", "0", "--sweep", "depth=5", "--bogus"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success());
    for expected in [
        "--budget expects an integer >= 1",
        "--sweep axis 'depth' is not in the fig7 design space",
        "unknown argument '--bogus'",
    ] {
        assert!(stderr.contains(expected), "missing '{expected}': {stderr}");
    }
}

#[test]
fn diff_rejects_wrong_file_count() {
    assert_rejected(
        &["diff", "only-one.json"],
        "diff expects exactly two dump files, got 1",
    );
    assert_rejected(&["diff"], "diff expects exactly two dump files, got 0");
}

#[test]
fn diff_rejects_bad_tolerance_and_unknown_flags() {
    assert_rejected(
        &["diff", "a.json", "b.json", "--rel-tol", "-0.5"],
        "--rel-tol expects a number >= 0, got '-0.5'",
    );
    assert_rejected(
        &["diff", "a.json", "b.json", "--wat"],
        "unknown flag '--wat'",
    );
}

#[test]
fn diff_fails_cleanly_on_missing_files() {
    let out = repro(&["diff", "/nonexistent/a.json", "/nonexistent/b.json"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success());
    assert!(
        stderr.contains("error:") && stderr.contains("/nonexistent/a.json"),
        "names the unreadable file: {stderr}"
    );
}
