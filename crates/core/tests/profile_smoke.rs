//! End-to-end smoke tests for the cycle-attribution profiler.
//!
//! Runs the real `repro` binary and checks the whole chain: `repro
//! profile` emits a `hetsim-profile-v1` document whose classes sum to
//! the attributed cycles for every unit, the folded-stack and Perfetto
//! counter-track exports are well-formed, a sharded profile merges to
//! the same document a single process produces, and — the headline
//! guarantee — stdout stays byte-identical whether or not profiling
//! is on.

use std::path::PathBuf;
use std::process::{Command, Output};

use hetsim_obs::{CycleProfile, PROFILE_SCHEMA};
use hetsim_stats::attribution::CycleClass;
use serde::value::Value;
use serde::Deserialize as _;

/// Instruction budget (matches the golden snapshots; small enough for
/// a quick run, large enough that every design executes real work).
const INSTS: &str = "3000";

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro runs")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "hetcore-profile-smoke-{}-{name}",
        std::process::id()
    ))
}

fn load_profile(path: &PathBuf) -> CycleProfile {
    let text = std::fs::read_to_string(path).expect("profile written");
    let value: Value = serde_json::from_str(&text).expect("profile is valid JSON");
    assert_eq!(
        value.get("schema").and_then(Value::as_str),
        Some(PROFILE_SCHEMA)
    );
    CycleProfile::from_value(&value).expect("profile deserializes")
}

/// Every row's classes must sum to its attributed cycles — the same
/// conservation invariant `hetsim-check` enforces inside the
/// simulators, replayed here on the serialized artifact.
fn assert_conservation(profile: &CycleProfile) {
    assert!(!profile.is_empty(), "profile has rows");
    for row in profile.rows() {
        assert_eq!(
            row.classes.total(),
            row.cycles,
            "classes must sum to cycles for {}/{}",
            row.design,
            row.unit
        );
    }
}

#[test]
fn profile_document_conserves_cycles_and_exports() {
    let doc_path = tmp("profile.json");
    let counters_path = tmp("counters.json");

    let out = repro(&[
        "profile",
        "--insts",
        INSTS,
        "--format",
        "json",
        "--out",
        &doc_path.to_string_lossy(),
        "--counters-out",
        &counters_path.to_string_lossy(),
    ]);
    assert!(
        out.status.success(),
        "profile run fails: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let profile = load_profile(&doc_path);
    assert_conservation(&profile);
    // Both device campaigns contribute: CPU cores and GPU CUs.
    assert!(profile.rows().iter().any(|r| r.unit.starts_with("core")));
    assert!(profile.rows().iter().any(|r| r.unit.starts_with("cu")));
    // CPU rows carry the occupancy histograms the tentpole promises.
    let core = profile
        .rows()
        .iter()
        .find(|r| r.unit.starts_with("core"))
        .expect("a core row");
    for name in ["rob", "iq", "lsq"] {
        assert!(
            core.histograms.iter().any(|(n, _)| n == name),
            "core rows carry a `{name}` occupancy histogram"
        );
    }
    // GPU rows carry wave residency.
    let cu = profile
        .rows()
        .iter()
        .find(|r| r.unit.starts_with("cu"))
        .expect("a cu row");
    assert!(cu.histograms.iter().any(|(n, _)| n == "residency"));

    // The counter-track doc is Chrome-trace shaped: "C" events on one
    // lane per design, args keyed by class names.
    let text = std::fs::read_to_string(&counters_path).expect("counters written");
    let doc: Value = serde_json::from_str(&text).expect("counters are valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    let counters: Vec<&Value> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("C"))
        .collect();
    assert_eq!(counters.len(), profile.rows().len(), "one counter per unit");
    for event in &counters {
        let args = event.get("args").expect("counter args");
        for class in CycleClass::ALL {
            assert!(
                args.get(class.name()).is_some(),
                "counter carries the `{}` series",
                class.name()
            );
        }
    }

    for path in [&doc_path, &counters_path] {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn folded_stacks_parse_and_use_known_class_names() {
    let out = repro(&["profile", "--insts", INSTS, "--format", "folded", "fig7"]);
    assert!(
        out.status.success(),
        "folded profile fails: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.trim().is_empty(), "folded output has lines");
    for line in stdout.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("`stack count` shape");
        count.parse::<u64>().expect("count is a number");
        let frames: Vec<&str> = stack.split(';').collect();
        assert_eq!(frames.len(), 3, "design;unit;class: {line}");
        assert!(
            CycleClass::from_name(frames[2]).is_some(),
            "unknown class `{}` in folded output",
            frames[2]
        );
    }
}

#[test]
fn sharded_profile_merges_to_the_single_process_document() {
    let single_path = tmp("single.json");
    let sharded_path = tmp("sharded.json");
    for (shards, path) in [(None, &single_path), (Some("3"), &sharded_path)] {
        let path_arg = path.to_string_lossy().into_owned();
        let mut args = vec![
            "profile", "--insts", INSTS, "--format", "json", "--out", &path_arg, "fig7",
        ];
        if let Some(n) = shards {
            args.extend(["--shards", n]);
        }
        let out = repro(&args);
        assert!(
            out.status.success(),
            "profile run fails: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let single = load_profile(&single_path);
    let sharded = load_profile(&sharded_path);
    assert_conservation(&sharded);
    assert_eq!(
        single, sharded,
        "worker fragments must merge to exactly the single-process document"
    );
    for path in [&single_path, &sharded_path] {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn stdout_is_byte_identical_with_and_without_profiling() {
    let profile_path = tmp("identity.json");
    let stats_plain = tmp("stats-plain.json");
    let stats_profiled = tmp("stats-profiled.json");

    let plain = repro(&[
        "--insts",
        INSTS,
        "--format",
        "json",
        "--stats-out",
        &stats_plain.to_string_lossy(),
        "fig7",
    ]);
    assert!(plain.status.success());

    let profiled = repro(&[
        "--insts",
        INSTS,
        "--format",
        "json",
        "--stats-out",
        &stats_profiled.to_string_lossy(),
        "--profile-out",
        &profile_path.to_string_lossy(),
        "fig7",
    ]);
    let stderr = String::from_utf8_lossy(&profiled.stderr);
    assert!(profiled.status.success(), "profiled run fails: {stderr}");
    assert_eq!(
        plain.stdout, profiled.stdout,
        "stdout must stay byte-identical under --profile-out"
    );
    assert!(
        stderr.contains("wrote cycle profile"),
        "narrates the profile write: {stderr}"
    );
    assert_conservation(&load_profile(&profile_path));

    // The attribution lands in the telemetry dump under the
    // diff-exempt `profile` section — and nowhere else: stripping it
    // must make the two dumps identical.
    let read = |p: &PathBuf| -> Value {
        serde_json::from_str(&std::fs::read_to_string(p).expect("dump written"))
            .expect("dump parses")
    };
    let plain_dump = read(&stats_plain);
    let profiled_dump = read(&stats_profiled);
    assert!(plain_dump.get("profile").is_none());
    assert_eq!(
        profiled_dump
            .get("profile")
            .and_then(|p| p.get("schema"))
            .and_then(Value::as_str),
        Some(PROFILE_SCHEMA)
    );
    // `runner` carries wall-clock timing and varies run to run (that
    // is why the diff policy exempts it); everything else must match.
    let strip = |v: &Value| match v {
        Value::Object(fields) => Value::Object(
            fields
                .iter()
                .filter(|(k, _)| k != "profile" && k != "runner")
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    };
    assert_eq!(
        strip(&plain_dump),
        strip(&profiled_dump),
        "profiling must not perturb any deterministic telemetry section"
    );

    for path in [&profile_path, &stats_plain, &stats_profiled] {
        let _ = std::fs::remove_file(path);
    }
}
