//! Golden-frontier regression test: the pinned small search reproduces
//! the checked-in `baselines/frontier-fig7.json` byte-for-byte.
//!
//! The exploration engine promises that the same seed + budget produce
//! a byte-identical frontier dump. This test holds the real `repro`
//! binary to that promise against the repository's checked-in golden
//! (the same file the CI `explore-smoke` job and `repro ci-gate`
//! replay), and then proves the content-addressed cache makes a warm
//! rerun free: the second run must execute **zero** simulations, with
//! the dump differing only in its `runner` counters.
//!
//! If an intentional change moves the frontier, regenerate the golden:
//!
//! ```text
//! cargo run --release --bin repro -- explore \
//!     --budget 12 --seed 42 --insts 2000 \
//!     --frontier-out baselines/frontier-fig7.json
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

use serde::value::Value;

/// The golden's pinned search: small enough for CI, big enough that
/// refinement waves actually run after the stride sample.
const PINNED: [&str; 6] = ["--budget", "12", "--seed", "42", "--insts", "2000"];

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../baselines/frontier-fig7.json")
}

fn scratch() -> PathBuf {
    std::env::temp_dir().join(format!("hetcore-explore-golden-{}", std::process::id()))
}

fn run_explore(cache: &Path, out: &Path) {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("explore")
        .args(PINNED)
        .args(["--cache-dir", &cache.to_string_lossy()])
        .args(["--frontier-out", &out.to_string_lossy()])
        .output()
        .expect("repro runs");
    assert!(
        output.status.success(),
        "explore fails: {}",
        String::from_utf8_lossy(&output.stderr)
    );
}

fn runner_counter(dump: &Value, name: &str) -> u64 {
    dump.get("runner")
        .and_then(|r| r.get(name))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("dump has runner.{name}"))
}

#[test]
fn pinned_search_matches_the_golden_and_reruns_warm() {
    let base = scratch();
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("scratch dir");
    let cache = base.join("cache");

    // ---- cold run: byte-identical to the checked-in golden ----
    let cold_out = base.join("cold.json");
    run_explore(&cache, &cold_out);
    let golden = std::fs::read_to_string(golden_path())
        .expect("baselines/frontier-fig7.json exists (regenerate per the module docs if missing)");
    let cold = std::fs::read_to_string(&cold_out).expect("cold dump written");
    assert_eq!(
        golden, cold,
        "cold frontier dump must be byte-identical to baselines/frontier-fig7.json \
         (regenerate the golden per the module docs if this change is intentional)"
    );

    // ---- warm rerun: zero simulations, everything from cache ----
    let warm_out = base.join("warm.json");
    run_explore(&cache, &warm_out);
    let warm: Value = serde_json::from_str(&std::fs::read_to_string(&warm_out).expect("warm dump"))
        .expect("warm dump parses");
    let cold: Value = serde_json::from_str(&cold).expect("cold dump parses");
    assert_eq!(
        runner_counter(&warm, "executed"),
        0,
        "warm rerun simulates nothing"
    );
    assert_eq!(
        runner_counter(&warm, "cache_hits"),
        runner_counter(&cold, "jobs"),
        "every job answered from cache"
    );

    // Outside the schema-exempt `runner` section the two dumps agree
    // exactly — cache hits are invisible in the results.
    let strip = |v: &Value| match v {
        Value::Object(entries) => Value::Object(
            entries
                .iter()
                .filter(|(k, _)| k != "runner")
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    };
    assert_eq!(strip(&cold), strip(&warm));

    let _ = std::fs::remove_dir_all(&base);
}
