//! End-to-end tests of `repro bench`: the dump a real CLI run writes,
//! the compare exit codes, and the argument validation.
//!
//! Wall times vary run to run, so the "golden" assertions here pin the
//! *schema* — the exact top-level keys, scenario names in menu order,
//! per-scenario keys — not the measured values. One fresh run is
//! shared across the tests that need a dump; the compare tests then
//! operate on files only, which is instant.

use std::path::Path;
use std::process::{Command, Output};
use std::sync::OnceLock;

use hetcore::bench::SCENARIOS;

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro runs")
}

/// A scratch directory for this test binary's artifacts.
fn scratch() -> &'static Path {
    static DIR: OnceLock<std::path::PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("hetsim-bench-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    })
}

/// One real `repro bench` run at the tiny budget, shared by every test
/// that needs a fresh dump on disk. Returns the dump path.
fn fresh_dump() -> &'static Path {
    static DUMP: OnceLock<std::path::PathBuf> = OnceLock::new();
    DUMP.get_or_init(|| {
        let path = scratch().join("BENCH_fresh.json");
        let out = repro(&[
            "bench",
            "--insts",
            "3000",
            "--warmup",
            "0",
            "--repeats",
            "1",
            "--jobs",
            "2",
            "--out",
            path.to_str().expect("utf8 path"),
        ]);
        assert!(
            out.status.success(),
            "bench run failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        path
    })
}

#[test]
fn quick_run_writes_a_schema_valid_dump() {
    let text = std::fs::read_to_string(fresh_dump()).expect("dump written");
    let dump = hetsim_bench::BenchDump::from_json(&text).expect("dump parses and validates");

    // Golden schema snapshot: the exact key set of the document and of
    // each scenario, independent of the measured values.
    let value = serde_json::to_value(&dump).expect("dump to value");
    let doc = value.as_object().expect("dump is an object");
    let keys: Vec<&str> = doc.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        [
            "schema",
            "quick",
            "insts",
            "seed",
            "warmup",
            "repeats",
            "host",
            "scenarios"
        ],
        "BENCH_*.json top-level layout is pinned; bump BENCH_SCHEMA to change it"
    );
    let scenarios = doc
        .iter()
        .find(|(k, _)| k == "scenarios")
        .and_then(|(_, v)| v.as_array())
        .expect("scenarios array");
    for s in scenarios {
        let keys: Vec<&str> = s
            .as_object()
            .expect("scenario object")
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(
            keys,
            ["name", "insts", "wall_us", "insts_per_sec", "timing"],
            "scenario layout is pinned"
        );
    }

    assert_eq!(dump.schema, hetsim_bench::BENCH_SCHEMA);
    assert_eq!(
        dump.scenarios
            .iter()
            .map(|s| s.name.as_str())
            .collect::<Vec<_>>(),
        SCENARIOS.to_vec(),
        "every pinned scenario present, in menu order"
    );
    for s in &dump.scenarios {
        assert!(s.insts > 0, "{}: simulated no work", s.name);
        assert!(
            s.insts_per_sec >= 0.0 && s.insts_per_sec.is_finite(),
            "{}: insts/sec {}",
            s.name,
            s.insts_per_sec
        );
    }
    assert_eq!((dump.insts, dump.seed), (3_000, 42));
}

#[test]
fn self_compare_exits_zero_and_reports_pass() {
    let dump = fresh_dump().to_str().expect("utf8");
    let out = repro(&["bench", "--compare", dump, dump]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "self-compare must pass: {stdout}");
    assert!(stdout.contains("bench compare: PASS"), "{stdout}");
}

#[test]
fn injected_slowdown_exits_nonzero_and_names_the_scenario() {
    let base = fresh_dump();
    let text = std::fs::read_to_string(base).expect("dump written");
    let mut slow = hetsim_bench::BenchDump::from_json(&text).expect("parses");
    slow.scenarios[0].insts_per_sec *= 0.2; // 5x slower
    slow.scenarios[0].wall_us *= 5;
    let slow_path = scratch().join("BENCH_slow.json");
    std::fs::write(&slow_path, slow.to_json()).expect("write slow dump");

    let out = repro(&[
        "bench",
        "--compare",
        base.to_str().expect("utf8"),
        slow_path.to_str().expect("utf8"),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "5x slowdown must fail: {stdout}");
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(stdout.contains(SCENARIOS[0]), "{stdout}");
    assert!(stdout.contains("bench compare: FAIL"), "{stdout}");
}

#[test]
fn compare_refuses_dumps_that_measured_different_work() {
    let base = fresh_dump();
    let text = std::fs::read_to_string(base).expect("dump written");
    let mut other = hetsim_bench::BenchDump::from_json(&text).expect("parses");
    other.insts = 9_999;
    let other_path = scratch().join("BENCH_other_budget.json");
    std::fs::write(&other_path, other.to_json()).expect("write dump");

    let out = repro(&[
        "bench",
        "--compare",
        base.to_str().expect("utf8"),
        other_path.to_str().expect("utf8"),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success());
    assert!(
        stderr.contains("measured different work"),
        "names the mismatch: {stderr}"
    );
}

#[test]
fn compare_fails_cleanly_on_missing_and_malformed_files() {
    let out = repro(&[
        "bench",
        "--compare",
        "/nonexistent/a.json",
        "/nonexistent/b.json",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success());
    assert!(
        stderr.contains("error:") && stderr.contains("/nonexistent/a.json"),
        "names the unreadable file: {stderr}"
    );

    let garbage = scratch().join("garbage.json");
    std::fs::write(&garbage, "not json").expect("write garbage");
    let out = repro(&[
        "bench",
        "--compare",
        garbage.to_str().expect("utf8"),
        garbage.to_str().expect("utf8"),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success());
    assert!(stderr.contains("not a bench dump"), "{stderr}");
}

#[test]
fn bench_rejects_bad_arguments_up_front() {
    // Rejections are validated before any simulation starts, so all of
    // these return fast.
    let cases: &[(&[&str], &str)] = &[
        (
            &["bench", "--repeats", "0"],
            "--repeats expects an integer >= 1, got '0'",
        ),
        (
            &["bench", "--insts", "lots"],
            "--insts expects an integer >= 1, got 'lots'",
        ),
        (&["bench", "--wat"], "unknown flag '--wat'"),
        (
            &["bench", "cand.json"],
            "a positional CANDIDATE.json requires --compare",
        ),
        (
            &["bench", "--compare", "a.json", "b.json", "--out", "c.json"],
            "cannot be combined with",
        ),
        (
            &["bench", "--ratchet", "--rel-tol", "0.5"],
            "--ratchet pins the CI tolerance",
        ),
        (
            &["bench", "--format", "csv"],
            "bench supports --format table or json",
        ),
    ];
    for (args, expected) in cases {
        let out = repro(args);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(!out.status.success(), "{args:?} must be rejected");
        assert!(
            stderr.contains(expected),
            "{args:?}: expected '{expected}', got: {stderr}"
        );
        assert!(stderr.contains("usage: repro"), "usage follows the error");
    }
}
