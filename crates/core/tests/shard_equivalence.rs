//! Sharded execution must be invisible in the results.
//!
//! The shard protocol's headline guarantee is that `--shards N` is a
//! pure throughput knob: the partitioner splits the campaign across N
//! worker processes, the supervisor merges their fragments, and the
//! final report — both the headline stdout and the `--stats-out`
//! dump — is what a single-process run would have produced. These
//! tests run the real `repro` binary on the fig7 + fig14 workload and
//! hold that line byte-for-byte across shard counts, including a
//! shard count (7) that does not divide the job count evenly.
//!
//! One carve-out: the `runner` section of the stats dump is declared
//! nondeterministic by the schema (`RunnerStats::DETERMINISTIC` is
//! false — wall-clock timings and hit provenance legitimately move
//! between runs), so dumps are compared with that key removed. Stdout
//! carries no runner timings and is compared whole.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use serde::value::Value;

/// Instruction budget: small enough that a cold campaign is quick,
/// large enough that every design retires real work.
const INSTS: &str = "2000";

/// Shard counts under test: the degenerate single shard, even splits,
/// and a count that neither divides the CPU nor the GPU job total.
const SHARD_COUNTS: [&str; 4] = ["1", "2", "4", "7"];

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro runs")
}

fn scratch() -> PathBuf {
    std::env::temp_dir().join(format!("hetcore-shard-eq-{}", std::process::id()))
}

/// Parses a stats dump and drops the schema-declared-nondeterministic
/// `runner` section; everything else must match exactly.
fn deterministic_dump(path: &Path) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("stats dump at {} readable: {e}", path.display()));
    let mut dump: Value = serde_json::from_str(&text).expect("stats dump parses");
    match &mut dump {
        Value::Object(entries) => entries.retain(|(key, _)| key != "runner"),
        other => panic!("stats dump is not an object: {other:?}"),
    }
    dump
}

#[test]
fn sharded_runs_match_single_process_byte_for_byte() {
    let base = scratch();
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("scratch dir");

    // ---- reference: plain single-process run ----
    let ref_stats = base.join("reference.stats.json");
    let reference = repro(&[
        "--insts",
        INSTS,
        "--format",
        "json",
        "--stats-out",
        &ref_stats.to_string_lossy(),
        "fig7",
        "fig14",
    ]);
    assert!(
        reference.status.success(),
        "reference run fails: {}",
        String::from_utf8_lossy(&reference.stderr)
    );
    let ref_dump = deterministic_dump(&ref_stats);

    // ---- every shard count reproduces it exactly ----
    for shards in SHARD_COUNTS {
        // A fresh cache directory per shard count: each sharded run is
        // a genuinely cold campaign, not a warm read of the last one.
        let cache = base.join(format!("cache-{shards}"));
        let stats = base.join(format!("shards-{shards}.stats.json"));
        let out = repro(&[
            "--insts",
            INSTS,
            "--format",
            "json",
            "--cache-dir",
            &cache.to_string_lossy(),
            "--stats-out",
            &stats.to_string_lossy(),
            "--shards",
            shards,
            "fig7",
            "fig14",
        ]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(out.status.success(), "--shards {shards} fails: {stderr}");
        assert_eq!(
            reference.stdout, out.stdout,
            "stdout must be byte-identical at --shards {shards}"
        );
        assert_eq!(
            ref_dump,
            deterministic_dump(&stats),
            "stats dump (minus the nondeterministic `runner` section) \
             must match at --shards {shards}"
        );
    }

    let _ = std::fs::remove_dir_all(&base);
}

/// The exploration engine makes a stronger promise than the campaign
/// path: its in-process shards feed deterministic counters, so the
/// frontier dump — `runner` section included — is byte-identical at
/// any shard count. Cold caches per shard count keep the comparison
/// honest (no run reads another's results).
#[test]
fn explore_frontier_dumps_match_across_shard_counts() {
    let base = scratch().with_file_name(format!("hetcore-shard-eq-explore-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("scratch dir");

    let dump_for = |shards: &str| -> String {
        let cache = base.join(format!("cache-{shards}"));
        let out_path = base.join(format!("frontier-{shards}.json"));
        let out = repro(&[
            "explore",
            "--budget",
            "12",
            "--seed",
            "42",
            "--insts",
            INSTS,
            "--shards",
            shards,
            "--cache-dir",
            &cache.to_string_lossy(),
            "--frontier-out",
            &out_path.to_string_lossy(),
        ]);
        assert!(
            out.status.success(),
            "explore --shards {shards} fails: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(&out_path).expect("frontier dump written")
    };

    let reference = dump_for("1");
    for shards in ["2", "4"] {
        assert_eq!(
            reference,
            dump_for(shards),
            "frontier dump must be byte-identical at --shards {shards}"
        );
    }

    let _ = std::fs::remove_dir_all(&base);
}
