//! Property tests of the Pareto machinery the exploration engine
//! reports through.
//!
//! The frontier is the engine's *contract*: whatever the search
//! evaluated, the dump's `frontier` section must be exactly the
//! non-dominated subset, independent of how the evaluation happened to
//! be ordered, with duplicates collapsed. These properties pin that
//! contract over arbitrary objective sets — the unit tests in
//! `hetsim_stats::pareto` cover hand-picked edges, this file covers the
//! space between them — plus one end-to-end check that a real (tiny)
//! search run upholds the same invariants.

use hetsim_stats::pareto::{dominates, frontier_indices};
use proptest::prelude::*;

/// Arbitrary objective sets: three finite non-negative objectives per
/// point, drawn coarse enough that exact duplicates actually occur.
fn points() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u32..8).prop_map(|v| f64::from(v) * 0.5), 3),
        0..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No frontier point dominates another frontier point: the frontier
    /// is an antichain of the dominance order.
    #[test]
    fn frontier_points_are_mutually_non_dominating(pts in points()) {
        let frontier = frontier_indices(&pts);
        for &a in &frontier {
            for &b in &frontier {
                if a != b {
                    prop_assert!(
                        !dominates(&pts[a], &pts[b]),
                        "frontier point {a} dominates frontier point {b}"
                    );
                }
            }
        }
    }

    /// Every evaluated point off the frontier is dominated by (or an
    /// exact duplicate of) some frontier point: nothing worth keeping
    /// is dropped.
    #[test]
    fn non_frontier_points_are_covered_by_the_frontier(pts in points()) {
        let frontier = frontier_indices(&pts);
        let on_frontier: std::collections::HashSet<usize> = frontier.iter().copied().collect();
        for (i, p) in pts.iter().enumerate() {
            if on_frontier.contains(&i) {
                continue;
            }
            let covered = frontier
                .iter()
                .any(|&f| dominates(&pts[f], p) || pts[f] == *p);
            prop_assert!(covered, "point {i} is neither dominated nor duplicated");
        }
    }

    /// Frontier membership is invariant under evaluation order: any
    /// permutation of the input selects the same multiset of points.
    #[test]
    fn frontier_is_invariant_under_evaluation_order(
        pts in points(),
        rotation in 0usize..40,
    ) {
        if pts.is_empty() {
            return Ok(());
        }
        let mut canonical: Vec<Vec<f64>> = frontier_indices(&pts)
            .into_iter()
            .map(|i| pts[i].clone())
            .collect();
        // A rotation composed with a reversal reaches orders a simple
        // shuffle seed couldn't reproduce deterministically.
        let mut permuted = pts.clone();
        let turn = rotation % permuted.len();
        permuted.rotate_left(turn);
        permuted.reverse();
        let mut from_permuted: Vec<Vec<f64>> = frontier_indices(&permuted)
            .into_iter()
            .map(|i| permuted[i].clone())
            .collect();
        let key = |p: &Vec<f64>| p.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        canonical.sort_by_key(key);
        from_permuted.sort_by_key(key);
        prop_assert_eq!(canonical, from_permuted);
    }

    /// Duplicate designs collapse to one entry: however many copies of
    /// a point the input holds, the frontier never lists it twice.
    #[test]
    fn duplicates_collapse_to_one_frontier_entry(pts in points(), copies in 1usize..4) {
        let mut duplicated = pts.clone();
        for _ in 0..copies {
            duplicated.extend(pts.iter().cloned());
        }
        let frontier = frontier_indices(&duplicated);
        let mut seen = std::collections::HashSet::new();
        for &i in &frontier {
            let key: Vec<u64> = duplicated[i].iter().map(|x| x.to_bits()).collect();
            prop_assert!(seen.insert(key), "frontier lists a duplicate point");
        }
        // And the deduplicated frontier is the original one.
        prop_assert_eq!(frontier.len(), frontier_indices(&pts).len());
    }
}

/// The same invariants must hold end-to-end through a real search: the
/// dump's frontier section is the non-dominated subset of its evaluated
/// section. One tiny space keeps this fast; the property tests above
/// carry the generality.
#[test]
fn a_real_search_reports_exactly_the_non_dominated_subset() {
    let mut space = hetcore::DesignSpace::fig7();
    space.apps = vec!["radix".to_string()];
    space
        .apply_sweep("design=BaseCMOS,BaseTFET")
        .expect("valid sweep");
    space.apply_sweep("cores=2,4").expect("valid sweep");
    space.apply_sweep("vdd=2.0").expect("valid sweep");
    space.apply_sweep("rob=160").expect("valid sweep");
    let cfg = hetcore::ExploreConfig {
        budget: 16,
        seed: 3,
        insts: 2_000,
        jobs: 2,
        ..hetcore::ExploreConfig::default()
    };
    let result = hetcore::explore(&space, &cfg).expect("search runs");
    assert_eq!(result.evaluated.len(), 4, "budget covers the whole grid");
    let objectives: Vec<Vec<f64>> = result.evaluated.iter().map(|p| p.objectives()).collect();
    let mut expected = frontier_indices(&objectives);
    expected.sort_unstable();
    let mut reported = result.frontier.clone();
    reported.sort_unstable();
    assert_eq!(reported, expected);
}
