//! Golden tests for the machine-readable `repro` output.
//!
//! Runs the real `repro` binary (`--format json`) on small campaigns
//! and compares the parsed reports against checked-in snapshots with
//! numeric tolerance; the fig7 invocation's `--stats-out` dump is
//! additionally checked for full counter-name coverage. Covered
//! targets: fig7 and fig8 (CPU campaign figures), fig14 (device-level
//! table, no campaign) and the extension studies.
//!
//! Regenerate the snapshots after an intentional simulator change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p hetcore --test golden_repro
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

use hetsim_cpu::stats::CoreStats;
use hetsim_mem::stats::MemStats;
use serde::value::Value;

/// Relative tolerance for report values: the simulation is
/// deterministic, so this only needs to absorb float-formatting noise.
const REL_TOL: f64 = 1e-9;

/// Instruction budget the snapshots are pinned at (matches the
/// checked-in `baselines/` and the CI gate).
const INSTS: &str = "3000";

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn run_repro(args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--insts", INSTS, "--format", "json"])
        .args(args)
        .output()
        .expect("repro runs");
    assert!(
        output.status.success(),
        "repro failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 stdout")
}

/// Runs `repro --insts 3000 --format json <target>` and compares the
/// JSON report array against `tests/golden/<snapshot>`, regenerating
/// it when `UPDATE_GOLDEN` is set.
fn check_against_snapshot(target: &str, snapshot: &str, extra_args: &[&str]) -> String {
    let mut args = vec![target];
    args.extend_from_slice(extra_args);
    let stdout = run_repro(&args);
    let path = golden_dir().join(snapshot);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &stdout).expect("write snapshot");
    }
    let golden_text =
        std::fs::read_to_string(&path).expect("snapshot exists (regenerate with UPDATE_GOLDEN=1)");
    let actual: Value = serde_json::from_str(&stdout).expect("repro emits valid JSON");
    let golden: Value = serde_json::from_str(&golden_text).expect("snapshot is valid JSON");
    assert_matches(&actual, &golden, "$");
    stdout
}

fn close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs());
    (a - b).abs() <= REL_TOL * scale.max(1e-300)
}

/// Structural equality with numeric tolerance on leaf numbers.
fn assert_matches(actual: &Value, golden: &Value, path: &str) {
    match (actual, golden) {
        (Value::Object(a), Value::Object(g)) => {
            let a_keys: Vec<&String> = a.iter().map(|(k, _)| k).collect();
            let g_keys: Vec<&String> = g.iter().map(|(k, _)| k).collect();
            assert_eq!(a_keys, g_keys, "object keys at {path}");
            for ((k, av), (_, gv)) in a.iter().zip(g.iter()) {
                assert_matches(av, gv, &format!("{path}.{k}"));
            }
        }
        (Value::Array(a), Value::Array(g)) => {
            assert_eq!(a.len(), g.len(), "array length at {path}");
            for (i, (av, gv)) in a.iter().zip(g.iter()).enumerate() {
                assert_matches(av, gv, &format!("{path}[{i}]"));
            }
        }
        _ => match (actual.as_f64(), golden.as_f64()) {
            (Some(a), Some(g)) => {
                assert!(close(a, g), "value at {path}: {a} vs golden {g}")
            }
            _ => assert_eq!(actual, golden, "value at {path}"),
        },
    }
}

#[test]
fn fig7_json_matches_the_checked_in_snapshot() {
    let stats_path =
        std::env::temp_dir().join(format!("hetcore-golden-stats-{}.json", std::process::id()));
    let stats_arg = stats_path.to_string_lossy().into_owned();
    check_against_snapshot("fig7", "fig7_insts3000.json", &["--stats-out", &stats_arg]);

    // The same run's --stats-out dump: valid JSON carrying every
    // counter name the structs enumerate, for every design.
    let dump_text = std::fs::read_to_string(&stats_path).expect("stats dump written");
    let dump: Value = serde_json::from_str(&dump_text).expect("dump is valid JSON");
    assert_eq!(
        dump.get("schema")
            .and_then(|s| s.get("cpu"))
            .and_then(Value::as_str),
        Some(hetcore::CPU_SCHEMA)
    );
    let designs = dump
        .get("cpu")
        .and_then(|c| c.get("designs"))
        .and_then(Value::as_object)
        .expect("cpu designs present");
    assert!(!designs.is_empty());
    for (design, entry) in designs {
        for (section, names) in [
            (
                "core",
                CoreStats::default()
                    .iter()
                    .map(|(n, _)| n)
                    .collect::<Vec<_>>(),
            ),
            (
                "mem",
                MemStats::default()
                    .iter()
                    .map(|(n, _)| n)
                    .collect::<Vec<_>>(),
            ),
        ] {
            let map = entry
                .get(section)
                .and_then(Value::as_object)
                .unwrap_or_else(|| panic!("{design} has a {section} map"));
            for name in names {
                assert!(
                    map.iter().any(|(k, _)| *k == name),
                    "{design}.{section} is missing counter {name}"
                );
            }
        }
    }
    let _ = std::fs::remove_file(&stats_path);
}

#[test]
fn fig8_json_matches_the_checked_in_snapshot() {
    // fig8 also emits its stacked-bar breakdown report; both land in
    // the same JSON array and the same snapshot.
    let stdout = check_against_snapshot("fig8", "fig8_insts3000.json", &[]);
    let reports: Value = serde_json::from_str(&stdout).expect("valid JSON");
    let reports = reports.as_array().expect("array of reports");
    assert_eq!(reports.len(), 2, "fig8 emits the figure plus its breakdown");
}

#[test]
fn fig14_json_matches_the_checked_in_snapshot() {
    check_against_snapshot("fig14", "fig14_insts3000.json", &[]);
}

#[test]
fn ext_json_matches_the_checked_in_snapshot() {
    // `ext` expands to all three extension studies.
    let stdout = check_against_snapshot("ext", "ext_insts3000.json", &[]);
    let reports: Value = serde_json::from_str(&stdout).expect("valid JSON");
    let reports = reports.as_array().expect("array of reports");
    assert_eq!(
        reports.len(),
        3,
        "ext expands to all three extension studies"
    );
}
