//! End-to-end tests of the regression-diff workflow through the real
//! `repro` binary: `diff`, `baseline` and `ci-gate`, plus the failure
//! modes (corrupted dumps must produce a clear error and a non-zero
//! exit, never a panic) and the atomic `--stats-out` write path.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hetcore-regdiff-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro runs")
}

/// Runs fig14 (device-level table, no campaign — fast) with
/// `--stats-out` and returns the dump path.
fn write_dump(dir: &Path, name: &str) -> PathBuf {
    let path = dir.join(name);
    let out = repro(&[
        "fig14",
        "--insts",
        "800",
        "--stats-out",
        path.to_str().expect("utf-8 path"),
    ]);
    assert!(
        out.status.success(),
        "repro failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    path
}

#[test]
fn identical_runs_diff_clean_with_exit_zero() {
    let dir = temp_dir("clean");
    let a = write_dump(&dir, "a.json");
    let b = write_dump(&dir, "b.json");
    let out = repro(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "clean diff must exit 0: {stdout}");
    assert!(stdout.contains("clean"), "summary says clean: {stdout}");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn a_single_perturbed_counter_fails_naming_the_culprit() {
    let dir = temp_dir("perturb");
    let a = write_dump(&dir, "a.json");
    // Perturb exactly one report cell by text surgery: fig14 dumps
    // carry the rendered report values as their diffable payload.
    let text = std::fs::read_to_string(&a).expect("dump readable");
    let needle = "\"insts\": 800";
    assert!(text.contains(needle), "run section present");
    let perturbed = dir.join("perturbed.json");
    // Keep the run section identical; bump a report cell instead. The
    // first numeric cell lives in the reports section after "rows".
    let rows_at = text.find("\"rows\"").expect("reports have rows");
    let cell_at = text[rows_at..]
        .find("0.")
        .map(|i| rows_at + i)
        .expect("a fractional report cell");
    let mut mutated = text.clone();
    mutated.replace_range(cell_at..cell_at + 2, "9.");
    std::fs::write(&perturbed, &mutated).expect("write perturbed dump");

    let out = repro(&["diff", a.to_str().unwrap(), perturbed.to_str().unwrap()]);
    assert!(!out.status.success(), "perturbed diff must exit non-zero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The report names the path, the values, the delta and the
    // violated tolerance.
    assert!(stdout.contains("regression"), "summary: {stdout}");
    assert!(
        stdout.contains("report."),
        "names the report path: {stdout}"
    );
    assert!(
        stdout.contains("baseline"),
        "shows baseline value: {stdout}"
    );
    assert!(
        stdout.contains("candidate"),
        "shows candidate value: {stdout}"
    );
    assert!(
        stdout.contains("tolerance"),
        "names the tolerance: {stdout}"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn truncated_dump_fails_with_a_clear_error_not_a_panic() {
    let dir = temp_dir("truncated");
    let good = write_dump(&dir, "good.json");
    let bad = dir.join("bad.json");
    let text = std::fs::read_to_string(&good).expect("dump readable");
    std::fs::write(&bad, &text[..text.len() / 2]).expect("write truncated dump");

    let out = repro(&["diff", bad.to_str().unwrap(), good.to_str().unwrap()]);
    assert!(!out.status.success(), "truncated dump must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("bad.json") && stderr.contains("not valid JSON"),
        "error names the file and the problem: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "no panic: {stderr}");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn valid_json_that_is_not_a_dump_fails_cleanly() {
    let dir = temp_dir("notdump");
    let good = write_dump(&dir, "good.json");
    let bad = dir.join("notdump.json");
    std::fs::write(&bad, "{\"hello\": 1}").expect("write non-dump JSON");

    let out = repro(&["diff", good.to_str().unwrap(), bad.to_str().unwrap()]);
    assert!(!out.status.success(), "non-dump JSON must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("not a stats dump"),
        "error explains the shape problem: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "no panic: {stderr}");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn missing_file_fails_with_a_clear_error() {
    let dir = temp_dir("missing");
    let good = write_dump(&dir, "good.json");
    let gone = dir.join("does-not-exist.json");
    let out = repro(&["diff", gone.to_str().unwrap(), good.to_str().unwrap()]);
    assert!(!out.status.success(), "missing file must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("does-not-exist.json"),
        "error names the missing file: {stderr}"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn stats_out_creates_missing_parent_directories() {
    let dir = temp_dir("statsdirs");
    // Two levels of not-yet-existing directories under the temp root.
    let nested = dir.join("deep/nested/stats.json");
    let out = repro(&[
        "fig14",
        "--insts",
        "800",
        "--stats-out",
        nested.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stats-out into a missing directory must succeed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&nested).expect("dump landed");
    assert!(text.contains("\"schema\""), "dump is a real stats dump");
    // No temp-file droppings from the atomic write.
    let siblings: Vec<_> = std::fs::read_dir(nested.parent().unwrap())
        .expect("parent readable")
        .filter_map(|e| e.ok().map(|e| e.file_name()))
        .collect();
    assert_eq!(siblings.len(), 1, "only the dump itself: {siblings:?}");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn baseline_writer_and_ci_gate_round_trip() {
    let dir = temp_dir("gate");
    let basedir = dir.join("baselines");
    let out = repro(&[
        "baseline",
        basedir.to_str().unwrap(),
        "--insts",
        "800",
        "fig14",
        "ext",
    ]);
    assert!(
        out.status.success(),
        "baseline writer failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(basedir.join("fig14.json").exists());
    assert!(basedir.join("ext.json").exists());

    // A bench ratchet sharing the directory is not replayable — the
    // gate must skip it (it is gated by `repro bench --ratchet`), not
    // fail on it.
    std::fs::write(
        basedir.join("bench-ratchet.json"),
        r#"{"schema":"hetsim-bench-v1","quick":true,"insts":1,"seed":1,"warmup":1,
            "repeats":1,"host":{"os":"linux","arch":"x86_64","cpus":1},
            "scenarios":[{"name":"s","insts":1,"wall_us":1,"insts_per_sec":1.0,
            "timing":{"repeats":1,"min_us":1,"median_us":1,"p95_us":1,"max_us":1,
            "mean_us":1.0,"rel_spread":0.0,"noisy":false}}]}"#,
    )
    .expect("ratchet written");

    // The gate replays each baseline's recorded configuration and
    // passes against an unchanged simulator.
    let out = repro(&["ci-gate", "--baseline", basedir.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "gate must pass: {stdout}\n{stderr}");
    assert!(stdout.contains("[fig14]") && stdout.contains("[ext]"));
    assert!(
        stderr.contains("bench dump, skipped"),
        "gate announces the skipped ratchet: {stderr}"
    );

    // Corrupt one baseline's recorded figure values (the run section
    // stays intact, so the gate replays the same configuration and
    // must catch the drift): the gate fails and keeps gating the
    // others (both names still appear in the output).
    let fig14 = basedir.join("fig14.json");
    let text = std::fs::read_to_string(&fig14).expect("baseline readable");
    let rows_at = text.find("\"rows\"").expect("reports have rows");
    let cell_at = text[rows_at..]
        .find("0.")
        .map(|i| rows_at + i)
        .expect("a fractional report cell");
    let mut mutated = text.clone();
    mutated.replace_range(cell_at..cell_at + 2, "9.");
    std::fs::write(&fig14, &mutated).expect("rewrite baseline");
    let out = repro(&["ci-gate", "--baseline", basedir.to_str().unwrap()]);
    assert!(
        !out.status.success(),
        "tampered baseline must fail the gate"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("[fig14]") && stdout.contains("regression"),
        "gate output localizes the failure: {stdout}"
    );
    assert!(stdout.contains("[ext]"), "gate still checks the rest");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
