//! Crash-recovery and shared-cache contention tests for the shard
//! protocol.
//!
//! The supervisor's promise is stronger than "usually works": a worker
//! that dies mid-shard is retried with bounded backoff and the final
//! report is still byte-identical to an undisturbed run, while a shard
//! that keeps dying exhausts its attempts and fails the whole campaign
//! loudly. These tests drive both paths through the real `repro`
//! binary using the `HETSIM_SHARD_FAIL` fault-injection hook
//! (`<shard>` crashes that shard's first attempt halfway through;
//! `<shard>:always` crashes every attempt).
//!
//! The last test attacks the other shared resource: two full-campaign
//! workers race on one `--cache-dir`. Because every cache write goes
//! through `write_atomic` and both workers compute identical values
//! for identical keys, the race must leave no corrupt entries and a
//! warm read of the shared cache must answer every job from disk.

use std::path::PathBuf;
use std::process::{Command, Output};

use serde::value::Value;

/// Instruction budget for all runs (small, but real work per design).
const INSTS: &str = "2000";

fn repro_cmd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn repro(args: &[&str]) -> Output {
    repro_cmd().args(args).output().expect("repro runs")
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hetcore-shard-chaos-{}-{name}", std::process::id()))
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = scratch(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The undisturbed single-process fig7 report every scenario must
/// reproduce.
fn reference_stdout() -> Vec<u8> {
    let out = repro(&["--insts", INSTS, "--format", "json", "fig7"]);
    assert!(
        out.status.success(),
        "reference run fails: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn crashed_worker_is_retried_and_the_report_is_unchanged() {
    let cache = fresh_dir("retry-cache");
    let reference = reference_stdout();

    // Shard 1's first attempt dies halfway through its jobs, before it
    // writes a manifest; the supervisor must notice, back off, retry,
    // and finish with exit 0 and byte-identical output.
    let out = repro_cmd()
        .env("HETSIM_SHARD_FAIL", "1")
        .args([
            "--insts",
            INSTS,
            "--format",
            "json",
            "--cache-dir",
            &cache.to_string_lossy(),
            "--shards",
            "2",
            "fig7",
        ])
        .output()
        .expect("repro runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "chaos run must recover: {stderr}");
    assert!(
        stderr.contains("retrying shard 1"),
        "supervisor narrates the retry: {stderr}"
    );
    assert_eq!(
        reference, out.stdout,
        "report must be byte-identical despite the mid-shard crash"
    );

    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn a_persistently_crashing_shard_fails_the_campaign_loudly() {
    let cache = fresh_dir("exhaust-cache");

    // `:always` crashes every attempt: retries must run out and the
    // campaign must fail with a nonzero exit and a clear error naming
    // the shard and the attempt budget.
    let out = repro_cmd()
        .env("HETSIM_SHARD_FAIL", "1:always")
        .args([
            "--insts",
            INSTS,
            "--format",
            "json",
            "--cache-dir",
            &cache.to_string_lossy(),
            "--shards",
            "2",
            "fig7",
        ])
        .output()
        .expect("repro runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "exhausted retries must fail the run: {stderr}"
    );
    assert!(
        stderr.contains("shard 1 failed after") && stderr.contains("attempt"),
        "error names the shard and the attempt budget: {stderr}"
    );

    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn concurrent_workers_share_a_cache_without_corruption() {
    let cache = fresh_dir("contend-cache");
    let reference = reference_stdout();

    // Two full-coverage workers (--shard 0 --shards 1) race every
    // cache entry on the same directory. Both must succeed: cache
    // writes are atomic and last-writer-wins on identical bytes.
    let mut workers = Vec::new();
    for worker in 0..2 {
        let out_dir = fresh_dir(&format!("contend-out-{worker}"));
        let child = repro_cmd()
            .args([
                "shard-worker",
                "--shard",
                "0",
                "--shards",
                "1",
                "--cache-dir",
                &cache.to_string_lossy(),
                "--out-dir",
                &out_dir.to_string_lossy(),
                "--insts",
                INSTS,
                "--jobs",
                "2",
                "fig7",
            ])
            .stdout(std::process::Stdio::null())
            .spawn()
            .expect("worker spawns");
        workers.push((child, out_dir));
    }
    for (child, out_dir) in &mut workers {
        let status = child.wait().expect("worker finishes");
        assert!(status.success(), "contending worker must still succeed");
        let _ = std::fs::remove_dir_all(out_dir);
    }

    // The shared cache must now be complete and clean: a warm
    // single-process run answers every CPU job from disk (executed 0,
    // zero corrupt entries) and reproduces the reference bytes.
    let stats = scratch("contend.stats.json");
    let out = repro(&[
        "--insts",
        INSTS,
        "--format",
        "json",
        "--cache-dir",
        &cache.to_string_lossy(),
        "--stats-out",
        &stats.to_string_lossy(),
        "fig7",
    ]);
    assert!(
        out.status.success(),
        "warm read fails: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(reference, out.stdout, "warm read reproduces the report");

    let text = std::fs::read_to_string(&stats).expect("stats dump written");
    let dump: Value = serde_json::from_str(&text).expect("stats dump parses");
    let runner = dump
        .get("runner")
        .and_then(|r| r.get("cpu"))
        .expect("dump has a runner.cpu section");
    let field = |name: &str| runner.get(name).and_then(Value::as_u64);
    assert_eq!(field("executed"), Some(0), "every job served from cache");
    assert_eq!(
        runner
            .get("cache")
            .and_then(|c| c.get("corrupt_files"))
            .and_then(Value::as_u64),
        Some(0),
        "the racing writers left no corrupt cache entries"
    );

    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_file(&stats);
}
