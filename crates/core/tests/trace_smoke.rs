//! End-to-end smoke tests for the observability layer.
//!
//! Runs the real `repro` binary on the fig7 campaign with tracing
//! enabled and checks the whole chain: the JSONL event log parses and
//! validates clean, `trace-export` emits loadable Chrome trace-event
//! JSON, `check --trace-in` accepts the recorded trace and rejects a
//! perturbed one — and, the headline guarantee, stdout stays
//! byte-identical whether or not tracing and the dashboard are on.

use std::path::PathBuf;
use std::process::{Command, Output};

use hetsim_obs::{parse_jsonl, validate_events, EventKind, TraceEvent};
use serde::value::Value;

/// Instruction budget (matches the golden snapshots; small enough for
/// a quick run, large enough that every design executes real work).
const INSTS: &str = "3000";

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro runs")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hetcore-trace-smoke-{}-{name}", std::process::id()))
}

fn names_of(events: &[TraceEvent], want_span: bool) -> Vec<&str> {
    events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Span { .. }) == want_span)
        .map(|e| e.name.as_str())
        .collect()
}

#[test]
fn fig7_trace_records_exports_and_validates() {
    let trace_path = tmp("trace.jsonl");
    let chrome_path = tmp("trace.json");
    let trace_arg = trace_path.to_string_lossy().into_owned();
    let chrome_arg = chrome_path.to_string_lossy().into_owned();

    // ---- record: repro --trace-out writes a JSONL span log ----
    let out = repro(&[
        "--insts",
        INSTS,
        "--format",
        "json",
        "--trace-out",
        &trace_arg,
        "fig7",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "traced run fails: {stderr}");
    assert!(
        stderr.contains("trace event(s)"),
        "narrates the trace write: {stderr}"
    );

    // The log parses, validates clean, and covers every span kind the
    // runner emits plus the campaign scope wrapped around it.
    let text = std::fs::read_to_string(&trace_path).expect("trace written");
    let events = parse_jsonl(&text).expect("trace parses");
    assert_eq!(validate_events(&events), Vec::<String>::new());
    let spans = names_of(&events, true);
    for name in [
        "cpu-campaign",
        "batch",
        "cache-lookup",
        "simulate",
        "cache-write",
    ] {
        assert!(spans.contains(&name), "trace has a `{name}` span");
    }
    assert!(
        names_of(&events, false).contains(&"job-finished"),
        "trace has job-finished instants"
    );

    // ---- export: Chrome trace-event JSON, Perfetto-loadable ----
    let out = repro(&["trace-export", &trace_arg, &chrome_arg]);
    assert!(
        out.status.success(),
        "trace-export fails: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let chrome_text = std::fs::read_to_string(&chrome_path).expect("chrome trace written");
    let doc: Value = serde_json::from_str(&chrome_text).expect("chrome trace is valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Value::as_str),
        Some("ms")
    );
    let trace_events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    let phase_of = |e: &Value| e.get("ph").and_then(Value::as_str).map(str::to_string);
    for ph in ["X", "i", "M"] {
        assert!(
            trace_events
                .iter()
                .any(|e| phase_of(e).as_deref() == Some(ph)),
            "chrome trace has a '{ph}' event"
        );
    }
    assert!(
        trace_events
            .iter()
            .any(|e| e.get("name").and_then(Value::as_str) == Some("simulate")),
        "chrome trace keeps the simulate spans"
    );

    // ---- validate: check --trace-in accepts the recorded trace ----
    let out = repro(&["check", "--trace-in", &trace_arg]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "check rejects a good trace: {stdout}");
    assert!(stdout.contains("0 violation(s)"), "{stdout}");

    // ---- ... and rejects a perturbed one (inverted span) ----
    let mut broken = events;
    let victim = broken
        .iter_mut()
        .find(|e| e.name == "simulate")
        .expect("a simulate span to perturb");
    if let EventKind::Span { start_us, end_us } = &mut victim.kind {
        *start_us = *end_us + 1_000; // now ends before it starts
    }
    let bad_path = tmp("broken.jsonl");
    let bad_jsonl: String = broken
        .iter()
        .map(|e| {
            let mut line =
                serde_json::to_string(&serde::Serialize::to_value(e)).expect("serializes");
            line.push('\n');
            line
        })
        .collect();
    std::fs::write(&bad_path, bad_jsonl).expect("write perturbed trace");
    let out = repro(&[
        "check",
        "--trace-in",
        &bad_path.to_string_lossy(),
        "--format",
        "json",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "perturbed trace must fail: {stdout}");
    assert!(stdout.contains("ends before it starts"), "{stdout}");

    for path in [&trace_path, &chrome_path, &bad_path] {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn stdout_is_byte_identical_with_and_without_tracing() {
    let trace_path = tmp("identity.jsonl");
    let trace_arg = trace_path.to_string_lossy().into_owned();

    let plain = repro(&["--insts", INSTS, "--format", "json", "fig7"]);
    assert!(plain.status.success());

    // Tracing *and* the dashboard on; stdout is piped (not a TTY), so
    // the dashboard must degrade to plain stderr lines, and the report
    // bytes must not move at all.
    let traced = repro(&[
        "--insts",
        INSTS,
        "--format",
        "json",
        "--trace-out",
        &trace_arg,
        "--progress=dashboard",
        "fig7",
    ]);
    let stderr = String::from_utf8_lossy(&traced.stderr);
    assert!(traced.status.success(), "traced run fails: {stderr}");
    assert_eq!(
        plain.stdout, traced.stdout,
        "stdout must stay byte-identical under --trace-out + --progress"
    );
    assert!(
        stderr.contains("[runner] done:"),
        "dashboard degrades to line progress when stderr is piped: {stderr}"
    );

    let _ = std::fs::remove_file(&trace_path);
}
