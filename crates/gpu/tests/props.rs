//! Property tests for the GPU counter struct: the generated
//! `merge`/`minus`/`iter()` obey their declared per-field policies for
//! arbitrary counter values.

use proptest::prelude::*;

use hetsim_gpu::stats::GpuStats;

/// One value per [`GpuStats`] counter, bounded well below overflow so
/// merged sums stay exact.
fn counter_values() -> impl Strategy<Value = Vec<u64>> {
    let fields = GpuStats::default().iter().count();
    proptest::collection::vec(0u64..(1 << 32), fields)
}

/// Builds a [`GpuStats`] by assigning each generated value through the
/// name-addressed `set`.
fn stats_from(values: &[u64]) -> GpuStats {
    let mut s = GpuStats::default();
    for ((name, _), v) in GpuStats::default().iter().zip(values) {
        assert!(s.set(&name, *v), "unknown counter {name}");
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `merge` then `minus` round-trips every sum/sub counter; `cycles`
    /// (max/keep, compute units run in parallel) is the one exception.
    #[test]
    fn gpu_stats_merge_then_minus_round_trips(a in counter_values(), b in counter_values()) {
        let sa = stats_from(&a);
        let sb = stats_from(&b);
        let mut merged = sa;
        merged.merge(&sb);
        let diff = merged.minus(&sa);
        for (name, value) in diff.iter() {
            if name == "cycles" {
                continue;
            }
            prop_assert_eq!(Some(value), sb.get(&name), "counter {}", name);
        }
        prop_assert_eq!(merged.cycles, sa.cycles.max(sb.cycles), "cycles merge by max");
    }

    /// `iter()` names are unique, value-independent, and every pair is
    /// addressable back through `get`.
    #[test]
    fn gpu_stats_iter_names_are_stable_and_unique(a in counter_values()) {
        let s = stats_from(&a);
        let names: Vec<String> = s.iter().map(|(n, _)| n).collect();
        let default_names: Vec<String> =
            GpuStats::default().iter().map(|(n, _)| n).collect();
        prop_assert_eq!(&names, &default_names, "names do not depend on values");
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), names.len(), "names are unique");
        for (name, value) in s.iter() {
            prop_assert_eq!(s.get(&name), Some(value), "get({}) addresses iter()", name);
        }
    }
}
