//! The partitioned register file alternative (paper Section VIII, citing
//! Abdel-Majeed et al.'s Pilot Register File, HPCA'17).
//!
//! Instead of a tiny cache in front of a slow RF, the register file is
//! *split*: a small fast partition holds the hottest architectural
//! registers and the large remainder runs slow. The paper notes the design
//! "can readily be adapted to AdvHet, by implementing the slow partition
//! in TFET and the fast one in CMOS" — this module is that adaptation.
//!
//! Allocation follows the compiler model of the original proposal: the
//! most frequently used register names (statically countable from the
//! kernel, which the GPU knows at launch) are pinned to the fast
//! partition.

use crate::kernel::GpuInst;

/// Configuration of the partitioned vector register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionedRfConfig {
    /// Registers per thread pinned to the fast (CMOS) partition.
    pub fast_regs: u32,
    /// Fast-partition access latency (cycles).
    pub fast_latency: u32,
}

impl Default for PartitionedRfConfig {
    /// A fast partition comparable in capacity to the 6-entry RF cache
    /// plus the pilot registers the HPCA'17 design pins: 16 of the 48-ish
    /// live registers.
    fn default() -> Self {
        PartitionedRfConfig {
            fast_regs: 16,
            fast_latency: 1,
        }
    }
}

/// The static fast-register set for a kernel: the `fast_regs` most
/// frequently referenced register names.
#[derive(Debug, Clone)]
pub struct FastRegSet {
    is_fast: Vec<bool>,
    fast_count: u32,
}

impl FastRegSet {
    /// Computes the allocation for `kernel` (counting both reads and
    /// writes, as the compiler would).
    pub fn allocate(kernel: &[GpuInst], cfg: PartitionedRfConfig) -> Self {
        let mut usage = [0u64; 256];
        for inst in kernel {
            for src in inst.srcs.into_iter().flatten() {
                usage[src as usize] += 1;
            }
            if let Some(dst) = inst.dst {
                usage[dst as usize] += 1;
            }
        }
        let mut by_use: Vec<u8> = (0..=255u8).collect();
        by_use.sort_by_key(|&r| std::cmp::Reverse(usage[r as usize]));
        let mut is_fast = vec![false; 256];
        let mut fast_count = 0;
        for &r in by_use.iter().take(cfg.fast_regs as usize) {
            if usage[r as usize] > 0 {
                is_fast[r as usize] = true;
                fast_count += 1;
            }
        }
        FastRegSet {
            is_fast,
            fast_count,
        }
    }

    /// Whether register `reg` lives in the fast partition.
    pub fn is_fast(&self, reg: u8) -> bool {
        self.is_fast[reg as usize]
    }

    /// Number of registers actually pinned fast.
    pub fn fast_count(&self) -> u32 {
        self.fast_count
    }

    /// Validates the allocation against its budget: the pinned count
    /// matches the flag vector and never exceeds `cfg.fast_regs`.
    pub fn validate(&self, cfg: &PartitionedRfConfig, checker: &mut hetsim_check::Checker) {
        checker.scoped("fast_regs", |c| {
            c.le_u64(
                "gpu.partition_budget",
                ("fast_count", u64::from(self.fast_count)),
                ("cfg.fast_regs", u64::from(cfg.fast_regs)),
            );
            c.eq_u64(
                "gpu.partition_flag_consistency",
                (
                    "flagged registers",
                    self.is_fast.iter().filter(|&&f| f).count() as u64,
                ),
                ("fast_count", u64::from(self.fast_count)),
            );
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    fn kernel() -> Vec<GpuInst> {
        kernels::profile("matmul")
            .expect("known kernel")
            .generate(3)
    }

    #[test]
    fn allocation_respects_the_budget() {
        let cfg = PartitionedRfConfig::default();
        let set = FastRegSet::allocate(&kernel(), cfg);
        assert!(set.fast_count() <= cfg.fast_regs);
        assert!(set.fast_count() > 0);
    }

    #[test]
    fn hot_registers_go_fast() {
        let insts = kernel();
        let set = FastRegSet::allocate(&insts, PartitionedRfConfig::default());
        // Count accesses served fast; the top-16 of ~48 live registers must
        // cover a disproportionate share (register reuse is skewed).
        let mut fast_refs = 0u64;
        let mut total_refs = 0u64;
        for inst in &insts {
            for src in inst.srcs.into_iter().flatten() {
                total_refs += 1;
                if set.is_fast(src) {
                    fast_refs += 1;
                }
            }
        }
        let share = fast_refs as f64 / total_refs as f64;
        assert!(
            share > 16.0 / 48.0,
            "fast partition must capture more than its size share: {share}"
        );
    }

    #[test]
    fn zero_usage_registers_are_never_pinned() {
        let insts = kernel();
        let set = FastRegSet::allocate(
            &insts,
            PartitionedRfConfig {
                fast_regs: 255,
                fast_latency: 1,
            },
        );
        // Registers beyond the kernel's working set are unused and unpinned.
        assert!(!set.is_fast(200));
    }
}
