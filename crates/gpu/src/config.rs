//! GPU configuration (paper Table III, GPU rows).

/// Vector registers per thread (AMD Southern Islands).
pub const VREGS_PER_THREAD: u32 = 256;

/// Threads per wavefront.
pub const WAVEFRONT_THREADS: u32 = 64;

pub use crate::partitioned::PartitionedRfConfig;

/// Register-file cache configuration (Section IV-C3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RfCacheConfig {
    /// Entries per thread (6 in the paper).
    pub entries: u32,
    /// Access latency in cycles (1 in the paper).
    pub latency: u32,
}

impl Default for RfCacheConfig {
    fn default() -> Self {
        RfCacheConfig {
            entries: 6,
            latency: 1,
        }
    }
}

/// Full configuration of the GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Compute units (8 baseline, 16 for AdvHet-2X).
    pub compute_units: u32,
    /// SIMD lanes (execution units) per CU.
    pub lanes_per_cu: u32,
    /// Maximum resident wavefronts per CU. Architecturally Southern
    /// Islands allows 10 per SIMD, but register/LDS pressure limits real
    /// AMD APP SDK kernels to a handful — which is what leaves latency
    /// exposed enough for the paper's BaseHet GPU to lose 28%.
    pub waves_per_cu: u32,
    /// Core clock (Hz): 1 GHz baseline, 0.5 GHz for BaseTFET.
    pub clock_hz: f64,
    /// FMA pipeline latency: 3 (CMOS) or 6 (TFET); pipelined, issue every
    /// cycle.
    pub fma_latency: u32,
    /// Main vector-RF access latency: 1 (CMOS) or 2 (TFET).
    pub rf_latency: u32,
    /// Register-file cache, if present (AdvHet and — for fairness — the
    /// paper's GPU BaseCMOS).
    pub rf_cache: Option<RfCacheConfig>,
    /// Partitioned register file, if present (the Section VIII
    /// alternative; mutually exclusive with `rf_cache`).
    pub rf_partition: Option<PartitionedRfConfig>,
    /// LDS access latency.
    pub lds_latency: u32,
    /// Global-memory latency on an on-chip hit (cycles).
    pub mem_hit_latency: u32,
    /// Global-memory latency on a miss to DRAM (cycles).
    pub mem_miss_latency: u32,
}

impl Default for GpuConfig {
    /// The paper's GPU BaseCMOS: 8 CUs, 16 EUs, 1 GHz, CMOS latencies,
    /// register-file cache included for fairness (Table IV).
    fn default() -> Self {
        GpuConfig {
            compute_units: 8,
            lanes_per_cu: 16,
            waves_per_cu: 3,
            clock_hz: 1.0e9,
            fma_latency: 3,
            rf_latency: 1,
            rf_cache: Some(RfCacheConfig::default()),
            rf_partition: None,
            lds_latency: 4,
            mem_hit_latency: 28,
            mem_miss_latency: 250,
        }
    }
}

impl GpuConfig {
    /// Cycles a wavefront occupies a SIMD: 64 threads over 16 lanes.
    pub fn issue_cycles_per_wavefront(&self) -> u32 {
        WAVEFRONT_THREADS / self.lanes_per_cu
    }

    /// Validates structural parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.compute_units == 0 || self.lanes_per_cu == 0 || self.waves_per_cu == 0 {
            return Err("GPU dimensions must be positive".into());
        }
        if !WAVEFRONT_THREADS.is_multiple_of(self.lanes_per_cu) {
            return Err(format!(
                "{} lanes must divide the 64-thread wavefront",
                self.lanes_per_cu
            ));
        }
        if self.clock_hz <= 0.0 {
            return Err(format!("clock must be positive: {}", self.clock_hz));
        }
        if self.fma_latency == 0 || self.rf_latency == 0 {
            return Err("latencies must be at least one cycle".into());
        }
        if self.rf_cache.is_some() && self.rf_partition.is_some() {
            return Err("rf_cache and rf_partition are mutually exclusive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_iii() {
        let c = GpuConfig::default();
        assert_eq!(c.compute_units, 8);
        assert_eq!(c.lanes_per_cu, 16);
        assert_eq!(c.clock_hz, 1.0e9);
        assert_eq!(c.fma_latency, 3);
        assert_eq!(c.rf_latency, 1);
        assert_eq!(
            c.rf_cache,
            Some(RfCacheConfig {
                entries: 6,
                latency: 1
            })
        );
        c.validate().expect("default validates");
    }

    #[test]
    fn wavefront_issues_over_four_cycles() {
        assert_eq!(GpuConfig::default().issue_cycles_per_wavefront(), 4);
    }

    #[test]
    fn validation_rejects_bad_lane_count() {
        let mut c = GpuConfig::default();
        c.lanes_per_cu = 24;
        assert!(c.validate().is_err());
    }
}
