//! One compute unit: wavefront pool, scoreboard, round-robin issue.
//!
//! The CU hosts up to `waves_per_cu` resident wavefronts and issues one
//! wavefront instruction per cycle (Southern Islands: four SIMDs, each
//! accepting one wavefront instruction every four cycles). Wavefronts
//! execute their kernel in order, gated by a scoreboard: an instruction
//! marked `dep_on_prev` waits for the previous instruction's completion.
//! Latency hiding across wavefronts — the essence of GPU throughput — then
//! emerges: while one wavefront waits on memory or a deep TFET FMA
//! pipeline, others issue.

use hetsim_stats::attribution;

use crate::config::{GpuConfig, WAVEFRONT_THREADS};
use crate::kernel::{GpuInst, GpuOp, KernelProfile};
use crate::partitioned::FastRegSet;
use crate::profile::{CuProfile, CycleClass};
use crate::rfcache::RfCache;
use crate::stats::GpuStats;

/// SplitMix64 hash, used to sample per-(wavefront, pc) events
/// deterministically — the miss pattern must not depend on the issue
/// interleaving, or configuration comparisons would be noisy.
fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic Bernoulli draw from a hashed key.
fn hashed_bool(key: u64, p: f64) -> bool {
    (hash64(key) as f64 / u64::MAX as f64) < p
}

/// Per-wavefront execution state, struct-of-arrays: the issue scan is a
/// dense walk over small parallel vectors (`pc`, `next_issue`,
/// `prev_done`) instead of hopping across per-wave structs, and the
/// rarely-touched fields (`id`, RF caches) stay out of the scanned
/// lines.
struct WavePool {
    /// Global wavefront ids (stable across configurations).
    id: Vec<u64>,
    pc: Vec<u32>,
    /// Completion time of each wavefront's previous instruction
    /// (scoreboard).
    prev_done: Vec<u64>,
    /// Earliest cycle each wavefront may issue again (SIMD occupancy).
    next_issue: Vec<u64>,
    /// Per-wave RF caches; empty when the config has none.
    rfc: Vec<RfCache>,
}

/// Runs `wave_count` wavefronts of `kernel` on one compute unit.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn run_cu(
    cfg: &GpuConfig,
    kernel: &[GpuInst],
    profile: &KernelProfile,
    wave_count: u32,
    seed: u64,
) -> GpuStats {
    run_cu_profiled(cfg, kernel, profile, wave_count, seed).0
}

/// Like [`run_cu`], but also returns the top-down cycle attribution:
/// every cycle charged to exactly one class (summing to
/// `GpuStats::cycles`), plus the wave-residency histogram when
/// process-wide profiling is enabled.
///
/// # Panics
///
/// As for [`run_cu`].
pub fn run_cu_profiled(
    cfg: &GpuConfig,
    kernel: &[GpuInst],
    profile: &KernelProfile,
    wave_count: u32,
    seed: u64,
) -> (GpuStats, CuProfile) {
    cfg.validate().expect("valid GPU config");
    let mut stats = GpuStats::default();
    let mut attrib = CuProfile::default();
    if wave_count == 0 || kernel.is_empty() {
        return (stats, attrib);
    }
    let profiling = attribution::enabled();
    let threads = u64::from(WAVEFRONT_THREADS);
    let issue_occupancy = u64::from(cfg.issue_cycles_per_wavefront());
    // Static fast-register allocation for a partitioned RF (per kernel,
    // shared by every wavefront — it is a compiler decision).
    let fast_regs = cfg.rf_partition.map(|p| FastRegSet::allocate(kernel, p));

    // Waves beyond the resident limit start as soon as a slot frees; model
    // by batching (each batch fully resident, conservative on tail
    // effects, which are small for the launch sizes used).
    let resident = cfg.waves_per_cu.min(wave_count);
    let batches = wave_count.div_ceil(resident);
    let kernel_len = u32::try_from(kernel.len()).expect("kernel fits in u32 pcs");
    let mut cycle: u64 = 0;
    let mut skipped_cycles: u64 = 0;
    let mut wakeup_jumps: u64 = 0;

    for batch in 0..batches {
        let n = resident.min(wave_count - batch * resident) as usize;
        let mut pool = WavePool {
            id: (0..n as u32)
                .map(|w| seed ^ hash64(u64::from(batch * resident + w)))
                .collect(),
            pc: vec![0; n],
            prev_done: vec![0; n],
            next_issue: vec![cycle; n],
            rfc: match cfg.rf_cache {
                Some(c) => (0..n).map(|_| RfCache::new(c.entries as usize)).collect(),
                None => Vec::new(),
            },
        };
        let mut rr = 0usize;
        let mut remaining = n;
        while remaining > 0 {
            // Round-robin scan for the first issuable wavefront. The
            // next-event search is folded into the scan: if every
            // wavefront refuses, `next_ready` already holds the
            // earliest cycle one could issue, so the idle jump below
            // needs no second pass over the pool.
            let mut issued = false;
            let mut next_ready = u64::MAX;
            let mut next_blocked_on_mem = false;
            for k in 0..n {
                let mut i = rr + k;
                if i >= n {
                    i -= n;
                }
                let pc = pool.pc[i];
                if pc >= kernel_len {
                    continue;
                }
                let inst = kernel[pc as usize];
                let dep = if inst.dep_on_prev {
                    pool.prev_done[i]
                } else {
                    0
                };
                let ready = pool.next_issue[i].max(dep);
                if ready > cycle {
                    if ready < next_ready {
                        next_ready = ready;
                        // Attribution for the idle gap below: the binding
                        // constraint of the wave that wakes *first*. A
                        // scoreboard dependence on a memory instruction
                        // means the whole CU is waiting on memory;
                        // anything else is issue bandwidth or an ALU
                        // dependence chain. `dep > next_issue` implies
                        // the wave issued before, so `pc - 1` is valid.
                        next_blocked_on_mem =
                            dep > pool.next_issue[i] && kernel[(pc - 1) as usize].op == GpuOp::Mem;
                    }
                    continue;
                }
                // ---- Issue this wavefront instruction ----
                let read_latency = read_sources(
                    cfg,
                    pool.rfc.get_mut(i),
                    &inst,
                    &mut stats,
                    threads,
                    fast_regs.as_ref(),
                );
                if let (Some(dst), Some(rfc)) = (inst.dst, pool.rfc.get_mut(i)) {
                    let evict_before = rfc.evictions();
                    rfc.write(dst);
                    stats.rf_cache_accesses += threads;
                    stats.vector_rf_accesses += (rfc.evictions() - evict_before) * threads;
                } else if let (Some(dst), Some(fast)) = (inst.dst, fast_regs.as_ref()) {
                    if fast.is_fast(dst) {
                        stats.rf_fast_accesses += threads;
                    } else {
                        stats.vector_rf_accesses += threads;
                    }
                } else if inst.dst.is_some() {
                    stats.vector_rf_accesses += threads;
                }
                let fu_latency = match inst.op {
                    GpuOp::Valu => {
                        stats.valu_insts += 1;
                        stats.thread_fma_ops += threads;
                        u64::from(cfg.fma_latency)
                    }
                    GpuOp::Mem => {
                        stats.mem_insts += 1;
                        let key = pool.id[i]
                            .wrapping_mul(0x1000_0001)
                            .wrapping_add(u64::from(pc));
                        if hashed_bool(key, profile.mem_miss_rate) {
                            stats.dram_accesses += 1;
                            u64::from(cfg.mem_miss_latency)
                        } else {
                            u64::from(cfg.mem_hit_latency)
                        }
                    }
                    GpuOp::Lds => {
                        stats.lds_insts += 1;
                        stats.lds_accesses += threads;
                        u64::from(cfg.lds_latency)
                    }
                };
                pool.prev_done[i] = cycle + read_latency + fu_latency;
                pool.next_issue[i] = cycle + issue_occupancy;
                pool.pc[i] = pc + 1;
                stats.wavefront_insts += 1;
                if pc + 1 >= kernel_len {
                    remaining -= 1;
                }
                rr = i + 1;
                if rr == n {
                    rr = 0;
                }
                issued = true;
                break;
            }
            if !issued {
                // Skip ahead to the next event rather than ticking idle
                // cycles one by one.
                assert!(
                    next_ready != u64::MAX,
                    "remaining > 0 implies an unfinished wave"
                );
                let next = next_ready.max(cycle + 1);
                skipped_cycles += next - (cycle + 1);
                wakeup_jumps += 1;
                let gap = next - cycle;
                let class = if next_blocked_on_mem {
                    CycleClass::MemLatency
                } else {
                    CycleClass::IssueBound
                };
                attrib.classes.charge(class, gap);
                if profiling {
                    attrib.residency.record_n(remaining as u64, gap);
                }
                cycle = next;
                continue;
            }
            attrib.classes.charge(CycleClass::Retire, 1);
            if profiling {
                attrib.residency.record_n(remaining as u64, 1);
            }
            cycle += 1;
        }
        // Drain the batch: the batch ends when its slowest wavefront's
        // last instruction completes.
        let drain = pool.prev_done.iter().copied().max().unwrap_or(cycle);
        if drain > cycle {
            attrib
                .classes
                .charge(CycleClass::IdleSkipped, drain - cycle);
            if profiling {
                attrib.residency.record_n(0, drain - cycle);
            }
            cycle = drain;
        }
    }
    crate::telemetry::record(skipped_cycles, wakeup_jumps);
    stats.cycles = cycle;
    attrib.cycles = cycle;
    debug_assert_eq!(
        attrib.classes.total(),
        attrib.cycles,
        "every CU cycle is charged to exactly one class"
    );
    (stats, attrib)
}

/// Reads an instruction's sources through the RF cache (if present),
/// returning the register-read latency and counting energy events.
fn read_sources(
    cfg: &GpuConfig,
    mut rfc: Option<&mut RfCache>,
    inst: &GpuInst,
    stats: &mut GpuStats,
    threads: u64,
    fast_regs: Option<&FastRegSet>,
) -> u64 {
    let mut latency = 0u64;
    for src in inst.srcs.into_iter().flatten() {
        let lat = match (rfc.as_deref_mut(), cfg.rf_cache) {
            (Some(rfc), Some(rfc_cfg)) => {
                if rfc.read(src) {
                    stats.rf_cache_hits += threads;
                    stats.rf_cache_accesses += threads;
                    u64::from(rfc_cfg.latency)
                } else {
                    stats.rf_cache_misses += threads;
                    stats.vector_rf_accesses += threads;
                    u64::from(cfg.rf_latency)
                }
            }
            _ => match (fast_regs, cfg.rf_partition) {
                (Some(fast), Some(part)) if fast.is_fast(src) => {
                    stats.rf_fast_accesses += threads;
                    u64::from(part.fast_latency)
                }
                _ => {
                    stats.vector_rf_accesses += threads;
                    u64::from(cfg.rf_latency)
                }
            },
        };
        latency = latency.max(lat);
    }
    latency
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::kernels;

    fn small_kernel() -> (KernelProfile, Vec<GpuInst>) {
        let mut p = kernels::profile("matmul").expect("known kernel");
        p.insts_per_wavefront = 500;
        p.wavefronts = 8;
        let insts = p.generate(3);
        (p, insts)
    }

    #[test]
    fn all_wavefronts_complete() {
        let (p, insts) = small_kernel();
        let stats = run_cu(&GpuConfig::default(), &insts, &p, 8, 1);
        assert_eq!(stats.wavefront_insts, 8 * 500);
        assert!(stats.cycles >= 8 * 500, "1 issue/cycle bound");
    }

    #[test]
    fn more_wavefronts_hide_latency() {
        let (p, insts) = small_kernel();
        let one = run_cu(&GpuConfig::default(), &insts, &p, 1, 1);
        let eight = run_cu(&GpuConfig::default(), &insts, &p, 8, 1);
        // 8 waves do 8x the work in far less than 8x the time.
        let scaling = eight.cycles as f64 / one.cycles as f64;
        assert!(
            scaling < 4.0,
            "8x work should take <4x time, took {scaling:.2}x"
        );
    }

    #[test]
    fn tfet_latencies_hurt_less_with_occupancy() {
        let (p, insts) = small_kernel();
        let mut tfet = GpuConfig::default();
        tfet.fma_latency = 6;
        tfet.rf_latency = 2;
        tfet.rf_cache = None;
        let mut cmos = GpuConfig::default();
        cmos.rf_cache = None;

        let slow_1 = run_cu(&tfet, &insts, &p, 1, 1).cycles as f64
            / run_cu(&cmos, &insts, &p, 1, 1).cycles as f64;
        let slow_8 = run_cu(&tfet, &insts, &p, 8, 1).cycles as f64
            / run_cu(&cmos, &insts, &p, 8, 1).cycles as f64;
        assert!(
            slow_8 < slow_1,
            "occupancy should hide TFET latency: 1-wave slowdown {slow_1:.2}, 8-wave {slow_8:.2}"
        );
    }

    #[test]
    fn rf_cache_recovers_performance() {
        let (p, insts) = small_kernel();
        let mut base = GpuConfig::default();
        base.rf_latency = 2; // TFET RF
        base.rf_cache = None;
        let mut cached = base.clone();
        cached.rf_cache = Some(crate::config::RfCacheConfig::default());
        let without = run_cu(&base, &insts, &p, 8, 1).cycles;
        let with = run_cu(&cached, &insts, &p, 8, 1).cycles;
        assert!(
            with <= without,
            "RF cache must not slow things down: {with} vs {without}"
        );
    }

    #[test]
    fn rf_cache_hit_rate_is_meaningful() {
        let (p, insts) = small_kernel();
        let stats = run_cu(&GpuConfig::default(), &insts, &p, 8, 1);
        let hr = stats.rf_cache_hit_rate();
        assert!(hr > 0.2, "written-value reuse should hit: {hr}");
        assert!(hr < 0.9, "long-lived values should miss: {hr}");
    }

    #[test]
    fn zero_waves_is_empty_run() {
        let (p, insts) = small_kernel();
        let stats = run_cu(&GpuConfig::default(), &insts, &p, 0, 1);
        assert_eq!(stats.wavefront_insts, 0);
        assert_eq!(stats.cycles, 0);
    }
}
