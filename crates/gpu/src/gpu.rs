//! The whole GPU: wavefront distribution across compute units.
//!
//! The launch's wavefronts are distributed round-robin over the configured
//! compute units; CUs execute independently (per-CU LDS and register
//! files; the synthetic kernels' memory behaviour is folded into per-access
//! latencies). Total time is the slowest CU. Doubling the CU count at a
//! fixed launch size — the AdvHet-2X experiment — halves each CU's share.

use hetsim_check::{CheckConfig, Checker, Violation};

use crate::config::GpuConfig;
use crate::cu::run_cu_profiled;
use crate::kernel::KernelProfile;
use crate::profile::CuProfile;
use crate::stats::{validate_gpu_stats, GpuStats};

/// Result of a GPU kernel launch.
#[derive(Debug, Clone)]
pub struct GpuRunResult {
    /// Aggregated counters (cycles = slowest CU).
    pub stats: GpuStats,
    /// The clock the GPU ran at (Hz).
    pub clock_hz: f64,
    /// Compute units that participated.
    pub compute_units: u32,
    /// Per-CU top-down cycle attribution (one entry per CU, in CU
    /// order). Each entry's classes sum to that CU's own cycle count.
    pub profiles: Vec<CuProfile>,
}

impl GpuRunResult {
    /// Wall-clock seconds of the launch.
    pub fn seconds(&self) -> f64 {
        self.stats.cycles as f64 / self.clock_hz
    }
}

/// The GPU model.
#[derive(Debug, Clone)]
pub struct Gpu {
    cfg: GpuConfig,
}

impl Gpu {
    /// Builds a GPU.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: GpuConfig) -> Self {
        cfg.validate().expect("valid GPU config");
        Gpu { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Launches `kernel` (deterministically from `seed`) and runs it to
    /// completion.
    pub fn run(&self, kernel: &KernelProfile, seed: u64) -> GpuRunResult {
        let insts = kernel.generate(seed);
        self.run_insts(kernel, &insts, seed)
    }

    /// Like [`Gpu::run`], but first applies the latency-hiding compiler
    /// pass of [`crate::schedule`] with the given lookahead window (the
    /// paper's future-work optimization).
    pub fn run_scheduled(&self, kernel: &KernelProfile, seed: u64, window: usize) -> GpuRunResult {
        let insts = kernel.generate(seed);
        let scheduled = crate::schedule::schedule_kernel(&insts, window);
        self.run_insts(kernel, &scheduled.insts, seed)
    }

    /// Like [`Gpu::run`], but validates the finished launch against the
    /// wavefront-accounting invariants when `check` is enabled, returning
    /// any violations alongside the result.
    pub fn run_checked(
        &self,
        kernel: &KernelProfile,
        seed: u64,
        check: CheckConfig,
    ) -> (GpuRunResult, Vec<Violation>) {
        let result = self.run(kernel, seed);
        let mut checker = Checker::new();
        if check.enabled() {
            self.validate_launch(kernel, &result, &mut checker);
        }
        (result, checker.into_violations())
    }

    /// Validates a finished launch: the generic [`validate_gpu_stats`]
    /// identities, total launch work (`insts_per_wavefront x wavefronts`),
    /// the per-CU issue-throughput cycle bound, and that structures absent
    /// from this configuration left their counters at zero.
    pub fn validate_launch(
        &self,
        kernel: &KernelProfile,
        result: &GpuRunResult,
        checker: &mut Checker,
    ) {
        validate_gpu_stats(&result.stats, checker);
        checker.scoped("gpu", |c| {
            let s = &result.stats;
            c.eq_u64(
                "gpu.launch_work",
                ("wavefront_insts", s.wavefront_insts),
                (
                    "insts_per_wavefront * wavefronts",
                    u64::from(kernel.insts_per_wavefront) * u64::from(kernel.wavefronts),
                ),
            );
            // One wavefront instruction per CU per cycle; round-robin
            // distribution means the slowest CU issues at least the mean.
            c.ge_u64(
                "gpu.issue_throughput_bound",
                ("cycles", s.cycles),
                (
                    "wavefront_insts / compute_units",
                    s.wavefront_insts
                        .div_ceil(u64::from(result.compute_units.max(1))),
                ),
            );
            if self.cfg.rf_cache.is_none() {
                c.eq_u64(
                    "gpu.rfc_absent",
                    (
                        "rf_cache accesses + hits + misses",
                        s.rf_cache_accesses + s.rf_cache_hits + s.rf_cache_misses,
                    ),
                    ("0", 0),
                );
            }
            if self.cfg.rf_partition.is_none() {
                c.eq_u64(
                    "gpu.partition_absent",
                    ("rf_fast_accesses", s.rf_fast_accesses),
                    ("0", 0),
                );
            }
            // Top-down attribution conservation, per CU: every cycle is
            // charged to exactly one class, and the slowest CU's cycles
            // are the launch's cycles.
            let mut slowest = 0u64;
            for (cu, p) in result.profiles.iter().enumerate() {
                c.eq_u64(
                    "gpu.profile_class_conservation",
                    (&format!("cu{cu} class_cycles"), p.classes.total()),
                    (&format!("cu{cu} profile_cycles"), p.cycles),
                );
                slowest = slowest.max(p.cycles);
            }
            if !result.profiles.is_empty() {
                c.eq_u64(
                    "gpu.profile_cycles_match",
                    ("slowest cu profile_cycles", slowest),
                    ("cycles", s.cycles),
                );
            }
        });
    }

    fn run_insts(
        &self,
        kernel: &KernelProfile,
        insts: &[crate::kernel::GpuInst],
        seed: u64,
    ) -> GpuRunResult {
        let cus = self.cfg.compute_units;
        // Round-robin wavefront distribution.
        let base = kernel.wavefronts / cus;
        let extra = kernel.wavefronts % cus;
        let mut stats = GpuStats::default();
        let mut profiles = Vec::with_capacity(cus as usize);
        for cu in 0..cus {
            let waves = base + u32::from(cu < extra);
            let (cu_stats, cu_profile) = run_cu_profiled(
                &self.cfg,
                insts,
                kernel,
                waves,
                seed.wrapping_add(0x9E37 * u64::from(cu) + 1),
            );
            stats.merge(&cu_stats);
            profiles.push(cu_profile);
        }
        GpuRunResult {
            stats,
            clock_hz: self.cfg.clock_hz,
            compute_units: cus,
            profiles,
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::kernels;

    #[test]
    fn full_launch_completes_all_work() {
        let k = kernels::profile("reduction").expect("known");
        let r = Gpu::new(GpuConfig::default()).run(&k, 9);
        assert_eq!(
            r.stats.wavefront_insts,
            u64::from(k.insts_per_wavefront) * u64::from(k.wavefronts)
        );
    }

    #[test]
    fn doubling_cus_speeds_up_the_launch() {
        let k = kernels::profile("matmul").expect("known");
        let eight = Gpu::new(GpuConfig::default()).run(&k, 9);
        let mut cfg = GpuConfig::default();
        cfg.compute_units = 16;
        let sixteen = Gpu::new(cfg).run(&k, 9);
        let speedup = eight.seconds() / sixteen.seconds();
        assert!(
            (1.4..2.2).contains(&speedup),
            "16 CUs should approach 2x over 8: {speedup:.2}x"
        );
    }

    #[test]
    fn half_clock_doubles_seconds() {
        let k = kernels::profile("dct").expect("known");
        let base = Gpu::new(GpuConfig::default()).run(&k, 9);
        let mut cfg = GpuConfig::default();
        cfg.clock_hz = 0.5e9;
        let slow = Gpu::new(cfg).run(&k, 9);
        let ratio = slow.seconds() / base.seconds();
        assert!((1.9..2.1).contains(&ratio), "seconds ratio {ratio}");
    }

    #[test]
    fn checked_launch_is_clean() {
        for name in ["matmul", "reduction", "dct"] {
            let k = kernels::profile(name).expect("known");
            let gpu = Gpu::new(GpuConfig::default());
            let (r, violations) = gpu.run_checked(&k, 9, hetsim_check::CheckConfig::ON);
            assert!(
                violations.is_empty(),
                "{name}: invariants must hold: {violations:?}"
            );
            assert_eq!(r.stats, gpu.run(&k, 9).stats, "checking must not perturb");
        }
    }

    #[test]
    fn validate_launch_flags_corrupted_counters() {
        let k = kernels::profile("matmul").expect("known");
        let gpu = Gpu::new(GpuConfig::default());
        let mut r = gpu.run(&k, 9);
        r.stats.valu_insts += 1; // breaks op conservation and lane math
        let mut checker = hetsim_check::Checker::new();
        gpu.validate_launch(&k, &r, &mut checker);
        assert!(checker
            .violations()
            .iter()
            .any(|v| v.invariant == "gpu.op_conservation"));
        assert!(checker
            .violations()
            .iter()
            .any(|v| v.invariant == "gpu.fma_lanes"));
    }

    #[test]
    fn deterministic_across_runs() {
        let k = kernels::profile("sobel").expect("known");
        let gpu = Gpu::new(GpuConfig::default());
        let a = gpu.run(&k, 4);
        let b = gpu.run(&k, 4);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn tfet_gpu_is_slower_but_not_2x_with_occupancy() {
        // BaseHet GPU: TFET FMA (6) + TFET RF (2), no RF cache, same clock.
        let k = kernels::profile("binomialoption").expect("known");
        let mut cmos = GpuConfig::default();
        cmos.rf_cache = None;
        let mut het = cmos.clone();
        het.fma_latency = 6;
        het.rf_latency = 2;
        let base = Gpu::new(cmos).run(&k, 5);
        let slow = Gpu::new(het).run(&k, 5);
        let ratio = slow.seconds() / base.seconds();
        assert!(ratio > 1.02, "TFET units must cost something: {ratio:.3}");
        assert!(ratio < 1.9, "occupancy must hide most of it: {ratio:.3}");
    }
}
