//! Cycle-level SIMT GPU model after AMD Southern Islands.
//!
//! This crate reproduces the GPU side of the paper's evaluation platform
//! (Multi2Sim's Southern Islands model, Table III): 8 compute units of 16
//! execution units each at 1 GHz, 64-thread wavefronts issued over four
//! lane cycles, a 256-register-per-thread vector register file (1-cycle
//! CMOS / 2-cycle TFET access), pipelined SIMD FMA units (3-cycle CMOS /
//! 6-cycle TFET), and the AdvHet register-file cache (6 entries per
//! thread, caching *writes only*, 1-cycle access — Section IV-C3).
//!
//! GPU workloads are synthetic kernels standing in for the AMD APP SDK
//! suite (the substitution mirrors the CPU side, see DESIGN.md): each
//! kernel is a deterministic instruction sequence — all wavefronts execute
//! the same code, as in real SIMT — characterized by its VALU/memory/LDS
//! mix, dependency density, register reuse behaviour and memory miss rate.
//!
//! * [`config`] — [`config::GpuConfig`], every Table III GPU knob.
//! * [`kernel`] — the kernel instruction model and generator.
//! * [`kernels`] — the named AMD-APP-SDK-flavored kernel profiles.
//! * [`rfcache`] — the write-allocate register-file cache.
//! * [`partitioned`] — the partitioned-RF alternative from related work
//!   (fast CMOS partition + slow TFET partition, Section VIII).
//! * [`schedule`] — the future-work compiler latency-hiding pass.
//! * [`cu`] — one compute unit: wavefront pool, scoreboard, issue.
//! * [`gpu`] — the whole GPU: wavefront distribution over CUs.
//! * [`stats`] — event counters for the GPUWattch-like energy model.
//! * [`telemetry`] — process-global idle-skip counters for the
//!   event-driven CU step (surfaced under `runner.timing.*`).
//!
//! # Example
//!
//! ```
//! use hetsim_gpu::{config::GpuConfig, gpu::Gpu, kernels};
//!
//! let kernel = kernels::profile("matmul").expect("known kernel");
//! let result = Gpu::new(GpuConfig::default()).run(&kernel, 77);
//! assert!(result.stats.cycles > 0);
//! assert!(result.stats.wavefront_insts > 0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod cu;
pub mod gpu;
pub mod kernel;
pub mod kernels;
pub mod partitioned;
pub mod profile;
pub mod rfcache;
pub mod schedule;
pub mod stats;
pub mod telemetry;

pub use config::GpuConfig;
pub use gpu::{Gpu, GpuRunResult};
pub use kernel::KernelProfile;
pub use profile::CuProfile;
pub use stats::GpuStats;
