//! Per-compute-unit cycle-attribution profile.
//!
//! [`CuProfile`] is the GPU half of the top-down profiler: every cycle
//! of [`crate::cu::run_cu_profiled`] is charged to exactly one
//! [`CycleClass`], so the class counts sum to `GpuStats::cycles` for
//! that CU — an identity `hetsim-check` enforces
//! (`gpu.profile_class_conservation`). A SIMT unit has no front end to
//! starve or ROB to fill, so only a subset of the shared class
//! vocabulary appears: `retire` (an instruction issued), `mem-latency`
//! (every resident wavefront dependence-blocked on an outstanding
//! memory instruction), `issue-bound` (blocked on SIMD issue occupancy
//! or a non-memory dependence chain), and `idle-skipped` (the
//! launch-tail drain of a wavefront batch).

use hetsim_stats::attribution::ClassCounts;
use hetsim_stats::serde::value::Value;
use hetsim_stats::serde::{Deserialize, Error, Serialize};
use hetsim_stats::Histogram;

pub use hetsim_stats::attribution::CycleClass;

/// Top-down attribution for one CU run: where every cycle went, plus
/// (when profiling is enabled) the distribution of unfinished resident
/// wavefronts per cycle.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CuProfile {
    /// Cycles charged per top-down class; sums to [`CuProfile::cycles`].
    pub classes: ClassCounts,
    /// Total cycles this CU ran (equals its `GpuStats::cycles`).
    pub cycles: u64,
    /// Unfinished resident wavefronts, sampled every cycle (bulk-sampled
    /// across idle jumps). Empty when profiling is off.
    pub residency: Histogram,
}

impl CuProfile {
    /// `true` when no cycle was attributed (empty launches, default
    /// contexts). The conservation check is skipped for empty profiles.
    pub fn is_empty(&self) -> bool {
        self.cycles == 0 && self.classes.is_empty()
    }

    /// Folds another CU's attribution in (per-design roll-ups): class
    /// counts and cycles add, residency samples merge.
    pub fn merge(&mut self, other: &CuProfile) {
        self.classes.merge(&other.classes);
        self.cycles = self.cycles.saturating_add(other.cycles);
        self.residency.merge(&other.residency);
    }
}

impl Serialize for CuProfile {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("cycles".into(), Value::UInt(self.cycles)),
            ("classes".into(), self.classes.to_value()),
            ("residency".into(), self.residency.to_value()),
        ])
    }
}

impl Deserialize for CuProfile {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| Error::custom(format!("CuProfile has no `{name}`")))
        };
        Ok(CuProfile {
            cycles: field("cycles")?
                .as_u64()
                .ok_or_else(|| Error::custom("CuProfile.cycles is not unsigned"))?,
            classes: ClassCounts::from_value(field("classes")?)?,
            residency: Histogram::from_value(field("residency")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_and_serde_round_trips() {
        let mut a = CuProfile::default();
        a.classes.charge(CycleClass::Retire, 100);
        a.classes.charge(CycleClass::MemLatency, 20);
        a.cycles = 120;
        a.residency.record_n(8, 120);
        let mut b = CuProfile::default();
        b.classes.charge(CycleClass::IdleSkipped, 5);
        b.cycles = 5;
        a.merge(&b);
        assert_eq!(a.cycles, 125);
        assert_eq!(a.classes.total(), 125);
        assert!(!a.is_empty());
        assert!(CuProfile::default().is_empty());
        let back = CuProfile::from_value(&a.to_value()).expect("round trip");
        assert_eq!(back, a);
    }
}
