//! Synthetic GPU kernels.
//!
//! A kernel is a deterministic sequence of vector instructions that every
//! wavefront executes (true SIMT: one instruction stream, many data). The
//! generator samples the sequence once from a [`KernelProfile`]; per-
//! wavefront variation (memory misses) is sampled at execution time.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Register identifiers live in a compact per-kernel working set; real
/// kernels use a few dozen live registers out of the 256 available.
pub const REG_WORKING_SET: u8 = 48;

/// Classes of vector instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuOp {
    /// VALU arithmetic (FMA/MAD/MUL/ADD on the SIMD lanes).
    Valu,
    /// Global-memory load/store.
    Mem,
    /// Local-data-share access.
    Lds,
}

/// One vector instruction of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuInst {
    /// Instruction class.
    pub op: GpuOp,
    /// Whether this instruction reads the previous instruction's result
    /// (in-order scoreboard dependency).
    pub dep_on_prev: bool,
    /// Source registers (VALU reads up to 3 for FMA).
    pub srcs: [Option<u8>; 3],
    /// Destination register.
    pub dst: Option<u8>,
}

/// Statistical description of one synthetic kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Kernel name (e.g. `"matmul"`).
    pub name: &'static str,
    /// Vector instructions per wavefront.
    pub insts_per_wavefront: u32,
    /// Total wavefronts in the launch (grid size / 64).
    pub wavefronts: u32,
    /// Fraction of VALU instructions.
    pub valu_frac: f64,
    /// Fraction of global-memory instructions.
    pub mem_frac: f64,
    /// Fraction of LDS instructions (remainder after VALU+Mem is split
    /// between LDS and VALU).
    pub lds_frac: f64,
    /// Probability an instruction depends on its predecessor's result
    /// (short-distance dependencies the RF cache exploits).
    pub dep_prob: f64,
    /// Probability a source register was written recently (register reuse
    /// — "as much as 40% of the writes are consumed by reads within a few
    /// instructions").
    pub reg_reuse: f64,
    /// Probability a global-memory access misses to DRAM.
    pub mem_miss_rate: f64,
}

impl KernelProfile {
    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.insts_per_wavefront == 0 || self.wavefronts == 0 {
            return Err("kernel must have work".into());
        }
        for (n, v) in [
            ("valu_frac", self.valu_frac),
            ("mem_frac", self.mem_frac),
            ("lds_frac", self.lds_frac),
            ("dep_prob", self.dep_prob),
            ("reg_reuse", self.reg_reuse),
            ("mem_miss_rate", self.mem_miss_rate),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{n} must be in [0,1]: {v}"));
            }
        }
        if self.valu_frac + self.mem_frac + self.lds_frac > 1.0 + 1e-9 {
            return Err("instruction fractions exceed 1".into());
        }
        Ok(())
    }

    /// Generates the kernel's instruction sequence, deterministically from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation.
    pub fn generate(&self, seed: u64) -> Vec<GpuInst> {
        self.validate().expect("valid kernel profile");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut insts = Vec::with_capacity(self.insts_per_wavefront as usize);
        // Recently written registers, newest first (for reuse sampling).
        let mut recent: Vec<u8> = Vec::with_capacity(8);
        let mut next_reg: u8 = 0;
        for _ in 0..self.insts_per_wavefront {
            let r: f64 = rng.gen();
            let op = if r < self.valu_frac {
                GpuOp::Valu
            } else if r < self.valu_frac + self.mem_frac {
                GpuOp::Mem
            } else {
                GpuOp::Lds
            };
            let pick_src = |rng: &mut StdRng, recent: &Vec<u8>| -> u8 {
                if !recent.is_empty() && rng.gen_bool(self.reg_reuse) {
                    recent[rng.gen_range(0..recent.len().min(6))]
                } else {
                    rng.gen_range(0..REG_WORKING_SET)
                }
            };
            let (srcs, dst) = match op {
                GpuOp::Valu => {
                    let s0 = pick_src(&mut rng, &recent);
                    let s1 = pick_src(&mut rng, &recent);
                    // FMA reads a third operand half the time.
                    let s2 = rng.gen_bool(0.5).then(|| pick_src(&mut rng, &recent));
                    let d = next_reg % REG_WORKING_SET;
                    next_reg = next_reg.wrapping_add(1);
                    ([Some(s0), Some(s1), s2], Some(d))
                }
                GpuOp::Mem => {
                    let s0 = pick_src(&mut rng, &recent);
                    // Loads produce a value; half the mem ops are stores.
                    if rng.gen_bool(0.5) {
                        let d = next_reg % REG_WORKING_SET;
                        next_reg = next_reg.wrapping_add(1);
                        ([Some(s0), None, None], Some(d))
                    } else {
                        let s1 = pick_src(&mut rng, &recent);
                        ([Some(s0), Some(s1), None], None)
                    }
                }
                GpuOp::Lds => {
                    let s0 = pick_src(&mut rng, &recent);
                    let d = next_reg % REG_WORKING_SET;
                    next_reg = next_reg.wrapping_add(1);
                    ([Some(s0), None, None], Some(d))
                }
            };
            if let Some(d) = dst {
                recent.insert(0, d);
                recent.truncate(8);
            }
            insts.push(GpuInst {
                op,
                dep_on_prev: rng.gen_bool(self.dep_prob),
                srcs,
                dst,
            });
        }
        insts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> KernelProfile {
        KernelProfile {
            name: "test",
            insts_per_wavefront: 5000,
            wavefronts: 8,
            valu_frac: 0.6,
            mem_frac: 0.15,
            lds_frac: 0.1,
            dep_prob: 0.35,
            reg_reuse: 0.4,
            mem_miss_rate: 0.2,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = profile();
        assert_eq!(p.generate(5), p.generate(5));
        assert_ne!(p.generate(5), p.generate(6));
    }

    #[test]
    fn mix_matches_profile() {
        let insts = profile().generate(1);
        let n = insts.len() as f64;
        let frac = |op: GpuOp| insts.iter().filter(|i| i.op == op).count() as f64 / n;
        assert!((frac(GpuOp::Valu) - 0.6).abs() < 0.03);
        assert!((frac(GpuOp::Mem) - 0.15).abs() < 0.03);
    }

    #[test]
    fn dependency_density_matches() {
        let insts = profile().generate(2);
        let dep = insts.iter().filter(|i| i.dep_on_prev).count() as f64 / insts.len() as f64;
        assert!((dep - 0.35).abs() < 0.03, "dep density {dep}");
    }

    #[test]
    fn registers_stay_in_working_set() {
        for i in profile().generate(3) {
            for s in i.srcs.into_iter().flatten() {
                assert!(s < REG_WORKING_SET);
            }
            if let Some(d) = i.dst {
                assert!(d < REG_WORKING_SET);
            }
        }
    }

    #[test]
    fn invalid_fractions_rejected() {
        let mut p = profile();
        p.valu_frac = 0.9;
        p.mem_frac = 0.5;
        assert!(p.validate().is_err());
    }
}
