//! The register-file cache of AdvHet's GPU (paper Section IV-C3).
//!
//! A tiny per-thread cache (6 entries) in front of the main vector RF.
//! To avoid thrashing, it caches **only registers that are written** —
//! "as much as 40% of the writes are consumed by reads within a few
//! instructions", so caching writes captures that locality while reads of
//! long-lived values bypass to the main RF. In SIMT hardware all 64
//! threads of a wavefront run the same instruction, so one tag array per
//! wavefront models all lanes.

/// Per-wavefront register-file cache (LRU, write-allocate-only policy).
#[derive(Debug, Clone)]
pub struct RfCache {
    /// Cached register ids, MRU first.
    entries: Vec<u8>,
    capacity: usize,
    hits: u64,
    misses: u64,
    /// Evictions of cached registers back to the main RF.
    evictions: u64,
    writes: u64,
}

impl RfCache {
    /// Creates an empty cache of `capacity` registers per thread.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RF cache needs at least one entry");
        RfCache {
            entries: Vec::with_capacity(capacity),
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
            writes: 0,
        }
    }

    /// Looks up a source register. Returns whether it hits the cache.
    pub fn read(&mut self, reg: u8) -> bool {
        if let Some(pos) = self.entries.iter().position(|&r| r == reg) {
            let r = self.entries.remove(pos);
            self.entries.insert(0, r);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Allocates a written register (the only allocation path). A full
    /// cache evicts its LRU entry to the main RF.
    pub fn write(&mut self, reg: u8) {
        self.writes += 1;
        if let Some(pos) = self.entries.iter().position(|&r| r == reg) {
            let r = self.entries.remove(pos);
            self.entries.insert(0, r);
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop();
            self.evictions += 1;
        }
        self.entries.insert(0, reg);
    }

    /// Read hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Read misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evictions (main-RF writebacks) so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Writes allocated so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Read hit rate.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_hit_only_after_writes() {
        let mut c = RfCache::new(6);
        assert!(!c.read(5), "cold read misses");
        c.write(5);
        assert!(c.read(5), "written register is cached");
    }

    #[test]
    fn only_writes_allocate() {
        let mut c = RfCache::new(6);
        c.read(7);
        assert!(!c.read(7), "reads must not allocate");
    }

    #[test]
    fn lru_eviction_goes_to_main_rf() {
        let mut c = RfCache::new(2);
        c.write(1);
        c.write(2);
        c.write(3); // evicts 1
        assert_eq!(c.evictions(), 1);
        assert!(!c.read(1));
        assert!(c.read(2));
        assert!(c.read(3));
    }

    #[test]
    fn rewrite_refreshes_lru() {
        let mut c = RfCache::new(2);
        c.write(1);
        c.write(2);
        c.write(1); // refresh 1; 2 becomes LRU
        c.write(3); // evicts 2
        assert!(c.read(1));
        assert!(!c.read(2));
    }

    #[test]
    fn hit_rate_reflects_locality() {
        let mut c = RfCache::new(6);
        for i in 0..100u8 {
            let r = i % 4; // tight reuse
            c.write(r);
            c.read(r);
        }
        assert!(c.hit_rate() > 0.9);
    }
}
