//! Profiles for the GPU kernels.
//!
//! The paper uses "all the applications from the AMD-SDK-APP suite
//! provided along with the Multi2Sim simulator, with the suggested input
//! sizes". These profiles are synthetic stand-ins per DESIGN.md: each
//! captures the qualitative character of the named kernel — compute-bound
//! vs. memory-bound, LDS usage, dependency density (how vulnerable the
//! kernel is to RF/FMA latency without occupancy), and register reuse
//! (how much a register-file cache can capture).

use crate::kernel::KernelProfile;

#[allow(clippy::too_many_arguments)]
const fn mk(
    name: &'static str,
    insts_per_wavefront: u32,
    wavefronts: u32,
    valu_frac: f64,
    mem_frac: f64,
    lds_frac: f64,
    dep_prob: f64,
    reg_reuse: f64,
    mem_miss_rate: f64,
) -> KernelProfile {
    KernelProfile {
        name,
        insts_per_wavefront,
        wavefronts,
        valu_frac,
        mem_frac,
        lds_frac,
        dep_prob,
        reg_reuse,
        mem_miss_rate,
    }
}

/// The twenty named kernel profiles.
pub fn all() -> Vec<KernelProfile> {
    vec![
        // Dense GEMM: compute-bound, tiled through LDS, high reuse.
        mk("matmul", 800, 128, 0.62, 0.10, 0.18, 0.55, 0.50, 0.06),
        // Transpose: pure data movement, coalescing-hostile.
        mk(
            "matrixtranspose",
            400,
            128,
            0.30,
            0.40,
            0.18,
            0.50,
            0.30,
            0.17,
        ),
        // Binary search: short, divergent, memory-latency-bound.
        mk("binarysearch", 250, 64, 0.38, 0.32, 0.05, 0.80, 0.30, 0.25),
        // Binomial option pricing: deep FP recurrences.
        mk(
            "binomialoption",
            900,
            96,
            0.68,
            0.08,
            0.12,
            0.70,
            0.50,
            0.05,
        ),
        // Bitonic sort: compare-exchange network, strided memory.
        mk("bitonicsort", 500, 128, 0.44, 0.30, 0.08, 0.60, 0.35, 0.15),
        // 8x8 DCT: blocked FP with LDS staging.
        mk("dct", 700, 96, 0.58, 0.12, 0.20, 0.60, 0.45, 0.07),
        // Haar wavelet: streaming FP.
        mk("dwthaar", 450, 96, 0.55, 0.20, 0.12, 0.65, 0.40, 0.10),
        // Fast Walsh transform: butterflies over global memory.
        mk("fastwalsh", 500, 128, 0.48, 0.30, 0.06, 0.60, 0.35, 0.15),
        // Floyd-Warshall: O(n^3) over an adjacency matrix in memory.
        mk(
            "floydwarshall",
            550,
            128,
            0.40,
            0.36,
            0.05,
            0.55,
            0.30,
            0.20,
        ),
        // Histogram: LDS-atomic heavy, scatter reads.
        mk("histogram", 400, 128, 0.34, 0.24, 0.30, 0.55, 0.30, 0.11),
        // Reduction: tree reduction through LDS.
        mk("reduction", 350, 128, 0.46, 0.18, 0.26, 0.70, 0.45, 0.09),
        // Sobel filter: stencil with neighbourhood reuse.
        mk("sobel", 600, 96, 0.56, 0.24, 0.10, 0.60, 0.45, 0.07),
        // Black-Scholes option pricing (GPU port): pure FP, no memory
        // pressure, deep exp/log chains.
        mk(
            "blackscholesgpu",
            850,
            96,
            0.72,
            0.08,
            0.05,
            0.60,
            0.55,
            0.05,
        ),
        // Mersenne Twister RNG: integer-ish VALU recurrences.
        mk(
            "mersennetwister",
            600,
            128,
            0.64,
            0.14,
            0.08,
            0.65,
            0.45,
            0.08,
        ),
        // Monte Carlo (Asian options): RNG + FP accumulation.
        mk("montecarlo", 900, 96, 0.66, 0.10, 0.08, 0.55, 0.50, 0.06),
        // N-body: all-pairs forces, compute-dense with broadcast reuse.
        mk("nbody", 1000, 64, 0.70, 0.10, 0.08, 0.50, 0.55, 0.05),
        // Prefix sum: log-depth tree over LDS.
        mk("prefixsum", 300, 128, 0.42, 0.18, 0.28, 0.60, 0.40, 0.10),
        // Quasi-random sequence generation: table lookups + VALU.
        mk("quasirandom", 450, 128, 0.58, 0.20, 0.06, 0.45, 0.40, 0.12),
        // Scan of large arrays: streaming global memory + LDS staging.
        mk("scanlarge", 400, 128, 0.38, 0.30, 0.18, 0.45, 0.35, 0.16),
        // Uniform RNG: short per-thread recurrences.
        mk("urng", 350, 128, 0.62, 0.16, 0.06, 0.70, 0.45, 0.08),
    ]
}

/// Looks a kernel profile up by name.
pub fn profile(name: &str) -> Option<KernelProfile> {
    all().into_iter().find(|p| p.name == name)
}

/// The kernel names in suite order.
pub fn names() -> Vec<&'static str> {
    all().iter().map(|p| p.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_kernels_all_valid() {
        let ks = all();
        assert_eq!(ks.len(), 20);
        for k in &ks {
            k.validate().unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    #[test]
    fn names_unique_and_lookup_works() {
        let mut n = names();
        n.sort_unstable();
        n.dedup();
        assert_eq!(n.len(), 20);
        assert!(profile("matmul").is_some());
        assert!(profile("crysis").is_none());
    }

    #[test]
    fn suite_spans_compute_and_memory_bound() {
        let compute = profile("binomialoption").expect("exists");
        let memory = profile("floydwarshall").expect("exists");
        assert!(compute.valu_frac > 0.6);
        assert!(memory.mem_frac > 0.3);
        assert!(memory.mem_miss_rate > compute.mem_miss_rate);
    }
}
