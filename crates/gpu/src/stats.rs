//! GPU event counters, consumed by the GPUWattch-like energy model.
//!
//! Defined through [`hetsim_stats::counters!`]: `merge`/`minus`,
//! `iter()` over `(name, value)` pairs and serde support are all derived
//! from the field list. Compute units run in parallel, so `cycles`
//! merges by `max` (annotated on the field); every other counter sums.

use hetsim_check::Checker;
use hetsim_stats::counters;

counters! {
    /// Counters for one GPU run.
    pub struct GpuStats {
        /// Total cycles (the slowest compute unit).
        pub cycles: u64 = max / keep,
        /// Wavefront instructions issued.
        pub wavefront_insts: u64,
        /// VALU wavefront instructions.
        pub valu_insts: u64,
        /// Global-memory wavefront instructions.
        pub mem_insts: u64,
        /// LDS wavefront instructions.
        pub lds_insts: u64,
        /// Per-thread FMA lane operations (valu_insts x 64 threads).
        pub thread_fma_ops: u64,
        /// Per-thread main-RF accesses (reads + writes + RFC evictions).
        pub vector_rf_accesses: u64,
        /// Per-thread RF-cache accesses (reads + writes), zero without an RFC.
        pub rf_cache_accesses: u64,
        /// Per-thread fast-partition accesses of a partitioned RF (CMOS side).
        pub rf_fast_accesses: u64,
        /// RF-cache read hits (per thread).
        pub rf_cache_hits: u64,
        /// RF-cache read misses (per thread).
        pub rf_cache_misses: u64,
        /// Per-thread LDS accesses.
        pub lds_accesses: u64,
        /// Memory accesses that missed to DRAM (per wavefront instruction).
        pub dram_accesses: u64,
    }
}

impl GpuStats {
    /// Wavefront instructions per cycle across the whole GPU.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.wavefront_insts as f64 / self.cycles as f64
        }
    }

    /// RF-cache read hit rate.
    pub fn rf_cache_hit_rate(&self) -> f64 {
        let total = self.rf_cache_hits + self.rf_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.rf_cache_hits as f64 / total as f64
        }
    }
}

/// Validates the wavefront-accounting identities of a [`GpuStats`] set.
/// Every relation here is a sum over per-instruction events, so it holds
/// for a single CU and for any `merge` of CUs or launches (only `cycles`
/// merges by max, and it is used only as a positivity witness).
pub fn validate_gpu_stats(s: &GpuStats, checker: &mut Checker) {
    let threads = u64::from(crate::config::WAVEFRONT_THREADS);
    checker.scoped("gpu", |c| {
        c.eq_u64(
            "gpu.op_conservation",
            (
                "valu + mem + lds insts",
                s.valu_insts + s.mem_insts + s.lds_insts,
            ),
            ("wavefront_insts", s.wavefront_insts),
        );
        c.eq_u64(
            "gpu.fma_lanes",
            ("thread_fma_ops", s.thread_fma_ops),
            ("64 * valu_insts", threads * s.valu_insts),
        );
        c.eq_u64(
            "gpu.lds_lanes",
            ("lds_accesses", s.lds_accesses),
            ("64 * lds_insts", threads * s.lds_insts),
        );
        // RFC reads split into hits (counted as RFC accesses) and misses
        // (spilled to the main vector RF).
        c.le_u64(
            "gpu.rfc_hits_bound",
            ("rf_cache_hits", s.rf_cache_hits),
            ("rf_cache_accesses", s.rf_cache_accesses),
        );
        c.le_u64(
            "gpu.rfc_miss_spill",
            ("rf_cache_misses", s.rf_cache_misses),
            ("vector_rf_accesses", s.vector_rf_accesses),
        );
        c.le_u64(
            "gpu.dram_le_mem_insts",
            ("dram_accesses", s.dram_accesses),
            ("mem_insts", s.mem_insts),
        );
        for (name, v) in [
            ("thread_fma_ops", s.thread_fma_ops),
            ("lds_accesses", s.lds_accesses),
            ("vector_rf_accesses", s.vector_rf_accesses),
            ("rf_cache_accesses", s.rf_cache_accesses),
            ("rf_fast_accesses", s.rf_fast_accesses),
            ("rf_cache_hits", s.rf_cache_hits),
            ("rf_cache_misses", s.rf_cache_misses),
        ] {
            c.check(
                "gpu.lane_quantization",
                format!("{name} divisible by {threads}"),
                v % threads == 0,
                v,
            );
        }
        if s.wavefront_insts > 0 {
            c.ge_u64("gpu.cycles_positive", ("cycles", s.cycles), ("1", 1));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_maxes_cycles_and_sums_work() {
        let mut a = GpuStats {
            cycles: 100,
            wavefront_insts: 50,
            ..GpuStats::default()
        };
        let b = GpuStats {
            cycles: 150,
            wavefront_insts: 70,
            ..GpuStats::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 150);
        assert_eq!(a.wavefront_insts, 120);
    }

    #[test]
    fn rates_handle_zero() {
        let s = GpuStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.rf_cache_hit_rate(), 0.0);
    }

    #[test]
    fn minus_saturates_and_keeps_cycles() {
        let a = GpuStats {
            cycles: 10,
            valu_insts: 5,
            ..GpuStats::default()
        };
        let b = GpuStats {
            cycles: 4,
            valu_insts: 9,
            ..GpuStats::default()
        };
        let d = a.minus(&b);
        assert_eq!(d.cycles, 10, "keep");
        assert_eq!(d.valu_insts, 0, "saturating");
    }

    #[test]
    fn iter_names_are_unique_and_stable() {
        let names: Vec<String> = GpuStats::default().iter().map(|(n, _)| n).collect();
        assert_eq!(names.len(), 13);
        assert_eq!(names[0], "cycles");
        assert_eq!(names[12], "dram_accesses");
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
