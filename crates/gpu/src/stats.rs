//! GPU event counters, consumed by the GPUWattch-like energy model.
//!
//! Defined through [`hetsim_stats::counters!`]: `merge`/`minus`,
//! `iter()` over `(name, value)` pairs and serde support are all derived
//! from the field list. Compute units run in parallel, so `cycles`
//! merges by `max` (annotated on the field); every other counter sums.

use hetsim_stats::counters;

counters! {
    /// Counters for one GPU run.
    pub struct GpuStats {
        /// Total cycles (the slowest compute unit).
        pub cycles: u64 = max / keep,
        /// Wavefront instructions issued.
        pub wavefront_insts: u64,
        /// VALU wavefront instructions.
        pub valu_insts: u64,
        /// Global-memory wavefront instructions.
        pub mem_insts: u64,
        /// LDS wavefront instructions.
        pub lds_insts: u64,
        /// Per-thread FMA lane operations (valu_insts x 64 threads).
        pub thread_fma_ops: u64,
        /// Per-thread main-RF accesses (reads + writes + RFC evictions).
        pub vector_rf_accesses: u64,
        /// Per-thread RF-cache accesses (reads + writes), zero without an RFC.
        pub rf_cache_accesses: u64,
        /// Per-thread fast-partition accesses of a partitioned RF (CMOS side).
        pub rf_fast_accesses: u64,
        /// RF-cache read hits (per thread).
        pub rf_cache_hits: u64,
        /// RF-cache read misses (per thread).
        pub rf_cache_misses: u64,
        /// Per-thread LDS accesses.
        pub lds_accesses: u64,
        /// Memory accesses that missed to DRAM (per wavefront instruction).
        pub dram_accesses: u64,
    }
}

impl GpuStats {
    /// Wavefront instructions per cycle across the whole GPU.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.wavefront_insts as f64 / self.cycles as f64
        }
    }

    /// RF-cache read hit rate.
    pub fn rf_cache_hit_rate(&self) -> f64 {
        let total = self.rf_cache_hits + self.rf_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.rf_cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_maxes_cycles_and_sums_work() {
        let mut a = GpuStats {
            cycles: 100,
            wavefront_insts: 50,
            ..GpuStats::default()
        };
        let b = GpuStats {
            cycles: 150,
            wavefront_insts: 70,
            ..GpuStats::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 150);
        assert_eq!(a.wavefront_insts, 120);
    }

    #[test]
    fn rates_handle_zero() {
        let s = GpuStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.rf_cache_hit_rate(), 0.0);
    }

    #[test]
    fn minus_saturates_and_keeps_cycles() {
        let a = GpuStats {
            cycles: 10,
            valu_insts: 5,
            ..GpuStats::default()
        };
        let b = GpuStats {
            cycles: 4,
            valu_insts: 9,
            ..GpuStats::default()
        };
        let d = a.minus(&b);
        assert_eq!(d.cycles, 10, "keep");
        assert_eq!(d.valu_insts, 0, "saturating");
    }

    #[test]
    fn iter_names_are_unique_and_stable() {
        let names: Vec<String> = GpuStats::default().iter().map(|(n, _)| n).collect();
        assert_eq!(names.len(), 13);
        assert_eq!(names[0], "cycles");
        assert_eq!(names[12], "dram_accesses");
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
