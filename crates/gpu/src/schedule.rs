//! Compiler latency-hiding pass (the paper's future work, Section IV-C4:
//! "One could also customize the GPU compiler to hide some of the
//! additional FPU latency. We leave the analysis of these techniques to
//! future work.").
//!
//! A simple list-scheduling pass over the kernel's instruction sequence:
//! for every instruction that consumes its immediate predecessor's result,
//! the scheduler tries to hoist a nearby *independent* instruction in
//! between. On a wavefront pipeline that issues one instruction per four
//! lane-cycles, a single intervening instruction covers four-plus cycles
//! of the producer's latency — which is precisely how production GPU
//! compilers hide deep pipeline latencies.

use crate::kernel::GpuInst;

/// Result of scheduling: the reordered kernel and what the pass did.
#[derive(Debug, Clone)]
pub struct Scheduled {
    /// The reordered instruction sequence.
    pub insts: Vec<GpuInst>,
    /// Dependent pairs the pass managed to separate.
    pub separated: u64,
    /// Dependent pairs that had no independent filler in the window.
    pub unseparated: u64,
}

/// Schedules `kernel` with a lookahead of `window` instructions.
///
/// # Example
///
/// ```
/// use hetsim_gpu::{kernels, schedule::schedule_kernel};
///
/// let kernel = kernels::profile("dct").expect("known kernel").generate(1);
/// let scheduled = schedule_kernel(&kernel, 4);
/// assert_eq!(scheduled.insts.len(), kernel.len());
/// assert!(scheduled.separated > 0);
/// ```
///
/// The transformation preserves the multiset of instructions. A separated
/// consumer no longer stalls on its predecessor at issue (the intervening
/// instruction's issue occupancy covers the dependence), which the model
/// expresses by clearing its `dep_on_prev` flag; the hoisted filler keeps
/// its own dependence semantics (it is only hoisted when independent).
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn schedule_kernel(kernel: &[GpuInst], window: usize) -> Scheduled {
    assert!(window > 0, "need a lookahead window");
    let mut insts: Vec<GpuInst> = kernel.to_vec();
    let mut separated = 0;
    let mut unseparated = 0;

    let mut i = 1;
    while i < insts.len() {
        if !insts[i].dep_on_prev {
            i += 1;
            continue;
        }
        // Find an independent instruction within the window to hoist in
        // front of the dependent one. An instruction is hoistable if it
        // does not consume its own predecessor's result (it is not
        // `dep_on_prev`) — moving it cannot violate its input dependence
        // because it moves *earlier* only past instructions it does not
        // depend on, and `dep_on_prev` is the model's only ordering edge.
        let limit = (i + window).min(insts.len() - 1);
        let mut hoisted = false;
        for j in (i + 1)..=limit {
            if !insts[j].dep_on_prev {
                let filler = insts.remove(j);
                insts.insert(i, filler);
                // The consumer now sits at i+1 with the filler before it:
                // its producer is two slots back, covered by the filler's
                // issue occupancy.
                insts[i + 1].dep_on_prev = false;
                separated += 1;
                hoisted = true;
                break;
            }
        }
        if !hoisted {
            unseparated += 1;
        }
        i += 1;
    }

    Scheduled {
        insts,
        separated,
        unseparated,
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::cu::run_cu;
    use crate::kernels;

    fn kernel() -> (crate::kernel::KernelProfile, Vec<GpuInst>) {
        let p = kernels::profile("binomialoption").expect("known kernel");
        let insts = p.generate(3);
        (p, insts)
    }

    #[test]
    fn instruction_multiset_is_preserved() {
        let (_, insts) = kernel();
        let scheduled = schedule_kernel(&insts, 4);
        assert_eq!(scheduled.insts.len(), insts.len());
        let count = |v: &[GpuInst], op| v.iter().filter(|i| i.op == op).count();
        for op in [
            crate::kernel::GpuOp::Valu,
            crate::kernel::GpuOp::Mem,
            crate::kernel::GpuOp::Lds,
        ] {
            assert_eq!(count(&scheduled.insts, op), count(&insts, op));
        }
    }

    #[test]
    fn dependence_density_falls() {
        let (_, insts) = kernel();
        let dep = |v: &[GpuInst]| v.iter().filter(|i| i.dep_on_prev).count();
        let before = dep(&insts);
        let scheduled = schedule_kernel(&insts, 4);
        let after = dep(&scheduled.insts);
        assert!(
            after < before,
            "scheduling must separate pairs: {before} -> {after}"
        );
        assert!(scheduled.separated > 0);
    }

    #[test]
    fn scheduling_recovers_tfet_fpu_latency() {
        // The future-work claim: a latency-hiding compiler pass speeds up
        // the TFET GPU on dependency-dense kernels.
        let (profile, insts) = kernel();
        let mut tfet = GpuConfig::default();
        tfet.fma_latency = 6;
        tfet.rf_latency = 2;
        tfet.rf_cache = None;
        let raw = run_cu(&tfet, &insts, &profile, 3, 1);
        let scheduled = schedule_kernel(&insts, 6);
        let tuned = run_cu(&tfet, &scheduled.insts, &profile, 3, 1);
        assert!(
            tuned.cycles < raw.cycles,
            "scheduled kernel should run faster: {} vs {}",
            tuned.cycles,
            raw.cycles
        );
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        let (_, insts) = kernel();
        let _ = schedule_kernel(&insts, 0);
    }
}
