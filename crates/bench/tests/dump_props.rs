//! Property tests for the `BENCH_*.json` dump layer.
//!
//! The dump is the repo's perf ledger: `repro bench --out` writes it,
//! `--compare` and the CI ratchet re-read it, possibly from a build
//! many PRs later. Three properties keep that ledger trustworthy:
//!
//! 1. **serde round-trip** — any dump the library can construct parses
//!    back identical, through the real JSON text form;
//! 2. **validation closure** — every constructed dump with non-empty
//!    unique scenario names validates, so `--out` can never write a
//!    file `--compare` refuses;
//! 3. **self-compare identity** — comparing any dump against itself
//!    passes with every scenario `Unchanged` (the acceptance
//!    criterion's exit-0 self-compare, generalized).

use proptest::prelude::*;

use hetsim_bench::{
    compare, BenchDump, ComparePolicy, HostInfo, Measurement, ScenarioResult, Verdict, BENCH_SCHEMA,
};

/// Arbitrary per-repeat wall times: mixes sub-resolution zeros, small
/// values, and large ones so the zero-time guard and the spread math
/// both get exercised.
fn sample_lists() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..2_000_000, 1..8)
}

fn scenarios() -> impl Strategy<Value = Vec<ScenarioResult>> {
    proptest::collection::vec((0u64..10_000_000, sample_lists()), 1..8).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (insts, samples))| {
                ScenarioResult::new(
                    format!("scenario-{i}"),
                    &Measurement {
                        insts,
                        samples_us: samples,
                    },
                )
            })
            .collect()
    })
}

fn dumps() -> impl Strategy<Value = BenchDump> {
    (scenarios(), any::<bool>(), 1u64..1_000_000, any::<u64>()).prop_map(
        |(scenarios, quick, insts, seed)| BenchDump {
            schema: BENCH_SCHEMA.to_string(),
            quick,
            insts,
            seed,
            warmup: 1,
            repeats: 3,
            host: HostInfo::detect(),
            scenarios,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Write → parse is the identity, through the real JSON text.
    #[test]
    fn dumps_round_trip_through_json_text(dump in dumps()) {
        let parsed = BenchDump::from_json(&dump.to_json()).expect("round trip");
        prop_assert_eq!(parsed, dump);
    }

    /// Everything the measurement path can produce validates.
    #[test]
    fn constructed_dumps_always_validate(dump in dumps()) {
        prop_assert!(dump.validate().is_ok());
    }

    /// A dump compared against itself always passes, with each
    /// scenario `Unchanged` — the ratchet can never flag a no-change PR.
    #[test]
    fn self_compare_is_always_clean(dump in dumps()) {
        let report = compare(&dump, &dump, &ComparePolicy::default());
        prop_assert!(report.passed());
        prop_assert!(report.diffs.iter().all(|d| d.verdict == Verdict::Unchanged));
    }
}
