//! Ablations of the design choices DESIGN.md calls out.
//!
//! * `ablation_asym_dl1` — fast-way size of the asymmetric DL1 (the paper
//!   fixes 4 KB; this sweep shows the sensitivity).
//! * `ablation_steering` — dual-speed ALU steering window length (the
//!   paper uses the issue width, 4).
//! * `ablation_rfcache` — GPU register-file cache size (the paper uses 6
//!   entries/thread).
//! * `ablation_power_factor` — conservative 4x vs measured 6.1x vs ideal
//!   8x TFET dynamic-power assumptions (Section V-B).

#![allow(clippy::field_reassign_with_default)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hetcore::config::CpuDesign;
use hetsim_bench::{BENCH_INSTS, BENCH_SEED};
use hetsim_cpu::config::{CoreConfig, MemoryConfig, SteeringPolicy};
use hetsim_cpu::core::Core;
use hetsim_cpu::fu::FuPoolConfig;
use hetsim_device::scaling::PowerAssumption;
use hetsim_gpu::config::{GpuConfig, RfCacheConfig};
use hetsim_gpu::gpu::Gpu;
use hetsim_gpu::kernels;
use hetsim_mem::asymmetric::AsymmetricCache;
use hetsim_mem::cache::CacheConfig;
use hetsim_trace::apps;
use hetsim_trace::stream::TraceGenerator;

fn run_cpu_cycles(cfg: CoreConfig) -> u64 {
    let app = apps::profile("lu").expect("known app");
    let mut core = Core::new(cfg, 0);
    core.prewarm(0, app.memory.working_set_bytes);
    core.run_warmed(TraceGenerator::new(&app, BENCH_SEED), 20_000, BENCH_INSTS)
        .stats
        .cycles
}

/// Fast-way size sweep: 2/4/8 KB fast partitions over a TFET slow rest.
fn ablation_asym_dl1(c: &mut Criterion) {
    println!("\nAblation: asymmetric DL1 fast-way size (lu, cycles lower = better)");
    let base = {
        let mut cfg = CoreConfig::default();
        cfg.fus = FuPoolConfig::tfet();
        cfg.memory = MemoryConfig::tfet();
        run_cpu_cycles(cfg)
    };
    println!("  plain TFET DL1 (BaseHet): {base}");
    // Fast-way size -> (slow capacity, slow ways) keeping 32 KB total and
    // a power-of-two set count.
    for (fast_kb, slow_kb, slow_ways) in [(2u64, 30u64, 15u32), (4, 28, 7), (8, 24, 6)] {
        let mut asym = AsymmetricCache::new(
            CacheConfig::new(fast_kb * 1024, 1, 64, 1),
            CacheConfig::new(slow_kb * 1024, slow_ways, 64, 4),
        );
        // Drive with the app's address stream to measure fast-hit rate.
        let app = apps::profile("lu").expect("known app");
        let mut hits = 0u64;
        let mut total = 0u64;
        for inst in TraceGenerator::new(&app, BENCH_SEED).take(120_000) {
            if let Some(addr) = inst.addr {
                let out = asym.access(addr, inst.op == hetsim_trace::OpClass::Store);
                if out.hit == hetsim_mem::asymmetric::AsymHit::Fast {
                    hits += 1;
                }
                total += 1;
            }
        }
        println!(
            "  fast way {fast_kb} KB: fast-hit rate {:.3} (AdvHet cycles at 4 KB: {})",
            hits as f64 / total as f64,
            if fast_kb == 4 {
                run_cpu_cycles(CpuDesign::AdvHet.core_config())
            } else {
                0
            }
        );
    }

    c.bench_function("ablation_asym_dl1_advhet_run", |b| {
        b.iter(|| black_box(run_cpu_cycles(CpuDesign::AdvHet.core_config())))
    });
}

/// Steering-window sweep: 0 (no steering) / 2 / 4 (paper) / 8.
fn ablation_steering(c: &mut Criterion) {
    println!("\nAblation: dual-speed ALU steering window (lu, cycles)");
    for window in [0u32, 2, 4, 8] {
        let mut cfg = CoreConfig::default();
        cfg.fus = FuPoolConfig::dual_speed();
        cfg.memory = MemoryConfig::tfet();
        cfg.steering = if window == 0 {
            SteeringPolicy::None
        } else {
            SteeringPolicy::DualSpeed { window }
        };
        println!("  window {window}: {}", run_cpu_cycles(cfg));
    }

    c.bench_function("ablation_steering_window4", |b| {
        b.iter(|| {
            let mut cfg = CoreConfig::default();
            cfg.fus = FuPoolConfig::dual_speed();
            cfg.memory = MemoryConfig::tfet();
            cfg.steering = SteeringPolicy::DualSpeed { window: 4 };
            black_box(run_cpu_cycles(cfg))
        })
    });
}

/// GPU RF-cache size sweep: 0 (none) / 2 / 6 (paper) / 12 entries.
fn ablation_rfcache(c: &mut Criterion) {
    println!("\nAblation: GPU register-file cache size (matmul, cycles)");
    let kernel = kernels::profile("matmul").expect("known kernel");
    for entries in [0u32, 2, 6, 12] {
        let mut cfg = GpuConfig::default();
        cfg.fma_latency = 6;
        cfg.rf_latency = 2;
        cfg.rf_cache = (entries > 0).then_some(RfCacheConfig {
            entries,
            latency: 1,
        });
        let r = Gpu::new(cfg).run(&kernel, BENCH_SEED);
        println!(
            "  {entries:>2} entries: cycles {} (RFC hit rate {:.3})",
            r.stats.cycles,
            r.stats.rf_cache_hit_rate()
        );
    }

    c.bench_function("ablation_rfcache_advhet_gpu", |b| {
        let cfg = hetcore::config::GpuDesign::AdvHet.gpu_config();
        let gpu = Gpu::new(cfg);
        b.iter(|| black_box(gpu.run(&kernel, BENCH_SEED)))
    });
}

/// TFET dynamic-power assumption sweep (Section V-B's 8x -> 6.1x -> 4x).
fn ablation_power_factor(c: &mut Criterion) {
    println!("\nAblation: TFET dynamic-power assumption (AdvHet energy vs BaseCMOS, lu)");
    let app = apps::profile("lu").expect("known app");

    let run = |design: CpuDesign| {
        let mut core = Core::new(design.core_config(), 0);
        core.prewarm(0, app.memory.working_set_bytes);
        core.run_warmed(TraceGenerator::new(&app, BENCH_SEED), 20_000, BENCH_INSTS)
    };
    let base_run = run(CpuDesign::BaseCmos);
    let base_energy = CpuDesign::BaseCmos.energy_model().energy(
        &base_run.stats,
        &base_run.mem,
        base_run.seconds(),
    );
    let adv_run = run(CpuDesign::AdvHet);

    for assumption in [
        PowerAssumption::Conservative,
        PowerAssumption::Measured,
        PowerAssumption::Ideal,
    ] {
        // Same timing run, repriced under a different TFET assumption.
        let mut assignment = CpuDesign::AdvHet.energy_model().assignment().clone();
        assignment.assumption = assumption;
        let model = hetsim_power::account::CpuEnergyModel::new(assignment)
            .with_dual_speed_alu()
            .with_structure(192, 128);
        let e = model.energy(&adv_run.stats, &adv_run.mem, adv_run.seconds());
        println!(
            "  {assumption:?} ({}x): AdvHet energy {:.3} of BaseCMOS",
            assumption.dynamic_power_ratio(),
            e.total_j() / base_energy.total_j()
        );
    }

    c.bench_function("ablation_power_factor_reprice", |b| {
        let model = CpuDesign::AdvHet.energy_model();
        b.iter(|| black_box(model.energy(&adv_run.stats, &adv_run.mem, adv_run.seconds())))
    });
}

criterion_group!(
    benches,
    ablation_asym_dl1,
    ablation_steering,
    ablation_rfcache,
    ablation_power_factor
);
criterion_main!(benches);
