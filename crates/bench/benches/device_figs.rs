//! Table I and Figures 1-3: the device-model artifacts.
//!
//! Prints each artifact once (the reproduction output), then times the
//! underlying device-model computations.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hetcore::suite::Suite;
use hetsim_device::dvfs::DvfsController;
use hetsim_device::iv::IvCurve;
use hetsim_device::tech::Technology;
use hetsim_device::vf::VfCurve;

fn print_artifacts() {
    let suite = Suite::default();
    println!("{}", suite.table1());
    println!("{}", suite.fig1());
    println!("{}", suite.fig2());
    println!("{}", suite.fig3());
}

fn bench_device(c: &mut Criterion) {
    print_artifacts();

    c.bench_function("table1_device_params", |b| {
        b.iter(|| {
            for t in Technology::ALL {
                black_box(t.params());
            }
        })
    });

    let tfet = IvCurve::n_hetjtfet();
    c.bench_function("fig1_iv_curve_sample", |b| {
        b.iter(|| black_box(tfet.sample(0.8, 64)))
    });

    c.bench_function("fig2_activity_series", |b| {
        b.iter(|| black_box(hetsim_device::activity::figure2_series(1e-4, 32)))
    });

    let cmos = VfCurve::for_technology(Technology::SiCmos);
    c.bench_function("fig3_vf_interpolation", |b| {
        b.iter(|| {
            let mut sum = 0.0;
            let mut v = 0.45;
            while v < 1.0 {
                sum += cmos.frequency_at(v);
                v += 0.001;
            }
            black_box(sum)
        })
    });

    c.bench_function("fig3_dvfs_operating_points", |b| {
        let d = DvfsController::new();
        b.iter(|| {
            for f in [1.5e9, 2.0e9, 2.5e9] {
                black_box(d.operating_point(f));
            }
        })
    });
}

criterion_group!(benches, bench_device);
criterion_main!(benches);
