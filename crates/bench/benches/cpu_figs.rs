//! Figures 7, 8, 9 and 13: the CPU evaluation campaign.
//!
//! Prints each figure's series at a reduced instruction budget (the shapes
//! match the full runs recorded in EXPERIMENTS.md), then times single
//! design-point simulations so simulator-performance regressions surface.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hetcore::config::CpuDesign;
use hetcore::experiment::run_cpu;
use hetcore::suite::Suite;
use hetsim_bench::{BENCH_INSTS, BENCH_SEED};
use hetsim_trace::apps;

fn print_artifacts() {
    let suite = Suite {
        insts_per_app: BENCH_INSTS,
        seed: BENCH_SEED,
    };
    let campaign = suite.cpu_campaign();
    println!("{}", suite.fig7(&campaign));
    println!("{}", suite.fig8(&campaign));
    println!("{}", suite.fig8_breakdown(&campaign));
    println!("{}", suite.fig9(&campaign));
    println!("{}", suite.fig13(&campaign));
}

fn bench_cpu(c: &mut Criterion) {
    print_artifacts();

    let lu = apps::profile("lu").expect("known app");
    let mut g = c.benchmark_group("cpu_design_points");
    g.sample_size(10);
    for design in [CpuDesign::BaseCmos, CpuDesign::BaseHet, CpuDesign::AdvHet] {
        g.bench_function(design.name(), |b| {
            b.iter(|| black_box(run_cpu(design, &lu, BENCH_SEED, 20_000)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cpu);
criterion_main!(benches);
