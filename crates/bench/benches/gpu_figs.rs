//! Figures 10, 11 and 12: the GPU evaluation campaign.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hetcore::config::GpuDesign;
use hetcore::experiment::run_gpu;
use hetcore::suite::Suite;
use hetsim_bench::BENCH_SEED;
use hetsim_gpu::kernels;

fn print_artifacts() {
    let suite = Suite {
        insts_per_app: 0,
        seed: BENCH_SEED,
    };
    let campaign = suite.gpu_campaign();
    println!("{}", suite.fig10(&campaign));
    println!("{}", suite.fig11(&campaign));
    println!("{}", suite.fig12(&campaign));
}

fn bench_gpu(c: &mut Criterion) {
    print_artifacts();

    let matmul = kernels::profile("matmul").expect("known kernel");
    let mut g = c.benchmark_group("gpu_design_points");
    g.sample_size(10);
    for design in [
        GpuDesign::BaseCmos,
        GpuDesign::BaseHet,
        GpuDesign::AdvHet,
        GpuDesign::AdvHet2x,
    ] {
        g.bench_function(design.name(), |b| {
            b.iter(|| black_box(run_gpu(design, &matmul, BENCH_SEED)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gpu);
criterion_main!(benches);
