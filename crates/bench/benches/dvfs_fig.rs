//! Figure 14: DVFS operating points and process-variation guardbands.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hetcore::suite::Suite;
use hetsim_bench::{BENCH_INSTS, BENCH_SEED};
use hetsim_device::dvfs::DvfsController;
use hetsim_device::variation::apply_guardbands;

fn bench_dvfs(c: &mut Criterion) {
    let suite = Suite {
        insts_per_app: BENCH_INSTS,
        seed: BENCH_SEED,
    };
    println!("{}", suite.fig14());

    c.bench_function("fig14_dvfs_pairing", |b| {
        let d = DvfsController::new();
        b.iter(|| {
            let mut f = 1.2e9;
            while f < 2.6e9 {
                black_box(d.operating_point(f));
                f += 0.05e9;
            }
        })
    });

    c.bench_function("fig14_guardbands", |b| {
        let d = DvfsController::new();
        let nominal = d.nominal();
        b.iter(|| black_box(apply_guardbands(&nominal)))
    });
}

criterion_group!(benches, bench_dvfs);
criterion_main!(benches);
