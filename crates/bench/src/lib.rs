//! Benchmark harness for the HetCore reproduction.
//!
//! Each Criterion bench regenerates one (or a group of) paper artifacts —
//! printing the same series the paper's table/figure reports — and then
//! times a representative slice of the underlying computation so
//! performance regressions in the simulators are caught:
//!
//! * `device_figs` — Table I and Figures 1-3 (device models).
//! * `cpu_figs` — Figures 7, 8, 9 and 13 (CPU campaign, reduced size).
//! * `gpu_figs` — Figures 10, 11 and 12 (GPU campaign).
//! * `dvfs_fig` — Figure 14 (DVFS + process variation).
//! * `ablations` — design-choice sweeps DESIGN.md calls out: asymmetric
//!   DL1 fast-way size, steering window, GPU RF-cache size, and the
//!   conservative-vs-measured-vs-ideal TFET power factor.
//!
//! Run with `cargo bench --workspace`.

#![warn(missing_docs)]

/// The reduced per-application instruction budget used by the benches so
/// a full `cargo bench` stays in minutes. The shapes at this budget match
/// the full runs; EXPERIMENTS.md records full-budget numbers.
pub const BENCH_INSTS: u64 = 40_000;

/// Benchmark seed (fixed: benches must be deterministic).
pub const BENCH_SEED: u64 = 42;
