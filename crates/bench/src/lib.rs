//! # hetsim-bench: the pinned perf-measurement library
//!
//! `repro bench` measures the simulator the way MGSim and MosaicSim
//! report theirs: **simulated instructions per wall second** over a
//! pinned scenario menu, written as schema-versioned `BENCH_*.json`
//! dumps so the repo accumulates a perf trajectory and CI can ratchet
//! it. This crate holds the generic machinery:
//!
//! * [`measure`] — warmup + timed-repeat loop against an injected
//!   [`hetsim_obs::Clock`];
//! * [`RepeatSummary`] — median/min/p95/spread statistics with a
//!   dispersion flag;
//! * [`BenchDump`] / [`ScenarioResult`] / [`HostInfo`] — the
//!   `BENCH_*.json` schema ([`BENCH_SCHEMA`]);
//! * [`compare`] / [`ComparePolicy`] — the noise-aware regression
//!   diff behind `repro bench --compare` and the CI ratchet.
//!
//! The pinned scenario *menu* (which campaigns and microbenches run)
//! lives in `hetcore::bench` — this crate stays simulator-agnostic so
//! `hetcore` can depend on it without a crate cycle. The criterion
//! figure benches under `benches/` are unchanged seed functionality
//! and use the simulator crates as dev-dependencies.

#![warn(missing_docs)]

mod compare;
mod dump;
mod measure;

pub use compare::{compare, ComparePolicy, CompareReport, ScenarioDiff, Verdict};
pub use dump::{BenchDump, HostInfo, ScenarioResult, BENCH_SCHEMA};
pub use measure::{measure, Measurement, RepeatSummary, NOISY_REL_SPREAD};

/// The reduced per-application instruction budget used by the criterion
/// benches so a full `cargo bench` stays in minutes. The shapes at this
/// budget match the full runs; EXPERIMENTS.md records full-budget
/// numbers.
pub const BENCH_INSTS: u64 = 40_000;

/// Benchmark seed (fixed: benches must be deterministic).
pub const BENCH_SEED: u64 = 42;
