//! The warmup + repeat measurement loop and its summary statistics.
//!
//! A perf number from a single timed run is noise; `repro bench` runs
//! every scenario through [`measure`] — discarded warmup iterations
//! followed by timed repeats against an injected [`Clock`] — and
//! reports the repeat distribution through [`RepeatSummary`] (median,
//! min, p95, relative spread). The median, not the mean, is the
//! headline: one scheduler hiccup shifts a mean but not a median. The
//! spread rides along into `BENCH_*.json` so the compare step can
//! widen its threshold for scenarios that measured noisily.

use hetsim_obs::Clock;
use serde::{Deserialize, Serialize};

/// Relative spread (`(p95 - min) / median`) above which a scenario's
/// repeats are flagged as too dispersed to trust tightly.
pub const NOISY_REL_SPREAD: f64 = 0.2;

/// The raw output of one scenario's measurement: the instruction count
/// the workload reported and each repeat's wall time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Measurement {
    /// Instructions simulated per repeat (identical across repeats —
    /// scenarios run fixed seeds on fixed budgets).
    pub insts: u64,
    /// Wall time of each timed repeat, microseconds, in run order.
    pub samples_us: Vec<u64>,
}

/// Runs `run` through `warmup` discarded iterations, then `repeats`
/// timed ones (both clamped to at least 0 and 1 respectively), timing
/// each against `clock`. `run` returns the instructions it simulated.
pub fn measure(
    clock: &dyn Clock,
    warmup: u32,
    repeats: u32,
    mut run: impl FnMut() -> u64,
) -> Measurement {
    for _ in 0..warmup {
        run();
    }
    let repeats = repeats.max(1);
    let mut samples_us = Vec::with_capacity(repeats as usize);
    let mut insts = 0;
    for _ in 0..repeats {
        let start_us = clock.now_us();
        insts = run();
        let end_us = clock.now_us();
        samples_us.push(end_us.saturating_sub(start_us));
    }
    Measurement { insts, samples_us }
}

/// Summary statistics over one scenario's timed repeats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepeatSummary {
    /// Timed repeats the statistics summarize.
    pub repeats: u32,
    /// Fastest repeat, microseconds.
    pub min_us: u64,
    /// Median repeat, microseconds (the headline wall time).
    pub median_us: u64,
    /// 95th-percentile repeat, microseconds.
    pub p95_us: u64,
    /// Slowest repeat, microseconds.
    pub max_us: u64,
    /// Mean repeat, microseconds.
    pub mean_us: f64,
    /// `(p95 - min) / median`; 0 when the median is 0. The compare
    /// step adds this to its relative threshold, so noisy scenarios
    /// get a proportionally wider band.
    pub rel_spread: f64,
    /// Whether `rel_spread` exceeds [`NOISY_REL_SPREAD`] — a
    /// dispersion flag consumers can surface without re-deriving the
    /// policy.
    pub noisy: bool,
}

impl RepeatSummary {
    /// Statistics for `samples` (empty samples give an all-zero
    /// summary).
    pub fn from_samples(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return RepeatSummary {
                repeats: 0,
                min_us: 0,
                median_us: 0,
                p95_us: 0,
                max_us: 0,
                mean_us: 0.0,
                rel_spread: 0.0,
                noisy: false,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let quantile = |q: f64| -> u64 {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        let min_us = sorted[0];
        let median_us = quantile(0.5);
        let p95_us = quantile(0.95);
        let max_us = *sorted.last().expect("non-empty");
        let mean_us = sorted.iter().sum::<u64>() as f64 / sorted.len() as f64;
        let rel_spread = if median_us == 0 {
            0.0
        } else {
            (p95_us - min_us) as f64 / median_us as f64
        };
        RepeatSummary {
            repeats: samples.len() as u32,
            min_us,
            median_us,
            p95_us,
            max_us,
            mean_us,
            rel_spread,
            noisy: rel_spread > NOISY_REL_SPREAD,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use hetsim_obs::ManualClock;

    #[test]
    fn measure_discards_warmup_and_times_each_repeat() {
        let clock = Arc::new(ManualClock::new());
        let ticker = clock.clone();
        let mut calls = 0u64;
        let m = measure(&*clock, 2, 3, || {
            calls += 1;
            ticker.advance(10 * calls); // runs get slower each call
            123
        });
        assert_eq!(calls, 5, "2 warmup + 3 timed");
        assert_eq!(m.insts, 123);
        // Warmup calls advanced the clock but were not timed; the
        // three timed repeats took 30, 40, 50 us.
        assert_eq!(m.samples_us, vec![30, 40, 50]);
    }

    #[test]
    fn measure_clamps_repeats_to_at_least_one() {
        let clock = ManualClock::new();
        let m = measure(&clock, 0, 0, || 7);
        assert_eq!(m.samples_us.len(), 1);
    }

    #[test]
    fn summary_reports_order_statistics() {
        let s = RepeatSummary::from_samples(&[50, 30, 40]);
        assert_eq!((s.min_us, s.median_us, s.max_us), (30, 40, 50));
        assert_eq!(s.p95_us, 50);
        assert!((s.mean_us - 40.0).abs() < 1e-12);
        assert!((s.rel_spread - 0.5).abs() < 1e-12, "(50-30)/40");
        assert!(s.noisy, "0.5 exceeds the 0.2 dispersion flag");
        let tight = RepeatSummary::from_samples(&[100, 101, 99]);
        assert!(!tight.noisy);
    }

    #[test]
    fn summary_handles_empty_and_zero_samples() {
        let empty = RepeatSummary::from_samples(&[]);
        assert_eq!(empty.repeats, 0);
        assert_eq!(empty.median_us, 0);
        let zeros = RepeatSummary::from_samples(&[0, 0]);
        assert_eq!(zeros.rel_spread, 0.0, "zero median must not divide");
        assert!(!zeros.noisy);
    }

    #[test]
    fn summary_round_trips_through_serde() {
        let s = RepeatSummary::from_samples(&[10, 20, 30, 40]);
        let json = serde_json::to_string(&s).expect("serializes");
        let back: RepeatSummary = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, s);
    }
}
