//! The `BENCH_*.json` dump schema.
//!
//! A dump is one machine's measured perf trajectory point: a schema
//! version, a host fingerprint, the run configuration (budget, seed,
//! warmup, repeats, quick/full profile), and one [`ScenarioResult`]
//! per pinned scenario with the headline simulated-instructions/sec
//! plus the full repeat statistics. Dumps are what `repro bench --out`
//! writes, what `--compare` diffs, and what the CI ratchet pins.

use serde::{Deserialize, Serialize};

use crate::measure::{Measurement, RepeatSummary};

/// Schema tag stamped into every dump; bump on layout changes so a
/// compare across incompatible dumps fails loudly instead of reading
/// garbage.
pub const BENCH_SCHEMA: &str = "hetsim-bench-v1";

/// A coarse host fingerprint, recorded so a trajectory of dumps can be
/// told apart by machine — cross-machine insts/sec comparisons need
/// wide tolerances, same-machine ones do not.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostInfo {
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Available parallelism (0 when undeterminable).
    pub cpus: u64,
}

impl HostInfo {
    /// The current machine's fingerprint.
    pub fn detect() -> Self {
        HostInfo {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(0),
        }
    }
}

/// One pinned scenario's measured result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Scenario name (stable across dumps; compare joins on it).
    pub name: String,
    /// Instructions the scenario simulates per repeat.
    pub insts: u64,
    /// Median wall time per repeat, microseconds.
    pub wall_us: u64,
    /// The headline metric: `insts / median wall seconds`; 0 when the
    /// median wall time is 0 (too fast to resolve — the compare step
    /// treats such scenarios as unmeasurable rather than infinitely
    /// fast).
    pub insts_per_sec: f64,
    /// Full repeat statistics behind the headline.
    pub timing: RepeatSummary,
}

impl ScenarioResult {
    /// Summarizes a [`Measurement`] under `name`.
    pub fn new(name: impl Into<String>, measurement: &Measurement) -> Self {
        let timing = RepeatSummary::from_samples(&measurement.samples_us);
        let wall_us = timing.median_us;
        let insts_per_sec = if wall_us == 0 {
            0.0
        } else {
            measurement.insts as f64 * 1e6 / wall_us as f64
        };
        ScenarioResult {
            name: name.into(),
            insts: measurement.insts,
            wall_us,
            insts_per_sec,
            timing,
        }
    }
}

/// One `BENCH_*.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchDump {
    /// Always [`BENCH_SCHEMA`] for dumps written by this build.
    pub schema: String,
    /// Whether the `--quick` profile produced this dump (quick and
    /// full dumps are not comparable — different budgets).
    pub quick: bool,
    /// Requested per-scenario instruction budget.
    pub insts: u64,
    /// Trace-generator seed all scenarios ran on.
    pub seed: u64,
    /// Discarded warmup iterations per scenario.
    pub warmup: u32,
    /// Timed repeats per scenario.
    pub repeats: u32,
    /// The measuring machine.
    pub host: HostInfo,
    /// One entry per pinned scenario, menu order.
    pub scenarios: Vec<ScenarioResult>,
}

impl BenchDump {
    /// Structural validity: correct schema tag, at least one scenario,
    /// unique non-empty scenario names, and a finite, non-negative
    /// insts/sec for every scenario.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != BENCH_SCHEMA {
            return Err(format!(
                "schema mismatch: dump says `{}`, this build reads `{BENCH_SCHEMA}`",
                self.schema
            ));
        }
        if self.scenarios.is_empty() {
            return Err("dump has no scenarios".to_string());
        }
        let mut seen: Vec<&str> = Vec::new();
        for s in &self.scenarios {
            if s.name.is_empty() {
                return Err("a scenario has an empty name".to_string());
            }
            if seen.contains(&s.name.as_str()) {
                return Err(format!("duplicate scenario `{}`", s.name));
            }
            seen.push(&s.name);
            if !s.insts_per_sec.is_finite() || s.insts_per_sec < 0.0 {
                return Err(format!(
                    "scenario `{}` has a non-finite or negative insts/sec",
                    s.name
                ));
            }
        }
        Ok(())
    }

    /// The scenario named `name`, if present.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioResult> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// The pretty-printed JSON document, newline-terminated.
    pub fn to_json(&self) -> String {
        let mut text = serde_json::to_string_pretty(self).expect("value trees always serialize");
        text.push('\n');
        text
    }

    /// Parses and validates a dump document.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON, a layout mismatch, or a
    /// dump failing [`BenchDump::validate`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let dump: BenchDump =
            serde_json::from_str(text).map_err(|e| format!("not a bench dump: {e}"))?;
        dump.validate()?;
        Ok(dump)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &str, insts: u64, samples: &[u64]) -> ScenarioResult {
        ScenarioResult::new(
            name,
            &Measurement {
                insts,
                samples_us: samples.to_vec(),
            },
        )
    }

    pub(crate) fn dump(scenarios: Vec<ScenarioResult>) -> BenchDump {
        BenchDump {
            schema: BENCH_SCHEMA.to_string(),
            quick: true,
            insts: 60_000,
            seed: 42,
            warmup: 1,
            repeats: 3,
            host: HostInfo::detect(),
            scenarios,
        }
    }

    #[test]
    fn insts_per_sec_derives_from_the_median_repeat() {
        let r = result("fig7-cpu-campaign", 300_000, &[200_000, 100_000, 150_000]);
        assert_eq!(r.wall_us, 150_000);
        assert!((r.insts_per_sec - 2_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn zero_median_yields_zero_insts_per_sec() {
        let r = result("micro", 1_000, &[0, 0, 0]);
        assert_eq!(r.wall_us, 0);
        assert_eq!(r.insts_per_sec, 0.0, "never infinity");
    }

    #[test]
    fn dumps_round_trip_through_json() {
        let d = dump(vec![
            result("a", 10, &[5, 6, 7]),
            result("b", 20, &[1, 1, 1]),
        ]);
        let back = BenchDump::from_json(&d.to_json()).expect("round trip");
        assert_eq!(back, d);
    }

    #[test]
    fn validate_rejects_structural_defects() {
        let wrong_schema = BenchDump {
            schema: "hetsim-bench-v0".into(),
            ..dump(vec![result("a", 1, &[1])])
        };
        assert!(wrong_schema.validate().unwrap_err().contains("schema"));

        assert!(dump(Vec::new())
            .validate()
            .unwrap_err()
            .contains("no scenarios"));

        let dup = dump(vec![result("a", 1, &[1]), result("a", 1, &[1])]);
        assert!(dup.validate().unwrap_err().contains("duplicate"));

        let mut bad = dump(vec![result("a", 1, &[1])]);
        bad.scenarios[0].insts_per_sec = f64::NAN;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn from_json_rejects_garbage_and_wrong_schemas() {
        assert!(BenchDump::from_json("not json").is_err());
        let mut d = dump(vec![result("a", 1, &[1])]);
        d.schema = "other".into();
        let err = BenchDump::from_json(&d.to_json()).unwrap_err();
        assert!(err.contains("hetsim-bench-v1"), "{err}");
    }
}
