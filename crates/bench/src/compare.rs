//! Noise-aware comparison of two bench dumps (`repro bench --compare`).
//!
//! The unit of comparison is the headline insts/sec per scenario,
//! joined by name. Thresholds are *relative* and *noise-aware*: the
//! policy's base tolerance is widened by the larger of the two dumps'
//! recorded repeat spreads, so a scenario that measured noisily needs
//! a proportionally larger slowdown to be called a regression, while a
//! tight scenario is held to the tight band. A scenario missing from
//! the candidate is a regression (a pinned scenario silently dropping
//! out must fail CI); a new scenario in the candidate is informational.

use crate::dump::BenchDump;

/// Comparison thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComparePolicy {
    /// Base relative tolerance on insts/sec before noise widening
    /// (0.25 = a 25% slowdown on a noise-free scenario regresses).
    pub rel_tol: f64,
}

impl Default for ComparePolicy {
    fn default() -> Self {
        ComparePolicy { rel_tol: 0.25 }
    }
}

impl ComparePolicy {
    /// The generous tolerance the CI ratchet uses: ratchet dumps are
    /// recorded on whatever machine cut the baseline, CI runs on
    /// shared runners, so only large slowdowns should gate.
    pub const CI_RATCHET: ComparePolicy = ComparePolicy { rel_tol: 0.60 };

    /// The effective tolerance for a scenario pair: base tolerance
    /// plus the larger recorded repeat spread, capped below 95% so a
    /// wildly noisy scenario can still regress.
    pub fn effective_tol(&self, base_spread: f64, cand_spread: f64) -> f64 {
        (self.rel_tol + base_spread.max(cand_spread)).min(0.95)
    }
}

/// The outcome of one scenario's comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Candidate is faster than the widened band.
    Improved,
    /// Within the band, or unmeasurable (zero wall time) on either
    /// side — the zero-time guard never lets a sub-resolution scenario
    /// pass or fail on a meaningless ratio.
    Unchanged,
    /// Candidate is slower than the widened band allows.
    Regressed,
    /// Present in the baseline, absent from the candidate.
    Missing,
    /// Present in the candidate only (informational).
    Added,
}

impl Verdict {
    /// A short stable tag for table output.
    pub fn tag(self) -> &'static str {
        match self {
            Verdict::Improved => "improved",
            Verdict::Unchanged => "ok",
            Verdict::Regressed => "REGRESSED",
            Verdict::Missing => "MISSING",
            Verdict::Added => "added",
        }
    }

    /// Whether this verdict fails the gate.
    pub fn fails(self) -> bool {
        matches!(self, Verdict::Regressed | Verdict::Missing)
    }
}

/// One scenario's comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioDiff {
    /// Scenario name.
    pub name: String,
    /// The verdict.
    pub verdict: Verdict,
    /// Baseline insts/sec (0 for [`Verdict::Added`]).
    pub base_insts_per_sec: f64,
    /// Candidate insts/sec (0 for [`Verdict::Missing`]).
    pub cand_insts_per_sec: f64,
    /// `cand / base`; 0 when the baseline is unmeasurable.
    pub ratio: f64,
    /// The effective (noise-widened) tolerance applied.
    pub tolerance: f64,
}

/// The full comparison: one row per scenario in either dump.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// Rows, baseline menu order then candidate-only additions.
    pub diffs: Vec<ScenarioDiff>,
}

impl CompareReport {
    /// Gate-failing rows ([`Verdict::fails`]).
    pub fn failures(&self) -> Vec<&ScenarioDiff> {
        self.diffs.iter().filter(|d| d.verdict.fails()).collect()
    }

    /// Whether the candidate passes the gate.
    pub fn passed(&self) -> bool {
        self.failures().is_empty()
    }

    /// A fixed-width table of every row, one line each, plus a
    /// one-line summary.
    pub fn render(&self) -> String {
        let name_w = self
            .diffs
            .iter()
            .map(|d| d.name.len())
            .max()
            .unwrap_or(8)
            .max("scenario".len());
        let mut out = format!(
            "{:<name_w$}  {:>14}  {:>14}  {:>7}  {:>6}  verdict\n",
            "scenario", "base insts/s", "cand insts/s", "ratio", "tol"
        );
        for d in &self.diffs {
            out.push_str(&format!(
                "{:<name_w$}  {:>14.0}  {:>14.0}  {:>7.3}  {:>5.0}%  {}\n",
                d.name,
                d.base_insts_per_sec,
                d.cand_insts_per_sec,
                d.ratio,
                d.tolerance * 100.0,
                d.verdict.tag()
            ));
        }
        let failures = self.failures();
        if failures.is_empty() {
            out.push_str("bench compare: PASS\n");
        } else {
            out.push_str(&format!(
                "bench compare: FAIL ({} of {} scenario(s) regressed)\n",
                failures.len(),
                self.diffs.len()
            ));
        }
        out
    }
}

/// Compares `cand` against `base` under `policy`.
pub fn compare(base: &BenchDump, cand: &BenchDump, policy: &ComparePolicy) -> CompareReport {
    let mut diffs = Vec::with_capacity(base.scenarios.len());
    for b in &base.scenarios {
        let Some(c) = cand.scenario(&b.name) else {
            diffs.push(ScenarioDiff {
                name: b.name.clone(),
                verdict: Verdict::Missing,
                base_insts_per_sec: b.insts_per_sec,
                cand_insts_per_sec: 0.0,
                ratio: 0.0,
                tolerance: policy.rel_tol,
            });
            continue;
        };
        let tolerance = policy.effective_tol(b.timing.rel_spread, c.timing.rel_spread);
        // Zero-time guard: a scenario finishing below the clock's
        // resolution on either side has no meaningful ratio.
        let verdict = if b.wall_us == 0 || c.wall_us == 0 {
            Verdict::Unchanged
        } else if c.insts_per_sec < b.insts_per_sec * (1.0 - tolerance) {
            Verdict::Regressed
        } else if c.insts_per_sec > b.insts_per_sec * (1.0 + tolerance) {
            Verdict::Improved
        } else {
            Verdict::Unchanged
        };
        let ratio = if b.insts_per_sec > 0.0 {
            c.insts_per_sec / b.insts_per_sec
        } else {
            0.0
        };
        diffs.push(ScenarioDiff {
            name: b.name.clone(),
            verdict,
            base_insts_per_sec: b.insts_per_sec,
            cand_insts_per_sec: c.insts_per_sec,
            ratio,
            tolerance,
        });
    }
    for c in &cand.scenarios {
        if base.scenario(&c.name).is_none() {
            diffs.push(ScenarioDiff {
                name: c.name.clone(),
                verdict: Verdict::Added,
                base_insts_per_sec: 0.0,
                cand_insts_per_sec: c.insts_per_sec,
                ratio: 0.0,
                tolerance: policy.rel_tol,
            });
        }
    }
    CompareReport { diffs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dump::{BenchDump, HostInfo, ScenarioResult, BENCH_SCHEMA};
    use crate::measure::RepeatSummary;

    fn scenario(name: &str, insts: u64, wall_us: u64, rel_spread: f64) -> ScenarioResult {
        ScenarioResult {
            name: name.to_string(),
            insts,
            wall_us,
            insts_per_sec: if wall_us == 0 {
                0.0
            } else {
                insts as f64 * 1e6 / wall_us as f64
            },
            timing: RepeatSummary {
                repeats: 3,
                min_us: wall_us,
                median_us: wall_us,
                p95_us: wall_us,
                max_us: wall_us,
                mean_us: wall_us as f64,
                rel_spread,
                noisy: rel_spread > crate::measure::NOISY_REL_SPREAD,
            },
        }
    }

    fn dump(scenarios: Vec<ScenarioResult>) -> BenchDump {
        BenchDump {
            schema: BENCH_SCHEMA.to_string(),
            quick: true,
            insts: 60_000,
            seed: 42,
            warmup: 1,
            repeats: 3,
            host: HostInfo::detect(),
            scenarios,
        }
    }

    #[test]
    fn self_compare_passes_with_every_scenario_unchanged() {
        let d = dump(vec![
            scenario("a", 1000, 10, 0.0),
            scenario("b", 500, 5, 0.1),
        ]);
        let report = compare(&d, &d, &ComparePolicy::default());
        assert!(report.passed());
        assert!(report
            .diffs
            .iter()
            .all(|d| d.verdict == Verdict::Unchanged && (d.ratio - 1.0).abs() < 1e-12));
        assert!(report.render().contains("PASS"));
    }

    #[test]
    fn a_slowdown_beyond_the_band_regresses_and_within_it_does_not() {
        let base = dump(vec![scenario("a", 1000, 100, 0.0)]);
        // 20% slower: inside the default 25% band.
        let near = dump(vec![scenario("a", 1000, 125, 0.0)]);
        assert!(compare(&base, &near, &ComparePolicy::default()).passed());
        // 2x slower: out.
        let slow = dump(vec![scenario("a", 1000, 200, 0.0)]);
        let report = compare(&base, &slow, &ComparePolicy::default());
        assert_eq!(report.diffs[0].verdict, Verdict::Regressed);
        assert!(!report.passed());
        assert!(report.render().contains("FAIL"), "{}", report.render());
        // 2x faster: improved, still passing.
        let fast = dump(vec![scenario("a", 1000, 50, 0.0)]);
        let report = compare(&base, &fast, &ComparePolicy::default());
        assert_eq!(report.diffs[0].verdict, Verdict::Improved);
        assert!(report.passed());
    }

    #[test]
    fn threshold_boundary_is_inclusive_of_the_band_edge() {
        // Exactly 25% slower insts/sec with zero spread: cand =
        // base * (1 - tol) exactly, and the comparison is strict `<`,
        // so the edge itself does not regress.
        let base = dump(vec![scenario("a", 1000, 100, 0.0)]);
        let mut edge = dump(vec![scenario("a", 1000, 100, 0.0)]);
        edge.scenarios[0].insts_per_sec = base.scenarios[0].insts_per_sec * 0.75;
        assert!(compare(&base, &edge, &ComparePolicy::default()).passed());
        let mut past = dump(vec![scenario("a", 1000, 100, 0.0)]);
        past.scenarios[0].insts_per_sec = base.scenarios[0].insts_per_sec * 0.7499;
        assert!(!compare(&base, &past, &ComparePolicy::default()).passed());
    }

    #[test]
    fn noise_widens_the_band() {
        let base = dump(vec![scenario("a", 1000, 100, 0.3)]);
        // 40% slower: past the 25% base tolerance, but inside
        // 25% + 30% recorded spread.
        let slow = dump(vec![scenario("a", 1000, 167, 0.0)]);
        assert!(compare(&base, &slow, &ComparePolicy::default()).passed());
        let tight_base = dump(vec![scenario("a", 1000, 100, 0.0)]);
        assert!(!compare(&tight_base, &slow, &ComparePolicy::default()).passed());
    }

    #[test]
    fn missing_scenarios_fail_and_added_ones_do_not() {
        let base = dump(vec![
            scenario("a", 1000, 10, 0.0),
            scenario("b", 1000, 10, 0.0),
        ]);
        let cand = dump(vec![
            scenario("a", 1000, 10, 0.0),
            scenario("c", 1000, 10, 0.0),
        ]);
        let report = compare(&base, &cand, &ComparePolicy::default());
        let verdict_of = |name: &str| {
            report
                .diffs
                .iter()
                .find(|d| d.name == name)
                .map(|d| d.verdict)
        };
        assert_eq!(verdict_of("b"), Some(Verdict::Missing));
        assert_eq!(verdict_of("c"), Some(Verdict::Added));
        assert!(!report.passed(), "a missing pinned scenario gates");
    }

    #[test]
    fn zero_time_scenarios_are_unchanged_not_infinite() {
        let base = dump(vec![scenario("a", 1000, 0, 0.0)]);
        let cand = dump(vec![scenario("a", 1000, 50, 0.0)]);
        let report = compare(&base, &cand, &ComparePolicy::default());
        assert_eq!(report.diffs[0].verdict, Verdict::Unchanged);
        assert_eq!(report.diffs[0].ratio, 0.0, "no divide-by-zero ratio");
        let report = compare(&cand, &base, &ComparePolicy::default());
        assert_eq!(report.diffs[0].verdict, Verdict::Unchanged);
        assert!(report.passed());
    }

    #[test]
    fn effective_tolerance_caps_below_one() {
        let p = ComparePolicy::default();
        assert!((p.effective_tol(0.1, 0.05) - 0.35).abs() < 1e-12);
        assert_eq!(p.effective_tol(5.0, 0.0), 0.95, "cap keeps the gate live");
    }
}
