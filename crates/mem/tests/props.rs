//! Property tests for the cache structures: behaviour against reference
//! models under arbitrary address sequences.

use proptest::prelude::*;

use hetsim_mem::asymmetric::AsymmetricCache;
use hetsim_mem::cache::{Cache, CacheConfig};
use hetsim_mem::stats::MemStats;

/// A reference LRU model: fully explicit, obviously correct.
struct RefLru {
    sets: Vec<Vec<u64>>, // line addresses, MRU first
    ways: usize,
    line: u64,
}

impl RefLru {
    fn new(size: u64, ways: u32, line: u64) -> Self {
        let sets = (size / (u64::from(ways) * line)) as usize;
        RefLru {
            sets: vec![Vec::new(); sets],
            ways: ways as usize,
            line,
        }
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / self.line) % self.sets.len() as u64) as usize
    }

    /// Returns whether the access hit.
    fn access(&mut self, addr: u64) -> bool {
        let la = addr & !(self.line - 1);
        let s = self.set_of(addr);
        let set = &mut self.sets[s];
        if let Some(pos) = set.iter().position(|&x| x == la) {
            set.remove(pos);
            set.insert(0, la);
            true
        } else {
            if set.len() == self.ways {
                set.pop();
            }
            set.insert(0, la);
            false
        }
    }
}

proptest! {
    /// The production cache agrees hit-for-hit with the reference LRU.
    #[test]
    fn cache_matches_reference_lru(addrs in proptest::collection::vec(0u64..8192, 1..400)) {
        let mut cache = Cache::new(CacheConfig::new(1024, 2, 64, 1));
        let mut reference = RefLru::new(1024, 2, 64);
        for addr in addrs {
            let got = cache.access(addr, false).hit;
            let want = reference.access(addr);
            prop_assert_eq!(got, want, "divergence at address {:#x}", addr);
        }
    }

    /// Statistics identities hold for any access sequence.
    #[test]
    fn cache_stats_identities(addrs in proptest::collection::vec(0u64..65536, 1..500),
                              writes in proptest::collection::vec(any::<bool>(), 500)) {
        let mut cache = Cache::new(CacheConfig::new(4096, 4, 64, 1));
        for (addr, w) in addrs.iter().zip(&writes) {
            cache.access(*addr, *w);
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert_eq!(s.fills, s.misses, "demand misses allocate exactly once");
        prop_assert!(s.writebacks <= s.fills, "can't write back more than was filled");
        prop_assert!(cache.resident_lines() <= 64);
    }

    /// The asymmetric cache keeps its partitions exclusive and never loses
    /// a resident line except through (bounded) capacity eviction; its
    /// content equals a plain cache of the same total capacity in hit
    /// terms only approximately, but re-access of the MRU line always
    /// hits fast.
    #[test]
    fn asymmetric_partitions_stay_exclusive(addrs in proptest::collection::vec(0u64..16384, 1..400)) {
        let mut asym = AsymmetricCache::new(
            CacheConfig::new(512, 1, 64, 1),
            CacheConfig::new(1024, 2, 64, 4),
        );
        for addr in addrs {
            asym.access(addr, false);
            // Re-access must hit, and hit in the fast partition (MRU).
            let again = asym.access(addr, false);
            prop_assert_eq!(again.hit, hetsim_mem::asymmetric::AsymHit::Fast);
        }
        let s_fast = asym.fast_stats();
        prop_assert_eq!(s_fast.hits + s_fast.misses, s_fast.accesses);
    }

    /// LRU never evicts the most-recently-used line: with at least two
    /// ways, one intervening access can never push out the line touched
    /// just before it (at most one eviction happens in its set, and the
    /// victim is taken from the LRU end).
    #[test]
    fn lru_never_evicts_the_mru_line(addrs in proptest::collection::vec(0u64..8192, 2..400)) {
        let mut cache = Cache::new(CacheConfig::new(1024, 2, 64, 1));
        for pair in addrs.windows(2) {
            cache.access(pair[0], false);
            cache.access(pair[1], false);
            prop_assert!(
                cache.probe(pair[0]),
                "MRU line {:#x} evicted by single access {:#x}",
                pair[0],
                pair[1]
            );
        }
    }

    /// Every [`CacheStats`] counter is sum/sub, so `merge` then `minus`
    /// round-trips one level's counters exactly.
    #[test]
    fn cache_stats_merge_then_minus_round_trips(a in proptest::collection::vec(0u64..(1 << 32), 6),
                                                b in proptest::collection::vec(0u64..(1 << 32), 6)) {
        let build = |v: &[u64]| {
            let mut s = hetsim_mem::stats::CacheStats::default();
            for ((name, _), value) in hetsim_mem::stats::CacheStats::default().iter().zip(v) {
                prop_assert!(s.set(&name, *value), "unknown counter {}", name);
            }
            Ok(s)
        };
        let sa = build(&a)?;
        let sb = build(&b)?;
        let mut merged = sa;
        merged.merge(&sb);
        prop_assert_eq!(merged.minus(&sa), sb);
        prop_assert_eq!(merged.minus(&sb), sa);
    }

    /// Hit rate is within [0,1] and a second identical pass over a small
    /// footprint only improves it.
    #[test]
    fn second_pass_never_hurts(addrs in proptest::collection::vec(0u64..2048, 10..200)) {
        let mut cache = Cache::new(CacheConfig::new(4096, 4, 64, 1));
        for a in &addrs {
            cache.access(*a, false);
        }
        let first = cache.stats().hit_rate();
        for a in &addrs {
            cache.access(*a, false);
        }
        let second = cache.stats().hit_rate();
        prop_assert!((0.0..=1.0).contains(&first));
        prop_assert!(second >= first, "footprint fits: second pass hits");
    }
}

/// One value per [`MemStats`] counter (nested levels flattened to their
/// dotted names), bounded well below overflow so merged sums stay exact.
fn counter_values() -> impl Strategy<Value = Vec<u64>> {
    let fields = MemStats::default().iter().count();
    proptest::collection::vec(0u64..(1 << 32), fields)
}

/// Builds a [`MemStats`] by assigning each generated value through the
/// dotted-name-addressed `set`.
fn stats_from(values: &[u64]) -> MemStats {
    let mut s = MemStats::default();
    for ((name, _), v) in MemStats::default().iter().zip(values) {
        assert!(s.set(&name, *v), "unknown counter {name}");
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every [`MemStats`] counter is sum/sub, so `merge` then `minus`
    /// round-trips the whole hierarchy — nested cache levels included.
    #[test]
    fn mem_stats_merge_then_minus_round_trips(a in counter_values(), b in counter_values()) {
        let sa = stats_from(&a);
        let sb = stats_from(&b);
        let mut merged = sa;
        merged.merge(&sb);
        prop_assert_eq!(merged.minus(&sa), sb);
    }

    /// Dotted `iter()` names are unique, value-independent, and every
    /// pair is addressable back through `get`.
    #[test]
    fn mem_stats_iter_names_are_stable_and_unique(a in counter_values()) {
        let s = stats_from(&a);
        let names: Vec<String> = s.iter().map(|(n, _)| n).collect();
        let default_names: Vec<String> =
            MemStats::default().iter().map(|(n, _)| n).collect();
        prop_assert_eq!(&names, &default_names, "names do not depend on values");
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), names.len(), "names are unique");
        for (name, value) in s.iter() {
            prop_assert_eq!(s.get(&name), Some(value), "get({}) addresses iter()", name);
        }
    }
}
