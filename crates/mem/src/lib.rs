//! Cache hierarchy, DRAM and coherence substrate for the HetCore
//! reproduction.
//!
//! Models the memory system of the paper's Table III: private 32 KB IL1 and
//! DL1, private 256 KB L2, a shared 2 MB/core L3 behind a ring with a MESI
//! directory, and 50 ns round-trip DRAM. Latencies are configuration
//! properties (CMOS vs. TFET implementations differ — e.g. the DL1 round
//! trip is 2 cycles in CMOS and 4 in TFET), so every latency here is a
//! constructor parameter.
//!
//! The crate also implements the paper's *Asymmetric DL1 Cache* (Section
//! IV-C1): one CMOS way (the 4 KB "FastCache", 1-cycle hits) in front of
//! the remaining TFET ways (the "SlowCache", 5-cycle hits), with MRU
//! promotion between them.
//!
//! # Example
//!
//! ```
//! use hetsim_mem::cache::{Cache, CacheConfig};
//!
//! let mut dl1 = Cache::new(CacheConfig::new(32 * 1024, 8, 64, 2));
//! assert!(!dl1.access(0x1000, false).hit); // cold miss
//! assert!(dl1.access(0x1000, false).hit); // now resident
//! ```

#![warn(missing_docs)]

pub mod asymmetric;
pub mod cache;
pub mod cacti;
pub mod coherence;
pub mod dram;
pub mod hierarchy;
pub mod stats;

pub use asymmetric::AsymmetricCache;
pub use cache::{Cache, CacheConfig};
pub use hierarchy::{DataCacheKind, Hierarchy, HierarchyConfig};
pub use stats::MemStats;
