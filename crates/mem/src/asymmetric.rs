//! The Asymmetric DL1 Cache of AdvHet (paper Section IV-C1, Figure 5).
//!
//! The asymmetric cache partitions the ways of the set-associative DL1: one
//! way is implemented in CMOS (the 4 KB direct-mapped *FastCache*) and the
//! remaining ways in TFET (the 28 KB 7-way *SlowCache*). A request checks
//! the FastCache first; a hit is satisfied in `fast_latency` (1 cycle). A
//! miss forwards to the SlowCache, where a hit takes `slow_latency` (4)
//! additional cycles — 5 total. The MRU line of each set is kept in the
//! FastCache: a SlowCache hit *promotes* the line into the FastCache,
//! demoting the previous FastCache occupant back into the SlowCache. The
//! two partitions hold disjoint line sets (exclusive).
//!
//! The same structure also models BaseCMOS-Enh's all-CMOS asymmetric DL1
//! (1-cycle fast way, 3-cycle remaining ways) — only the latencies differ.

use crate::cache::{Cache, CacheConfig};
use crate::stats::CacheStats;

/// Result of an asymmetric-cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsymOutcome {
    /// Where the request was satisfied.
    pub hit: AsymHit,
    /// Total DL1 latency in cycles for this request (miss latency covers
    /// only the DL1 portion; the hierarchy adds L2/L3/DRAM time).
    pub latency: u32,
    /// Dirty victim pushed out of the *whole* DL1 (to be written back to
    /// L2), if any.
    pub writeback: Option<u64>,
}

/// Hit classification for an asymmetric access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsymHit {
    /// Hit in the CMOS FastCache.
    Fast,
    /// Hit in the TFET SlowCache (line promoted to FastCache).
    Slow,
    /// Missed both; line will be filled into the FastCache.
    Miss,
}

/// The asymmetric DL1: a small fast direct-mapped partition in front of a
/// larger slow partition, exclusive of each other.
#[derive(Debug, Clone)]
pub struct AsymmetricCache {
    fast: Cache,
    slow: Cache,
    fast_latency: u32,
    slow_latency: u32,
    promotions: u64,
}

impl AsymmetricCache {
    /// Builds the paper's AdvHet DL1: 4 KB 1-way FastCache (1 cycle) plus
    /// 28 KB 7-way SlowCache (4 more cycles, 5 total on a slow hit).
    pub fn advhet_dl1() -> Self {
        AsymmetricCache::new(
            CacheConfig::new(4 * 1024, 1, 64, 1),
            CacheConfig::new(28 * 1024, 7, 64, 4),
        )
    }

    /// Builds BaseCMOS-Enh's all-CMOS asymmetric DL1: 1-cycle fast way and
    /// 3-cycle slow ways (Table IV).
    pub fn base_cmos_enh_dl1() -> Self {
        AsymmetricCache::new(
            CacheConfig::new(4 * 1024, 1, 64, 1),
            CacheConfig::new(28 * 1024, 7, 64, 2),
        )
    }

    /// Creates an asymmetric cache from explicit partitions. The slow
    /// partition's `latency` is the *additional* cycles past the fast
    /// probe.
    ///
    /// # Panics
    ///
    /// Panics if the partitions use different line sizes.
    pub fn new(fast_cfg: CacheConfig, slow_cfg: CacheConfig) -> Self {
        assert_eq!(
            fast_cfg.line_bytes, slow_cfg.line_bytes,
            "fast and slow partitions must share a line size"
        );
        AsymmetricCache {
            fast_latency: fast_cfg.latency,
            slow_latency: slow_cfg.latency,
            fast: Cache::new(fast_cfg),
            slow: Cache::new(slow_cfg),
            promotions: 0,
        }
    }

    /// Accesses `addr`, probing fast then slow, promoting on a slow hit and
    /// filling the FastCache on a miss.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AsymOutcome {
        let line_addr = self.fast.align(addr);
        let fast_hit = self.fast.probe(addr);
        self.fast.stats_record_demand(is_write, fast_hit);
        if fast_hit {
            self.fast.mark_used(addr, is_write);
            return AsymOutcome {
                hit: AsymHit::Fast,
                latency: self.fast_latency,
                writeback: None,
            };
        }

        let slow_hit = self.slow.probe(addr);
        self.slow.stats_record_demand(is_write, slow_hit);
        let writeback;
        let hit = if slow_hit {
            // Promote to FastCache, demote its victim into the SlowCache.
            let line = self.slow.remove(line_addr).expect("probed resident");
            writeback = self.promote(line.addr, line.dirty || is_write);
            self.promotions += 1;
            AsymHit::Slow
        } else {
            // Miss: the hierarchy will fetch the line; install it MRU in
            // the FastCache (the demoted victim goes to the SlowCache).
            writeback = self.promote(line_addr, is_write);
            AsymHit::Miss
        };
        AsymOutcome {
            hit,
            latency: self.fast_latency + self.slow_latency,
            writeback,
        }
    }

    /// Installs `addr` into the FastCache, demoting any evicted fast line
    /// into the SlowCache. Returns a dirty line evicted from the whole DL1.
    fn promote(&mut self, line_addr: u64, dirty: bool) -> Option<u64> {
        // Evict the direct-mapped fast slot manually so we can demote the
        // victim rather than lose it.
        let victim_slot = self.fast_victim(line_addr);
        let mut writeback = None;
        if let Some(victim) = victim_slot {
            let removed = self.fast.remove(victim).expect("victim resident");
            writeback = self.slow.fill(removed.addr, removed.dirty);
        }
        let direct_wb = self.fast.fill(line_addr, dirty);
        debug_assert!(direct_wb.is_none(), "victim already demoted");
        writeback
    }

    /// The address of the line currently occupying `line_addr`'s fast slot.
    fn fast_victim(&self, line_addr: u64) -> Option<u64> {
        self.fast.occupant_of_set(line_addr)
    }

    /// Pre-warms both partitions with the leading portion of a working
    /// set: the slow partition takes what it can hold, the fast partition
    /// the hottest head.
    pub fn prewarm(&mut self, base: u64, working_set_bytes: u64) {
        let line = self.slow.config().line_bytes;
        let slow_lines = self.slow.config().size_bytes.min(working_set_bytes) / line;
        self.slow.prewarm_sequential(base, slow_lines);
        let fast_lines = self.fast.config().size_bytes.min(working_set_bytes) / line;
        for i in 0..fast_lines {
            // Keep exclusivity: move the head lines fast.
            let addr = base + i * line;
            let _ = self.slow.remove(addr);
            self.fast.fill(addr, false);
        }
    }

    /// Probes both partitions without side effects.
    pub fn probe(&self, addr: u64) -> bool {
        self.fast.probe(addr) || self.slow.probe(addr)
    }

    /// FastCache statistics.
    pub fn fast_stats(&self) -> &CacheStats {
        self.fast.stats()
    }

    /// SlowCache statistics.
    pub fn slow_stats(&self) -> &CacheStats {
        self.slow.stats()
    }

    /// Number of slow-to-fast promotions.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Validates both partitions structurally plus the exclusivity
    /// invariant: a line resident fast must not also be resident slow.
    pub fn validate(&self, checker: &mut hetsim_check::Checker) {
        self.fast.validate("fast", checker);
        self.slow.validate("slow", checker);
        checker.scoped("asym", |c| {
            let line = self.fast.config().line_bytes;
            let fast_lines = self.fast.config().size_bytes / line;
            let mut shared = 0u64;
            for i in 0..fast_lines {
                // Walk every fast slot by probing its set's occupant.
                if let Some(addr) = self.fast.occupant_of_set(i * line) {
                    if self.slow.probe(addr) {
                        shared += 1;
                    }
                }
            }
            c.eq_u64(
                "mem.asym_exclusive",
                ("lines resident in both partitions", shared),
                ("0", 0),
            );
        });
    }

    /// Hit rate over the whole structure.
    pub fn hit_rate(&self) -> f64 {
        let demand = self.fast.stats().accesses;
        if demand == 0 {
            return 0.0;
        }
        (self.fast.stats().hits + self.slow.stats().hits) as f64 / demand as f64
    }

    /// Fraction of demand accesses satisfied by the FastCache.
    pub fn fast_hit_rate(&self) -> f64 {
        let demand = self.fast.stats().accesses;
        if demand == 0 {
            return 0.0;
        }
        self.fast.stats().hits as f64 / demand as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AsymmetricCache {
        // Fast: 2 sets x 1 way; slow: 2 sets x 2 ways; 64 B lines.
        AsymmetricCache::new(
            CacheConfig::new(128, 1, 64, 1),
            CacheConfig::new(256, 2, 64, 4),
        )
    }

    #[test]
    fn miss_fill_then_fast_hit() {
        let mut c = tiny();
        let out = c.access(0x0, false);
        assert_eq!(out.hit, AsymHit::Miss);
        assert_eq!(out.latency, 5);
        let out = c.access(0x0, false);
        assert_eq!(out.hit, AsymHit::Fast);
        assert_eq!(out.latency, 1);
    }

    #[test]
    fn conflicting_line_demotes_then_slow_hit_promotes() {
        let mut c = tiny();
        c.access(0x000, false); // fills fast slot for set 0
        c.access(0x080, false); // same fast slot: demotes 0x000 to slow
                                // 0x000 should now hit slow and be promoted back.
        let out = c.access(0x000, false);
        assert_eq!(out.hit, AsymHit::Slow);
        assert_eq!(out.latency, 5);
        let out = c.access(0x000, false);
        assert_eq!(out.hit, AsymHit::Fast);
        // And 0x080 was demoted to slow.
        let out = c.access(0x080, false);
        assert_eq!(out.hit, AsymHit::Slow);
    }

    #[test]
    fn partitions_stay_exclusive() {
        let mut c = tiny();
        for addr in [0x000u64, 0x080, 0x100, 0x000, 0x180, 0x080] {
            c.access(addr, false);
            for probe in [0x000u64, 0x080, 0x100, 0x180] {
                let in_fast = c.fast.probe(probe);
                let in_slow = c.slow.probe(probe);
                assert!(!(in_fast && in_slow), "line {probe:#x} duplicated");
            }
        }
    }

    #[test]
    fn dirty_data_survives_demotion_and_returns_on_eviction() {
        let mut c = tiny();
        c.access(0x000, true); // dirty in fast
        c.access(0x080, false); // demote dirty 0x000 to slow
        c.access(0x100, false); // set 0 again: demote 0x080; slow set 0 holds 0x000+0x080
                                // Next set-0 line: 0x180 — slow set 0 overflows, evicting LRU (0x000 dirty).
        let out = c.access(0x180, false);
        assert_eq!(
            out.writeback,
            Some(0x000),
            "dirty line must be written back"
        );
    }

    #[test]
    fn mru_line_lives_in_fast_cache() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x080, false);
        // 0x080 is MRU for set 0 and must be the fast occupant.
        assert!(c.fast.probe(0x080));
        assert!(!c.fast.probe(0x000));
    }

    #[test]
    fn advhet_geometry_and_latencies() {
        let mut c = AsymmetricCache::advhet_dl1();
        let miss = c.access(0x4000, false);
        assert_eq!(miss.latency, 5, "1 fast + 4 slow cycles");
        let hit = c.access(0x4000, false);
        assert_eq!(hit.latency, 1);
    }

    #[test]
    fn hit_rates_account_both_partitions() {
        let mut c = tiny();
        c.access(0x000, false); // miss
        c.access(0x000, false); // fast hit
        c.access(0x080, false); // miss (demotes)
        c.access(0x000, false); // slow hit
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
        assert!((c.fast_hit_rate() - 0.25).abs() < 1e-12);
        assert_eq!(c.promotions(), 1);
    }
}
